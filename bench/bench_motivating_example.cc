// Reproduces the paper's §2 motivating example end-to-end: the TPC-H
// ship/commit/order-date query Q1 is rewritten into Q2 by synthesizing
// lineitem-only predicates, and both are executed to show the speedup
// and the equality of results. The paper reports Q2 running 2x faster
// than Q1 on Postgres at SF 10 (94 s -> 50 s).
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "parser/parser.h"
#include "rewrite/planner.h"
#include "rewrite/sia_rewriter.h"

using namespace sia;  // NOLINT: single-binary harness

int main() {
  bench::EnableBenchObservability();
  bench::PrintHeader("Motivating example (paper §2): Q1 -> Q2");

  const std::string q1 =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";
  std::printf("Q1: %s\n\n", q1.c_str());

  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(q1, catalog, opts);
  if (!outcome.ok()) {
    std::cerr << "rewrite failed: " << outcome.status().ToString() << "\n";
    return 1;
  }
  if (!outcome->changed()) {
    std::cerr << "no predicate synthesized (status "
              << SynthesisStatusName(outcome->synthesis.status) << ")\n";
    return 1;
  }
  std::printf("learned predicate: %s\n", outcome->learned->ToString().c_str());
  std::printf("Q2: %s\n\n", outcome->rewritten.ToString().c_str());
  std::printf("synthesis: status=%s iterations=%d gen=%.0fms learn=%.0fms "
              "verify=%.0fms\n\n",
              SynthesisStatusName(outcome->synthesis.status),
              outcome->synthesis.stats.iterations,
              outcome->synthesis.stats.generation_ms,
              outcome->synthesis.stats.learning_ms,
              outcome->synthesis.stats.validation_ms);
  std::printf("paper reference predicates: l_shipdate < '1993-06-20', "
              "l_commitdate < '1993-07-18',\n"
              "l_commitdate - l_shipdate < 29\n\n");

  const double sf =
      bench::EnvInt("SIA_BENCH_SF_MILLI", 200) / 1000.0;
  const TpchData data = GenerateTpch(sf);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  std::printf("engine: SF %.2f (%zu lineitem rows, %zu orders rows)\n", sf,
              data.lineitem.row_count(), data.orders.row_count());

  auto run = [&](const ParsedQuery& q) {
    double best = 1e300;
    Result<QueryOutput> out(Status::OK());
    for (int r = 0; r < 3; ++r) {
      out = RunQuery(q, catalog, executor);
      if (!out.ok()) break;
      best = std::min(best, out->elapsed_ms);
    }
    return std::make_pair(best, std::move(out));
  };

  auto q1_parsed = ParseQuery(q1);
  auto [t1, out1] = run(*q1_parsed);
  auto [t2, out2] = run(outcome->rewritten);
  if (!out1.ok() || !out2.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }
  std::printf("\nQ1: %8.2f ms   (%zu rows)\n", t1, out1->row_count);
  std::printf("Q2: %8.2f ms   (%zu rows)\n", t2, out2->row_count);
  std::printf("speedup: %.2fx   results %s\n", t1 / t2,
              out1->content_hash == out2->content_hash ? "IDENTICAL"
                                                       : "DIFFER (BUG)");
  std::printf("join probe rows: Q1=%zu Q2=%zu\n",
              out1->stats.join_probe_rows, out2->stats.join_probe_rows);
  std::printf("\nPaper: 2x speedup on Postgres SF10 (94 s -> 50 s). Expected "
              "shape:\nQ2 faster with a materially smaller join probe input "
              "and identical\nresults.\n");
  const bool identical = out1->content_hash == out2->content_hash;
  const std::string summary =
      "{\"q1_ms\":" + bench::JsonNum(t1) +
      ",\"q2_ms\":" + bench::JsonNum(t2) +
      ",\"speedup\":" + bench::JsonNum(t2 > 0 ? t1 / t2 : 0.0) +
      ",\"iterations\":" +
      std::to_string(outcome->synthesis.stats.iterations) +
      ",\"identical\":" + (identical ? "true" : "false") + "}";
  if (!bench::EmitBenchReport("motivating_example", summary)) return 1;
  return identical ? 0 : 1;
}
