// Reproduces paper Table 4: "Selectivity" — the average selectivity (on
// lineitem) of the synthesized predicates, grouped by their runtime
// impact class (faster / 2x faster / slower / 2x slower), at two scale
// factors. The paper's observation: winning rewrites carry selective
// predicates (~0.75); losing rewrites carry near-vacuous ones (~0.96+).
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "bench/runtime_lib.h"

using sia::bench::PrintHeader;
using sia::bench::RuntimeConfig;
using sia::bench::RuntimeSummary;
using sia::bench::Summarize;

int main() {
  sia::bench::EnableBenchObservability();
  PrintHeader("Table 4: average selectivity of synthesized predicates by "
              "impact class");
  std::string rows;
  std::printf("%-12s | %-9s %-9s | %-9s %-9s | %-9s %-9s | %-9s %-9s\n",
              "scale", "#faster", "avg sel", "#2xfaster", "avg sel",
              "#slower", "avg sel", "#2xslower", "avg sel");
  for (const double sf : {0.05, 0.2}) {
    RuntimeConfig config = RuntimeConfig::FromEnv(sf);
    config.scale_factor = sf;
    auto records = sia::bench::RunRuntimeExperiment(config);
    if (!records.ok()) {
      std::cerr << "experiment failed: " << records.status().ToString()
                << "\n";
      return 1;
    }
    const RuntimeSummary s = Summarize(*records);
    std::printf("%-12.2f | %-9d %-9.2f | %-9d %-9.2f | %-9d %-9.2f | %-9d "
                "%-9.2f\n",
                sf, s.faster, s.avg_sel_faster, s.faster_2x,
                s.avg_sel_faster_2x, s.slower, s.avg_sel_slower, s.slower_2x,
                s.avg_sel_slower_2x);
    if (!rows.empty()) rows += ',';
    rows += "{\"sf\":" + sia::bench::JsonNum(sf) +
            ",\"faster\":" + std::to_string(s.faster) +
            ",\"avg_sel_faster\":" + sia::bench::JsonNum(s.avg_sel_faster) +
            ",\"faster_2x\":" + std::to_string(s.faster_2x) +
            ",\"avg_sel_faster_2x\":" +
            sia::bench::JsonNum(s.avg_sel_faster_2x) +
            ",\"slower\":" + std::to_string(s.slower) +
            ",\"avg_sel_slower\":" + sia::bench::JsonNum(s.avg_sel_slower) +
            ",\"slower_2x\":" + std::to_string(s.slower_2x) +
            ",\"avg_sel_slower_2x\":" +
            sia::bench::JsonNum(s.avg_sel_slower_2x) + '}';
  }
  std::printf(
      "\nPaper: SF1 faster=85 @0.76, 2x=36 @0.69, slower=29 @0.97, "
      "2x-slower=2 @0.98;\nSF10 faster=95 @0.78, 2x=66 @0.74, slower=19 "
      "@0.96, 2x-slower=4 @0.94.\nExpected shape: the faster classes have "
      "materially lower average\nselectivity than the slower classes.\n");
  return sia::bench::EmitBenchReport("table4_selectivity",
                                     "{\"scales\":[" + rows + "]}")
             ? 0
             : 1;
}
