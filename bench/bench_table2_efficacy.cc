// Reproduces paper Table 2: "Efficacy of SIA" — for each column-subset
// size (1, 2, 3), the number of possible predicates and the number of
// valid / optimal predicates each technique synthesizes.
//
// Paper scale: 200 queries. Default here: SIA_BENCH_QUERIES (12) so the
// full bench suite stays within a laptop budget; the shape (SIA >> v2 >
// v1 >> transitive closure, gap widening with subset size) is what this
// reproduction asserts.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/experiment_lib.h"

using sia::bench::AttemptRecord;
using sia::bench::EfficacyConfig;
using sia::bench::EfficacyRun;
using sia::bench::PrintHeader;
using sia::bench::Technique;
using sia::bench::TechniqueName;

int main() {
  sia::bench::EnableBenchObservability();
  const EfficacyConfig config = EfficacyConfig::FromEnv();
  PrintHeader("Table 2: Efficacy of SIA — valid / optimal predicates "
              "(queries=" + std::to_string(config.query_count) + ")");

  auto run = sia::bench::RunEfficacyExperiment(config);
  if (!run.ok()) {
    std::cerr << "experiment failed: " << run.status().ToString() << "\n";
    return 1;
  }

  struct Cell {
    int valid = 0;
    int optimal = 0;
  };
  std::map<size_t, int> possible;  // subset size -> count
  std::map<std::pair<size_t, Technique>, Cell> cells;

  // "possible" is a per-(query, subset) property; count it once per
  // subset (use the first technique's record).
  const Technique first = config.techniques.front();
  for (const AttemptRecord& a : run->attempts) {
    if (a.technique == first && a.possible) ++possible[a.subset_size];
    if (a.valid) {
      Cell& c = cells[{a.subset_size, a.technique}];
      ++c.valid;
      c.optimal += a.optimal;
    }
  }

  std::printf("%-8s | %-10s", "# cols", "# possible");
  for (const Technique t : config.techniques) {
    std::printf(" | %-18s", TechniqueName(t));
  }
  std::printf("\n%-8s | %-10s", "", "");
  for (size_t i = 0; i < config.techniques.size(); ++i) {
    std::printf(" | %-8s %-9s", "valid", "optimal");
  }
  std::printf("\n");
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    std::printf("%-8zu | %-10d", size, possible[size]);
    for (const Technique t : config.techniques) {
      const Cell c = cells[{size, t}];
      std::printf(" | %-8d %-9d", c.valid, c.optimal);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper (200 queries): one-col possible=233, SIA=182/158, TC=18/-, "
      "v1=158/75, v2=166/98;\n"
      "two-col possible=160, SIA=102/20, TC=4/-, v1=11/3, v2=17/4;\n"
      "three-col possible=30, SIA=20/0, TC=0/-, v1=2/0, v2=1/0.\n"
      "Expected shape: SIA synthesizes the most valid predicates in every "
      "row, and its advantage grows with the number of columns.\n");

  std::string summary =
      "{\"queries\":" + std::to_string(config.query_count) + ",\"rows\":[";
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    if (size > 1) summary += ',';
    summary += "{\"cols\":" + std::to_string(size) +
               ",\"possible\":" + std::to_string(possible[size]);
    for (const Technique t : config.techniques) {
      const Cell c = cells[{size, t}];
      summary += std::string(",\"") + TechniqueName(t) +
                 "\":{\"valid\":" + std::to_string(c.valid) +
                 ",\"optimal\":" + std::to_string(c.optimal) + "}";
    }
    summary += '}';
  }
  summary += "]}";
  return sia::bench::EmitBenchReport("table2_efficacy", summary) ? 0 : 1;
}
