// Google-benchmark micro-suite for the building blocks: parser, binder,
// compiled predicate evaluation, SVM training, SMT sample generation,
// verification, and the engine operators. These are the components whose
// costs Table 3 aggregates; the micro numbers let regressions be
// localized.
#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "engine/exec_expr.h"
#include "ir/evaluator.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "learn/learner.h"
#include "learn/svm.h"
#include "parser/parser.h"
#include "synth/sample_generator.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

const char* kSql =
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";

Schema Abc() {
  Schema s;
  s.AddColumn({"t", "a1", DataType::kInteger, false});
  s.AddColumn({"t", "a2", DataType::kInteger, false});
  s.AddColumn({"t", "b1", DataType::kInteger, false});
  return s;
}

ExprPtr MotivatingPredicate(const Schema& s) {
  return Bind((Col("a2") - Col("b1") < Lit(20)) &&
                  (Col("a1") - Col("a2") < Col("a2") - Col("b1") + Lit(10)) &&
                  (Col("b1") < Lit(0)),
              s)
      .value();
}

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto q = ParseQuery(kSql);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_BindPredicate(benchmark::State& state) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema joint = catalog.JointSchema({"lineitem", "orders"}).value();
  const ParsedQuery q = ParseQuery(kSql).value();
  for (auto _ : state) {
    auto bound = Bind(q.where, joint);
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_BindPredicate);

void BM_CompiledPredicateEval(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  const CompiledExpr compiled = CompiledExpr::Compile(p).value();

  class Row : public RowAccessor {
   public:
    int64_t v[3] = {-10, -20, -5};
    int64_t IntAt(size_t c) const override { return v[c]; }
    double DoubleAt(size_t) const override { return 0; }
    bool IsNull(size_t) const override { return false; }
  } row;

  for (auto _ : state) {
    row.v[0] = (row.v[0] + 7) % 100 - 50;
    benchmark::DoNotOptimize(compiled.EvalPredicate(row));
  }
}
BENCHMARK(BM_CompiledPredicateEval);

void BM_TreeWalkingEval(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  Tuple t({Value::Integer(-10), Value::Integer(-20), Value::Integer(-5)});
  for (auto _ : state) {
    auto r = Satisfies(*p, t);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TreeWalkingEval);

void BM_SvmTrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(-100, 100);
    const double b = rng.Uniform(-100, 100);
    points.push_back({a, b});
    labels.push_back(a - b - 10 > 0 ? 1 : -1);
  }
  for (auto _ : state) {
    auto m = TrainLinearSvm(points, labels);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SvmTrain)->Arg(20)->Arg(110)->Arg(440);

void BM_GenerateTrueSamples(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  for (auto _ : state) {
    SampleGenerator gen(p, s, {0, 1});
    auto samples = gen.GenerateTrue(static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_GenerateTrueSamples)->Arg(10)->Arg(50);

void BM_GenerateFalseSamples(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  for (auto _ : state) {
    SampleGenerator gen(p, s, {0, 1});
    auto samples = gen.GenerateFalse(static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_GenerateFalseSamples)->Arg(10)->Arg(50);

void BM_Verify(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  const ExprPtr learned =
      Bind(Col("a1") - Col("a2") < Lit(29), s).value();
  for (auto _ : state) {
    auto v = VerifyImplies(p, learned, s);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Verify);

void BM_FullSynthesis(benchmark::State& state) {
  const Schema s = Abc();
  const ExprPtr p = MotivatingPredicate(s);
  for (auto _ : state) {
    auto r = Synthesize(p, s, {0, 1});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullSynthesis)->Unit(benchmark::kMillisecond);

void BM_EngineScanFilter(benchmark::State& state) {
  const Catalog catalog = Catalog::TpchCatalog();
  static const TpchData data = GenerateTpch(0.01);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  for (auto _ : state) {
    auto out = RunSql(
        "SELECT * FROM lineitem WHERE l_shipdate < '1995-01-01'", catalog,
        executor);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.lineitem.row_count()));
}
BENCHMARK(BM_EngineScanFilter)->Unit(benchmark::kMillisecond);

// Same scan-filter at 10x the rows (~37 morsels): enough parallel work
// for SIA_THREADS scaling runs to show real speedups (the SF 0.01 table
// above is only ~4 morsels wide).
void BM_EngineScanFilterLarge(benchmark::State& state) {
  const Catalog catalog = Catalog::TpchCatalog();
  static const TpchData data = GenerateTpch(0.1);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  for (auto _ : state) {
    auto out = RunSql(
        "SELECT * FROM lineitem WHERE l_shipdate < '1995-01-01'", catalog,
        executor);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.lineitem.row_count()));
}
BENCHMARK(BM_EngineScanFilterLarge)->Unit(benchmark::kMillisecond);

void BM_EngineHashJoin(benchmark::State& state) {
  const Catalog catalog = Catalog::TpchCatalog();
  static const TpchData data = GenerateTpch(0.01);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  for (auto _ : state) {
    auto out = RunSql(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey",
        catalog, executor);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.lineitem.row_count()));
}
BENCHMARK(BM_EngineHashJoin)->Unit(benchmark::kMillisecond);

void BM_TpchGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto data = GenerateTpch(0.005);
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("SF 0.005");
}
BENCHMARK(BM_TpchGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sia

BENCHMARK_MAIN();
