// Reproduces paper Fig. 6: the Alibaba MaxCompute case study —
// execution-time / CPU / memory CDFs for syntax-based-prospective vs
// symbolically-relevant queries, plus the headline counts. Production
// traces are unavailable; see DESIGN.md (substitution 3) for how the
// population is simulated and which part exercises the real Sia probe.
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "catalog/catalog.h"
#include "workload/casestudy.h"

using sia::CaseStudyOptions;
using sia::CaseStudyRecord;
using sia::Catalog;
using sia::MetricPercentiles;
using sia::bench::EnvInt;
using sia::bench::PrintHeader;

namespace {

void PrintCdf(const char* title, const std::vector<CaseStudyRecord>& records,
              double (*metric)(const CaseStudyRecord&), const char* unit) {
  const std::vector<double> pct = {10, 25, 50, 75, 90, 99};
  const auto all = MetricPercentiles(records, false, metric, pct);
  const auto rel = MetricPercentiles(records, true, metric, pct);
  std::printf("\n%s (%s)\n%-24s", title, unit, "percentile");
  for (const double p : pct) std::printf(" | p%-6.0f", p);
  std::printf("\n%-24s", "all prospective");
  for (const double v : all) std::printf(" | %-7.1f", v);
  std::printf("\n%-24s", "symbolically relevant");
  for (const double v : rel) std::printf(" | %-7.1f", v);
  std::printf("\n");
}

}  // namespace

int main() {
  sia::bench::EnableBenchObservability();
  const Catalog catalog = Catalog::TpchCatalog();
  CaseStudyOptions opts;
  // The case-study CDFs need a population in the hundreds regardless of
  // the workload-size knob the synthesis benches share.
  opts.query_count =
      static_cast<size_t>(EnvInt("SIA_BENCH_CASESTUDY_QUERIES", 400));

  PrintHeader("Fig. 6: MaxCompute case study (simulated; population=" +
              std::to_string(opts.query_count) + ")");

  auto report = sia::SimulateCaseStudy(catalog, opts);
  if (!report.ok()) {
    std::cerr << "simulation failed: " << report.status().ToString() << "\n";
    return 1;
  }

  std::printf("syntax-based prospective queries: %zu\n",
              report->prospective_count);
  std::printf("symbolically relevant queries:    %zu (%.1f%%)\n",
              report->relevant_count,
              100.0 * report->relevant_count / report->prospective_count);
  std::printf("fraction of queries over 10 s:    %.2f%%\n",
              100.0 * report->frac_over_10s);

  PrintCdf("(a) execution time", report->records,
           +[](const CaseStudyRecord& r) { return r.exec_time_s; }, "s");
  PrintCdf("(b) CPU consumption", report->records,
           +[](const CaseStudyRecord& r) { return r.cpu_s; }, "cpu-s");
  PrintCdf("(c) memory footprint", report->records,
           +[](const CaseStudyRecord& r) { return r.mem_gb; }, "GB");

  std::printf(
      "\nPaper: 204,287 prospective / 26,104 relevant (12.8%%); 74.63%% of\n"
      "the queries run longer than 10 s. Expected shape here: a relevant\n"
      "minority around 10-20%%, ~75%% over 10 s, heavy-tailed CDFs with the\n"
      "relevant class skewing slightly heavier.\n");
  const std::string summary =
      "{\"prospective\":" + std::to_string(report->prospective_count) +
      ",\"relevant\":" + std::to_string(report->relevant_count) +
      ",\"frac_over_10s\":" +
      sia::bench::JsonNum(report->frac_over_10s) + "}";
  return sia::bench::EmitBenchReport("fig6_casestudy", summary) ? 0 : 1;
}
