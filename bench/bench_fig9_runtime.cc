// Reproduces paper Fig. 9: "Impact on Runtime Performance" — original vs
// rewritten execution time for every workload query SIA rewrites, at two
// scale factors. The paper uses PostgreSQL at SF 1 and SF 10; this
// reproduction uses the in-memory engine at SF 0.05 and SF 0.2 (override
// with SIA_BENCH_SF_MILLI), which preserves the plan shapes (filter
// pushed below the hash join vs not) and therefore the win/loss shape.
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "bench/runtime_lib.h"

using sia::bench::PrintHeader;
using sia::bench::RuntimeConfig;
using sia::bench::RuntimeRecord;
using sia::bench::RuntimeSummary;
using sia::bench::Summarize;

namespace {

int RunAtScale(double sf, const char* label, std::string* summary_rows) {
  RuntimeConfig config = RuntimeConfig::FromEnv(sf);
  config.scale_factor = sf;
  std::printf("\n--- %s (engine SF %.2f, queries=%zu) ---\n", label,
              config.scale_factor, config.query_count);
  auto records = sia::bench::RunRuntimeExperiment(config);
  if (!records.ok()) {
    std::cerr << "experiment failed: " << records.status().ToString() << "\n";
    return 1;
  }
  std::printf("%-5s | %-12s | %-12s | %-8s | %-11s | %s\n", "query",
              "original ms", "rewritten ms", "speedup", "selectivity",
              "equal?");
  for (const RuntimeRecord& r : *records) {
    if (!r.rewritten) {
      std::printf("%-5zu | %-12.2f | %-12s | %-8s | %-11s | %s\n",
                  r.query_index, r.original_ms, "-", "-", "-",
                  "not rewritten");
      continue;
    }
    std::printf("%-5zu | %-12.2f | %-12.2f | %-8.2f | %-11.3f | %s\n",
                r.query_index, r.original_ms, r.rewritten_ms,
                r.rewritten_ms > 0 ? r.original_ms / r.rewritten_ms : 0.0,
                r.selectivity, r.results_match ? "yes" : "MISMATCH");
  }
  const RuntimeSummary s = Summarize(*records);
  const uint64_t digest = sia::bench::ResultDigest(*records);
  std::printf(
      "\nsummary: rewritten=%d faster=%d (2x: %d) slower=%d (2x: %d) "
      "result_hash=%llu\n",
      s.rewritten, s.faster, s.faster_2x, s.slower, s.slower_2x,
      static_cast<unsigned long long>(digest));
  if (!summary_rows->empty()) *summary_rows += ',';
  // result_hash is a string: JSON numbers lose precision above 2^53.
  *summary_rows += "{\"sf\":" + sia::bench::JsonNum(sf) +
                   ",\"rewritten\":" + std::to_string(s.rewritten) +
                   ",\"faster\":" + std::to_string(s.faster) +
                   ",\"faster_2x\":" + std::to_string(s.faster_2x) +
                   ",\"slower\":" + std::to_string(s.slower) +
                   ",\"slower_2x\":" + std::to_string(s.slower_2x) +
                   ",\"result_hash\":\"" + std::to_string(digest) + "\"}";
  return 0;
}

}  // namespace

int main() {
  sia::bench::EnableBenchObservability();
  PrintHeader("Fig. 9: runtime impact of SIA rewrites (original vs "
              "rewritten)");
  std::string rows;
  int rc = RunAtScale(0.05, "Fig 9a — small scale (paper: SF 1)", &rows);
  rc |= RunAtScale(0.2, "Fig 9b — large scale (paper: SF 10)", &rows);
  std::printf(
      "\nPaper: SF1 -> 85/114 faster (36 of them 2x), 29 slower (2 of them "
      "2x);\nSF10 -> 95/114 faster (66 of them 2x), 19 slower (4 of them "
      "2x).\nExpected shape: most rewrites win, and the win rate and 2x "
      "share grow\nwith the scale factor; every row must report equal "
      "results.\n");
  if (!sia::bench::EmitBenchReport("fig9_runtime",
                                   "{\"scales\":[" + rows + "]}")) {
    rc |= 1;
  }
  return rc;
}
