// Ablation for the paper's §6.7 limitation: when the TRUE samples are
// sandwiched by FALSE samples (a > b AND a < b + W AND b > 0 AND b < H,
// reduced onto {a}), a single halfplane cannot be optimal. This bench
// sweeps the window shape and reports what SIA returns: a valid (but
// suboptimal) predicate, a disjunction, or nothing — never an invalid
// predicate (the verification step must discard those, as the paper
// notes).
//
// It also ablates two implementation choices called out in DESIGN.md:
// counter-example batch size and rational-coefficient snapping.
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"

using namespace sia;        // NOLINT: single-binary harness
using namespace sia::dsl;   // NOLINT

namespace {

Schema AB() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  return s;
}

ExprPtr WindowPredicate(const Schema& s, int64_t width, int64_t height) {
  return Bind((Col("a") > Col("b")) && (Col("a") < Col("b") + Lit(width)) &&
                  (Col("b") > Lit(0)) && (Col("b") < Lit(height)),
              s)
      .value();
}

const char* Check(const ExprPtr& p, const SynthesisResult& r,
                  const Schema& s) {
  if (!r.has_predicate()) return "none";
  auto v = VerifyImplies(p, r.predicate, s);
  if (!v.ok() || *v != VerifyResult::kValid) return "INVALID (BUG)";
  return SynthesisStatusName(r.status);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: §6.7 non-separable windows + design knobs");

  const Schema s = AB();

  std::printf("--- (1) window sweep: a > b AND a < b+W AND 0 < b < H, "
              "Cols'={a} ---\n");
  std::printf("%-8s %-8s | %-10s | %-6s | %-9s | %s\n", "W", "H", "status",
              "iters", "#models", "predicate");
  for (const auto& [w, h] : std::initializer_list<std::pair<int, int>>{
           {50, 150}, {20, 60}, {100, 300}, {10, 1000}}) {
    ExprPtr p = WindowPredicate(s, w, h);
    auto r = Synthesize(p, s, {0});
    if (!r.ok()) {
      std::cerr << "synthesis error: " << r.status().ToString() << "\n";
      return 1;
    }
    size_t models = 0;
    for (const auto& c : r->conjuncts) models += c.models.size();
    std::printf("%-8d %-8d | %-10s | %-6d | %-9zu | %s\n", w, h,
                Check(p, *r, s), r->stats.iterations, models,
                r->has_predicate() ? r->predicate->ToString().c_str() : "-");
  }
  std::printf("Expected: statuses are valid/optimal/none — never INVALID; "
              "the optimal\nreduction (1 < a < H+W) may need both halfplanes "
              "of a conjunction.\n");

  std::printf("\n--- (2) counter-example batch size (samples/iteration) ---\n");
  ExprPtr p = WindowPredicate(s, 50, 150);
  std::printf("%-8s | %-10s | %-6s | %-12s | %-12s\n", "batch", "status",
              "iters", "solver calls", "gen ms");
  for (const size_t batch : {1u, 5u, 20u}) {
    SynthesisOptions o;
    o.samples_per_iteration = batch;
    auto r = Synthesize(p, s, {0}, o);
    if (!r.ok()) continue;
    std::printf("%-8zu | %-10s | %-6d | %-12zu | %-12.1f\n", batch,
                Check(p, *r, s), r->stats.iterations,
                r->stats.solver_calls, r->stats.generation_ms);
  }
  std::printf("Expected: batch=1 needs more iterations; larger batches trade "
              "solver\ncalls per iteration for fewer iterations (the paper "
              "uses 5).\n");

  std::printf("\n--- (3) rational snapping of SVM coefficients ---\n");
  std::printf("%-10s | %-10s | %-6s | %s\n", "snapping", "status", "iters",
              "predicate");
  for (const bool snap : {true, false}) {
    SynthesisOptions o;
    o.learn.snap_to_integers = snap;
    auto r = Synthesize(p, s, {0}, o);
    if (!r.ok()) continue;
    std::printf("%-10s | %-10s | %-6d | %s\n", snap ? "on" : "off",
                Check(p, *r, s), r->stats.iterations,
                r->has_predicate() ? r->predicate->ToString().c_str() : "-");
  }
  std::printf("Expected: both verify valid; snapping yields small integer "
              "coefficients\n(readable SQL), raw weights yield large scaled "
              "integers.\n");
  return 0;
}
