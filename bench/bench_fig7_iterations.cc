// Reproduces paper Fig. 7: "Efficiency of Learning Loop" — for the
// SIA-synthesized predicates, a histogram of the number of learning-loop
// iterations taken to converge to an optimal predicate, per column-subset
// size. Runs that do not reach optimality within the iteration budget
// are reported in the rightmost bucket.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/experiment_lib.h"

using sia::bench::AttemptRecord;
using sia::bench::EfficacyConfig;
using sia::bench::PrintHeader;
using sia::bench::Technique;

int main() {
  sia::bench::EnableBenchObservability();
  EfficacyConfig config = EfficacyConfig::FromEnv();
  config.techniques = {Technique::kSia};
  PrintHeader("Fig. 7: learning-loop iterations to converge (SIA, queries=" +
              std::to_string(config.query_count) + ")");

  auto run = sia::bench::RunEfficacyExperiment(config);
  if (!run.ok()) {
    std::cerr << "experiment failed: " << run.status().ToString() << "\n";
    return 1;
  }

  const std::vector<std::pair<int, const char*>> buckets = {
      {10, "<=10"}, {20, "<=20"}, {30, "<=30"}, {41, "<=41"}};
  // [subset_size][bucket] -> count of optimal runs; plus non-converged.
  std::map<size_t, std::vector<int>> optimal_hist;
  std::map<size_t, int> not_optimal;
  std::map<size_t, int> generated;

  for (const AttemptRecord& a : run->attempts) {
    if (!a.valid) continue;
    ++generated[a.subset_size];
    if (!a.optimal) {
      ++not_optimal[a.subset_size];
      continue;
    }
    auto& hist = optimal_hist[a.subset_size];
    hist.resize(buckets.size(), 0);
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (a.stats.iterations <= buckets[b].first) {
        ++hist[b];
        break;
      }
    }
  }

  std::printf("%-8s | %-9s", "# cols", "# valid");
  for (const auto& [limit, label] : buckets) std::printf(" | %-6s", label);
  std::printf(" | %-12s\n", "not optimal");
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    std::printf("%-8zu | %-9d", size, generated[size]);
    auto& hist = optimal_hist[size];
    hist.resize(buckets.size(), 0);
    for (size_t b = 0; b < buckets.size(); ++b) {
      std::printf(" | %-6d", hist[b]);
    }
    std::printf(" | %-12d\n", not_optimal[size]);
  }

  std::printf(
      "\nPaper: 109 of 182 one-column predicates converge to optimal within\n"
      "10 iterations; two- and three-column predicates frequently exhaust\n"
      "the 41-iteration budget without an optimality certificate.\n"
      "Expected shape: one-column runs certify optimality in the small\n"
      "buckets (our bisection needs ~log2(date range) ~ 13 iterations,\n"
      "so mass sits in <=10 and <=20); the 'not optimal' column grows\n"
      "with subset size.\n");

  std::string summary =
      "{\"queries\":" + std::to_string(config.query_count) + ",\"rows\":[";
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    if (size > 1) summary += ',';
    auto& hist = optimal_hist[size];
    hist.resize(buckets.size(), 0);
    summary += "{\"cols\":" + std::to_string(size) +
               ",\"valid\":" + std::to_string(generated[size]) +
               ",\"buckets\":[";
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (b > 0) summary += ',';
      summary += std::to_string(hist[b]);
    }
    summary += "],\"not_optimal\":" + std::to_string(not_optimal[size]) + '}';
  }
  summary += "]}";
  return sia::bench::EmitBenchReport("fig7_iterations", summary) ? 0 : 1;
}
