#ifndef SIA_BENCH_EXPERIMENT_LIB_H_
#define SIA_BENCH_EXPERIMENT_LIB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "synth/synthesizer.h"
#include "workload/querygen.h"

namespace sia::bench {

// Techniques compared in the paper's §6.4/§6.5 (Table 1).
enum class Technique { kSia, kTransitiveClosure, kSiaV1, kSiaV2 };
const char* TechniqueName(Technique t);

// One synthesis attempt: a (query, column-subset, technique) triple.
struct AttemptRecord {
  size_t query_index = 0;
  std::vector<size_t> subset;     // joint-schema column indices (Cols')
  size_t subset_size = 0;         // 1..3
  Technique technique = Technique::kSia;
  bool possible = false;          // unsatisfaction tuple exists (probe)
  bool valid = false;             // synthesized predicate verified valid
  bool optimal = false;           // proved optimal (Lemma 4)
  bool uses_all_columns = false;  // non-zero coefficient on every Cols' col
  SynthesisStats stats;
  std::string predicate;          // rendered SQL ("" when !valid)
};

struct EfficacyConfig {
  size_t query_count = 12;  // paper: 200 (env SIA_BENCH_QUERIES overrides)
  uint64_t seed = 2021;
  std::vector<Technique> techniques = {
      Technique::kSia, Technique::kTransitiveClosure, Technique::kSiaV1,
      Technique::kSiaV2};
  uint32_t solver_timeout_ms = 2000;

  // Applies SIA_BENCH_QUERIES / SIA_BENCH_TIMEOUT_MS when set.
  static EfficacyConfig FromEnv();
};

struct EfficacyRun {
  std::vector<GeneratedQuery> queries;
  std::vector<AttemptRecord> attempts;
};

// Runs the shared §6.4 experiment: every query x every non-empty subset
// of {l_shipdate, l_commitdate, l_receiptdate} x every technique.
// The "possible" probe runs once per (query, subset).
[[nodiscard]] Result<EfficacyRun> RunEfficacyExperiment(const EfficacyConfig& config);

// Reads a positive integer env var, or `fallback`.
int64_t EnvInt(const char* name, int64_t fallback);

// Prints a horizontal rule + centered title, matching the other benches.
void PrintHeader(const std::string& title);

// Turns the src/obs metrics registry on when SIA_BENCH_JSON is set, so
// the pipeline's counters and latency histograms accumulate during the
// run and EmitBenchReport can embed them. Call first thing in main().
void EnableBenchObservability();

// When SIA_BENCH_JSON is set, writes
//   {"bench":"<name>","threads":N,"summary":<summary_json>,
//    "metrics":<snapshot>}
// to that path ("-" or "stdout" for stdout); `threads` is the shared
// pool's execution width (SIA_THREADS). `summary_json` must be a
// complete JSON value. No-op (returning true) when the env var is
// unset; returns false after printing to stderr when the write fails.
bool EmitBenchReport(const std::string& name,
                     const std::string& summary_json);

// Formats a double as a JSON number (non-finite values become 0), for
// hand-built bench summary objects.
std::string JsonNum(double v);

}  // namespace sia::bench

#endif  // SIA_BENCH_EXPERIMENT_LIB_H_
