// Ablation for the cost-aware rewriting extension (DESIGN.md): on the
// Fig. 9 workload, compare always-rewrite (the paper's policy) against
// selectivity-gated admission. The gate should keep the wins and remove
// most of the losses — turning Table 4's post-hoc observation into an
// admission rule.
#include <cstdio>
#include <iostream>

#include "bench/experiment_lib.h"
#include "catalog/catalog.h"
#include "engine/cost_aware_rewriter.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "workload/querygen.h"

using namespace sia;  // NOLINT: single-binary harness

int main() {
  bench::PrintHeader("Ablation: cost-aware rewrite admission "
                     "(always-rewrite vs selectivity gate)");

  const Catalog catalog = Catalog::TpchCatalog();
  const double sf = bench::EnvInt("SIA_BENCH_SF_MILLI", 100) / 1000.0;
  const TpchData data = GenerateTpch(sf);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);

  const size_t count =
      static_cast<size_t>(bench::EnvInt("SIA_BENCH_QUERIES", 12));
  auto queries = GenerateWorkload(catalog, count);
  if (!queries.ok()) {
    std::cerr << queries.status().ToString() << "\n";
    return 1;
  }

  CostAwareOptions opts;
  opts.rewrite.target_table = "lineitem";
  // The profitable-selectivity crossover is engine-specific: ~0.95 on the
  // paper's Postgres (expensive per-probe joins), ~0.5 on this in-memory
  // engine (cheap hash probes). Default to the engine-calibrated value;
  // override with SIA_BENCH_GATE_PERCENT.
  opts.max_selectivity =
      static_cast<double>(bench::EnvInt("SIA_BENCH_GATE_PERCENT", 50)) /
      100.0;

  struct Totals {
    double ms = 0;
    int slower = 0;
    int faster = 0;
  } always, gated, baseline;
  int admitted = 0, rejected = 0;

  std::printf("engine SF %.2f, %zu queries, gate at selectivity <= %.2f\n\n",
              sf, queries->size(), opts.max_selectivity);
  std::printf("%-5s | %-11s | %-10s | %-10s | %-10s | %s\n", "query",
              "selectivity", "orig ms", "rewrite ms", "gated ms", "gate");
  for (size_t qi = 0; qi < queries->size(); ++qi) {
    const ParsedQuery& original = (*queries)[qi].query;
    auto outcome = RewriteQueryCostAware(original, catalog, data.lineitem,
                                         opts);
    if (!outcome.ok()) {
      std::cerr << outcome.status().ToString() << "\n";
      return 1;
    }
    auto run = [&](const ParsedQuery& q) {
      double best = 1e300;
      for (int r = 0; r < 3; ++r) {
        auto out = RunQuery(q, catalog, executor);
        if (out.ok()) best = std::min(best, out->elapsed_ms);
      }
      return best;
    };
    const double orig_ms = run(original);
    const double rewritten_ms =
        outcome->base.changed() ? run(outcome->base.rewritten) : orig_ms;
    const bool admit = outcome->base.changed() && !outcome->rejected_by_cost;
    const double gated_ms = admit ? rewritten_ms : orig_ms;

    baseline.ms += orig_ms;
    always.ms += rewritten_ms;
    gated.ms += gated_ms;
    if (outcome->base.changed()) {
      (rewritten_ms > orig_ms ? always.slower : always.faster)++;
      if (admit) {
        (gated_ms > orig_ms ? gated.slower : gated.faster)++;
        ++admitted;
      } else {
        ++rejected;
      }
    }
    std::printf("%-5zu | %-11.3f | %-10.2f | %-10.2f | %-10.2f | %s\n", qi,
                outcome->base.changed() ? outcome->estimate.selectivity : -1,
                orig_ms, rewritten_ms, gated_ms,
                !outcome->base.changed() ? "no rewrite"
                : admit                  ? "admitted"
                                         : "REJECTED");
  }

  std::printf("\ntotals: original %.0f ms | always-rewrite %.0f ms "
              "(%d faster / %d slower) | gated %.0f ms (%d faster / %d "
              "slower, %d rejected)\n",
              baseline.ms, always.ms, always.faster, always.slower, gated.ms,
              gated.faster, gated.slower, rejected);
  std::printf(
      "\nExpected shape: gated total <= always-rewrite total, with the\n"
      "gated 'slower' count at or near zero — the gate trades a few small\n"
      "wins for removing the regressions (paper Table 4's slower classes\n"
      "all have selectivity >= 0.94).\n");
  (void)admitted;
  return 0;
}
