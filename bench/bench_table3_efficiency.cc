// Reproduces paper Table 3: "Efficiency of SIA" — mean generation /
// learning / validation time (ms) per column-subset size for SIA, SIA_v1
// and SIA_v2. The transitive-closure baseline has no solver/SVM phases
// and is omitted, as in the paper.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/experiment_lib.h"

using sia::bench::AttemptRecord;
using sia::bench::EfficacyConfig;
using sia::bench::PrintHeader;
using sia::bench::Technique;
using sia::bench::TechniqueName;

int main() {
  sia::bench::EnableBenchObservability();
  EfficacyConfig config = EfficacyConfig::FromEnv();
  config.techniques = {Technique::kSia, Technique::kSiaV1,
                       Technique::kSiaV2};
  PrintHeader("Table 3: Efficiency of SIA — mean per-run phase times, ms "
              "(queries=" + std::to_string(config.query_count) + ")");

  auto run = sia::bench::RunEfficacyExperiment(config);
  if (!run.ok()) {
    std::cerr << "experiment failed: " << run.status().ToString() << "\n";
    return 1;
  }

  struct Acc {
    double gen = 0, learn = 0, validate = 0;
    int n = 0;
  };
  std::map<std::pair<size_t, Technique>, Acc> acc;
  for (const AttemptRecord& a : run->attempts) {
    Acc& x = acc[{a.subset_size, a.technique}];
    x.gen += a.stats.generation_ms;
    x.learn += a.stats.learning_ms;
    x.validate += a.stats.validation_ms;
    ++x.n;
  }

  std::printf("%-8s", "# cols");
  for (const Technique t : config.techniques) {
    std::printf(" | %-30s", TechniqueName(t));
  }
  std::printf("\n%-8s", "");
  for (size_t i = 0; i < config.techniques.size(); ++i) {
    std::printf(" | %9s %9s %9s", "gen", "learn", "validate");
  }
  std::printf("\n");
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    std::printf("%-8zu", size);
    for (const Technique t : config.techniques) {
      const Acc& x = acc[{size, t}];
      const double n = x.n > 0 ? x.n : 1;
      std::printf(" | %9.1f %9.1f %9.1f", x.gen / n, x.learn / n,
                  x.validate / n);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper (ms): one-col SIA=893/1.8/98, v1=2625/0.5/1, v2=9304/1.9/11;\n"
      "three-col SIA=4154/39/328, v1=3801/1.0/8.5, v2=11859/5/12.\n"
      "Expected shape: generation dominates everywhere; SIA_v2 is the\n"
      "slowest (2x the samples of v1); SIA spends more on validation than\n"
      "the non-iterative baselines because it verifies every iteration.\n");

  std::string summary =
      "{\"queries\":" + std::to_string(config.query_count) + ",\"rows\":[";
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    if (size > 1) summary += ',';
    summary += "{\"cols\":" + std::to_string(size);
    for (const Technique t : config.techniques) {
      const Acc& x = acc[{size, t}];
      const double n = x.n > 0 ? x.n : 1;
      summary += std::string(",\"") + TechniqueName(t) +
                 "\":{\"gen_ms\":" + sia::bench::JsonNum(x.gen / n) +
                 ",\"learn_ms\":" + sia::bench::JsonNum(x.learn / n) +
                 ",\"validate_ms\":" + sia::bench::JsonNum(x.validate / n) +
                 "}";
    }
    summary += '}';
  }
  summary += "]}";
  return sia::bench::EmitBenchReport("table3_efficiency", summary) ? 0 : 1;
}
