#include "bench/runtime_lib.h"

#include <algorithm>
#include <functional>

#include "bench/experiment_lib.h"
#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "rewrite/batch_rewriter.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "workload/querygen.h"

namespace sia::bench {

RuntimeConfig RuntimeConfig::FromEnv(double default_sf) {
  RuntimeConfig c;
  c.scale_factor = default_sf;
  c.query_count = static_cast<size_t>(
      EnvInt("SIA_BENCH_QUERIES", static_cast<int64_t>(c.query_count)));
  const int64_t sf_milli = EnvInt("SIA_BENCH_SF_MILLI", 0);
  if (sf_milli > 0) c.scale_factor = static_cast<double>(sf_milli) / 1000.0;
  c.max_iterations =
      static_cast<int>(EnvInt("SIA_BENCH_ITERATIONS", c.max_iterations));
  return c;
}

namespace {

double BestOf(int reps, const std::function<Result<QueryOutput>()>& run,
              Result<QueryOutput>* last) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    *last = run();
    if (!last->ok()) return -1;
    best = std::min(best, (*last)->elapsed_ms);
  }
  return best;
}

}  // namespace

Result<std::vector<RuntimeRecord>> RunRuntimeExperiment(
    const RuntimeConfig& config) {
  const Catalog catalog = Catalog::TpchCatalog();
  const TpchData data = GenerateTpch(config.scale_factor);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);

  QueryGenOptions gen_opts;
  gen_opts.seed = config.seed;
  SIA_ASSIGN_OR_RETURN(
      std::vector<GeneratedQuery> queries,
      GenerateWorkload(catalog, config.query_count, gen_opts));

  // Rewrite the whole workload concurrently (the §6.3 batch) before any
  // timing: one shared single-flight cache, queries fanned out over the
  // shared pool. Timed execution below stays in workload order.
  BatchRewriteOptions batch;
  batch.rewrite.target_table = "lineitem";
  if (config.max_iterations > 0) {
    batch.rewrite.synthesis.max_iterations = config.max_iterations;
  }
  RewriteCache cache;
  batch.cache = &cache;
  std::vector<ParsedQuery> parsed;
  parsed.reserve(queries.size());
  for (const GeneratedQuery& q : queries) parsed.push_back(q.query);
  SIA_ASSIGN_OR_RETURN(std::vector<RewriteOutcome> outcomes,
                       RewriteBatch(parsed, catalog, batch));

  std::vector<RuntimeRecord> records;
  records.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const RewriteOutcome& outcome = outcomes[qi];
    RuntimeRecord rec;
    rec.query_index = qi;
    rec.rewritten = outcome.changed();
    rec.from_cache = outcome.from_cache;

    // The original always executes — its digests feed ResultDigest for
    // every query, keeping the workload hash independent of which
    // queries the rewriter happened to improve.
    Result<QueryOutput> original(Status::OK());
    rec.original_ms = BestOf(
        config.repetitions,
        [&] { return RunQuery(queries[qi].query, catalog, executor); },
        &original);
    if (!original.ok()) return original.status();
    rec.row_count = original->row_count;
    rec.content_hash = original->content_hash;
    rec.order_hash = original->order_hash;
    if (!rec.rewritten) {
      records.push_back(std::move(rec));
      continue;
    }
    rec.learned = outcome.learned->ToString();

    Result<QueryOutput> rewritten(Status::OK());
    rec.rewritten_ms = BestOf(
        config.repetitions,
        [&] { return RunQuery(outcome.rewritten, catalog, executor); },
        &rewritten);
    if (!rewritten.ok()) return rewritten.status();
    rec.results_match = original->content_hash == rewritten->content_hash &&
                        original->row_count == rewritten->row_count;

    // Learned predicate selectivity on lineitem (lineitem occupies the
    // first columns of the joint schema, so indices line up).
    SIA_ASSIGN_OR_RETURN(double sel,
                         MeasureSelectivity(data.lineitem, outcome.learned));
    rec.selectivity = sel;
    records.push_back(std::move(rec));
  }
  return records;
}

uint64_t ResultDigest(const std::vector<RuntimeRecord>& records) {
  uint64_t digest = 1469598103934665603ULL;
  auto mix = [&](uint64_t v) {
    digest ^= v + 0x9E3779B97F4A7C15ULL + (digest << 6) + (digest >> 2);
  };
  for (const RuntimeRecord& r : records) {
    mix(r.row_count);
    mix(r.content_hash);
    mix(r.order_hash);
  }
  return digest;
}

RuntimeSummary Summarize(const std::vector<RuntimeRecord>& records) {
  RuntimeSummary s;
  double sel_f = 0, sel_f2 = 0, sel_s = 0, sel_s2 = 0;
  int n_f2 = 0, n_s2 = 0;
  for (const RuntimeRecord& r : records) {
    if (!r.rewritten) continue;
    ++s.rewritten;
    if (r.rewritten_ms < r.original_ms) {
      ++s.faster;
      sel_f += r.selectivity;
      if (r.rewritten_ms * 2 < r.original_ms) {
        ++s.faster_2x;
        sel_f2 += r.selectivity;
        ++n_f2;
      }
    } else {
      ++s.slower;
      sel_s += r.selectivity;
      if (r.rewritten_ms > 2 * r.original_ms) {
        ++s.slower_2x;
        sel_s2 += r.selectivity;
        ++n_s2;
      }
    }
  }
  if (s.faster > 0) s.avg_sel_faster = sel_f / s.faster;
  if (n_f2 > 0) s.avg_sel_faster_2x = sel_f2 / n_f2;
  if (s.slower > 0) s.avg_sel_slower = sel_s / s.slower;
  if (n_s2 > 0) s.avg_sel_slower_2x = sel_s2 / n_s2;
  return s;
}

}  // namespace sia::bench
