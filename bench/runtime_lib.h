#ifndef SIA_BENCH_RUNTIME_LIB_H_
#define SIA_BENCH_RUNTIME_LIB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sia::bench {

// Shared runner for the paper's §6.6 runtime-impact experiments (Fig. 9
// and Table 4): generate the §6.3 workload, rewrite each query with SIA,
// execute original and rewritten forms on the in-memory engine, record
// times and the synthesized predicate's selectivity on `lineitem`.
struct RuntimeRecord {
  size_t query_index = 0;
  bool rewritten = false;        // SIA produced a predicate
  bool from_cache = false;       // predicate came from the shared cache
  double original_ms = 0;        // timed for every query
  double rewritten_ms = 0;       // timed only when rewritten
  double selectivity = 0;        // learned predicate on lineitem; 0 if none
  bool results_match = false;    // content-hash equality check
  std::string learned;           // rendered predicate
  // Digests of the ORIGINAL query's output, thread-count invariant by
  // the executor's determinism guarantee; ResultDigest folds these into
  // the workload hash the SIA_THREADS sweep compares.
  size_t row_count = 0;
  uint64_t content_hash = 0;
  uint64_t order_hash = 0;
};

struct RuntimeConfig {
  size_t query_count = 20;       // paper: 200 (SIA_BENCH_QUERIES overrides)
  double scale_factor = 0.05;    // stand-in for the paper's SF 1 / 10
  uint64_t seed = 2021;
  int repetitions = 3;           // take the best of N timed runs
  int max_iterations = 0;        // synthesis budget; 0 = synthesizer default

  static RuntimeConfig FromEnv(double default_sf);
};

// Rewrites the workload concurrently on the shared thread pool (one
// RewriteCache across the batch), then times original vs rewritten
// execution per query.
[[nodiscard]] Result<std::vector<RuntimeRecord>> RunRuntimeExperiment(
    const RuntimeConfig& config);

// Order-sensitive fold of every record's original-output digests
// (row_count, content_hash, order_hash). Two runs over the same data
// and workload must produce equal digests at any SIA_THREADS setting —
// the byte-identical-results gate scripts/check.sh enforces. Built only
// from original executions, so it is immune to rewrite-side variance
// (e.g. a solver budget expiring under load on one run but not another).
uint64_t ResultDigest(const std::vector<RuntimeRecord>& records);

// Summary counters matching the paper's Fig. 9 / Table 4 classification.
struct RuntimeSummary {
  int rewritten = 0;
  int faster = 0;            // rewritten_ms < original_ms
  int faster_2x = 0;
  int slower = 0;
  int slower_2x = 0;
  double avg_sel_faster = 0;  // average selectivity per class (Table 4)
  double avg_sel_faster_2x = 0;
  double avg_sel_slower = 0;
  double avg_sel_slower_2x = 0;
};
RuntimeSummary Summarize(const std::vector<RuntimeRecord>& records);

}  // namespace sia::bench

#endif  // SIA_BENCH_RUNTIME_LIB_H_
