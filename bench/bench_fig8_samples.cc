// Reproduces paper Fig. 8: "Sample Distribution" — the distribution of
// the number of TRUE and FALSE training samples present at the final
// iteration of SIA's learning loop, per column-subset size.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/experiment_lib.h"

using sia::bench::AttemptRecord;
using sia::bench::EfficacyConfig;
using sia::bench::PrintHeader;
using sia::bench::Technique;

namespace {

void PrintHistogram(const char* title,
                    const std::map<size_t, std::vector<size_t>>& counts) {
  const std::vector<std::pair<size_t, const char*>> buckets = {
      {25, "<=25"},  {50, "<=50"},   {100, "<=100"},
      {150, "<=150"}, {220, "<=220"}, {SIZE_MAX, ">220"}};
  std::printf("\n%s\n%-8s", title, "# cols");
  for (const auto& [limit, label] : buckets) std::printf(" | %-6s", label);
  std::printf("\n");
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    std::printf("%-8zu", size);
    const auto it = counts.find(size);
    std::vector<int> hist(buckets.size(), 0);
    if (it != counts.end()) {
      for (const size_t n : it->second) {
        for (size_t b = 0; b < buckets.size(); ++b) {
          if (n <= buckets[b].first) {
            ++hist[b];
            break;
          }
        }
      }
    }
    for (size_t b = 0; b < buckets.size(); ++b) {
      std::printf(" | %-6d", hist[b]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  sia::bench::EnableBenchObservability();
  EfficacyConfig config = EfficacyConfig::FromEnv();
  config.techniques = {Technique::kSia};
  PrintHeader("Fig. 8: training-sample counts at the final iteration (SIA, "
              "queries=" + std::to_string(config.query_count) + ")");

  auto run = sia::bench::RunEfficacyExperiment(config);
  if (!run.ok()) {
    std::cerr << "experiment failed: " << run.status().ToString() << "\n";
    return 1;
  }

  std::map<size_t, std::vector<size_t>> true_counts;
  std::map<size_t, std::vector<size_t>> false_counts;
  for (const AttemptRecord& a : run->attempts) {
    if (!a.valid) continue;
    true_counts[a.subset_size].push_back(a.stats.true_samples);
    false_counts[a.subset_size].push_back(a.stats.false_samples);
  }

  PrintHistogram("(a) TRUE samples", true_counts);
  PrintHistogram("(b) FALSE samples", false_counts);

  std::printf(
      "\nPaper: 178 of 182 successful one-column predicates needed fewer\n"
      "than 50 TRUE samples; 118 of 158 optimal one-column predicates\n"
      "needed fewer than 100 FALSE samples; multi-column predicates\n"
      "consume more of both.\n"
      "Expected shape: one-column mass concentrated in the small buckets,\n"
      "shifting right as the subset size grows.\n");

  // Per-subset-size mean TRUE/FALSE sample counts over valid runs.
  std::string summary =
      "{\"queries\":" + std::to_string(config.query_count) + ",\"rows\":[";
  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}}) {
    if (size > 1) summary += ',';
    auto mean = [](const std::vector<size_t>& v) {
      double sum = 0;
      for (const size_t n : v) sum += static_cast<double>(n);
      return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
    };
    summary += "{\"cols\":" + std::to_string(size) + ",\"valid\":" +
               std::to_string(true_counts[size].size()) +
               ",\"mean_true_samples\":" +
               sia::bench::JsonNum(mean(true_counts[size])) +
               ",\"mean_false_samples\":" +
               sia::bench::JsonNum(mean(false_counts[size])) + '}';
  }
  summary += "]}";
  return sia::bench::EmitBenchReport("fig8_samples", summary) ? 0 : 1;
}
