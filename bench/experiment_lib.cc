#include "bench/experiment_lib.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/thread_pool.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "obs/metrics.h"
#include "rewrite/rules.h"
#include "synth/sample_generator.h"
#include "synth/verifier.h"

namespace sia::bench {

const char* TechniqueName(Technique t) {
  switch (t) {
    case Technique::kSia:
      return "SIA";
    case Technique::kTransitiveClosure:
      return "TransitiveClosure";
    case Technique::kSiaV1:
      return "SIA_v1";
    case Technique::kSiaV2:
      return "SIA_v2";
  }
  return "?";
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoll(v);
}

EfficacyConfig EfficacyConfig::FromEnv() {
  EfficacyConfig c;
  c.query_count = static_cast<size_t>(
      EnvInt("SIA_BENCH_QUERIES", static_cast<int64_t>(c.query_count)));
  c.solver_timeout_ms = static_cast<uint32_t>(
      EnvInt("SIA_BENCH_TIMEOUT_MS", c.solver_timeout_ms));
  return c;
}

void PrintHeader(const std::string& title) {
  std::cout << "\n" << std::string(78, '=') << "\n";
  std::cout << title << "\n";
  std::cout << std::string(78, '=') << "\n";
}

std::string JsonNum(double v) { return obs::internal::JsonNumber(v); }

void EnableBenchObservability() {
  const char* path = std::getenv("SIA_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  obs::MetricsRegistry::SetEnabled(true);
}

bool EmitBenchReport(const std::string& name,
                     const std::string& summary_json) {
  const char* path = std::getenv("SIA_BENCH_JSON");
  if (path == nullptr || *path == '\0') return true;
  std::string out = "{\"bench\":\"";
  out += obs::internal::JsonEscape(name);
  // The execution width the run used (SIA_THREADS / hardware), so a
  // report is interpretable without knowing the environment it ran in.
  out += "\",\"threads\":";
  out += std::to_string(ThreadPool::Shared().thread_count());
  out += ",\"summary\":";
  out += summary_json;
  out += ",\"metrics\":";
  out += obs::MetricsRegistry::Instance().SnapshotJson();
  out += "}\n";
  const std::string dest(path);
  if (dest == "-" || dest == "stdout") {
    std::fputs(out.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "SIA_BENCH_JSON: cannot open %s\n", dest.c_str());
    return false;
  }
  const bool wrote = std::fputs(out.c_str(), f) >= 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::fprintf(stderr, "SIA_BENCH_JSON: cannot write %s\n", dest.c_str());
    return false;
  }
  return true;
}

namespace {

SynthesisOptions OptionsFor(Technique t, uint32_t timeout_ms) {
  SynthesisOptions o;
  switch (t) {
    case Technique::kSia:
      o = SynthesisOptions::Sia();
      break;
    case Technique::kSiaV1:
      o = SynthesisOptions::SiaV1();
      break;
    case Technique::kSiaV2:
      o = SynthesisOptions::SiaV2();
      break;
    case Technique::kTransitiveClosure:
      break;  // not used
  }
  o.samples.solver_timeout_ms = timeout_ms;
  o.verify.solver_timeout_ms = timeout_ms;
  return o;
}

// The transitive-closure baseline: derive syntactic consequences of the
// WHERE conjuncts and keep those using only Cols'. Valid by construction
// (each derived conjunct is implied by the originals); never "optimal"
// in the paper's comparison.
AttemptRecord RunTransitiveClosure(const ExprPtr& bound_where,
                                   const Schema& joint,
                                   const std::vector<size_t>& subset) {
  AttemptRecord rec;
  const auto derived = TransitiveClosure(SplitConjuncts(bound_where));
  std::vector<ExprPtr> usable;
  for (const ExprPtr& d : derived) {
    const auto used = CollectColumnIndices(d);
    if (used.empty()) continue;
    if (UsesOnlyColumns(d, subset)) usable.push_back(d);
  }
  if (!usable.empty()) {
    rec.valid = true;
    ExprPtr pred = CombineConjuncts(usable);
    rec.predicate = pred->ToString();
    // "uses all" when the union of used columns covers the subset.
    const auto used = CollectColumnIndices(pred);
    rec.uses_all_columns = used.size() == subset.size();
  }
  (void)joint;
  return rec;
}

}  // namespace

Result<EfficacyRun> RunEfficacyExperiment(const EfficacyConfig& config) {
  const Catalog catalog = Catalog::TpchCatalog();
  SIA_ASSIGN_OR_RETURN(Schema joint,
                       catalog.JointSchema({"lineitem", "orders"}));

  QueryGenOptions gen_opts;
  gen_opts.seed = config.seed;
  SIA_ASSIGN_OR_RETURN(
      std::vector<GeneratedQuery> queries,
      GenerateWorkload(catalog, config.query_count, gen_opts));

  const size_t ship = *joint.FindColumn("l_shipdate");
  const size_t commit = *joint.FindColumn("l_commitdate");
  const size_t receipt = *joint.FindColumn("l_receiptdate");
  const std::vector<std::vector<size_t>> subsets = {
      {ship},         {commit},         {receipt},        {ship, commit},
      {ship, receipt}, {commit, receipt}, {ship, commit, receipt}};

  EfficacyRun run;
  run.queries = queries;

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(queries[qi].query.where, joint));
    for (const auto& subset : subsets) {
      // Probe: does an unsatisfaction tuple exist for this subset?
      SampleGenOptions probe_opts;
      probe_opts.solver_timeout_ms = config.solver_timeout_ms;
      SampleGenerator probe(bound, joint, subset, probe_opts);
      auto unsat = probe.GenerateFalse(1);
      const bool possible = unsat.ok() && !unsat->empty();

      for (const Technique tech : config.techniques) {
        AttemptRecord rec;
        rec.query_index = qi;
        rec.subset = subset;
        rec.subset_size = subset.size();
        rec.technique = tech;
        rec.possible = possible;

        // When the probe proved no unsatisfaction tuple exists, every
        // synthesis attempt ends in kNone by the same argument — skip
        // re-deriving that (and its quantified-refutation solver cost)
        // once per technique. The transitive-closure baseline is purely
        // syntactic, so it still runs.
        if (!possible && tech != Technique::kTransitiveClosure) {
          run.attempts.push_back(std::move(rec));
          continue;
        }

        if (tech == Technique::kTransitiveClosure) {
          AttemptRecord tc = RunTransitiveClosure(bound, joint, subset);
          tc.query_index = qi;
          tc.subset = subset;
          tc.subset_size = subset.size();
          tc.technique = tech;
          tc.possible = possible;
          run.attempts.push_back(std::move(tc));
          continue;
        }

        auto synth = Synthesize(bound, joint, subset,
                                OptionsFor(tech, config.solver_timeout_ms));
        if (synth.ok()) {
          rec.stats = synth->stats;
          if (synth->has_predicate() &&
              synth->status != SynthesisStatus::kNone) {
            rec.valid = true;
            rec.optimal = synth->status == SynthesisStatus::kOptimal;
            rec.predicate = synth->predicate->ToString();
            rec.uses_all_columns =
                synth->UsedColumns().size() == subset.size();
          }
        }
        run.attempts.push_back(std::move(rec));
      }
    }
  }
  return run;
}

}  // namespace sia::bench
