#include "engine/csv.h"

#include <fstream>
#include <sstream>

#include "common/date.h"
#include "common/strings.h"

namespace sia {

namespace {

Result<Value> ParseField(const std::string& raw, const ColumnDef& col) {
  const std::string text(StripWhitespace(raw));
  if (text.empty()) {
    if (!col.nullable) {
      return Status::ParseError("empty value for non-nullable column " +
                                col.QualifiedName());
    }
    return Value::Null(col.type);
  }
  try {
    // stoll/stod stop at the first non-numeric character instead of
    // failing, so "12abc" (or "12\0junk" from a truncated/binary file)
    // would silently load as 12 — require full consumption.
    size_t consumed = 0;
    switch (col.type) {
      case DataType::kInteger: {
        const int64_t v = std::stoll(text, &consumed);
        if (consumed != text.size()) {
          return Status::ParseError("invalid INTEGER value: '" + text + "'");
        }
        return Value::Integer(v);
      }
      case DataType::kDouble: {
        const double v = std::stod(text, &consumed);
        if (consumed != text.size()) {
          return Status::ParseError("invalid DOUBLE value: '" + text + "'");
        }
        return Value::Double(v);
      }
      case DataType::kDate: {
        SIA_ASSIGN_OR_RETURN(int64_t day, ParseDateToDay(text));
        return Value::Date(day);
      }
      case DataType::kTimestamp: {
        const int64_t v = std::stoll(text, &consumed);
        if (consumed != text.size()) {
          return Status::ParseError("invalid TIMESTAMP value: '" + text + "'");
        }
        return Value::Timestamp(v);
      }
      case DataType::kBoolean: {
        if (EqualsIgnoreCase(text, "true") || text == "1") {
          return Value::Boolean(true);
        }
        if (EqualsIgnoreCase(text, "false") || text == "0") {
          return Value::Boolean(false);
        }
        return Status::ParseError("invalid boolean: '" + text + "'");
      }
    }
  } catch (const std::exception&) {
    return Status::ParseError("invalid " +
                              std::string(DataTypeName(col.type)) +
                              " value: '" + text + "'");
  }
  return Status::Internal("unreachable data type");
}

std::string FormatField(const ColumnData& col, size_t row) {
  if (col.IsNull(row)) return "";
  switch (col.type()) {
    case DataType::kDouble: {
      std::ostringstream os;
      os << col.DoubleAt(row);
      return os.str();
    }
    case DataType::kDate:
      return FormatDay(col.IntAt(row));
    case DataType::kBoolean:
      return col.IntAt(row) != 0 ? "true" : "false";
    default:
      return std::to_string(col.IntAt(row));
  }
}

}  // namespace

Result<Table> ReadCsv(const Schema& schema, std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty CSV input (missing header)");
  }
  if (line.find('"') != std::string::npos) {
    return Status::Unsupported("quoted CSV fields are not supported");
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() != schema.size()) {
    return Status::ParseError(
        "header has " + std::to_string(header.size()) + " columns, schema has " +
        std::to_string(schema.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    const std::string name(StripWhitespace(header[i]));
    if (!EqualsIgnoreCase(name, schema.column(i).name)) {
      return Status::ParseError("header column " + std::to_string(i) +
                                " is '" + name + "', expected '" +
                                schema.column(i).name + "'");
    }
  }

  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    if (line.find('"') != std::string::npos) {
      return Status::Unsupported("quoted CSV fields are not supported (line " +
                                 std::to_string(line_no) + ")");
    }
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != schema.size()) {
      return Status::ParseError("line " + std::to_string(line_no) + " has " +
                                std::to_string(fields.size()) + " fields");
    }
    Tuple row;
    for (size_t i = 0; i < fields.size(); ++i) {
      auto value = ParseField(fields[i], schema.column(i));
      if (!value.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  value.status().message());
      }
      row.Append(std::move(value).value());
    }
    SIA_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvString(const Schema& schema, const std::string& text) {
  std::istringstream in(text);
  return ReadCsv(schema, in);
}

Result<Table> ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  return ReadCsv(schema, in);
}

Status WriteCsv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out << ',';
    out << schema.column(i).name;
  }
  out << '\n';
  for (size_t r = 0; r < table.row_count(); ++r) {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (i > 0) out << ',';
      out << FormatField(table.column(i), r);
    }
    out << '\n';
  }
  if (!out) return Status::Internal("CSV write failed");
  return Status::OK();
}

Result<std::string> WriteCsvString(const Table& table) {
  std::ostringstream out;
  SIA_RETURN_IF_ERROR(WriteCsv(table, out));
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open CSV file for write: " + path);
  return WriteCsv(table, out);
}

}  // namespace sia
