#include "engine/tpch_gen.h"

#include "catalog/catalog.h"
#include "common/date.h"
#include "common/rng.h"

namespace sia {

TpchData GenerateTpch(double scale_factor, uint64_t seed) {
  const Catalog catalog = Catalog::TpchCatalog();
  TpchData data;
  data.orders = Table(catalog.GetTable("orders").value());
  data.lineitem = Table(catalog.GetTable("lineitem").value());

  Rng rng(seed);
  const int64_t kStartDay = CivilToDay({1992, 1, 1});
  const int64_t kEndDay = CivilToDay({1998, 8, 2});

  const auto order_count =
      static_cast<int64_t>(1'500'000 * scale_factor);

  std::vector<int64_t> order_row(data.orders.schema().size());
  std::vector<int64_t> line_row(data.lineitem.schema().size());

  for (int64_t o = 0; o < order_count; ++o) {
    const int64_t orderkey = o + 1;
    const int64_t orderdate = rng.Uniform(kStartDay, kEndDay);
    // orders: o_orderkey, o_custkey, o_totalprice, o_orderdate,
    //         o_shippriority
    order_row[0] = orderkey;
    order_row[1] = rng.Uniform(1, 150'000);
    order_row[2] = rng.Uniform(900, 500'000);  // cents-ish; stored double
    order_row[3] = orderdate;
    order_row[4] = rng.Uniform(0, 1);
    data.orders.AppendIntRow(order_row);

    const int64_t lines = rng.Uniform(1, 7);
    for (int64_t l = 0; l < lines; ++l) {
      const int64_t shipdate = orderdate + rng.Uniform(1, 121);
      const int64_t commitdate = orderdate + rng.Uniform(30, 90);
      const int64_t receiptdate = shipdate + rng.Uniform(1, 30);
      // lineitem: l_orderkey, l_partkey, l_linenumber, l_quantity,
      //           l_extendedprice, l_discount, l_tax, l_shipdate,
      //           l_commitdate, l_receiptdate
      line_row[0] = orderkey;
      line_row[1] = rng.Uniform(1, 200'000);
      line_row[2] = l + 1;
      line_row[3] = rng.Uniform(1, 50);
      line_row[4] = rng.Uniform(900, 100'000);
      line_row[5] = rng.Uniform(0, 10);  // discount %, stored double
      line_row[6] = rng.Uniform(0, 8);   // tax %, stored double
      line_row[7] = shipdate;
      line_row[8] = commitdate;
      line_row[9] = receiptdate;
      data.lineitem.AppendIntRow(line_row);
    }
  }
  return data;
}

}  // namespace sia
