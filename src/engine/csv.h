#ifndef SIA_ENGINE_CSV_H_
#define SIA_ENGINE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "engine/column_table.h"

namespace sia {

// CSV import/export for engine tables, so users can run Sia against
// their own data instead of the TPC-H generator.
//
// Format: comma-separated, first line is a header whose names must match
// the schema's column names (case-insensitive, order defines nothing —
// the schema's order is authoritative and the header is validated
// against it). Values: integers, decimals, dates as YYYY-MM-DD, booleans
// as true/false/0/1, empty field = NULL (only for nullable columns).
// No quoting/escaping — this is a data-exchange convenience, not a full
// RFC 4180 implementation (unsupported constructs produce ParseError).

// Parses CSV text into a table with the given schema.
[[nodiscard]] Result<Table> ReadCsv(const Schema& schema, std::istream& in);
[[nodiscard]] Result<Table> ReadCsvString(const Schema& schema, const std::string& text);
[[nodiscard]] Result<Table> ReadCsvFile(const Schema& schema, const std::string& path);

// Writes a table as CSV (header + rows).
[[nodiscard]] Status WriteCsv(const Table& table, std::ostream& out);
[[nodiscard]] Result<std::string> WriteCsvString(const Table& table);
[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace sia

#endif  // SIA_ENGINE_CSV_H_
