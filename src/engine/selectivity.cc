#include "engine/selectivity.h"

#include <algorithm>
#include <cmath>

#include "engine/cursors.h"
#include "engine/exec_expr.h"

namespace sia {

Result<SelectivityEstimate> EstimateSelectivity(const Table& table,
                                                const ExprPtr& predicate,
                                                size_t sample_size) {
  SelectivityEstimate out;
  const size_t rows = table.row_count();
  if (rows == 0) return out;

  SIA_ASSIGN_OR_RETURN(CompiledExpr pred, CompiledExpr::Compile(predicate));
  TableCursor row(table);

  // Systematic sampling: a fixed stride with a deterministic phase gives
  // reproducible estimates and touches the table uniformly (the TPC-H
  // generator emits rows in order-key order, so striding avoids the
  // clustering bias a prefix sample would have).
  const size_t n = (sample_size == 0) ? rows : std::min(sample_size, rows);
  const size_t stride = rows / n;
  size_t hits = 0;
  size_t seen = 0;
  for (size_t i = stride / 2; i < rows && seen < n; i += stride, ++seen) {
    row.set_row(i);
    hits += (pred.EvalPredicate(row) == 1);
  }
  if (seen == 0) return out;
  out.sampled_rows = seen;
  out.selectivity = static_cast<double>(hits) / static_cast<double>(seen);
  // Binomial 95% CI half-width; zero when the scan was exhaustive.
  if (seen < rows) {
    out.error_bound = 1.96 * std::sqrt(out.selectivity *
                                       (1 - out.selectivity) /
                                       static_cast<double>(seen));
  }
  return out;
}

}  // namespace sia
