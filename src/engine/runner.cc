#include "engine/runner.h"

#include "engine/exec_expr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace sia {

Result<QueryOutput> RunQuery(const ParsedQuery& query, const Catalog& catalog,
                             Executor& executor,
                             const PlannerOptions& planner_options) {
  SIA_ASSIGN_OR_RETURN(PlanPtr plan,
                       PlanQuery(query, catalog, planner_options));
  return executor.Execute(plan);
}

Result<QueryOutput> RunSql(const std::string& sql, const Catalog& catalog,
                           Executor& executor,
                           const PlannerOptions& planner_options) {
  SIA_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(sql));
  return RunQuery(q, catalog, executor, planner_options);
}

Result<ParanoidReport> RunRewriteParanoid(
    const ParsedQuery& original, const ParsedQuery& rewritten,
    const Catalog& catalog, Executor& executor,
    const PlannerOptions& planner_options) {
  SIA_TRACE_SPAN("exec.paranoid");
  SIA_COUNTER_INC("exec.paranoid.runs");
  ParanoidReport report;
  SIA_ASSIGN_OR_RETURN(
      QueryOutput base, RunQuery(original, catalog, executor, planner_options));
  report.original_ms = base.elapsed_ms;
  report.original_output = base;

  auto cross = RunQuery(rewritten, catalog, executor, planner_options);
  if (!cross.ok()) {
    SIA_COUNTER_INC("exec.paranoid.rewrite_failed");
    report.rewritten_failed = true;
    report.note =
        "rewritten query failed: " + cross.status().ToString();
    report.output = std::move(base);
    return report;
  }
  report.rewritten_ms = cross->elapsed_ms;
  if (cross->row_count != base.row_count ||
      cross->content_hash != base.content_hash) {
    SIA_COUNTER_INC("exec.paranoid.mismatch");
    report.mismatch = true;
    report.note = "rewritten result disagrees with original (rows " +
                  std::to_string(cross->row_count) + " vs " +
                  std::to_string(base.row_count) + ")";
    report.output = std::move(base);
    return report;
  }
  report.rewrite_used = true;
  report.output = std::move(*cross);
  return report;
}

namespace {

class TableRow final : public RowAccessor {
 public:
  explicit TableRow(const Table& table) : table_(table) {}
  void set_row(size_t row) { row_ = row; }

  int64_t IntAt(size_t col) const override {
    return table_.column(col).IntAt(row_);
  }
  double DoubleAt(size_t col) const override {
    return table_.column(col).DoubleAt(row_);
  }
  bool IsNull(size_t col) const override {
    return table_.column(col).IsNull(row_);
  }

 private:
  const Table& table_;
  size_t row_ = 0;
};

}  // namespace

Result<double> MeasureSelectivity(const Table& table,
                                  const ExprPtr& predicate) {
  if (table.row_count() == 0) return 0.0;
  SIA_ASSIGN_OR_RETURN(CompiledExpr pred, CompiledExpr::Compile(predicate));
  TableRow row(table);
  size_t hits = 0;
  for (size_t i = 0; i < table.row_count(); ++i) {
    row.set_row(i);
    if (pred.EvalPredicate(row) == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(table.row_count());
}

}  // namespace sia
