#ifndef SIA_ENGINE_RUNNER_H_
#define SIA_ENGINE_RUNNER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/executor.h"
#include "parser/ast.h"
#include "rewrite/planner.h"

namespace sia {

// Plans and executes a parsed query in one call — the "psql" of this
// engine. Planner options control whether single-table conjuncts are
// pushed below the join (the optimization Sia's rewrites unlock).
Result<QueryOutput> RunQuery(const ParsedQuery& query, const Catalog& catalog,
                             Executor& executor,
                             const PlannerOptions& planner_options = {});

// Parses, plans and executes a SQL string.
Result<QueryOutput> RunSql(const std::string& sql, const Catalog& catalog,
                           Executor& executor,
                           const PlannerOptions& planner_options = {});

// Fraction of `table` rows that satisfy `predicate` (bound against the
// table schema). Used for the paper's Table 4 selectivity analysis.
Result<double> MeasureSelectivity(const Table& table,
                                  const ExprPtr& predicate);

}  // namespace sia

#endif  // SIA_ENGINE_RUNNER_H_
