#ifndef SIA_ENGINE_RUNNER_H_
#define SIA_ENGINE_RUNNER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/executor.h"
#include "parser/ast.h"
#include "rewrite/planner.h"

namespace sia {

// Plans and executes a parsed query in one call — the "psql" of this
// engine. Planner options control whether single-table conjuncts are
// pushed below the join (the optimization Sia's rewrites unlock).
[[nodiscard]] Result<QueryOutput> RunQuery(const ParsedQuery& query, const Catalog& catalog,
                             Executor& executor,
                             const PlannerOptions& planner_options = {});

// Parses, plans and executes a SQL string.
[[nodiscard]] Result<QueryOutput> RunSql(const std::string& sql, const Catalog& catalog,
                           Executor& executor,
                           const PlannerOptions& planner_options = {});

// Outcome of a paranoid (cross-checked) execution of a rewritten query.
struct ParanoidReport {
  // The result handed to the caller — the rewritten plan's when the
  // cross-check passed, the original's otherwise.
  QueryOutput output;
  bool rewrite_used = false;      // rewritten result passed and was kept
  bool rewritten_failed = false;  // rewritten execution returned an error
  bool mismatch = false;          // rewritten result disagreed
  std::string note;               // why the rewrite was discarded, if so
  // Per-side wall-clock times, for promotion evidence (a rewrite must
  // win on measured runtime, not just match digests). rewritten_ms is 0
  // when the rewritten side failed before producing an output.
  double original_ms = 0.0;
  double rewritten_ms = 0.0;
  // The original plan's result, always populated — callers that shadow a
  // quarantined rewrite serve this one regardless of the cross-check.
  QueryOutput original_output;
};

// Paranoid mode: executes BOTH the original and the rewritten query and
// cross-checks row count and (order-insensitive) content hash. On any
// disagreement — a wrong learned predicate that slipped past
// verification — or on a rewritten-side failure, the learned predicate
// is discarded and the original's result returned, so a broken rewrite
// can cost time but never correctness. Only an original-side failure
// surfaces as an error.
[[nodiscard]] Result<ParanoidReport> RunRewriteParanoid(
    const ParsedQuery& original, const ParsedQuery& rewritten,
    const Catalog& catalog, Executor& executor,
    const PlannerOptions& planner_options = {});

// Fraction of `table` rows that satisfy `predicate` (bound against the
// table schema). Used for the paper's Table 4 selectivity analysis.
[[nodiscard]] Result<double> MeasureSelectivity(const Table& table,
                                  const ExprPtr& predicate);

}  // namespace sia

#endif  // SIA_ENGINE_RUNNER_H_
