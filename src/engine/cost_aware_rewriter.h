#ifndef SIA_ENGINE_COST_AWARE_REWRITER_H_
#define SIA_ENGINE_COST_AWARE_REWRITER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/column_table.h"
#include "engine/selectivity.h"
#include "rewrite/sia_rewriter.h"

namespace sia {

// Cost-aware admission for learned predicates (extension; DESIGN.md).
//
// The paper's Table 4 shows rewrites backfire exactly when the learned
// predicate is nearly vacuous (average selectivity 0.94-0.98 in the
// slower classes): the extra scan-side filter costs more than the join
// saves. This wrapper estimates the learned predicate's selectivity on a
// sample of the target table and drops the rewrite when it exceeds
// `max_selectivity`, keeping the known-beneficial rewrites only.
struct CostAwareOptions {
  RewriteOptions rewrite;
  // Admit the rewrite only when estimated selectivity <= this bound.
  double max_selectivity = 0.9;
  // Rows sampled for the estimate (0 = exact full scan).
  size_t sample_size = 1000;
};

struct CostAwareOutcome {
  RewriteOutcome base;     // the underlying Sia outcome
  bool rejected_by_cost = false;
  SelectivityEstimate estimate;  // meaningful when a predicate was learned

  // The query to actually run: rewritten when admitted, original
  // otherwise.
  const ParsedQuery& FinalQuery(const ParsedQuery& original) const {
    return (base.changed() && !rejected_by_cost) ? base.rewritten : original;
  }
};

// `target_storage` is the data for `options.rewrite.target_table` (the
// table the learned predicate filters). The learned predicate must use
// only that table's columns, which occupy a prefix or contiguous span of
// the joint schema; the estimate remaps indices accordingly.
[[nodiscard]] Result<CostAwareOutcome> RewriteQueryCostAware(const ParsedQuery& query,
                                               const Catalog& catalog,
                                               const Table& target_storage,
                                               const CostAwareOptions& options);

}  // namespace sia

#endif  // SIA_ENGINE_COST_AWARE_REWRITER_H_
