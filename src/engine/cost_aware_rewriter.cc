#include "engine/cost_aware_rewriter.h"

#include "check/expr_validator.h"
#include "common/strings.h"
#include "ir/analysis.h"

namespace sia {

Result<CostAwareOutcome> RewriteQueryCostAware(
    const ParsedQuery& query, const Catalog& catalog,
    const Table& target_storage, const CostAwareOptions& options) {
  CostAwareOutcome out;
  SIA_ASSIGN_OR_RETURN(out.base,
                       RewriteQuery(query, catalog, options.rewrite));
  if (!out.base.changed()) return out;

  // Rebase the learned predicate from the joint schema onto the target
  // table's local schema.
  size_t offset = 0;
  bool found = false;
  for (const std::string& t : query.tables) {
    SIA_ASSIGN_OR_RETURN(Schema s, catalog.GetTable(t));
    if (EqualsIgnoreCase(t, options.rewrite.target_table)) {
      found = true;
      break;
    }
    offset += s.size();
  }
  if (!found) {
    return Status::Internal("target table vanished from the FROM list");
  }
  std::vector<std::pair<size_t, size_t>> remap;
  for (const size_t c : CollectColumnIndices(out.base.learned)) {
    if (c < offset || c - offset >= target_storage.schema().size()) {
      return Status::Internal(
          "learned predicate references non-target columns");
    }
    remap.emplace_back(c, c - offset);
  }
  ExprPtr local = RemapColumnIndices(out.base.learned, remap);
  // The remapped predicate is about to be evaluated against the target
  // table's storage; a stale index here reads the wrong column silently.
  SIA_RETURN_IF_ERROR(CheckBoundPredicate(
      local, target_storage.schema(), "learned predicate on target table"));

  SIA_ASSIGN_OR_RETURN(
      out.estimate,
      EstimateSelectivity(target_storage, local, options.sample_size));
  out.rejected_by_cost = out.estimate.selectivity > options.max_selectivity;
  return out;
}

}  // namespace sia
