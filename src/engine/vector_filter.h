#ifndef SIA_ENGINE_VECTOR_FILTER_H_
#define SIA_ENGINE_VECTOR_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/column_table.h"
#include "ir/expr.h"

namespace sia {

// Block-at-a-time (vectorized) predicate evaluation over a base table,
// used by the scan operator. Evaluating each postfix op as a tight loop
// over a 2048-row block lets the compiler auto-vectorize the arithmetic
// and comparison kernels, bringing the per-row filter cost well below a
// hash-probe — the economics that make predicate pushdown profitable
// (and that the paper's Fig. 9 relies on).
//
// Scope: integral columns only (INTEGER/DATE/TIMESTAMP/BOOLEAN) and
// NULL-free blocks take the fast kernels; DOUBLE programs and rows with
// NULLs are handled by the caller falling back to CompiledExpr. The
// semantics on the supported domain are identical to CompiledExpr, which
// a property test asserts.
class VectorizedFilter {
 public:
  // Compiles a bound predicate. Returns Unsupported for programs that
  // touch DOUBLE columns/literals (caller should fall back).
  [[nodiscard]] static Result<VectorizedFilter> Compile(const ExprPtr& expr);

  // Appends to `out` the indices of all rows of `table` on which the
  // predicate evaluates to TRUE. Columns containing NULLs make this
  // return Unsupported (fall back).
  [[nodiscard]] Status FilterTable(const Table& table, std::vector<uint32_t>* out) const;

  // FilterTable restricted to rows [begin_row, end_row): the morsel-
  // parallel scan runs one FilterRange per morsel into a morsel-local
  // vector. Appended indices are absolute row numbers, so concatenating
  // per-morsel outputs in morsel order reproduces FilterTable exactly.
  // Blocks are aligned to the range start, not to row 0; results do not
  // depend on the split points, only on the predicate.
  [[nodiscard]] Status FilterRange(const Table& table, size_t begin_row, size_t end_row,
                     std::vector<uint32_t>* out) const;

 private:
  struct VOp {
    uint8_t code;      // mirrors CompiledExpr::OpCode numeric values
    uint32_t col = 0;
    int64_t ival = 0;
  };

  VectorizedFilter() = default;

  std::vector<VOp> ops_;
  size_t max_stack_ = 0;
};

}  // namespace sia

#endif  // SIA_ENGINE_VECTOR_FILTER_H_
