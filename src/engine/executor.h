#ifndef SIA_ENGINE_EXECUTOR_H_
#define SIA_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/column_table.h"
#include "rewrite/plan.h"

namespace sia {

class ThreadPool;

// Row positions inside a Relation are 32-bit: four bytes per (part, row)
// cell is what keeps join intermediates cheap. Any input or intermediate
// larger than kMaxRowIndex rows must be rejected up front — a silent
// static_cast<RowIndex> of a wider offset would alias back into the
// table (row 2^32 becomes row 0) and return wrong results.
using RowIndex = uint32_t;
inline constexpr size_t kMaxRowIndex = UINT32_MAX;

// Returns InvalidArgument naming `what` when `row_count` exceeds the
// 32-bit row-index domain; every executor stage that narrows a size_t
// row number into a RowIndex guards with this first.
[[nodiscard]] Status CheckRowIndexLimit(size_t row_count, const std::string& what);

// A (possibly multi-part) row view over base tables: the result of a scan
// or a chain of joins is represented as aligned row-index vectors into
// the participating base tables rather than a materialized copy. The
// logical schema is the concatenation of the parts' schemas.
struct Relation {
  std::vector<const Table*> parts;
  // rows[p][i] = row of parts[p] contributing to output row i.
  std::vector<std::vector<RowIndex>> rows;
  // Materialized intermediates (aggregate/project outputs) that `parts`
  // may point into; shared so Relation copies stay valid.
  std::vector<std::shared_ptr<Table>> owned;

  size_t row_count() const { return rows.empty() ? 0 : rows[0].size(); }
  size_t column_count() const;
  // Resolves a concatenated column index to (part, local column).
  std::pair<size_t, size_t> Resolve(size_t col) const;
};

// Per-query execution counters, used by the benchmark harnesses.
struct ExecStats {
  size_t rows_scanned = 0;
  size_t rows_after_scan_filter = 0;
  size_t join_build_rows = 0;
  size_t join_probe_rows = 0;
  size_t join_output_rows = 0;
  size_t output_rows = 0;
};

struct QueryOutput {
  size_t row_count = 0;
  // Order-insensitive content hash over all output columns; two
  // semantically equivalent queries over the same data produce equal
  // hashes (used to validate rewrites end-to-end).
  uint64_t content_hash = 0;
  // Order-SENSITIVE digest of the output rows. Morsel boundaries are a
  // fixed row count (never derived from the thread count), so this is
  // identical at every SIA_THREADS setting — it is how the parallel
  // tests assert byte-identical output, not just multiset equality.
  uint64_t order_hash = 0;
  double elapsed_ms = 0;
  ExecStats stats;
};

// Executes logical plans against registered in-memory tables.
// Supported nodes: Scan (with filter), Filter, inner hash Join (at least
// one equi-conjunct required), Aggregate (COUNT(*) per group), Project.
//
// Scan/filter predicates and the join probe run morsel-parallel on a
// ThreadPool (the process-wide ThreadPool::Shared() unless overridden),
// with per-morsel results concatenated in morsel order — output is
// byte-identical to the single-threaded engine at every thread count.
class Executor {
 public:
  // Tables are borrowed; they must outlive the executor.
  void RegisterTable(const std::string& name, const Table* table);

  // Overrides the pool queries execute on (nullptr = back to Shared()).
  // Borrowed; used by tests to pin exact thread counts.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  [[nodiscard]] Result<QueryOutput> Execute(const PlanPtr& plan);

 private:
  [[nodiscard]] Result<Relation> ExecuteNode(const PlanPtr& plan, ExecStats* stats);
  [[nodiscard]] Result<Relation> ExecuteScan(const PlanPtr& plan, ExecStats* stats);
  [[nodiscard]] Result<Relation> ExecuteFilter(const PlanPtr& plan, ExecStats* stats);
  [[nodiscard]] Result<Relation> ExecuteJoin(const PlanPtr& plan, ExecStats* stats);

  ThreadPool& pool() const;

  std::map<std::string, const Table*> tables_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace sia

#endif  // SIA_ENGINE_EXECUTOR_H_
