#include "engine/column_table.h"

namespace sia {

void ColumnData::EnsureNulls(size_t upto) {
  if (nulls_.size() < upto) nulls_.resize(upto, 0);
}

void ColumnData::AppendNull() {
  EnsureNulls(size());
  if (type_ == DataType::kDouble) {
    doubles_.push_back(0.0);
  } else {
    ints_.push_back(0);
  }
  nulls_.push_back(1);
}

Value ColumnData::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null(type_);
  switch (type_) {
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kDate:
      return Value::Date(ints_[row]);
    case DataType::kTimestamp:
      return Value::Timestamp(ints_[row]);
    case DataType::kBoolean:
      return Value::Boolean(ints_[row] != 0);
    case DataType::kInteger:
      return Value::Integer(ints_[row]);
  }
  return Value::Null(type_);
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const ColumnDef& c : schema_.columns()) {
    columns_.emplace_back(c.type);
  }
}

Status Table::AppendRow(const Tuple& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Value& v = row.at(i);
    if (v.is_null()) {
      if (!schema_.column(i).nullable) {
        return Status::InvalidArgument("NULL in non-nullable column " +
                                       schema_.column(i).QualifiedName());
      }
      columns_[i].AppendNull();
      continue;
    }
    if (columns_[i].type() == DataType::kDouble) {
      columns_[i].AppendDouble(v.AsDouble());
    } else {
      columns_[i].AppendInt(v.AsInt());
    }
  }
  ++row_count_;
  return Status::OK();
}

void Table::AppendIntRow(const std::vector<int64_t>& ints) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() == DataType::kDouble) {
      columns_[i].AppendDouble(static_cast<double>(ints[i]));
    } else {
      columns_[i].AppendInt(ints[i]);
    }
  }
  ++row_count_;
}

Tuple Table::RowAt(size_t row) const {
  Tuple out;
  for (const ColumnData& c : columns_) out.Append(c.ValueAt(row));
  return out;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const ColumnData& c : columns_) {
    bytes += c.ints().capacity() * sizeof(int64_t);
    bytes += c.doubles().capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace sia
