#ifndef SIA_ENGINE_TPCH_GEN_H_
#define SIA_ENGINE_TPCH_GEN_H_

#include <cstdint>

#include "engine/column_table.h"

namespace sia {

// Deterministic TPC-H-style data for the `orders` and `lineitem` tables
// (the columns in Catalog::TpchCatalog). The distributions mirror dbgen's
// (TPC-H spec 4.2.3):
//
//   orders:    1,500,000 * SF rows; o_orderdate uniform over
//              [1992-01-01, 1998-08-02].
//   lineitem:  1-7 lines per order (avg ~4);
//              l_shipdate    = o_orderdate + U[1, 121]
//              l_commitdate  = o_orderdate + U[30, 90]
//              l_receiptdate = l_shipdate  + U[1, 30]
//
// These are exactly the four date columns the paper's §6.3 workload
// constrains, so predicate selectivities match the real benchmark.
struct TpchData {
  Table orders;
  Table lineitem;
};

// Generates both tables at `scale_factor` (fractional SF supported; SF 1
// is ~1.5M orders / ~6M lineitem). Deterministic for a given seed.
TpchData GenerateTpch(double scale_factor, uint64_t seed = 42);

}  // namespace sia

#endif  // SIA_ENGINE_TPCH_GEN_H_
