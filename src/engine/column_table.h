#ifndef SIA_ENGINE_COLUMN_TABLE_H_
#define SIA_ENGINE_COLUMN_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace sia {

// Columnar storage for one table. Integral columns (INTEGER, DATE,
// TIMESTAMP, BOOLEAN) are stored as int64; DOUBLE columns as double.
// NULLs are tracked in an optional per-column validity vector (empty
// vector == no NULLs, the common TPC-H case).
class ColumnData {
 public:
  explicit ColumnData(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const {
    return type_ == DataType::kDouble ? doubles_.size() : ints_.size();
  }

  void AppendInt(int64_t v) {
    ints_.push_back(v);
    if (!nulls_.empty()) nulls_.push_back(0);
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    if (!nulls_.empty()) nulls_.push_back(0);
  }
  void AppendNull();

  int64_t IntAt(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  bool IsNull(size_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }
  bool has_nulls() const { return !nulls_.empty(); }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }

  Value ValueAt(size_t row) const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> nulls_;  // lazily created on first NULL

  void EnsureNulls(size_t upto);
};

// A named table: schema + column data of equal length.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t row_count() const { return row_count_; }
  const ColumnData& column(size_t i) const { return columns_[i]; }
  ColumnData& column(size_t i) { return columns_[i]; }

  // Appends a row; values must match the schema's types (NULLs allowed
  // for nullable columns).
  [[nodiscard]] Status AppendRow(const Tuple& row);

  // Fast paths used by the data generator.
  void AppendIntRow(const std::vector<int64_t>& ints);

  // Materializes row `row` as a Tuple (tests / debugging).
  Tuple RowAt(size_t row) const;

  // Approximate resident bytes (benchmark reporting).
  size_t MemoryBytes() const;

 private:
  Schema schema_;
  std::vector<ColumnData> columns_;
  size_t row_count_ = 0;
};

}  // namespace sia

#endif  // SIA_ENGINE_COLUMN_TABLE_H_
