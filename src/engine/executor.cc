#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "check/plan_validator.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "engine/cursors.h"
#include "engine/exec_expr.h"
#include "engine/vector_filter.h"
#include "ir/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

size_t Relation::column_count() const {
  size_t n = 0;
  for (const Table* t : parts) n += t->schema().size();
  return n;
}

std::pair<size_t, size_t> Relation::Resolve(size_t col) const {
  size_t offset = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const size_t width = parts[p]->schema().size();
    if (col < offset + width) return {p, col - offset};
    offset += width;
  }
  return {parts.size(), 0};  // out of range; caller validates
}

namespace {

// RowAccessor over a Relation with a movable cursor.
class RelationRow final : public RowAccessor {
 public:
  explicit RelationRow(const Relation& rel) : rel_(rel) {
    const size_t n = rel.column_count();
    col_data_.reserve(n);
    col_part_.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      const auto [part, local] = rel.Resolve(c);
      col_data_.push_back(&rel.parts[part]->column(local));
      col_part_.push_back(part);
    }
  }

  void set_row(size_t out_row) { row_ = out_row; }

  int64_t IntAt(size_t col) const override {
    return col_data_[col]->IntAt(rel_.rows[col_part_[col]][row_]);
  }
  double DoubleAt(size_t col) const override {
    return col_data_[col]->DoubleAt(rel_.rows[col_part_[col]][row_]);
  }
  bool IsNull(size_t col) const override {
    return col_data_[col]->IsNull(rel_.rows[col_part_[col]][row_]);
  }

 private:
  const Relation& rel_;
  std::vector<const ColumnData*> col_data_;
  std::vector<size_t> col_part_;
  size_t row_ = 0;
};

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashRow(const RelationRow& row, size_t columns,
                 const std::vector<DataType>& types) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t c = 0; c < columns; ++c) {
    if (row.IsNull(c)) {
      h = MixHash(h, 0xDEADBEEFULL);
      continue;
    }
    uint64_t bits;
    if (types[c] == DataType::kDouble) {
      const double d = row.DoubleAt(c);
      static_assert(sizeof(double) == sizeof(uint64_t));
      __builtin_memcpy(&bits, &d, sizeof(bits));
    } else {
      bits = static_cast<uint64_t>(row.IntAt(c));
    }
    h = MixHash(h, bits);
  }
  return h;
}

std::vector<DataType> ConcatTypes(const Relation& rel) {
  std::vector<DataType> types;
  for (const Table* t : rel.parts) {
    for (const ColumnDef& c : t->schema().columns()) types.push_back(c.type);
  }
  return types;
}

// Filters a relation in place by a compiled predicate.
void FilterRelation(Relation* rel, const CompiledExpr& pred) {
  RelationRow row(*rel);
  const size_t n = rel->row_count();
  std::vector<uint32_t> keep;
  keep.reserve(n / 2);
  for (size_t i = 0; i < n; ++i) {
    row.set_row(i);
    if (pred.EvalPredicate(row) == 1) {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<std::vector<uint32_t>> new_rows(rel->rows.size());
  for (size_t p = 0; p < rel->rows.size(); ++p) {
    new_rows[p].reserve(keep.size());
    for (const uint32_t i : keep) new_rows[p].push_back(rel->rows[p][i]);
  }
  rel->rows = std::move(new_rows);
}

}  // namespace

void Executor::RegisterTable(const std::string& name, const Table* table) {
  tables_[name] = table;
}

Result<Relation> Executor::ExecuteScan(const PlanPtr& plan,
                                       ExecStats* stats) {
  SIA_TRACE_SPAN("exec.scan");  // per plan node, never per row
  SIA_FAULT_INJECT("engine.scan");
  const auto it = tables_.find(plan->table());
  if (it == tables_.end()) {
    return Status::NotFound("no storage registered for table '" +
                            plan->table() + "'");
  }
  const Table* table = it->second;
  // The storage attached under this name must shape-match the scan's
  // logical schema, or every column access below reads the wrong data.
  if (table->schema().size() != plan->output_schema().size()) {
    return Status::InvalidArgument(
        "storage for table '" + plan->table() + "' has " +
        std::to_string(table->schema().size()) + " columns but the scan " +
        "expects " + std::to_string(plan->output_schema().size()));
  }
  for (size_t i = 0; i < table->schema().size(); ++i) {
    if (table->schema().column(i).type != plan->output_schema().column(i).type) {
      return Status::InvalidArgument(
          "storage for table '" + plan->table() + "' column " +
          std::to_string(i) + " is " +
          DataTypeName(table->schema().column(i).type) + " but the scan " +
          "expects " + DataTypeName(plan->output_schema().column(i).type));
    }
  }
  Relation rel;
  rel.parts = {table};
  rel.rows.resize(1);
  stats->rows_scanned += table->row_count();

  if (plan->predicate() == nullptr) {
    rel.rows[0].resize(table->row_count());
    for (size_t i = 0; i < table->row_count(); ++i) {
      rel.rows[0][i] = static_cast<uint32_t>(i);
    }
  } else {
    rel.rows[0].reserve(table->row_count() / 2);
    // Prefer the vectorized kernel; fall back to the row-at-a-time
    // interpreter for DOUBLE programs or NULL-bearing columns.
    bool vectorized = false;
    auto vf = VectorizedFilter::Compile(plan->predicate());
    if (vf.ok()) {
      vectorized = vf->FilterTable(*table, &rel.rows[0]).ok();
      if (!vectorized) rel.rows[0].clear();
    }
    if (!vectorized) {
      SIA_ASSIGN_OR_RETURN(CompiledExpr pred,
                           CompiledExpr::Compile(plan->predicate()));
      TableCursor row(*table);
      for (size_t i = 0; i < table->row_count(); ++i) {
        row.set_row(i);
        if (pred.EvalPredicate(row) == 1) {
          rel.rows[0].push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }
  stats->rows_after_scan_filter += rel.row_count();
  return rel;
}

Result<Relation> Executor::ExecuteFilter(const PlanPtr& plan,
                                         ExecStats* stats) {
  SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
  SIA_TRACE_SPAN("exec.filter");  // opened after the child so spans nest
  SIA_ASSIGN_OR_RETURN(CompiledExpr pred,
                       CompiledExpr::Compile(plan->predicate()));
  FilterRelation(&rel, pred);
  return rel;
}

Result<Relation> Executor::ExecuteJoin(const PlanPtr& plan,
                                       ExecStats* stats) {
  SIA_ASSIGN_OR_RETURN(Relation left, ExecuteNode(plan->child(0), stats));
  SIA_ASSIGN_OR_RETURN(Relation right, ExecuteNode(plan->child(1), stats));
  SIA_TRACE_SPAN("exec.join");

  const size_t left_width = plan->child(0)->output_schema().size();

  // Split the join predicate into equi-key pairs and residual conjuncts.
  std::vector<std::pair<size_t, size_t>> keys;  // (left col, right col)
  std::vector<ExprPtr> residual;
  if (plan->predicate() != nullptr) {
    for (const ExprPtr& c : SplitConjuncts(plan->predicate())) {
      bool is_key = false;
      if (c->kind() == ExprKind::kCompare &&
          c->compare_op() == CompareOp::kEq &&
          c->left()->kind() == ExprKind::kColumnRef &&
          c->right()->kind() == ExprKind::kColumnRef) {
        const size_t a = c->left()->index();
        const size_t b = c->right()->index();
        if (a < left_width && b >= left_width) {
          keys.emplace_back(a, b - left_width);
          is_key = true;
        } else if (b < left_width && a >= left_width) {
          keys.emplace_back(b, a - left_width);
          is_key = true;
        }
      }
      if (!is_key) residual.push_back(c);
    }
  }

  stats->join_build_rows += right.row_count();
  stats->join_probe_rows += left.row_count();

  Relation out;
  out.parts = left.parts;
  out.parts.insert(out.parts.end(), right.parts.begin(), right.parts.end());
  out.owned = left.owned;
  out.owned.insert(out.owned.end(), right.owned.begin(), right.owned.end());
  out.rows.resize(out.parts.size());

  const size_t lparts = left.parts.size();

  auto emit = [&](size_t lrow, size_t rrow) {
    for (size_t p = 0; p < lparts; ++p) {
      out.rows[p].push_back(left.rows[p][lrow]);
    }
    for (size_t p = 0; p < right.parts.size(); ++p) {
      out.rows[lparts + p].push_back(right.rows[p][rrow]);
    }
  };

  if (!keys.empty()) {
    // Hash join: build on the right input.
    RelationRow rrow(right);
    RelationRow lrow(left);
    std::unordered_multimap<uint64_t, uint32_t> build;
    build.reserve(right.row_count() * 2);
    auto key_hash = [&](const RelationRow& row, bool is_left) -> uint64_t {
      uint64_t h = 0x12345678ULL;
      for (const auto& [lc, rc] : keys) {
        const size_t col = is_left ? lc : rc;
        if (row.IsNull(col)) return UINT64_MAX;  // NULL never matches
        h = MixHash(h, static_cast<uint64_t>(row.IntAt(col)));
      }
      return h;
    };
    for (size_t i = 0; i < right.row_count(); ++i) {
      rrow.set_row(i);
      const uint64_t h = key_hash(rrow, false);
      if (h != UINT64_MAX) build.emplace(h, static_cast<uint32_t>(i));
    }
    auto keys_equal = [&](size_t li, size_t ri) {
      lrow.set_row(li);
      rrow.set_row(ri);
      for (const auto& [lc, rc] : keys) {
        if (lrow.IntAt(lc) != rrow.IntAt(rc)) return false;
      }
      return true;
    };
    for (size_t i = 0; i < left.row_count(); ++i) {
      lrow.set_row(i);
      const uint64_t h = key_hash(lrow, true);
      if (h == UINT64_MAX) continue;
      auto [begin, end] = build.equal_range(h);
      for (auto it = begin; it != end; ++it) {
        if (keys_equal(i, it->second)) emit(i, it->second);
      }
    }
  } else {
    // Nested-loop fallback (no equi conjunct).
    for (size_t i = 0; i < left.row_count(); ++i) {
      for (size_t j = 0; j < right.row_count(); ++j) {
        emit(i, j);
      }
    }
  }

  if (!residual.empty()) {
    SIA_ASSIGN_OR_RETURN(
        CompiledExpr pred,
        CompiledExpr::Compile(CombineConjuncts(residual)));
    FilterRelation(&out, pred);
  }
  stats->join_output_rows += out.row_count();
  return out;
}

Result<Relation> Executor::ExecuteNode(const PlanPtr& plan,
                                       ExecStats* stats) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return ExecuteScan(plan, stats);
    case PlanKind::kFilter:
      return ExecuteFilter(plan, stats);
    case PlanKind::kJoin:
      return ExecuteJoin(plan, stats);
    case PlanKind::kAggregate: {
      SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
      SIA_TRACE_SPAN("exec.aggregate");
      RelationRow row(rel);
      std::map<std::vector<int64_t>, int64_t> groups;
      std::vector<int64_t> key(plan->columns().size());
      for (size_t i = 0; i < rel.row_count(); ++i) {
        row.set_row(i);
        for (size_t k = 0; k < plan->columns().size(); ++k) {
          const size_t c = plan->columns()[k];
          key[k] = row.IsNull(c) ? INT64_MIN : row.IntAt(c);
        }
        ++groups[key];
      }
      // Materialize the group table; the relation keeps it alive.
      auto out_table = std::make_shared<Table>(plan->output_schema());
      std::vector<int64_t> out_row(plan->output_schema().size());
      for (const auto& [k, count] : groups) {
        for (size_t i = 0; i < k.size(); ++i) out_row[i] = k[i];
        out_row[k.size()] = count;
        out_table->AppendIntRow(out_row);
      }
      Relation out;
      out.owned.push_back(out_table);
      out.parts = {out_table.get()};
      out.rows.resize(1);
      out.rows[0].resize(out_table->row_count());
      for (size_t i = 0; i < out_table->row_count(); ++i) {
        out.rows[0][i] = static_cast<uint32_t>(i);
      }
      return out;
    }
    case PlanKind::kProject: {
      SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
      SIA_TRACE_SPAN("exec.project");
      RelationRow row(rel);
      auto out_table = std::make_shared<Table>(plan->output_schema());
      const auto& cols = plan->columns();
      std::vector<int64_t> out_row(cols.size());
      for (size_t i = 0; i < rel.row_count(); ++i) {
        row.set_row(i);
        for (size_t c = 0; c < cols.size(); ++c) {
          out_row[c] = row.IntAt(cols[c]);
        }
        out_table->AppendIntRow(out_row);
      }
      Relation out;
      out.owned.push_back(out_table);
      out.parts = {out_table.get()};
      out.rows.resize(1);
      out.rows[0].resize(out_table->row_count());
      for (size_t i = 0; i < out_table->row_count(); ++i) {
        out.rows[0][i] = static_cast<uint32_t>(i);
      }
      return out;
    }
  }
  return Status::Internal("unreachable plan kind");
}

Result<QueryOutput> Executor::Execute(const PlanPtr& plan) {
  SIA_TRACE_SPAN("exec.query");
  SIA_COUNTER_INC("exec.queries");
  // Last line of defense: never run a structurally invalid plan, however
  // it was produced (planner, movement rules, or hand assembly).
  SIA_RETURN_IF_ERROR(CheckPlan(plan, "plan handed to executor"));
  QueryOutput out;
  Stopwatch sw;
  SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan, &out.stats));
  out.row_count = rel.row_count();
  out.stats.output_rows = out.row_count;

  const std::vector<DataType> types = ConcatTypes(rel);
  RelationRow row(rel);
  uint64_t hash = 0;
  for (size_t i = 0; i < rel.row_count(); ++i) {
    row.set_row(i);
    hash += HashRow(row, types.size(), types);  // order-insensitive sum
  }
  out.content_hash = hash;
  out.elapsed_ms = sw.ElapsedMillis();
  // Bridge the per-query ExecStats onto the registry (the struct remains
  // the per-call API; these are the process-wide running totals).
  if (obs::MetricsRegistry::Enabled()) {
    obs::IncrementCounter("exec.rows_scanned", out.stats.rows_scanned);
    obs::IncrementCounter("exec.rows_after_scan_filter",
                          out.stats.rows_after_scan_filter);
    obs::IncrementCounter("exec.join_build_rows", out.stats.join_build_rows);
    obs::IncrementCounter("exec.join_probe_rows", out.stats.join_probe_rows);
    obs::IncrementCounter("exec.join_output_rows", out.stats.join_output_rows);
    obs::IncrementCounter("exec.output_rows", out.stats.output_rows);
    obs::RecordHistogram("exec.query_ms", out.elapsed_ms);
  }
  return out;
}

}  // namespace sia
