#include "engine/executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "check/plan_validator.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/cursors.h"
#include "engine/exec_expr.h"
#include "engine/vector_filter.h"
#include "ir/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

Status CheckRowIndexLimit(size_t row_count, const std::string& what) {
  if (row_count > kMaxRowIndex) {
    return Status::InvalidArgument(
        what + " has " + std::to_string(row_count) +
        " rows, which exceeds the 32-bit row-index limit (" +
        std::to_string(kMaxRowIndex) + ")");
  }
  return Status::OK();
}

size_t Relation::column_count() const {
  size_t n = 0;
  for (const Table* t : parts) n += t->schema().size();
  return n;
}

std::pair<size_t, size_t> Relation::Resolve(size_t col) const {
  size_t offset = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const size_t width = parts[p]->schema().size();
    if (col < offset + width) return {p, col - offset};
    offset += width;
  }
  return {parts.size(), 0};  // out of range; caller validates
}

namespace {

// RowAccessor over a Relation with a movable cursor.
class RelationRow final : public RowAccessor {
 public:
  explicit RelationRow(const Relation& rel) : rel_(rel) {
    const size_t n = rel.column_count();
    col_data_.reserve(n);
    col_part_.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      const auto [part, local] = rel.Resolve(c);
      col_data_.push_back(&rel.parts[part]->column(local));
      col_part_.push_back(part);
    }
  }

  void set_row(size_t out_row) { row_ = out_row; }

  int64_t IntAt(size_t col) const override {
    return col_data_[col]->IntAt(rel_.rows[col_part_[col]][row_]);
  }
  double DoubleAt(size_t col) const override {
    return col_data_[col]->DoubleAt(rel_.rows[col_part_[col]][row_]);
  }
  bool IsNull(size_t col) const override {
    return col_data_[col]->IsNull(rel_.rows[col_part_[col]][row_]);
  }

 private:
  const Relation& rel_;
  std::vector<const ColumnData*> col_data_;
  std::vector<size_t> col_part_;
  size_t row_ = 0;
};

// Rows per morsel for every parallel loop in the executor. A fixed row
// count (multiple of the vectorized filter's 2048-row block, and never a
// function of the thread count) is what makes morsel boundaries — and
// therefore ordered-concatenation output and order_hash — identical at
// every SIA_THREADS setting. 16K rows is ~128KB of key columns: small
// enough to balance across workers, large enough that the per-chunk
// claim (one atomic fetch_add) is noise.
constexpr size_t kMorselRows = 16384;

constexpr size_t MorselCount(size_t rows) {
  return rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashRow(const RelationRow& row, size_t columns,
                 const std::vector<DataType>& types) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t c = 0; c < columns; ++c) {
    if (row.IsNull(c)) {
      h = MixHash(h, 0xDEADBEEFULL);
      continue;
    }
    uint64_t bits;
    if (types[c] == DataType::kDouble) {
      const double d = row.DoubleAt(c);
      static_assert(sizeof(double) == sizeof(uint64_t));
      __builtin_memcpy(&bits, &d, sizeof(bits));
    } else {
      bits = static_cast<uint64_t>(row.IntAt(c));
    }
    h = MixHash(h, bits);
  }
  return h;
}

std::vector<DataType> ConcatTypes(const Relation& rel) {
  std::vector<DataType> types;
  for (const Table* t : rel.parts) {
    for (const ColumnDef& c : t->schema().columns()) types.push_back(c.type);
  }
  return types;
}

// Per-morsel output sizes -> start offset of each morsel in the
// concatenated result. Returns the total; offsets gets morsels+1 entries.
template <typename Sized>
size_t PrefixOffsets(const std::vector<Sized>& per_morsel,
                     std::vector<size_t>* offsets) {
  offsets->assign(per_morsel.size() + 1, 0);
  for (size_t m = 0; m < per_morsel.size(); ++m) {
    (*offsets)[m + 1] = (*offsets)[m] + per_morsel[m].size();
  }
  return offsets->back();
}

// Filters a relation in place by a compiled predicate. Morsel-parallel:
// each morsel collects its passing positions into a local vector
// (CompiledExpr::Run is const and shares no state, so one instance
// serves every worker), then the gather into the new row-index vectors
// writes disjoint presized slots. Output order matches the serial loop.
// Status-returning because a join can legitimately produce more than
// 2^32 intermediate positions, which must refuse to narrow.
Status FilterRelation(Relation* rel, const CompiledExpr& pred,
                      ThreadPool& pool) {
  const size_t n = rel->row_count();
  SIA_RETURN_IF_ERROR(CheckRowIndexLimit(n, "filter input"));
  std::vector<std::vector<RowIndex>> keep(MorselCount(n));
  SIA_RETURN_IF_ERROR(
      pool.ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
        RelationRow row(*rel);
        std::vector<RowIndex>& local = keep[begin / kMorselRows];
        for (size_t i = begin; i < end; ++i) {
          row.set_row(i);
          if (pred.EvalPredicate(row) == 1) {
            local.push_back(static_cast<RowIndex>(i));
          }
        }
        return Status::OK();
      }));
  std::vector<size_t> offsets;
  const size_t total = PrefixOffsets(keep, &offsets);
  std::vector<std::vector<RowIndex>> new_rows(rel->rows.size());
  for (auto& part : new_rows) part.resize(total);
  SIA_RETURN_IF_ERROR(
      pool.ParallelFor(n, kMorselRows, [&](size_t begin, size_t) {
        const size_t m = begin / kMorselRows;
        const std::vector<RowIndex>& local = keep[m];
        for (size_t p = 0; p < rel->rows.size(); ++p) {
          const std::vector<RowIndex>& src = rel->rows[p];
          RowIndex* dst = new_rows[p].data() + offsets[m];
          for (size_t k = 0; k < local.size(); ++k) dst[k] = src[local[k]];
        }
        return Status::OK();
      }));
  rel->rows = std::move(new_rows);
  return Status::OK();
}

}  // namespace

ThreadPool& Executor::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::Shared();
}

void Executor::RegisterTable(const std::string& name, const Table* table) {
  tables_[name] = table;
}

Result<Relation> Executor::ExecuteScan(const PlanPtr& plan,
                                       ExecStats* stats) {
  SIA_TRACE_SPAN("exec.scan");  // per plan node, never per row
  SIA_FAULT_INJECT("engine.scan");
  const auto it = tables_.find(plan->table());
  if (it == tables_.end()) {
    return Status::NotFound("no storage registered for table '" +
                            plan->table() + "'");
  }
  const Table* table = it->second;
  // The storage attached under this name must shape-match the scan's
  // logical schema, or every column access below reads the wrong data.
  if (table->schema().size() != plan->output_schema().size()) {
    return Status::InvalidArgument(
        "storage for table '" + plan->table() + "' has " +
        std::to_string(table->schema().size()) + " columns but the scan " +
        "expects " + std::to_string(plan->output_schema().size()));
  }
  for (size_t i = 0; i < table->schema().size(); ++i) {
    if (table->schema().column(i).type != plan->output_schema().column(i).type) {
      return Status::InvalidArgument(
          "storage for table '" + plan->table() + "' column " +
          std::to_string(i) + " is " +
          DataTypeName(table->schema().column(i).type) + " but the scan " +
          "expects " + DataTypeName(plan->output_schema().column(i).type));
    }
  }
  SIA_RETURN_IF_ERROR(CheckRowIndexLimit(
      table->row_count(), "storage for table '" + plan->table() + "'"));
  Relation rel;
  rel.parts = {table};
  rel.rows.resize(1);
  const size_t n = table->row_count();
  stats->rows_scanned += n;

  if (plan->predicate() == nullptr) {
    rel.rows[0].resize(n);
    std::vector<RowIndex>& out = rel.rows[0];
    SIA_RETURN_IF_ERROR(
        pool().ParallelFor(n, kMorselRows, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out[i] = static_cast<RowIndex>(i);
          }
          return Status::OK();
        }));
  } else {
    // Prefer the vectorized kernel; fall back to the row-at-a-time
    // interpreter for DOUBLE programs or NULL-bearing columns. Each
    // morsel chooses independently (the NULL check is per column and
    // cheap), and a fallback is no longer invisible: it bumps
    // exec.scan.vectorized_fallback. The interpreter is compiled up
    // front — a morsel must never hit a compile error mid-flight — but
    // its compile status only matters if some morsel actually falls
    // back, matching the serial engine's observable behavior.
    auto vf = VectorizedFilter::Compile(plan->predicate());
    auto interp = CompiledExpr::Compile(plan->predicate());
    std::vector<std::vector<RowIndex>> found(MorselCount(n));
    SIA_RETURN_IF_ERROR(pool().ParallelFor(
        n, kMorselRows, [&](size_t begin, size_t end) -> Status {
          std::vector<RowIndex>& local = found[begin / kMorselRows];
          if (vf.ok()) {
            if (vf->FilterRange(*table, begin, end, &local).ok()) {
              return Status::OK();
            }
            local.clear();
            SIA_COUNTER_INC("exec.scan.vectorized_fallback");
          }
          if (!interp.ok()) return interp.status();
          TableCursor row(*table);
          for (size_t i = begin; i < end; ++i) {
            row.set_row(i);
            if (interp->EvalPredicate(row) == 1) {
              local.push_back(static_cast<RowIndex>(i));
            }
          }
          return Status::OK();
        }));
    // Ordered concatenation: morsel boundaries are fixed, so this is
    // byte-identical to the single-threaded scan.
    std::vector<size_t> offsets;
    rel.rows[0].reserve(PrefixOffsets(found, &offsets));
    for (const std::vector<RowIndex>& local : found) {
      rel.rows[0].insert(rel.rows[0].end(), local.begin(), local.end());
    }
  }
  stats->rows_after_scan_filter += rel.row_count();
  return rel;
}

Result<Relation> Executor::ExecuteFilter(const PlanPtr& plan,
                                         ExecStats* stats) {
  SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
  SIA_TRACE_SPAN("exec.filter");  // opened after the child so spans nest
  SIA_ASSIGN_OR_RETURN(CompiledExpr pred,
                       CompiledExpr::Compile(plan->predicate()));
  SIA_RETURN_IF_ERROR(FilterRelation(&rel, pred, pool()));
  return rel;
}

Result<Relation> Executor::ExecuteJoin(const PlanPtr& plan,
                                       ExecStats* stats) {
  SIA_ASSIGN_OR_RETURN(Relation left, ExecuteNode(plan->child(0), stats));
  SIA_ASSIGN_OR_RETURN(Relation right, ExecuteNode(plan->child(1), stats));
  SIA_TRACE_SPAN("exec.join");

  const size_t left_width = plan->child(0)->output_schema().size();

  // Split the join predicate into equi-key pairs and residual conjuncts.
  std::vector<std::pair<size_t, size_t>> keys;  // (left col, right col)
  std::vector<ExprPtr> residual;
  if (plan->predicate() != nullptr) {
    for (const ExprPtr& c : SplitConjuncts(plan->predicate())) {
      bool is_key = false;
      if (c->kind() == ExprKind::kCompare &&
          c->compare_op() == CompareOp::kEq &&
          c->left()->kind() == ExprKind::kColumnRef &&
          c->right()->kind() == ExprKind::kColumnRef) {
        const size_t a = c->left()->index();
        const size_t b = c->right()->index();
        if (a < left_width && b >= left_width) {
          keys.emplace_back(a, b - left_width);
          is_key = true;
        } else if (b < left_width && a >= left_width) {
          keys.emplace_back(b, a - left_width);
          is_key = true;
        }
      }
      if (!is_key) residual.push_back(c);
    }
  }

  stats->join_build_rows += right.row_count();
  stats->join_probe_rows += left.row_count();
  SIA_RETURN_IF_ERROR(CheckRowIndexLimit(left.row_count(), "join probe input"));
  SIA_RETURN_IF_ERROR(
      CheckRowIndexLimit(right.row_count(), "join build input"));

  Relation out;
  out.parts = left.parts;
  out.parts.insert(out.parts.end(), right.parts.begin(), right.parts.end());
  out.owned = left.owned;
  out.owned.insert(out.owned.end(), right.owned.begin(), right.owned.end());
  out.rows.resize(out.parts.size());

  const size_t lparts = left.parts.size();

  if (!keys.empty()) {
    // Hash join: serial build on the right input, morsel-parallel probe
    // over the left. The build table is read-only during the probe
    // (equal_range on a const multimap), so workers share it freely.
    RelationRow rrow(right);
    std::unordered_multimap<uint64_t, RowIndex> build;
    build.reserve(right.row_count() * 2);
    auto key_hash = [&](const RelationRow& row, bool is_left) -> uint64_t {
      uint64_t h = 0x12345678ULL;
      for (const auto& [lc, rc] : keys) {
        const size_t col = is_left ? lc : rc;
        if (row.IsNull(col)) return UINT64_MAX;  // NULL never matches
        h = MixHash(h, static_cast<uint64_t>(row.IntAt(col)));
      }
      return h;
    };
    for (size_t i = 0; i < right.row_count(); ++i) {
      rrow.set_row(i);
      const uint64_t h = key_hash(rrow, false);
      if (h != UINT64_MAX) build.emplace(h, static_cast<RowIndex>(i));
    }
    // Each probe morsel collects (left row, right row) matches locally;
    // within a morsel the order is the serial probe order (left rows
    // ascending, bucket order per row), so the ordered concatenation
    // below reproduces the serial join byte for byte.
    const size_t ln = left.row_count();
    std::vector<std::vector<std::pair<RowIndex, RowIndex>>> matches(
        MorselCount(ln));
    SIA_RETURN_IF_ERROR(
        pool().ParallelFor(ln, kMorselRows, [&](size_t begin, size_t end) {
          RelationRow lcur(left);
          RelationRow rcur(right);
          auto& local = matches[begin / kMorselRows];
          for (size_t i = begin; i < end; ++i) {
            lcur.set_row(i);
            const uint64_t h = key_hash(lcur, true);
            if (h == UINT64_MAX) continue;
            auto [bucket, bucket_end] = build.equal_range(h);
            for (auto it = bucket; it != bucket_end; ++it) {
              rcur.set_row(it->second);
              bool equal = true;
              for (const auto& [lc, rc] : keys) {
                if (lcur.IntAt(lc) != rcur.IntAt(rc)) {
                  equal = false;
                  break;
                }
              }
              if (equal) local.emplace_back(static_cast<RowIndex>(i),
                                            it->second);
            }
          }
          return Status::OK();
        }));
    std::vector<size_t> offsets;
    const size_t total = PrefixOffsets(matches, &offsets);
    for (auto& part : out.rows) part.resize(total);
    SIA_RETURN_IF_ERROR(
        pool().ParallelFor(ln, kMorselRows, [&](size_t begin, size_t) {
          const size_t m = begin / kMorselRows;
          const auto& local = matches[m];
          for (size_t p = 0; p < lparts; ++p) {
            RowIndex* dst = out.rows[p].data() + offsets[m];
            const std::vector<RowIndex>& src = left.rows[p];
            for (size_t k = 0; k < local.size(); ++k) {
              dst[k] = src[local[k].first];
            }
          }
          for (size_t p = 0; p < right.parts.size(); ++p) {
            RowIndex* dst = out.rows[lparts + p].data() + offsets[m];
            const std::vector<RowIndex>& src = right.rows[p];
            for (size_t k = 0; k < local.size(); ++k) {
              dst[k] = src[local[k].second];
            }
          }
          return Status::OK();
        }));
  } else {
    // Nested-loop fallback (no equi conjunct); rare enough to stay
    // serial.
    for (size_t i = 0; i < left.row_count(); ++i) {
      for (size_t j = 0; j < right.row_count(); ++j) {
        for (size_t p = 0; p < lparts; ++p) {
          out.rows[p].push_back(left.rows[p][i]);
        }
        for (size_t p = 0; p < right.parts.size(); ++p) {
          out.rows[lparts + p].push_back(right.rows[p][j]);
        }
      }
    }
  }

  if (!residual.empty()) {
    SIA_ASSIGN_OR_RETURN(
        CompiledExpr pred,
        CompiledExpr::Compile(CombineConjuncts(residual)));
    SIA_RETURN_IF_ERROR(FilterRelation(&out, pred, pool()));
  }
  stats->join_output_rows += out.row_count();
  return out;
}

Result<Relation> Executor::ExecuteNode(const PlanPtr& plan,
                                       ExecStats* stats) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return ExecuteScan(plan, stats);
    case PlanKind::kFilter:
      return ExecuteFilter(plan, stats);
    case PlanKind::kJoin:
      return ExecuteJoin(plan, stats);
    case PlanKind::kAggregate: {
      SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
      SIA_TRACE_SPAN("exec.aggregate");
      RelationRow row(rel);
      std::map<std::vector<int64_t>, int64_t> groups;
      std::vector<int64_t> key(plan->columns().size());
      for (size_t i = 0; i < rel.row_count(); ++i) {
        row.set_row(i);
        for (size_t k = 0; k < plan->columns().size(); ++k) {
          const size_t c = plan->columns()[k];
          key[k] = row.IsNull(c) ? INT64_MIN : row.IntAt(c);
        }
        ++groups[key];
      }
      // Materialize the group table; the relation keeps it alive.
      auto out_table = std::make_shared<Table>(plan->output_schema());
      std::vector<int64_t> out_row(plan->output_schema().size());
      for (const auto& [k, count] : groups) {
        for (size_t i = 0; i < k.size(); ++i) out_row[i] = k[i];
        out_row[k.size()] = count;
        out_table->AppendIntRow(out_row);
      }
      SIA_RETURN_IF_ERROR(
          CheckRowIndexLimit(out_table->row_count(), "aggregate output"));
      Relation out;
      out.owned.push_back(out_table);
      out.parts = {out_table.get()};
      out.rows.resize(1);
      out.rows[0].resize(out_table->row_count());
      for (size_t i = 0; i < out_table->row_count(); ++i) {
        out.rows[0][i] = static_cast<RowIndex>(i);
      }
      return out;
    }
    case PlanKind::kProject: {
      SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan->child(), stats));
      SIA_TRACE_SPAN("exec.project");
      RelationRow row(rel);
      auto out_table = std::make_shared<Table>(plan->output_schema());
      const auto& cols = plan->columns();
      std::vector<int64_t> out_row(cols.size());
      for (size_t i = 0; i < rel.row_count(); ++i) {
        row.set_row(i);
        for (size_t c = 0; c < cols.size(); ++c) {
          out_row[c] = row.IntAt(cols[c]);
        }
        out_table->AppendIntRow(out_row);
      }
      SIA_RETURN_IF_ERROR(
          CheckRowIndexLimit(out_table->row_count(), "project output"));
      Relation out;
      out.owned.push_back(out_table);
      out.parts = {out_table.get()};
      out.rows.resize(1);
      out.rows[0].resize(out_table->row_count());
      for (size_t i = 0; i < out_table->row_count(); ++i) {
        out.rows[0][i] = static_cast<RowIndex>(i);
      }
      return out;
    }
  }
  return Status::Internal("unreachable plan kind");
}

Result<QueryOutput> Executor::Execute(const PlanPtr& plan) {
  SIA_TRACE_SPAN("exec.query");
  SIA_COUNTER_INC("exec.queries");
  // Last line of defense: never run a structurally invalid plan, however
  // it was produced (planner, movement rules, or hand assembly).
  SIA_RETURN_IF_ERROR(CheckPlan(plan, "plan handed to executor"));
  QueryOutput out;
  Stopwatch sw;
  SIA_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(plan, &out.stats));
  out.row_count = rel.row_count();
  out.stats.output_rows = out.row_count;

  // Output digests, morsel-parallel. content_hash is a wrap-around sum
  // of row hashes — commutative, so summing per-morsel partials equals
  // the serial sum bit for bit. order_hash folds the per-morsel
  // order-sensitive digests in morsel order; morsel boundaries are
  // fixed, so it too is thread-count invariant.
  const std::vector<DataType> types = ConcatTypes(rel);
  const size_t out_rows = rel.row_count();
  std::vector<uint64_t> sum_parts(MorselCount(out_rows), 0);
  std::vector<uint64_t> ord_parts(MorselCount(out_rows), 0);
  SIA_RETURN_IF_ERROR(
      pool().ParallelFor(out_rows, kMorselRows, [&](size_t begin, size_t end) {
        RelationRow row(rel);
        uint64_t sum = 0;
        uint64_t ord = 1469598103934665603ULL;
        for (size_t i = begin; i < end; ++i) {
          row.set_row(i);
          const uint64_t h = HashRow(row, types.size(), types);
          sum += h;
          ord = MixHash(ord, h);
        }
        sum_parts[begin / kMorselRows] = sum;
        ord_parts[begin / kMorselRows] = ord;
        return Status::OK();
      }));
  uint64_t hash = 0;
  uint64_t order = 1469598103934665603ULL;
  for (size_t m = 0; m < sum_parts.size(); ++m) {
    hash += sum_parts[m];
    order = MixHash(order, ord_parts[m]);
  }
  out.content_hash = hash;
  out.order_hash = order;
  out.elapsed_ms = sw.ElapsedMillis();
  // Bridge the per-query ExecStats onto the registry (the struct remains
  // the per-call API; these are the process-wide running totals).
  if (obs::MetricsRegistry::Enabled()) {
    obs::IncrementCounter("exec.rows_scanned", out.stats.rows_scanned);
    obs::IncrementCounter("exec.rows_after_scan_filter",
                          out.stats.rows_after_scan_filter);
    obs::IncrementCounter("exec.join_build_rows", out.stats.join_build_rows);
    obs::IncrementCounter("exec.join_probe_rows", out.stats.join_probe_rows);
    obs::IncrementCounter("exec.join_output_rows", out.stats.join_output_rows);
    obs::IncrementCounter("exec.output_rows", out.stats.output_rows);
    obs::RecordHistogram("exec.query_ms", out.elapsed_ms);
  }
  return out;
}

}  // namespace sia
