#ifndef SIA_ENGINE_CURSORS_H_
#define SIA_ENGINE_CURSORS_H_

#include "engine/column_table.h"
#include "engine/exec_expr.h"

namespace sia {

// Non-virtual row cursor over a base table, for the compiled-expression
// hot loops (CompiledExpr is templated on the accessor, so these calls
// inline). Also usable wherever a RowAccessor is required.
class TableCursor final : public RowAccessor {
 public:
  explicit TableCursor(const Table& table) : table_(table) {}

  void set_row(size_t row) { row_ = row; }

  int64_t IntAt(size_t col) const override {
    return table_.column(col).IntAt(row_);
  }
  double DoubleAt(size_t col) const override {
    return table_.column(col).DoubleAt(row_);
  }
  bool IsNull(size_t col) const override {
    return table_.column(col).IsNull(row_);
  }

 private:
  const Table& table_;
  size_t row_ = 0;
};

}  // namespace sia

#endif  // SIA_ENGINE_CURSORS_H_
