#ifndef SIA_ENGINE_SELECTIVITY_H_
#define SIA_ENGINE_SELECTIVITY_H_

#include <cstdint>

#include "common/status.h"
#include "engine/column_table.h"
#include "ir/expr.h"

namespace sia {

// Sampled selectivity estimation for predicates over a base table.
//
// The paper's Table 4 observation — rewrites with near-vacuous learned
// predicates (selectivity ≈ 1) slow queries down — makes selectivity the
// natural admission test for cost-aware rewriting. A full scan is exact
// but costs as much as the filter it is trying to avoid; sampling
// `sample_size` rows (systematic stride over the table, deterministic)
// estimates it with standard binomial error (±1.6% at 1000 samples, 95%
// confidence).
struct SelectivityEstimate {
  double selectivity = 0;
  size_t sampled_rows = 0;
  // Half-width of the 95% confidence interval.
  double error_bound = 0;
};

// `predicate` must be bound against `table`'s schema. `sample_size` = 0
// means scan everything (exact).
[[nodiscard]] Result<SelectivityEstimate> EstimateSelectivity(const Table& table,
                                                const ExprPtr& predicate,
                                                size_t sample_size = 1000);

}  // namespace sia

#endif  // SIA_ENGINE_SELECTIVITY_H_
