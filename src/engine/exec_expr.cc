#include "engine/exec_expr.h"

#include <algorithm>

namespace sia {

Result<CompiledExpr> CompiledExpr::Compile(const ExprPtr& expr) {
  CompiledExpr out;
  SIA_RETURN_IF_ERROR(out.Emit(expr));
  // Postfix stack depth is bounded by tree depth + 1; compute exactly.
  size_t depth = 0;
  size_t max_depth = 0;
  for (const Op& op : out.ops_) {
    switch (op.code) {
      case OpCode::kLoadInt:
      case OpCode::kLoadDouble:
      case OpCode::kConstInt:
      case OpCode::kConstDouble:
      case OpCode::kConstNull:
      case OpCode::kConstBool:
        ++depth;
        break;
      case OpCode::kNot:
        break;  // 1 in, 1 out
      default:
        --depth;  // 2 in, 1 out
        break;
    }
    max_depth = std::max(max_depth, depth);
  }
  out.max_stack_ = max_depth + 1;
  if (out.max_stack_ > 64) {
    return Status::Unsupported("expression too deep for compiled execution");
  }
  return out;
}

Status CompiledExpr::Emit(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      if (!expr->is_bound()) {
        return Status::Internal("unbound column in CompiledExpr: " +
                                expr->ToString());
      }
      Op op;
      op.code = expr->type() == DataType::kDouble ? OpCode::kLoadDouble
                                                  : OpCode::kLoadInt;
      op.col = static_cast<uint32_t>(expr->index());
      ops_.push_back(op);
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      const Value& v = expr->literal();
      Op op;
      if (v.is_null()) {
        op.code = OpCode::kConstNull;
      } else if (v.type() == DataType::kDouble) {
        op.code = OpCode::kConstDouble;
        op.dval = v.AsDouble();
      } else if (v.type() == DataType::kBoolean) {
        op.code = OpCode::kConstBool;
        op.ival = v.AsBool() ? 1 : 0;
      } else {
        op.code = OpCode::kConstInt;
        op.ival = v.AsInt();
      }
      ops_.push_back(op);
      return Status::OK();
    }
    case ExprKind::kArith: {
      SIA_RETURN_IF_ERROR(Emit(expr->left()));
      SIA_RETURN_IF_ERROR(Emit(expr->right()));
      Op op;
      switch (expr->arith_op()) {
        case ArithOp::kAdd:
          op.code = OpCode::kAdd;
          break;
        case ArithOp::kSub:
          op.code = OpCode::kSub;
          break;
        case ArithOp::kMul:
          op.code = OpCode::kMul;
          break;
        case ArithOp::kDiv:
          op.code = OpCode::kDiv;
          break;
      }
      ops_.push_back(op);
      return Status::OK();
    }
    case ExprKind::kCompare: {
      SIA_RETURN_IF_ERROR(Emit(expr->left()));
      SIA_RETURN_IF_ERROR(Emit(expr->right()));
      Op op;
      switch (expr->compare_op()) {
        case CompareOp::kLt:
          op.code = OpCode::kCmpLt;
          break;
        case CompareOp::kLe:
          op.code = OpCode::kCmpLe;
          break;
        case CompareOp::kGt:
          op.code = OpCode::kCmpGt;
          break;
        case CompareOp::kGe:
          op.code = OpCode::kCmpGe;
          break;
        case CompareOp::kEq:
          op.code = OpCode::kCmpEq;
          break;
        case CompareOp::kNe:
          op.code = OpCode::kCmpNe;
          break;
      }
      ops_.push_back(op);
      return Status::OK();
    }
    case ExprKind::kLogic: {
      SIA_RETURN_IF_ERROR(Emit(expr->left()));
      SIA_RETURN_IF_ERROR(Emit(expr->right()));
      Op op;
      op.code = expr->logic_op() == LogicOp::kAnd ? OpCode::kAnd : OpCode::kOr;
      ops_.push_back(op);
      return Status::OK();
    }
    case ExprKind::kNot: {
      SIA_RETURN_IF_ERROR(Emit(expr->operand()));
      Op op;
      op.code = OpCode::kNot;
      ops_.push_back(op);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable kind in CompiledExpr::Emit");
}

}  // namespace sia
