#include "engine/vector_filter.h"

#include <algorithm>

#include "engine/exec_expr.h"

namespace sia {

namespace {

constexpr size_t kBlock = 2048;

using OpCode = CompiledExpr::OpCode;

// A block-evaluation slot: either a scalar constant, a borrowed pointer
// into a base column, or an owned scratch buffer.
struct VSlot {
  enum Kind { kConst, kView, kOwned } kind = kConst;
  int64_t cval = 0;
  const int64_t* view = nullptr;
  std::vector<int64_t>* buf = nullptr;  // scratch, kBlock capacity

  int64_t At(size_t i) const {
    switch (kind) {
      case kConst:
        return cval;
      case kView:
        return view[i];
      case kOwned:
        return (*buf)[i];
    }
    return 0;
  }
};

// Applies `f` elementwise over l and r, writing into l (which becomes an
// owned slot backed by `scratch`). Specialized loops keep the hot cases
// (vector-vector, vector-const) branch-free and auto-vectorizable.
template <typename F>
void BinaryKernel(VSlot& l, const VSlot& r, size_t n,
                  std::vector<int64_t>* scratch, F f) {
  int64_t* out = scratch->data();
  if (l.kind == VSlot::kConst && r.kind == VSlot::kConst) {
    l.cval = f(l.cval, r.cval);
    return;
  }
  if (l.kind != VSlot::kConst && r.kind == VSlot::kConst) {
    const int64_t* a = l.kind == VSlot::kView ? l.view : l.buf->data();
    const int64_t b = r.cval;
    for (size_t i = 0; i < n; ++i) out[i] = f(a[i], b);
  } else if (l.kind == VSlot::kConst) {
    const int64_t a = l.cval;
    const int64_t* b = r.kind == VSlot::kView ? r.view : r.buf->data();
    for (size_t i = 0; i < n; ++i) out[i] = f(a, b[i]);
  } else {
    const int64_t* a = l.kind == VSlot::kView ? l.view : l.buf->data();
    const int64_t* b = r.kind == VSlot::kView ? r.view : r.buf->data();
    for (size_t i = 0; i < n; ++i) out[i] = f(a[i], b[i]);
  }
  l.kind = VSlot::kOwned;
  l.buf = scratch;
}

}  // namespace

Result<VectorizedFilter> VectorizedFilter::Compile(const ExprPtr& expr) {
  SIA_ASSIGN_OR_RETURN(CompiledExpr compiled, CompiledExpr::Compile(expr));
  VectorizedFilter out;
  size_t depth = 0;
  for (const CompiledExpr::Op& op : compiled.ops()) {
    switch (op.code) {
      case OpCode::kLoadDouble:
      case OpCode::kConstDouble:
      case OpCode::kConstNull:
      case OpCode::kDiv:
        // DOUBLE data and NULL-producing division fall back to the
        // row-at-a-time interpreter.
        return Status::Unsupported(
            "vectorized filter supports NULL-free integral programs only");
      case OpCode::kLoadInt:
      case OpCode::kConstInt:
      case OpCode::kConstBool:
        ++depth;
        break;
      case OpCode::kNot:
        break;
      default:
        --depth;
        break;
    }
    out.max_stack_ = std::max(out.max_stack_, depth);
    out.ops_.push_back(VOp{static_cast<uint8_t>(op.code), op.col, op.ival});
  }
  return out;
}

Status VectorizedFilter::FilterTable(const Table& table,
                                     std::vector<uint32_t>* out) const {
  return FilterRange(table, 0, table.row_count(), out);
}

Status VectorizedFilter::FilterRange(const Table& table, size_t begin_row,
                                     size_t end_row,
                                     std::vector<uint32_t>* out) const {
  // NULL-bearing columns fall back (checked once, not per row).
  for (const VOp& op : ops_) {
    if (static_cast<OpCode>(op.code) == OpCode::kLoadInt &&
        table.column(op.col).has_nulls()) {
      return Status::Unsupported("column has NULLs; use CompiledExpr");
    }
  }

  // One scratch buffer per stack level, reused across blocks.
  std::vector<std::vector<int64_t>> scratch(max_stack_ + 1);
  for (auto& s : scratch) s.resize(kBlock);
  std::vector<VSlot> stack(max_stack_ + 1);

  const size_t rows = std::min(end_row, table.row_count());
  for (size_t base = begin_row; base < rows; base += kBlock) {
    const size_t n = std::min(kBlock, rows - base);
    size_t sp = 0;
    for (const VOp& vop : ops_) {
      const OpCode code = static_cast<OpCode>(vop.code);
      switch (code) {
        case OpCode::kLoadInt: {
          VSlot& s = stack[sp];
          s.kind = VSlot::kView;
          s.view = table.column(vop.col).ints().data() + base;
          s.buf = &scratch[sp];
          ++sp;
          break;
        }
        case OpCode::kConstInt:
        case OpCode::kConstBool: {
          VSlot& s = stack[sp];
          s.kind = VSlot::kConst;
          s.cval = vop.ival;
          s.buf = &scratch[sp];
          ++sp;
          break;
        }
        case OpCode::kAdd:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) { return a + b; });
          break;
        case OpCode::kSub:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) { return a - b; });
          break;
        case OpCode::kMul:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) { return a * b; });
          break;
        case OpCode::kCmpLt:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a < b; });
          break;
        case OpCode::kCmpLe:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a <= b; });
          break;
        case OpCode::kCmpGt:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a > b; });
          break;
        case OpCode::kCmpGe:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a >= b; });
          break;
        case OpCode::kCmpEq:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a == b; });
          break;
        case OpCode::kCmpNe:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a != b; });
          break;
        case OpCode::kAnd:
          // NULL-free blocks: plain boolean algebra on 0/1.
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a & b; });
          break;
        case OpCode::kOr:
          --sp;
          BinaryKernel(stack[sp - 1], stack[sp], n, &scratch[sp - 1],
                       [](int64_t a, int64_t b) -> int64_t { return a | b; });
          break;
        case OpCode::kNot: {
          VSlot& s = stack[sp - 1];
          if (s.kind == VSlot::kConst) {
            s.cval = 1 - s.cval;
          } else {
            const int64_t* a = s.kind == VSlot::kView ? s.view : s.buf->data();
            int64_t* o = scratch[sp - 1].data();
            for (size_t i = 0; i < n; ++i) o[i] = 1 - a[i];
            s.kind = VSlot::kOwned;
            s.buf = &scratch[sp - 1];
          }
          break;
        }
        default:
          return Status::Internal("unexpected opcode in vectorized filter");
      }
    }
    // Collect passing rows.
    const VSlot& result = stack[0];
    if (result.kind == VSlot::kConst) {
      if (result.cval == 1) {
        for (size_t i = 0; i < n; ++i) {
          out->push_back(static_cast<uint32_t>(base + i));
        }
      }
      continue;
    }
    const int64_t* v =
        result.kind == VSlot::kView ? result.view : result.buf->data();
    for (size_t i = 0; i < n; ++i) {
      if (v[i] == 1) out->push_back(static_cast<uint32_t>(base + i));
    }
  }
  return Status::OK();
}

}  // namespace sia
