#ifndef SIA_ENGINE_EXEC_EXPR_H_
#define SIA_ENGINE_EXEC_EXPR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ir/expr.h"

namespace sia {

// Row-at-a-time column access used by the compiled predicate interpreter.
// The interpreter is templated on the accessor type, so concrete `final`
// implementations are fully devirtualized and inlined in the engine's
// per-row hot loops; this virtual base exists for generic callers (tests,
// tooling).
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;
  virtual int64_t IntAt(size_t col) const = 0;
  virtual double DoubleAt(size_t col) const = 0;
  virtual bool IsNull(size_t col) const = 0;
};

// Predicates compiled to a flat postfix program. This avoids the Value
// boxing of the tree-walking evaluator in the per-row hot loop of the
// execution engine; semantics (including three-valued logic and
// NULL-on-division-by-zero) match ir/evaluator.h exactly, which a
// property test asserts.
class CompiledExpr {
 public:
  // Compiles a bound expression. Fails on unbound columns.
  [[nodiscard]] static Result<CompiledExpr> Compile(const ExprPtr& expr);

  // Evaluates a predicate: 0 = FALSE, 1 = TRUE, 2 = UNKNOWN.
  template <typename Accessor>
  int EvalPredicate(const Accessor& row) const {
    const Slot s = Run(row);
    if (s.null) return 2;
    return static_cast<int>(s.i);
  }

  // Evaluates a scalar to int64 (meaningful only for integral results;
  // `is_null` reports NULL).
  template <typename Accessor>
  int64_t EvalScalarInt(const Accessor& row, bool* is_null) const {
    const Slot s = Run(row);
    *is_null = s.null;
    return s.is_double ? static_cast<int64_t>(s.d) : s.i;
  }

  size_t op_count() const { return ops_.size(); }

 public:
  // The postfix instruction set. Public so the vectorized filter
  // (engine/vector_filter.h) can reinterpret the same program
  // block-at-a-time.
  enum class OpCode : uint8_t {
    kLoadInt,     // push column (int64)
    kLoadDouble,  // push column (double)
    kConstInt,
    kConstDouble,
    kConstNull,
    kConstBool,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kCmpEq,
    kCmpNe,
    kAnd,  // three-valued
    kOr,
    kNot,
  };

  struct Op {
    OpCode code;
    uint32_t col = 0;
    int64_t ival = 0;
    double dval = 0;
  };

  const std::vector<Op>& ops() const { return ops_; }

 private:
  struct Slot {
    int64_t i = 0;
    double d = 0;
    bool is_double = false;
    bool null = false;
  };

  [[nodiscard]] Status Emit(const ExprPtr& expr);

  template <typename Accessor>
  Slot Run(const Accessor& row) const {
    Slot stack[64];  // Compile() rejects programs deeper than this
    size_t sp = 0;
    for (const Op& op : ops_) {
      switch (op.code) {
        case OpCode::kLoadInt: {
          Slot& s = stack[sp++];
          s.null = row.IsNull(op.col);
          s.i = s.null ? 0 : row.IntAt(op.col);
          s.is_double = false;
          break;
        }
        case OpCode::kLoadDouble: {
          Slot& s = stack[sp++];
          s.null = row.IsNull(op.col);
          s.d = s.null ? 0 : row.DoubleAt(op.col);
          s.is_double = true;
          break;
        }
        case OpCode::kConstInt:
          stack[sp++] = Slot{op.ival, 0, false, false};
          break;
        case OpCode::kConstDouble:
          stack[sp++] = Slot{0, op.dval, true, false};
          break;
        case OpCode::kConstNull:
          stack[sp++] = Slot{0, 0, false, true};
          break;
        case OpCode::kConstBool:
          stack[sp++] = Slot{op.ival, 0, false, false};
          break;
        case OpCode::kAdd:
        case OpCode::kSub:
        case OpCode::kMul:
        case OpCode::kDiv: {
          Slot r = stack[--sp];
          Slot& l = stack[sp - 1];
          if (l.null || r.null) {
            l.null = true;
            break;
          }
          if (l.is_double || r.is_double) {
            const double a = l.is_double ? l.d : static_cast<double>(l.i);
            const double b = r.is_double ? r.d : static_cast<double>(r.i);
            l.is_double = true;
            switch (op.code) {
              case OpCode::kAdd:
                l.d = a + b;
                break;
              case OpCode::kSub:
                l.d = a - b;
                break;
              case OpCode::kMul:
                l.d = a * b;
                break;
              default:
                if (b == 0) {
                  l.null = true;
                } else {
                  l.d = a / b;
                }
                break;
            }
          } else {
            switch (op.code) {
              case OpCode::kAdd:
                l.i = l.i + r.i;
                break;
              case OpCode::kSub:
                l.i = l.i - r.i;
                break;
              case OpCode::kMul:
                l.i = l.i * r.i;
                break;
              default:
                if (r.i == 0) {
                  l.null = true;
                } else {
                  l.i = l.i / r.i;  // trunc toward zero, as in the evaluator
                }
                break;
            }
          }
          break;
        }
        case OpCode::kCmpLt:
        case OpCode::kCmpLe:
        case OpCode::kCmpGt:
        case OpCode::kCmpGe:
        case OpCode::kCmpEq:
        case OpCode::kCmpNe: {
          Slot r = stack[--sp];
          Slot& l = stack[sp - 1];
          if (l.null || r.null) {
            l.i = 2;  // UNKNOWN
            l.null = false;
            l.is_double = false;
            break;
          }
          int cmp;
          if (l.is_double || r.is_double) {
            const double a = l.is_double ? l.d : static_cast<double>(l.i);
            const double b = r.is_double ? r.d : static_cast<double>(r.i);
            cmp = a < b ? -1 : (a > b ? 1 : 0);
          } else {
            cmp = l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
          }
          bool v = false;
          switch (op.code) {
            case OpCode::kCmpLt:
              v = cmp < 0;
              break;
            case OpCode::kCmpLe:
              v = cmp <= 0;
              break;
            case OpCode::kCmpGt:
              v = cmp > 0;
              break;
            case OpCode::kCmpGe:
              v = cmp >= 0;
              break;
            case OpCode::kCmpEq:
              v = cmp == 0;
              break;
            default:
              v = cmp != 0;
              break;
          }
          l.i = v ? 1 : 0;
          l.is_double = false;
          break;
        }
        case OpCode::kAnd: {
          Slot r = stack[--sp];
          Slot& l = stack[sp - 1];
          const int64_t a = l.null ? 2 : l.i;
          const int64_t b = r.null ? 2 : r.i;
          l.null = false;
          l.i = (a == 0 || b == 0) ? 0 : ((a == 2 || b == 2) ? 2 : 1);
          break;
        }
        case OpCode::kOr: {
          Slot r = stack[--sp];
          Slot& l = stack[sp - 1];
          const int64_t a = l.null ? 2 : l.i;
          const int64_t b = r.null ? 2 : r.i;
          l.null = false;
          l.i = (a == 1 || b == 1) ? 1 : ((a == 2 || b == 2) ? 2 : 0);
          break;
        }
        case OpCode::kNot: {
          Slot& l = stack[sp - 1];
          const int64_t a = l.null ? 2 : l.i;
          l.null = false;
          l.i = (a == 2) ? 2 : (a == 0 ? 1 : 0);
          break;
        }
      }
    }
    return stack[0];
  }

  std::vector<Op> ops_;
  size_t max_stack_ = 0;
};

}  // namespace sia

#endif  // SIA_ENGINE_EXEC_EXPR_H_
