#include "workload/casestudy.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "synth/sample_generator.h"

namespace sia {

namespace {

using dsl::Col;
using dsl::Lit;

// Builds a cross-table predicate over the TPC-H joint schema. When
// `bounded` is true, the predicate chains inequalities through
// o_orderdate with interval offsets — such predicates admit
// unsatisfaction tuples for the lineitem columns. When false, it links
// tables with pure equalities/differences that any lineitem value can
// satisfy for a suitable orders value, so no unsatisfaction tuple exists.
ExprPtr MakeCaseStudyPredicate(Rng& rng, bool bounded) {
  ExprPtr ship = Col("lineitem", "l_shipdate");
  ExprPtr commit = Col("lineitem", "l_commitdate");
  ExprPtr order = Col("orders", "o_orderdate");
  if (bounded) {
    const int64_t w1 = rng.Uniform(5, 60);
    const int64_t w2 = rng.Uniform(5, 60);
    const int64_t cut = rng.Uniform(8100, 9500);  // epoch days 1992..1996
    using namespace dsl;
    return (ship - order < Lit(w1)) && (commit - ship < Lit(w2)) &&
           (order < Lit(cut));
  }
  using namespace dsl;
  (void)commit;
  const int64_t off = rng.Uniform(-30, 30);
  // l_shipdate = o_orderdate + off: for every l_shipdate value there is
  // an o_orderdate satisfying the predicate, so no unsatisfaction tuple
  // over the referenced lineitem columns exists — the probe proves the
  // query is NOT symbolically relevant.
  return ship == order + Lit(off);
}

double LogNormal(Rng& rng, double mu, double sigma) {
  return std::exp(mu + sigma * rng.NextGaussian());
}

}  // namespace

Result<CaseStudyReport> SimulateCaseStudy(const Catalog& catalog,
                                          const CaseStudyOptions& options) {
  SIA_ASSIGN_OR_RETURN(Schema joint,
                       catalog.JointSchema({"lineitem", "orders"}));

  Rng rng(options.seed);
  CaseStudyReport report;
  report.records.reserve(options.query_count);

  for (size_t q = 0; q < options.query_count; ++q) {
    CaseStudyRecord rec;
    // The population we simulate is the prospective slice itself (the
    // paper's 204,287): a multi-table predicate where the target table
    // has no single-table conjunct. That property holds by construction
    // for both predicate shapes below.
    rec.prospective = true;

    const bool bounded = rng.Bernoulli(options.relevant_mix);
    ExprPtr raw = MakeCaseStudyPredicate(rng, bounded);
    SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(raw, joint));

    // Cols' = the lineitem columns the predicate references.
    std::vector<size_t> cols;
    for (const size_t c : CollectColumnIndices(bound)) {
      if (joint.column(c).table == "lineitem") cols.push_back(c);
    }

    // Sia's §6.2 probe: one unsatisfaction tuple == symbolically relevant.
    SampleGenOptions gen_opts;
    gen_opts.solver_timeout_ms = options.probe_timeout_ms;
    gen_opts.random_seed = static_cast<uint32_t>(q + 1);
    SampleGenerator gen(bound, joint, cols, gen_opts);
    auto probe = gen.GenerateFalse(1);
    rec.relevant = probe.ok() && !probe->empty();

    // Resource metrics: log-normal, calibrated so that
    // P(exec > 10 s) ≈ 0.7463 (paper Fig. 6 headline). With sigma = 1.6:
    // mu = ln 10 + 0.664 * 1.6 ≈ 3.365.
    const double sigma = 1.6;
    const double mu = std::log(10.0) + 0.664 * sigma;
    rec.exec_time_s = LogNormal(rng, mu, sigma);
    // Relevant queries skew heavier: they join fully-scanned large tables.
    if (rec.relevant) rec.exec_time_s *= 1.4;
    rec.cpu_s = rec.exec_time_s * (2.0 + 6.0 * rng.NextDouble());
    rec.mem_gb = LogNormal(rng, std::log(4.0), 1.1);

    report.prospective_count += rec.prospective;
    report.relevant_count += rec.relevant;
    report.records.push_back(rec);
  }

  size_t over10 = 0;
  for (const CaseStudyRecord& r : report.records) {
    if (r.exec_time_s > 10.0) ++over10;
  }
  report.frac_over_10s =
      report.records.empty()
          ? 0
          : static_cast<double>(over10) / report.records.size();
  return report;
}

std::vector<double> MetricPercentiles(
    const std::vector<CaseStudyRecord>& records, bool relevant_only,
    double (*metric)(const CaseStudyRecord&),
    const std::vector<double>& percentiles) {
  std::vector<double> values;
  for (const CaseStudyRecord& r : records) {
    if (relevant_only && !r.relevant) continue;
    values.push_back(metric(r));
  }
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(percentiles.size());
  for (const double p : percentiles) {
    if (values.empty()) {
      out.push_back(0);
      continue;
    }
    const double idx = p / 100.0 * (values.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = idx - lo;
    out.push_back(values[lo] * (1 - frac) + values[hi] * frac);
  }
  return out;
}

}  // namespace sia
