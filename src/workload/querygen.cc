#include "workload/querygen.h"

#include <z3++.h>

#include "common/date.h"
#include "ir/binder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"

namespace sia {

namespace {

constexpr const char* kLineitemDateCols[] = {"l_shipdate", "l_commitdate",
                                             "l_receiptdate"};

ExprPtr LCol(int i) { return Expr::Column("lineitem", kLineitemDateCols[i]); }
ExprPtr OCol() { return Expr::Column("orders", "o_orderdate"); }

CompareOp RandomCompare(Rng& rng) {
  switch (rng.Uniform(0, 3)) {
    case 0:
      return CompareOp::kLt;
    case 1:
      return CompareOp::kLe;
    case 2:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

// A date literal inside the TPC-H order-date range, biased toward the
// middle years so predicates are neither empty nor vacuous.
ExprPtr RandomDateLiteral(Rng& rng) {
  const int64_t lo = CivilToDay({1992, 6, 1});
  const int64_t hi = CivilToDay({1997, 12, 31});
  return Expr::DateLit(rng.Uniform(lo, hi));
}

ExprPtr RandomInterval(Rng& rng) { return Expr::IntLit(rng.Uniform(1, 120)); }

// One random term; every shape references o_orderdate (§6.3). `lcol`
// forces a specific lineitem column into the first three terms so the
// workload uses all of {l_shipdate, l_commitdate, l_receiptdate}.
ExprPtr RandomTerm(Rng& rng, int lcol_hint) {
  const int lcol = lcol_hint >= 0 ? lcol_hint
                                  : static_cast<int>(rng.Uniform(0, 2));
  const CompareOp cp = RandomCompare(rng);
  // Unpinned terms pick `o_orderdate CP date` a third of the time, with
  // the comparison biased toward upper bounds: combined with the pinned
  // `lcol - o_orderdate CP interval` terms, those are what make
  // single-column reductions possible at a rate comparable to the
  // paper's 233-of-600.
  if (lcol_hint < 0 && rng.Bernoulli(1.0 / 3.0)) {
    const CompareOp bound_cp =
        rng.Bernoulli(0.75)
            ? (rng.Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kLe)
            : cp;
    return Expr::Compare(bound_cp, OCol(), RandomDateLiteral(rng));
  }
  switch (rng.Uniform(lcol_hint >= 0 ? 1 : 0, 6)) {
    case 0:
      // o_orderdate CP date
      return Expr::Compare(cp, OCol(), RandomDateLiteral(rng));
    case 1:
      // lcol - o_orderdate CP interval
      return Expr::Compare(cp, Expr::Arith(ArithOp::kSub, LCol(lcol), OCol()),
                           RandomInterval(rng));
    case 5:
      // lcol CP o_orderdate — plain comparison with no arithmetic; this
      // is the shape syntax-driven transitive closure can chain with
      // `o_orderdate CP date` terms (the paper's TC baseline synthesizes
      // a handful of predicates; all-arithmetic terms would starve it
      // entirely).
      return Expr::Compare(cp, LCol(lcol), OCol());
    case 2:
      // lcol CP o_orderdate + interval
      return Expr::Compare(
          cp, LCol(lcol),
          Expr::Arith(ArithOp::kAdd, OCol(), RandomInterval(rng)));
    case 3: {
      // lcolA - lcolB CP lcol - o_orderdate + interval
      const int a = static_cast<int>(rng.Uniform(0, 2));
      int b = static_cast<int>(rng.Uniform(0, 2));
      if (b == a) b = (b + 1) % 3;
      return Expr::Compare(
          cp, Expr::Arith(ArithOp::kSub, LCol(a), LCol(b)),
          Expr::Arith(ArithOp::kAdd,
                      Expr::Arith(ArithOp::kSub, LCol(lcol), OCol()),
                      RandomInterval(rng)));
    }
    default:
      // o_orderdate - lcol CP interval
      return Expr::Compare(cp, Expr::Arith(ArithOp::kSub, OCol(), LCol(lcol)),
                           RandomInterval(rng));
  }
}

Result<bool> IsSatisfiable(const ExprPtr& where, const Schema& joint,
                           uint32_t timeout_ms) {
  SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(where, joint));
  SmtContext ctx;
  Encoder encoder(&ctx, joint, NullHandling::kIgnore);
  SIA_ASSIGN_OR_RETURN(z3::expr f, encoder.EncodeTrue(bound));
  z3::solver solver(ctx.z3());
  z3::params params(ctx.z3());
  params.set("timeout", timeout_ms);
  solver.set(params);
  solver.add(f);
  return solver.check() == z3::sat;
}

}  // namespace

Result<std::vector<GeneratedQuery>> GenerateWorkload(
    const Catalog& catalog, size_t count, const QueryGenOptions& options) {
  SIA_TRACE_SPAN("workload.generate");
  SIA_COUNTER_ADD("workload.queries_requested", count);
  SIA_ASSIGN_OR_RETURN(Schema joint,
                       catalog.JointSchema({"lineitem", "orders"}));

  std::vector<GeneratedQuery> out;
  out.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const uint64_t seed = options.seed + q * 0x9E37ULL;
    Rng rng(seed);
    bool emitted = false;
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      const int terms =
          static_cast<int>(rng.Uniform(options.min_terms, options.max_terms));
      std::vector<ExprPtr> conjuncts;
      conjuncts.push_back(Expr::Compare(CompareOp::kEq,
                                        Expr::Column("orders", "o_orderkey"),
                                        Expr::Column("lineitem", "l_orderkey")));
      for (int t = 0; t < terms; ++t) {
        // First three terms pin l_shipdate / l_commitdate / l_receiptdate.
        conjuncts.push_back(RandomTerm(rng, t < 3 ? t : -1));
      }
      ExprPtr where = Expr::And(conjuncts);
      if (options.require_satisfiable) {
        SIA_ASSIGN_OR_RETURN(
            bool sat, IsSatisfiable(where, joint, options.sat_timeout_ms));
        if (!sat) continue;
      }
      GeneratedQuery gen;
      gen.term_count = terms;
      gen.seed = seed;
      SelectItem star;
      star.is_star = true;
      gen.query.select_list = {star};
      gen.query.tables = {"lineitem", "orders"};
      gen.query.where = std::move(where);
      gen.sql = gen.query.ToString();
      out.push_back(std::move(gen));
      emitted = true;
      break;
    }
    if (!emitted) {
      return Status::Internal("could not generate a satisfiable query after " +
                              std::to_string(options.max_attempts) +
                              " attempts (seed " + std::to_string(seed) + ")");
    }
  }
  return out;
}

}  // namespace sia
