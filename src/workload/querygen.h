#ifndef SIA_WORKLOAD_QUERYGEN_H_
#define SIA_WORKLOAD_QUERYGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "parser/ast.h"

namespace sia {

// One generated benchmark query following the paper's §6.3 template:
//
//   SELECT * FROM lineitem, orders
//   WHERE o_orderkey = l_orderkey AND Term-1 AND ... AND Term-K
//
// Every term references o_orderdate (so no original conjunct can be
// pushed down to lineitem), K is uniform in [3, 8], and the terms
// collectively reference all three lineitem date columns
// (l_shipdate, l_commitdate, l_receiptdate).
struct GeneratedQuery {
  ParsedQuery query;
  std::string sql;
  int term_count = 0;
  uint64_t seed = 0;
};

struct QueryGenOptions {
  uint64_t seed = 2021;
  int min_terms = 3;
  int max_terms = 8;
  // Satisfiability filter (the paper regenerates unsatisfiable
  // predicates); checked with Z3 on the bound WHERE clause.
  bool require_satisfiable = true;
  uint32_t sat_timeout_ms = 2000;
  // Cap on resampling attempts per emitted query.
  int max_attempts = 50;
};

// Generates `count` queries against the TPC-H catalog. Deterministic for
// a given seed. Returns an error only on internal failures; unsatisfiable
// drafts are silently resampled.
[[nodiscard]] Result<std::vector<GeneratedQuery>> GenerateWorkload(
    const Catalog& catalog, size_t count,
    const QueryGenOptions& options = {});

}  // namespace sia

#endif  // SIA_WORKLOAD_QUERYGEN_H_
