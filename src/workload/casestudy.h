#ifndef SIA_WORKLOAD_CASESTUDY_H_
#define SIA_WORKLOAD_CASESTUDY_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace sia {

// Simulation of the paper's §6.2 MaxCompute case study (Fig. 6).
//
// The original study scanned one day of Alibaba production queries
// (204,287 "syntax-based prospective" queries, of which 26,104 were
// "symbolically relevant") and reported execution-time / CPU / memory
// CDFs per class. Production traces are unavailable, so this module:
//
//   1. synthesizes a query population whose predicates mix cross-table
//      inequality chains (which admit unsatisfaction tuples) and pure
//      cross-table equality links (which do not — for any LHS value some
//      RHS value satisfies the predicate, so no FALSE sample exists);
//   2. runs Sia's real symbolically-relevant probe — "can the solver
//      produce one unsatisfaction tuple for the target table's columns?"
//      (§6.2) — on every prospective query;
//   3. samples resource metrics from heavy-tailed (log-normal)
//      distributions calibrated so that ~74.63% of prospective queries
//      exceed 10 s, the paper's headline number.
//
// The classification logic (step 2) is the part of the case study that
// exercises Sia; the resource marginals only shape the CDF axes.
struct CaseStudyOptions {
  size_t query_count = 500;   // simulated population (scaled down)
  uint64_t seed = 62;
  double relevant_mix = 0.16;  // fraction of probe-friendly predicates
  uint32_t probe_timeout_ms = 1000;
};

struct CaseStudyRecord {
  bool prospective = false;  // syntax check passed
  bool relevant = false;     // unsatisfaction-tuple probe succeeded
  double exec_time_s = 0;
  double cpu_s = 0;
  double mem_gb = 0;
};

struct CaseStudyReport {
  std::vector<CaseStudyRecord> records;
  size_t prospective_count = 0;
  size_t relevant_count = 0;
  // Fraction of prospective queries with exec_time_s > 10.
  double frac_over_10s = 0;
};

[[nodiscard]] Result<CaseStudyReport> SimulateCaseStudy(const Catalog& catalog,
                                          const CaseStudyOptions& options = {});

// CDF helper: returns the values at the given percentiles (0-100) of the
// selected metric over `records` filtered by `relevant_only`.
std::vector<double> MetricPercentiles(const std::vector<CaseStudyRecord>& records,
                                      bool relevant_only,
                                      double (*metric)(const CaseStudyRecord&),
                                      const std::vector<double>& percentiles);

}  // namespace sia

#endif  // SIA_WORKLOAD_CASESTUDY_H_
