#include "obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace sia::obs {

namespace {

// Set once by EnsureEnvInit, then only read (including from atexit).
// Leaked strings: atexit handlers must not race static destructors.
const std::string* metrics_dest = nullptr;
const std::string* trace_dest = nullptr;

void FlushAtExit() { FlushEnvConfiguredOutputs(); }

}  // namespace

void FlushEnvConfiguredOutputs() {
  std::string error;
  if (metrics_dest != nullptr &&
      !MetricsRegistry::Instance().WriteSnapshot(*metrics_dest, &error)) {
    std::fprintf(stderr, "sia: SIA_METRICS flush failed: %s\n", error.c_str());
  }
  if (trace_dest != nullptr &&
      !Tracer::Instance().WriteChromeTrace(*trace_dest, &error)) {
    std::fprintf(stderr, "sia: SIA_TRACE flush failed: %s\n", error.c_str());
  }
}

void EnsureEnvInit() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* metrics_env = std::getenv("SIA_METRICS");
    if (metrics_env != nullptr && metrics_env[0] != '\0') {
      metrics_dest = new std::string(metrics_env);
      MetricsRegistry::SetEnabled(true);
    }
    const char* trace_env = std::getenv("SIA_TRACE");
    if (trace_env != nullptr && trace_env[0] != '\0') {
      trace_dest = new std::string(trace_env);
      Tracer::SetEnabled(true);
    }
    if (metrics_dest != nullptr || trace_dest != nullptr) {
      std::atexit(FlushAtExit);
    }
  });
}

}  // namespace sia::obs
