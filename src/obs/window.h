#ifndef SIA_OBS_WINDOW_H_
#define SIA_OBS_WINDOW_H_

// Time-windowed aggregation over the metrics registry, built entirely on
// the *pull* side: a ring of timestamped MetricsSnapshots sampled by the
// readers (STATS / OBSERVE handlers call Tick()), with windows computed
// as deltas between the newest sample and the sample nearest the window
// start. The serving hot path is never touched — counters and histogram
// buckets are monotonic, so two registry snapshots subtract into exact
// per-window totals, and windowed p50/p95/p99 fall out of the delta
// buckets via the same interpolation the lifetime histogram uses.
//
// Sampling is rate-limited to one snapshot per interval however often
// Tick() is called, so a 10 Hz OBSERVE poller costs at most one registry
// snapshot per second. With only one sample (or a disabled registry)
// every window is legitimately empty: span_us == 0, all maps empty.
//
// The clock is injected (tracer-epoch microseconds in production,
// anything monotonic in tests). Standard-library-only, like the rest of
// src/obs.

#include <cstdint>
#include <deque>
#include <string>

#include "common/sync.h"
#include "obs/metrics.h"

namespace sia::obs {

class WindowedStats {
 public:
  struct Options {
    // Sampling cadence; also the finest window the ring can resolve.
    uint64_t interval_us = 1'000'000;
    // Ring capacity: 61 one-second samples cover the 60s window with one
    // slot of slack for the newest sample.
    size_t slots = 61;
  };

  // One computed window: every counter/histogram value is the delta over
  // the covered span; gauges are the newest sample's instantaneous value.
  struct Window {
    uint64_t span_us = 0;  // actual covered duration (0 = empty window)
    MetricsSnapshot delta;
  };

  WindowedStats() : WindowedStats(Options{}) {}
  explicit WindowedStats(Options options);

  // Samples the registry if at least one interval passed since the last
  // sample (or none exists yet). Cheap no-op otherwise. Thread-safe.
  void Tick(uint64_t now_us) SIA_EXCLUDES(mu_);

  // The delta window covering approximately the trailing `span_us`
  // (clamped to what the ring holds). Empty when fewer than two samples
  // exist.
  Window WindowOver(uint64_t span_us) const SIA_EXCLUDES(mu_);

  // {"1s":{"span_us":...,"counters":{...},...},"10s":{...},"60s":{...}}
  // — each window rendered through the shared FormatSnapshotJson.
  std::string WindowsJson() const SIA_EXCLUDES(mu_);

  size_t sample_count() const SIA_EXCLUDES(mu_);

  WindowedStats(const WindowedStats&) = delete;
  WindowedStats& operator=(const WindowedStats&) = delete;

 private:
  struct Sample {
    uint64_t ts_us = 0;
    MetricsSnapshot snapshot;
  };

  static Window DeltaBetween(const Sample& older, const Sample& newer);

  const Options options_;
  // Leaf among this class's concerns: held while copying ring entries
  // only. Tick() takes the registry snapshot *before* locking, so the
  // registry's own (leaf) lock is never nested under mu_.
  mutable Mutex mu_;
  std::deque<Sample> ring_ SIA_GUARDED_BY(mu_);
};

}  // namespace sia::obs

#endif  // SIA_OBS_WINDOW_H_
