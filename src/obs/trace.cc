#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/obs.h"

namespace sia::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

// See the matching anchor in metrics.cc.
const bool kEnvInitAnchor = (EnsureEnvInit(), true);

// Span nesting depth of the current thread; maintained by TraceSpan even
// while disabled spans are interleaved (inactive spans don't touch it).
thread_local int tls_depth = 0;

thread_local std::shared_ptr<internal::ThreadRing> tls_ring;

// The request-scoped trace ID installed on this thread (0 = none).
thread_local uint64_t tls_trace_id = 0;

// IDs start at 1 so 0 can mean "no context" everywhere.
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

namespace internal {

// Out-of-line access to ThreadRing internals so the collection logic can
// live in Tracer without exposing the ring layout in the header.
class TracerAccess {
 public:
  static void Init(ThreadRing& ring, int tid) {
    // The ring is freshly constructed and unpublished, but the stamp is
    // taken under its lock anyway: uncontended, and it keeps tid_'s
    // every access provably guarded.
    MutexLock lock(&ring.mu_);
    ring.tid_ = tid;
  }

  static void Drain(const std::shared_ptr<ThreadRing>& ring,
                    std::vector<TraceEvent>& out) {
    ThreadRing& r = *ring;
    MutexLock lock(&r.mu_);
    // Before wrapping, next_ stays 0 and the valid range is simply the
    // vector's contents; after wrapping, next_ is the oldest slot.
    const size_t count =
        r.wrapped_ ? ThreadRing::kCapacity : r.events_.size();
    const size_t start = r.wrapped_ ? r.next_ : 0;
    for (size_t i = 0; i < count; ++i) {
      out.push_back(r.events_[(start + i) % ThreadRing::kCapacity]);
    }
  }

  static uint64_t Dropped(const std::shared_ptr<ThreadRing>& ring) {
    ThreadRing& r = *ring;
    MutexLock lock(&r.mu_);
    return r.dropped_;
  }

  static void Clear(const std::shared_ptr<ThreadRing>& ring) {
    ThreadRing& r = *ring;
    MutexLock lock(&r.mu_);
    r.events_.clear();
    r.next_ = 0;
    r.wrapped_ = false;
    r.dropped_ = 0;
  }
};

void ThreadRing::Push(TraceEvent event) {
  MutexLock lock(&mu_);
  event.tid = tid_;
  if (!wrapped_ && events_.size() < kCapacity) {
    events_.push_back(std::move(event));
    if (events_.size() == kCapacity) {
      next_ = 0;
      wrapped_ = true;
    }
    return;
  }
  events_[next_] = std::move(event);
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
}

}  // namespace internal

uint64_t MintTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() { return tls_trace_id; }

TraceContext::TraceContext(uint64_t trace_id) : saved_(tls_trace_id) {
  tls_trace_id = trace_id;
}

TraceContext::~TraceContext() { tls_trace_id = saved_; }

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Instance() {
  static Tracer* const instance = new Tracer();
  return *instance;
}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

internal::ThreadRing& Tracer::ThisThreadRing() {
  if (tls_ring == nullptr) {
    tls_ring = std::make_shared<internal::ThreadRing>();
    MutexLock lock(&mu_);
    internal::TracerAccess::Init(*tls_ring, next_tid_++);
    rings_.push_back(tls_ring);
  }
  return *tls_ring;
}

std::vector<TraceEvent> Tracer::CollectEvents() const {
  std::vector<std::shared_ptr<internal::ThreadRing>> rings;
  {
    MutexLock lock(&mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    internal::TracerAccess::Drain(ring, events);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.depth < b.depth;
                   });
  return events;
}

uint64_t Tracer::DroppedCount() const {
  std::vector<std::shared_ptr<internal::ThreadRing>> rings;
  {
    MutexLock lock(&mu_);
    rings = rings_;
  }
  uint64_t dropped = 0;
  for (const auto& ring : rings) {
    dropped += internal::TracerAccess::Dropped(ring);
  }
  return dropped;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<internal::ThreadRing>> rings;
  {
    MutexLock lock(&mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    internal::TracerAccess::Clear(ring);
  }
}

std::string Tracer::ExportChromeJson() const {
  using internal::JsonEscape;
  const std::vector<TraceEvent> events = CollectEvents();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"cat\":\"sia\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d", event.tid);
    out += buf;
    out += ",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.ts_us);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.dur_us);
    out += buf;
    out += ",\"args\":{\"depth\":";
    std::snprintf(buf, sizeof(buf), "%d", event.depth);
    out += buf;
    out += ",\"trace_id\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.trace_id);
    out += buf;
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteChromeTrace(std::string_view path, std::string* error) const {
  const std::string json = ExportChromeJson();
  const std::string file(path);
  std::FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace file: " + file;
    return false;
  }
  const bool ok = std::fputs(json.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  if (std::fclose(f) != 0 || !ok) {
    if (error != nullptr) *error = "cannot write trace file: " + file;
    return false;
  }
  return true;
}

TraceSpan::TraceSpan(std::string_view name) {
  if (!Tracer::Enabled()) return;
  active_ = true;
  name_ = name;
  depth_ = tls_depth++;
  trace_id_ = tls_trace_id;
  start_us_ = Tracer::Instance().NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --tls_depth;
  Tracer& tracer = Tracer::Instance();
  const uint64_t end_us = tracer.NowMicros();
  TraceEvent event;
  event.name.assign(name_.data(), name_.size());
  event.ts_us = start_us_;
  event.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  event.depth = depth_;
  event.trace_id = trace_id_;
  tracer.ThisThreadRing().Push(std::move(event));
}

}  // namespace sia::obs
