#include "obs/window.h"

#include <algorithm>
#include <utility>

namespace sia::obs {

WindowedStats::WindowedStats(Options options) : options_(options) {}

void WindowedStats::Tick(uint64_t now_us) {
  {
    MutexLock lock(&mu_);
    if (!ring_.empty() &&
        now_us < ring_.back().ts_us + options_.interval_us) {
      return;  // rate limit: at most one sample per interval
    }
  }
  // Snapshot outside mu_ so the registry's lock is never nested under it.
  Sample sample;
  sample.ts_us = now_us;
  sample.snapshot = MetricsRegistry::Instance().Snapshot();
  MutexLock lock(&mu_);
  // Re-check under the lock: a racing Tick may have sampled meanwhile.
  if (!ring_.empty() &&
      sample.ts_us < ring_.back().ts_us + options_.interval_us) {
    return;
  }
  ring_.push_back(std::move(sample));
  while (ring_.size() > std::max<size_t>(2, options_.slots)) {
    ring_.pop_front();
  }
}

WindowedStats::Window WindowedStats::DeltaBetween(const Sample& older,
                                                  const Sample& newer) {
  Window window;
  window.span_us = newer.ts_us - older.ts_us;
  for (const auto& [name, value] : newer.snapshot.counters) {
    const auto it = older.snapshot.counters.find(name);
    const uint64_t before = it == older.snapshot.counters.end() ? 0 : it->second;
    window.delta.counters.emplace(name,
                                  value >= before ? value - before : 0);
  }
  // Gauges are instantaneous — the newest sample IS the windowed value.
  window.delta.gauges = newer.snapshot.gauges;
  for (const auto& [name, h] : newer.snapshot.histograms) {
    const auto it = older.snapshot.histograms.find(name);
    if (it == older.snapshot.histograms.end()) {
      window.delta.histograms.emplace(name, h.DeltaSince(HistogramSnapshot{}));
    } else {
      window.delta.histograms.emplace(name, h.DeltaSince(it->second));
    }
  }
  return window;
}

WindowedStats::Window WindowedStats::WindowOver(uint64_t span_us) const {
  MutexLock lock(&mu_);
  if (ring_.size() < 2) return Window{};
  const Sample& newest = ring_.back();
  // The oldest sample still inside the window start; when the ring does
  // not reach back that far, the oldest sample it holds bounds the span.
  const uint64_t start_us =
      newest.ts_us >= span_us ? newest.ts_us - span_us : 0;
  const Sample* older = &ring_.front();
  for (const Sample& candidate : ring_) {
    if (candidate.ts_us > start_us) break;
    older = &candidate;
  }
  if (older == &newest) older = &ring_[ring_.size() - 2];
  return DeltaBetween(*older, newest);
}

std::string WindowedStats::WindowsJson() const {
  struct Named {
    const char* name;
    uint64_t span_us;
  };
  static constexpr Named kWindows[] = {
      {"1s", 1'000'000}, {"10s", 10'000'000}, {"60s", 60'000'000}};
  std::string out = "{";
  bool first = true;
  for (const Named& w : kWindows) {
    const Window window = WindowOver(w.span_us);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += w.name;
    out += "\":";
    std::string extra = "\"span_us\":" + std::to_string(window.span_us) + ",";
    out += FormatSnapshotJson(window.delta, extra);
  }
  out += "}";
  return out;
}

size_t WindowedStats::sample_count() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

}  // namespace sia::obs
