#ifndef SIA_OBS_TRACE_H_
#define SIA_OBS_TRACE_H_

// RAII span tracing with per-thread ring buffers and Chrome trace-event
// JSON export (loadable in Perfetto / chrome://tracing).
//
//   void Synthesize(...) {
//     SIA_TRACE_SPAN("synth.run");
//     ...
//   }
//
// Span names follow the `stage.substage` convention documented in
// DESIGN.md ("Observability"). When tracing is disabled (the default) a
// span site costs one relaxed atomic load; -DSIA_OBS_DISABLED compiles
// the macro out entirely. Each thread writes completed spans into its own
// fixed-capacity ring (oldest events are overwritten and counted as
// dropped), so recording never blocks another thread.
//
// Standard-library-only, like the rest of src/obs (see metrics.h).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"  // for SIA_OBS_CONCAT_

namespace sia::obs {

// A completed span. Timestamps are microseconds since the tracer's epoch
// (first use in the process); `depth` is the span-nesting depth on its
// thread at the time the span opened (0 = top level). `trace_id` is the
// request-scoped ID installed by a TraceContext (0 = no request context),
// which is how one query's admission, background synthesis, and
// promotion decision link up across threads in the Chrome export.
struct TraceEvent {
  std::string name;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  int tid = 0;
  int depth = 0;
  uint64_t trace_id = 0;
};

namespace internal {

// One ring per thread, owned jointly by the thread (thread_local
// shared_ptr) and the tracer's registry, so events survive thread exit.
class ThreadRing {
 public:
  static constexpr size_t kCapacity = 8192;

  void Push(TraceEvent event) SIA_EXCLUDES(mu_);

 private:
  friend class TracerAccess;
  // Per-ring leaf lock: normally touched only by the owning thread; the
  // exporter (TracerAccess) takes it ring by ring, never holding two.
  Mutex mu_;
  // ring; valid range depends on wrapped_
  std::vector<TraceEvent> events_ SIA_GUARDED_BY(mu_);
  size_t next_ SIA_GUARDED_BY(mu_) = 0;
  bool wrapped_ SIA_GUARDED_BY(mu_) = false;
  uint64_t dropped_ SIA_GUARDED_BY(mu_) = 0;
  int tid_ SIA_GUARDED_BY(mu_) = 0;
};

}  // namespace internal

class Tracer {
 public:
  static Tracer& Instance();

  // One relaxed load; the gate every span site checks first.
  static bool Enabled() {
#ifdef SIA_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Microseconds since the tracer epoch (steady clock).
  uint64_t NowMicros() const;

  // The calling thread's ring, created and registered on first use.
  internal::ThreadRing& ThisThreadRing() SIA_EXCLUDES(mu_);

  // Snapshot of every recorded span across all threads, sorted by start
  // time (ties broken by depth so parents precede children).
  std::vector<TraceEvent> CollectEvents() const;

  // Total events overwritten across all rings.
  uint64_t DroppedCount() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — complete events
  // (ph "X") with pid 1 and the per-thread tid.
  std::string ExportChromeJson() const;
  bool WriteChromeTrace(std::string_view path,
                        std::string* error = nullptr) const;

  // Drops all recorded events (rings stay registered).
  void Clear();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  std::chrono::steady_clock::time_point epoch_;
  // Registry lock, ordered before any ring's mu_ (ThisThreadRing holds
  // it while stamping the new ring's tid under that ring's lock);
  // the collectors copy rings_ out under mu_ and drain each ring after
  // releasing it.
  mutable Mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadRing>> rings_
      SIA_GUARDED_BY(mu_);
  int next_tid_ SIA_GUARDED_BY(mu_) = 1;

  static std::atomic<bool> enabled_;
};

// --- Request-scoped trace context ------------------------------------
//
// A trace ID is minted once per admitted request (MintTraceId, never 0)
// and installed on whichever thread is currently doing that request's
// work via a TraceContext — the worker serving the connection, then the
// background lane running its synthesis job, then the thread recording
// its promotion evidence. Every TraceSpan opened while a context is
// installed stamps the ID into its event, so the whole journey is one
// linked trace. Installation is two thread-local stores, no atomics —
// cheap enough to run unconditionally, traced or not.

// Process-unique, monotonically increasing, never 0.
uint64_t MintTraceId();

// The calling thread's installed trace ID (0 = none).
uint64_t CurrentTraceId();

// RAII: installs `trace_id` for the scope, restoring the previous ID on
// exit (contexts nest; the innermost wins).
class TraceContext {
 public:
  explicit TraceContext(uint64_t trace_id);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  uint64_t saved_ = 0;
};

// RAII span: captures the start time at construction and records a
// completed TraceEvent at destruction. Inert (one relaxed load) when
// tracing is disabled at construction time. `name` must outlive the span
// — in practice a string literal or a caller-owned stage string.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string_view name_;
  uint64_t start_us_ = 0;
  uint64_t trace_id_ = 0;  // CurrentTraceId() at construction
  int depth_ = 0;
  bool active_ = false;
};

}  // namespace sia::obs

#ifdef SIA_OBS_DISABLED
#define SIA_TRACE_SPAN(name) static_cast<void>(0)
#else
// Opens a span covering the rest of the enclosing scope. __COUNTER__ keys
// the variable name so two spans may share a line (same idiom as
// SIA_ASSIGN_OR_RETURN in src/common/status.h).
#define SIA_TRACE_SPAN(name) \
  ::sia::obs::TraceSpan SIA_OBS_CONCAT_(sia_obs_trace_span_, __COUNTER__)(name)
#endif  // SIA_OBS_DISABLED

#endif  // SIA_OBS_TRACE_H_
