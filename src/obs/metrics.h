#ifndef SIA_OBS_METRICS_H_
#define SIA_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with JSON snapshot export.
//
// Layering: src/obs sits *below* src/common (sia_common links sia_obs so
// fault injection and deadlines can report), so this library depends only
// on the C++ standard library — errors are surfaced as bool + message, not
// sia::Status. (common/sync.h is fine: it is header-only and
// standard-library-only by contract, existing exactly so annotated locks
// can be used below the sia_common link boundary.)
//
// Cost discipline (mirrors FaultRegistry in src/common/fault_injection.h):
// when no metrics sink is armed, every instrumentation site costs exactly
// one relaxed atomic load. The SIA_COUNTER_* / SIA_HISTOGRAM_* macros
// additionally cache the registry lookup in a function-local static, so an
// armed hot-path site is one relaxed load + one relaxed RMW. Building with
// -DSIA_OBS_DISABLED (CMake option SIA_DISABLE_OBS) compiles every site
// out entirely; that build is the overhead-guard baseline in check.sh.
//
// Metric names are dotted lowercase `stage.substage[.detail]` strings; the
// catalog lives in DESIGN.md ("Observability").

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/sync.h"

namespace sia::obs {

// Monotonic event count. All operations are relaxed: totals are exact,
// but readers may observe increments out of order with other metrics.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-writer-wins instantaneous value. Add() is a CAS loop because
// std::atomic<double>::fetch_add is not guaranteed lock-free everywhere.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram for non-negative samples (latencies in
// microseconds by convention). Buckets are powers of two: bucket 0 holds
// [0, 1), bucket i holds [2^(i-1), 2^i) for 1 <= i < kBuckets-1, and the
// last bucket is the overflow [2^(kBuckets-2), inf) — 28 buckets cover
// sub-microsecond through ~67 s, plenty for any solver call we allow.
// Percentiles interpolate linearly inside the owning bucket and are
// clamped to the observed [min, max].
class Histogram {
 public:
  static constexpr int kBuckets = 28;

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min()/Max() are 0 until the first Record().
  double Min() const;
  double Max() const;
  // q in [0, 1]; returns 0 when empty.
  double Percentile(double q) const;

  static int BucketIndex(double value);
  static double BucketLowerBound(int index);
  static double BucketUpperBound(int index);  // +inf for the last bucket
  uint64_t BucketCountAt(int index) const {
    return buckets_[static_cast<size_t>(index)].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Stored as +/-inf sentinels until the first sample; accessors hide that.
  std::atomic<double> min_;
  std::atomic<double> max_;

 public:
  Histogram();
};

// Point-in-time copy of one histogram: the monotonic fields (count, sum,
// buckets) subtract cleanly between two snapshots, which is what the
// windowed aggregation in window.h does. Percentile() runs the same
// bucket-interpolation algorithm as the live Histogram, clamped to the
// snapshot's [min, max].
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};

  double Percentile(double q) const;
  // this - older, field-wise, for the monotonic fields; min/max are
  // re-derived from the delta buckets' bounds (a window has no exact
  // extrema — only the lifetime histogram tracks those).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& older) const;
};

// Structured point-in-time copy of the whole registry. The one shared
// snapshot-to-JSON formatter (FormatSnapshotJson) renders it for STATS,
// OBSERVE, sia_lint --metrics-out, and the windowed deltas alike.
struct MetricsSnapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;
};

// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
//  p50,p95,p99,buckets:[...]}}} with names in sorted order.
// `extra_fields` is raw JSON spliced verbatim right after the opening
// brace (e.g. "\"span_us\":1000000," — trailing comma included); empty
// means none.
std::string FormatSnapshotJson(const MetricsSnapshot& snapshot,
                               std::string_view extra_fields = {});

// Leaky process-wide singleton. Metric objects are created on first use
// and never destroyed or erased — ResetAll() zeroes values but keeps every
// entry, so references cached by the macros below stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // One relaxed load; the gate every instrumentation site checks first.
  static bool Enabled() {
#ifdef SIA_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter& GetCounter(std::string_view name) SIA_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) SIA_EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name) SIA_EXCLUDES(mu_);

  // Zero every value; never removes entries (cached references stay valid).
  void ResetAll() SIA_EXCLUDES(mu_);

  // Structured copy of every metric's current value.
  MetricsSnapshot Snapshot() const SIA_EXCLUDES(mu_);

  // FormatSnapshotJson(Snapshot()) — kept for the many existing callers.
  std::string SnapshotJson() const SIA_EXCLUDES(mu_);

  // dest is "stderr" or a file path. Returns false and sets *error (if
  // non-null) on I/O failure.
  bool WriteSnapshot(std::string_view dest, std::string* error = nullptr) const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  // Leaf lock of the whole tree: component locks (thread pool, admission
  // queue, fault registry) may be held when a gauge/counter lookup takes
  // mu_, so nothing here may call back out of src/obs. Guards only the
  // name->object maps; the metric objects themselves are lock-free.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SIA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SIA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SIA_GUARDED_BY(mu_);

  static std::atomic<bool> enabled_;
};

// Convenience helpers for sites whose metric name is built at runtime
// (e.g. "fault.hit." + point). No-ops when the registry is disabled; the
// name lookup happens on every call, so prefer the macros for hot paths
// with literal names.
void IncrementCounter(std::string_view name, uint64_t delta = 1);
void SetGauge(std::string_view name, double value);
void AddGauge(std::string_view name, double delta);
void RecordHistogram(std::string_view name, double value);

namespace internal {
// Escapes a string for embedding in a JSON string literal (shared with
// the tracer's Chrome-trace export).
std::string JsonEscape(std::string_view s);
// Formats a double as a JSON number; non-finite values become 0.
std::string JsonNumber(double value);
}  // namespace internal

}  // namespace sia::obs

#define SIA_OBS_CONCAT_INNER_(a, b) a##b
#define SIA_OBS_CONCAT_(a, b) SIA_OBS_CONCAT_INNER_(a, b)

#ifdef SIA_OBS_DISABLED
#define SIA_COUNTER_INC(name) static_cast<void>(0)
#define SIA_COUNTER_ADD(name, delta) static_cast<void>(0)
#define SIA_HISTOGRAM_RECORD(name, value) static_cast<void>(0)
#else
// `name` must be a string literal (the registry lookup is cached in a
// function-local static, one per expansion site).
#define SIA_COUNTER_INC(name) SIA_COUNTER_ADD(name, 1)
#define SIA_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    if (::sia::obs::MetricsRegistry::Enabled()) {                          \
      static ::sia::obs::Counter& sia_obs_counter_ =                       \
          ::sia::obs::MetricsRegistry::Instance().GetCounter(name);        \
      sia_obs_counter_.Increment(static_cast<uint64_t>(delta));            \
    }                                                                      \
  } while (0)
#define SIA_HISTOGRAM_RECORD(name, value)                                  \
  do {                                                                     \
    if (::sia::obs::MetricsRegistry::Enabled()) {                          \
      static ::sia::obs::Histogram& sia_obs_histogram_ =                   \
          ::sia::obs::MetricsRegistry::Instance().GetHistogram(name);      \
      sia_obs_histogram_.Record(static_cast<double>(value));               \
    }                                                                      \
  } while (0)
#endif  // SIA_OBS_DISABLED

#endif  // SIA_OBS_METRICS_H_
