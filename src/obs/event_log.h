#ifndef SIA_OBS_EVENT_LOG_H_
#define SIA_OBS_EVENT_LOG_H_

// Bounded in-memory log of notable serving events — sheds, demotions,
// shadow digest mismatches, promotions, slow requests — with ring
// eviction: the newest kCapacity events win, older ones are overwritten
// and counted as dropped. OBSERVE reports the ring's contents so an
// operator polling sia_top sees *why* the windowed numbers moved, not
// just that they did.
//
// Cost discipline matches the registry: a disabled site costs one
// relaxed atomic load (the SIA_EVENT macro gates on
// MetricsRegistry::Enabled() and compiles out under -DSIA_OBS_DISABLED).
// Recording takes one leaf mutex; events carry the recording thread's
// CurrentTraceId() so they link into the request's trace.
//
// Standard-library-only, like the rest of src/obs.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace sia::obs {

struct Event {
  uint64_t ts_us = 0;     // tracer-epoch microseconds
  uint64_t trace_id = 0;  // CurrentTraceId() at the recording site
  std::string kind;       // dotted lowercase, e.g. "server.shed"
  std::string detail;     // free-form, one line
};

class EventLog {
 public:
  static constexpr size_t kCapacity = 256;

  static EventLog& Instance();

  // Appends one event (stamped with the tracer clock and the calling
  // thread's trace ID), evicting the oldest when full. Callers should
  // gate on MetricsRegistry::Enabled() — SIA_EVENT does.
  void Record(std::string_view kind, std::string_view detail)
      SIA_EXCLUDES(mu_);

  // Oldest-to-newest copy of the ring.
  std::vector<Event> Snapshot() const SIA_EXCLUDES(mu_);

  // Events evicted by ring overwrite since the last Clear().
  uint64_t DroppedCount() const SIA_EXCLUDES(mu_);

  void Clear() SIA_EXCLUDES(mu_);

  // [{"ts_us":...,"trace_id":...,"kind":"...","detail":"..."},...]
  std::string Json() const SIA_EXCLUDES(mu_);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

 private:
  EventLog() = default;

  // Leaf lock, same standing as the registry's: component locks may be
  // held at a recording site, and nothing here calls back out of
  // src/obs (the tracer clock and trace ID are lock-free reads).
  mutable Mutex mu_;
  std::vector<Event> ring_ SIA_GUARDED_BY(mu_);
  size_t next_ SIA_GUARDED_BY(mu_) = 0;
  bool wrapped_ SIA_GUARDED_BY(mu_) = false;
  uint64_t dropped_ SIA_GUARDED_BY(mu_) = 0;
};

}  // namespace sia::obs

#ifdef SIA_OBS_DISABLED
#define SIA_EVENT(kind, detail) static_cast<void>(0)
#else
// `detail` may be a runtime-built string; it is only evaluated when the
// registry is enabled, so disabled sites pay one relaxed load and never
// build the string.
#define SIA_EVENT(kind, detail)                                   \
  do {                                                            \
    if (::sia::obs::MetricsRegistry::Enabled()) {                 \
      ::sia::obs::EventLog::Instance().Record((kind), (detail));  \
    }                                                             \
  } while (0)
#endif  // SIA_OBS_DISABLED

#endif  // SIA_OBS_EVENT_LOG_H_
