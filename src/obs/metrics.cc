#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "obs/obs.h"

namespace sia::obs {

std::atomic<bool> MetricsRegistry::enabled_{false};

namespace {

// Force the SIA_METRICS / SIA_TRACE environment scan to run during static
// initialization of any binary that links an instrumented translation
// unit (every instrumented TU includes this header's library). Anchored
// here (and in trace.cc) because these TUs are always retained by the
// linker once any obs symbol is referenced.
const bool kEnvInitAnchor = (EnsureEnvInit(), true);

void AtomicDoubleAdd(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMin(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::Add(double delta) { AtomicDoubleAdd(value_, delta); }

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

int Histogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  const double cap = static_cast<double>(uint64_t{1} << (kBuckets - 2));
  if (value >= cap) return kBuckets - 1;
  // value in [1, 2^(kBuckets-2)): bucket = floor(log2(value)) + 1, via the
  // bit width of the truncated value.
  const auto truncated = static_cast<uint64_t>(value);
  return std::bit_width(truncated);
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  return static_cast<double>(uint64_t{1} << (index - 1));
}

double Histogram::BucketUpperBound(int index) {
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t{1} << index);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(sum_, value);
  AtomicDoubleMin(min_, value);
  AtomicDoubleMax(max_, value);
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::Percentile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile in [1, total]; linear interpolation
  // inside the bucket that owns that rank.
  const double target_rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target_rank) {
      const double lower = BucketLowerBound(i);
      double upper = BucketUpperBound(i);
      if (std::isinf(upper)) upper = Max();
      if (upper < lower) upper = lower;
      const double fraction =
          (target_rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      double result = lower + fraction * (upper - lower);
      if (result < Min()) result = Min();
      if (result > Max()) result = Max();
      return result;
    }
    cumulative += in_bucket;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace internal {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace internal

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same bucket-interpolation algorithm as the live Histogram, against
  // the snapshot's frozen fields.
  const double target_rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target_rank) {
      const double lower = Histogram::BucketLowerBound(i);
      double upper = Histogram::BucketUpperBound(i);
      if (std::isinf(upper)) upper = max;
      if (upper < lower) upper = lower;
      const double fraction = (target_rank - static_cast<double>(cumulative)) /
                              static_cast<double>(in_bucket);
      double result = lower + fraction * (upper - lower);
      if (result < min) result = min;
      if (result > max) result = max;
      return result;
    }
    cumulative += in_bucket;
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& older) const {
  HistogramSnapshot delta;
  delta.count = count >= older.count ? count - older.count : 0;
  delta.sum = sum >= older.sum ? sum - older.sum : 0.0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const auto idx = static_cast<size_t>(i);
    delta.buckets[idx] =
        buckets[idx] >= older.buckets[idx] ? buckets[idx] - older.buckets[idx]
                                           : 0;
  }
  // A window's extrema are unknowable from bucket deltas; the occupied
  // buckets' bounds are the honest stand-in (the overflow bucket's upper
  // bound falls back to the lifetime max).
  bool any = false;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (delta.buckets[static_cast<size_t>(i)] == 0) continue;
    if (!any) delta.min = Histogram::BucketLowerBound(i);
    any = true;
    double upper = Histogram::BucketUpperBound(i);
    if (std::isinf(upper)) upper = max;
    delta.max = upper;
  }
  return delta;
}

std::string FormatSnapshotJson(const MetricsSnapshot& snapshot,
                               std::string_view extra_fields) {
  using internal::JsonEscape;
  using internal::JsonNumber;
  std::string out = "{";
  out += extra_fields;
  out += "\"counters\":{";
  bool first = true;
  char buf[32];
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count);
    out += buf;
    out += ",\"sum\":";
    out += JsonNumber(h.sum);
    out += ",\"min\":";
    out += JsonNumber(h.min);
    out += ",\"max\":";
    out += JsonNumber(h.max);
    out += ",\"p50\":";
    out += JsonNumber(h.Percentile(0.50));
    out += ",\"p95\":";
    out += JsonNumber(h.Percentile(0.95));
    out += ",\"p99\":";
    out += JsonNumber(h.Percentile(0.99));
    out += ",\"buckets\":[";
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (i > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%" PRIu64,
                    h.buckets[static_cast<size_t>(i)]);
      out += buf;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[static_cast<size_t>(i)] = histogram->BucketCountAt(i);
    }
    out.histograms.emplace(name, std::move(h));
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  return FormatSnapshotJson(Snapshot());
}

bool MetricsRegistry::WriteSnapshot(std::string_view dest,
                                    std::string* error) const {
  const std::string json = SnapshotJson();
  if (dest == "stderr") {
    std::fprintf(stderr, "%s\n", json.c_str());
    return true;
  }
  const std::string path(dest);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open metrics file: " + path;
    return false;
  }
  const bool ok = std::fputs(json.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  if (std::fclose(f) != 0 || !ok) {
    if (error != nullptr) *error = "cannot write metrics file: " + path;
    return false;
  }
  return true;
}

void IncrementCounter(std::string_view name, uint64_t delta) {
  if (!MetricsRegistry::Enabled()) return;
  MetricsRegistry::Instance().GetCounter(name).Increment(delta);
}

void SetGauge(std::string_view name, double value) {
  if (!MetricsRegistry::Enabled()) return;
  MetricsRegistry::Instance().GetGauge(name).Set(value);
}

void AddGauge(std::string_view name, double delta) {
  if (!MetricsRegistry::Enabled()) return;
  MetricsRegistry::Instance().GetGauge(name).Add(delta);
}

void RecordHistogram(std::string_view name, double value) {
  if (!MetricsRegistry::Enabled()) return;
  MetricsRegistry::Instance().GetHistogram(name).Record(value);
}

}  // namespace sia::obs
