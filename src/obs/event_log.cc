#include "obs/event_log.h"

#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace sia::obs {

EventLog& EventLog::Instance() {
  static EventLog* const instance = new EventLog();
  return *instance;
}

void EventLog::Record(std::string_view kind, std::string_view detail) {
  Event event;
  event.ts_us = Tracer::Instance().NowMicros();
  event.trace_id = CurrentTraceId();
  event.kind.assign(kind.data(), kind.size());
  event.detail.assign(detail.data(), detail.size());
  MutexLock lock(&mu_);
  if (!wrapped_ && ring_.size() < kCapacity) {
    ring_.push_back(std::move(event));
    if (ring_.size() == kCapacity) {
      next_ = 0;
      wrapped_ = true;
    }
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
}

std::vector<Event> EventLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<Event> out;
  const size_t count = wrapped_ ? kCapacity : ring_.size();
  const size_t start = wrapped_ ? next_ : 0;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % kCapacity]);
  }
  return out;
}

uint64_t EventLog::DroppedCount() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void EventLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::string EventLog::Json() const {
  using internal::JsonEscape;
  const std::vector<Event> events = Snapshot();
  std::string out = "[";
  bool first = true;
  char buf[32];
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ts_us\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.ts_us);
    out += buf;
    out += ",\"trace_id\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, event.trace_id);
    out += buf;
    out += ",\"kind\":\"";
    out += JsonEscape(event.kind);
    out += "\",\"detail\":\"";
    out += JsonEscape(event.detail);
    out += "\"}";
  }
  out += "]";
  return out;
}

}  // namespace sia::obs
