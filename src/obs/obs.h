#ifndef SIA_OBS_OBS_H_
#define SIA_OBS_OBS_H_

// Environment-driven activation for the observability subsystem:
//
//   SIA_METRICS=stderr        dump a metrics snapshot to stderr at exit
//   SIA_METRICS=/tmp/m.json   ... or to a file
//   SIA_TRACE=/tmp/t.json     write a Chrome trace-event file at exit
//
// EnsureEnvInit() is idempotent (call_once) and is triggered from static
// initializers in metrics.cc / trace.cc, so any binary linking sia_obs
// honors the variables without explicit setup. Tools that want eager
// output (sia_lint --metrics-out / --trace-out) call the registries
// directly instead.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia::obs {

// Reads SIA_METRICS / SIA_TRACE once per process; enables the matching
// subsystem and registers an atexit flush for each variable that is set.
void EnsureEnvInit();

// Writes the env-configured outputs immediately (no-op when neither
// variable was set). Failures are reported on stderr, never fatal.
void FlushEnvConfiguredOutputs();

}  // namespace sia::obs

#endif  // SIA_OBS_OBS_H_
