#include "catalog/catalog.h"

#include "common/strings.h"

namespace sia {

void Catalog::RegisterTable(const std::string& name, Schema schema) {
  tables_[ToLower(name)] = std::move(schema);
}

Result<Schema> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.contains(ToLower(name));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) out.push_back(name);
  return out;
}

Result<Schema> Catalog::JointSchema(
    const std::vector<std::string>& tables) const {
  Schema joint;
  for (const std::string& t : tables) {
    SIA_ASSIGN_OR_RETURN(Schema s, GetTable(t));
    for (const ColumnDef& c : s.columns()) joint.AddColumn(c);
  }
  return joint;
}

Catalog Catalog::TpchCatalog() {
  Catalog catalog;

  Schema lineitem;
  auto add = [](Schema* s, const char* table, const char* name, DataType t,
                bool nullable = false) {
    s->AddColumn(ColumnDef{table, name, t, nullable});
  };
  add(&lineitem, "lineitem", "l_orderkey", DataType::kInteger);
  add(&lineitem, "lineitem", "l_partkey", DataType::kInteger);
  add(&lineitem, "lineitem", "l_linenumber", DataType::kInteger);
  add(&lineitem, "lineitem", "l_quantity", DataType::kInteger);
  add(&lineitem, "lineitem", "l_extendedprice", DataType::kDouble);
  add(&lineitem, "lineitem", "l_discount", DataType::kDouble);
  add(&lineitem, "lineitem", "l_tax", DataType::kDouble);
  add(&lineitem, "lineitem", "l_shipdate", DataType::kDate);
  add(&lineitem, "lineitem", "l_commitdate", DataType::kDate);
  add(&lineitem, "lineitem", "l_receiptdate", DataType::kDate);
  catalog.RegisterTable("lineitem", std::move(lineitem));

  Schema orders;
  add(&orders, "orders", "o_orderkey", DataType::kInteger);
  add(&orders, "orders", "o_custkey", DataType::kInteger);
  add(&orders, "orders", "o_totalprice", DataType::kDouble);
  add(&orders, "orders", "o_orderdate", DataType::kDate);
  add(&orders, "orders", "o_shippriority", DataType::kInteger);
  catalog.RegisterTable("orders", std::move(orders));

  return catalog;
}

}  // namespace sia
