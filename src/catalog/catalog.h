#ifndef SIA_CATALOG_CATALOG_H_
#define SIA_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"

namespace sia {

// Table metadata registry. Sia binds SQL queries against a catalog; the
// execution engine attaches storage to the same table names.
class Catalog {
 public:
  // Registers `schema` under `name` (case-insensitive). Overwrites any
  // existing definition.
  void RegisterTable(const std::string& name, Schema schema);

  // Returns the schema for `name`, or NotFound.
  [[nodiscard]] Result<Schema> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  // Registered table names, sorted.
  std::vector<std::string> TableNames() const;

  // Builds the joint schema for a FROM list: the concatenation of the
  // tables' schemas in order, with column `table` fields set so that
  // qualified lookup works.
  [[nodiscard]] Result<Schema> JointSchema(const std::vector<std::string>& tables) const;

  // A catalog pre-populated with the TPC-H `lineitem` and `orders`
  // tables (the subset of columns Sia's evaluation uses, plus the join
  // keys and a few measure columns for realistic row widths).
  static Catalog TpchCatalog();

 private:
  std::map<std::string, Schema> tables_;  // keys lowercased
};

}  // namespace sia

#endif  // SIA_CATALOG_CATALOG_H_
