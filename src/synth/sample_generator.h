#ifndef SIA_SYNTH_SAMPLE_GENERATOR_H_
#define SIA_SYNTH_SAMPLE_GENERATOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include <z3++.h>

#include "common/deadline.h"
#include "common/status.h"
#include "ir/expr.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace sia {

// Options controlling solver-backed sample generation.
struct SampleGenOptions {
  // Deprecated alias: the per-solver-call cap, kept so existing callers
  // and benches compile; prefer setting `deadline` for end-to-end
  // budgets. Folded with `deadline` into the SolverBudget every check()
  // call draws from.
  uint32_t solver_timeout_ms = kDefaultSolverTimeoutMs;
  // End-to-end wall-clock budget for the whole generator (infinite by
  // default); per-call solver timeouts never exceed what remains of it.
  Deadline deadline;
  uint32_t random_seed = 7;
  // Domain box padding applied around the constants found in the
  // predicate (paper §5.3 "additional heuristics"): samples are first
  // sought inside [min_const - pad, max_const + pad]; the box is dropped
  // if it makes the query UNSAT.
  int64_t domain_pad = 200;
  bool prefer_nonzero = true;  // the paper's "values != 0" heuristic
};

// Generates satisfaction tuples (TRUE samples), unsatisfaction tuples
// (FALSE samples), and the two kinds of counter-examples for one
// (predicate, Cols') pair, sharing a Z3 context across calls so that the
// iterative learning loop is incremental.
//
// All methods return at most `count` samples; fewer (possibly zero) when
// the space is exhausted or the solver times out. Duplicates are excluded
// via accumulated NotOld constraints exactly as in §5.3: every sample
// ever produced by this generator (including those fed back as counter-
// examples) is excluded from future models.
class SampleGenerator {
 public:
  // `predicate` must be bound against `schema`. `cols` is Cols' — the
  // target column subset, given as schema indices (sorted).
  SampleGenerator(const ExprPtr& predicate, const Schema& schema,
                  std::vector<size_t> cols,
                  const SampleGenOptions& options = SampleGenOptions());

  // TRUE samples: models of  p ∧ NotOld  projected onto Cols'.
  [[nodiscard]] Result<std::vector<Tuple>> GenerateTrue(size_t count);

  // FALSE samples: models of  ∃ Cols'. NotOld ∧ (∀ other. ¬p).
  [[nodiscard]] Result<std::vector<Tuple>> GenerateFalse(size_t count);

  // TRUE counter-examples: satisfy p, rejected by `learned` (p ∧ ¬p₁ ∧
  // NotOld). `learned` must use only Cols'.
  [[nodiscard]] Result<std::vector<Tuple>> CounterTrue(const ExprPtr& learned,
                                         size_t count);

  // FALSE counter-examples: unsatisfaction tuples accepted by `learned`
  // (∃ Cols'. p₁ ∧ NotOld ∧ ∀ other. ¬p).
  [[nodiscard]] Result<std::vector<Tuple>> CounterFalse(const ExprPtr& learned,
                                          size_t count);

  // True when the most recent Generate*/Counter* call stopped because the
  // sample space was exhausted (solver returned UNSAT), as opposed to
  // reaching `count` or timing out. CounterFalse exhaustion is the
  // paper's optimality certificate (Lemma 4).
  bool exhausted() const { return exhausted_; }

  // True when the most recent Generate*/Counter* call was cut short by
  // the end-to-end deadline (as opposed to a per-call solver timeout,
  // which shows up as a plain short return). Counterpart of exhausted().
  bool deadline_expired() const { return deadline_expired_; }

  // Total solver check() calls issued (efficiency accounting).
  size_t solver_calls() const { return solver_calls_; }

  const std::vector<size_t>& cols() const { return cols_; }

 private:
  // Builds  ∀ other. ¬p  (or just ¬p when every column of p is in Cols').
  [[nodiscard]] Result<z3::expr> BuildUnsatCore();

  // Shared sampling loop: repeatedly check `base ∧ NotOld (∧ hints)`,
  // extract Cols' tuples, and extend NotOld. `stage` names the pipeline
  // stage for deadline/fault reporting.
  [[nodiscard]] Result<std::vector<Tuple>> Sample(const z3::expr& base, size_t count,
                                    std::vector<Tuple>* seen,
                                    std::string_view stage);

  // The conjunction of not-equal-to-previous-sample constraints for the
  // given history.
  [[nodiscard]] Result<z3::expr> NotOld(const std::vector<Tuple>& seen);

  // Optional domain-box / non-zero hint constraints, by strength layer.
  std::vector<z3::expr> HintLayers();

  ExprPtr predicate_;
  const Schema& schema_;
  std::vector<size_t> cols_;
  SampleGenOptions options_;

  SmtContext ctx_;
  Encoder encoder_;

  std::vector<Tuple> seen_true_;
  std::vector<Tuple> seen_false_;
  bool exhausted_ = false;
  bool deadline_expired_ = false;
  size_t solver_calls_ = 0;

  // Cached constant range scanned from the predicate.
  int64_t const_lo_ = 0;
  int64_t const_hi_ = 0;
  bool has_consts_ = false;
};

}  // namespace sia

#endif  // SIA_SYNTH_SAMPLE_GENERATOR_H_
