#include "synth/verifier.h"

#include <z3++.h>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"

namespace sia {

Result<VerifyResult> VerifyImplies(const ExprPtr& original,
                                   const ExprPtr& learned,
                                   const Schema& schema,
                                   const VerifyOptions& options) {
  SIA_TRACE_SPAN("verify.check");
  SIA_COUNTER_INC("verify.checks");
  SIA_FAULT_INJECT("verify.check");
  SmtContext ctx;
  ctx.set_budget(SolverBudget{options.deadline, options.solver_timeout_ms});
  Encoder encoder(&ctx, schema, NullHandling::kThreeValued);

  // Validity (Def. 2) fails iff some tuple satisfies p (evaluates to
  // TRUE) while p₁ does not (evaluates to FALSE or NULL): check
  // p ∧ ¬p₁ for satisfiability.
  SIA_ASSIGN_OR_RETURN(z3::expr p_true, encoder.EncodeTrue(original));
  SIA_ASSIGN_OR_RETURN(z3::expr p1_not, encoder.EncodeNotTrue(learned));

  z3::solver solver(ctx.z3());
  solver.add(p_true && p1_not);

  SIA_ASSIGN_OR_RETURN(z3::check_result res,
                       ctx.Check(&solver, nullptr, "verify.check"));
  switch (res) {
    case z3::unsat:
      SIA_COUNTER_INC("verify.valid");
      return VerifyResult::kValid;
    case z3::sat:
      SIA_COUNTER_INC("verify.invalid");
      return VerifyResult::kInvalid;
    case z3::unknown:
      SIA_COUNTER_INC("verify.unknown");
      return VerifyResult::kUnknown;
  }
  return Status::SolverError("unexpected solver result");
}

Result<VerifyResult> VerifyEquivalent(const ExprPtr& p, const ExprPtr& q,
                                      const Schema& schema,
                                      const VerifyOptions& options) {
  SIA_ASSIGN_OR_RETURN(VerifyResult fwd, VerifyImplies(p, q, schema, options));
  if (fwd != VerifyResult::kValid) return fwd;
  return VerifyImplies(q, p, schema, options);
}

}  // namespace sia
