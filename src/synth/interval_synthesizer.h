#ifndef SIA_SYNTH_INTERVAL_SYNTHESIZER_H_
#define SIA_SYNTH_INTERVAL_SYNTHESIZER_H_

#include "common/deadline.h"
#include "common/status.h"
#include "ir/expr.h"
#include "synth/synthesizer.h"
#include "types/schema.h"

namespace sia {

// Exact single-column synthesis via optimization modulo theories.
//
// For |Cols'| = 1 the feasible restrictions of a linear-arithmetic
// predicate form a finite union of intervals on that column; the convex
// hull [lo, hi] is computable exactly with Z3's optimization engine
// (two objective queries), with no learning loop at all. The returned
// predicate  lo <= col AND col <= hi  is always a valid reduction, and
// one additional ∃∀ check decides whether the feasible set is exactly
// the hull (then the result is optimal in the paper's Def. 3 sense).
//
// This module is an extension beyond the paper — the specialized,
// solver-exact counterpart that the CEGIS loop is compared against in
// bench_ablation_interval. It deliberately only handles one column;
// multi-column optimal reductions are general polytopes and remain the
// learning loop's domain.
struct IntervalOptions {
  // Deprecated alias: per-solver-call cap; prefer `deadline` for
  // end-to-end budgets. Both are folded into a SolverBudget per check.
  uint32_t solver_timeout_ms = kDefaultSolverTimeoutMs;
  // End-to-end wall-clock budget (infinite by default). Expiry surfaces
  // as StatusCode::kTimeout naming stage "synth.interval".
  Deadline deadline;
};

// `col` must be referenced by `predicate` (bound against `schema`) and
// have an integral type. Returns kNone when the feasible set is
// unbounded on both sides (only TRUE is valid), an equality/interval
// predicate otherwise.
[[nodiscard]] Result<SynthesisResult> SynthesizeInterval(const ExprPtr& predicate,
                                           const Schema& schema, size_t col,
                                           const IntervalOptions& options =
                                               IntervalOptions());

}  // namespace sia

#endif  // SIA_SYNTH_INTERVAL_SYNTHESIZER_H_
