#ifndef SIA_SYNTH_VERIFIER_H_
#define SIA_SYNTH_VERIFIER_H_

#include <cstdint>

#include "common/deadline.h"
#include "common/status.h"
#include "ir/expr.h"
#include "types/schema.h"

namespace sia {

struct VerifyOptions {
  // Deprecated alias: per-solver-call cap; prefer `deadline` for
  // end-to-end budgets. Both are folded into a SolverBudget per check.
  uint32_t solver_timeout_ms = kDefaultSolverTimeoutMs;
  // End-to-end wall-clock budget (infinite by default). An expired
  // deadline surfaces as StatusCode::kTimeout, not kUnknown.
  Deadline deadline;
};

// Outcome of a validity check.
enum class VerifyResult {
  kValid,    // p ⟹ p₁ (the formula p ∧ ¬p₁ is UNSAT)
  kInvalid,  // a witness tuple satisfies p but not p₁
  kUnknown,  // solver timeout / resource limit
};

// The paper's Verify procedure (§5.5): checks that `original` implies
// `learned` under SQL three-valued logic, using the value+is-null pair
// encoding for every nullable column. Both predicates must be bound
// against `schema`.
[[nodiscard]] Result<VerifyResult> VerifyImplies(const ExprPtr& original,
                                   const ExprPtr& learned,
                                   const Schema& schema,
                                   const VerifyOptions& options = {});

// Checks semantic equivalence: p ⟹ q and q ⟹ p. Used by tests and the
// rewriter's self-check mode.
[[nodiscard]] Result<VerifyResult> VerifyEquivalent(const ExprPtr& p, const ExprPtr& q,
                                      const Schema& schema,
                                      const VerifyOptions& options = {});

}  // namespace sia

#endif  // SIA_SYNTH_VERIFIER_H_
