#include "synth/sample_generator.h"

#include <algorithm>
#include <set>

#include "common/fault_injection.h"
#include "ir/analysis.h"
#include "obs/trace.h"

namespace sia {

namespace {

// Scans integer/date constants in a predicate for domain hinting.
void ScanConstants(const ExprPtr& e, int64_t* lo, int64_t* hi, bool* any) {
  if (e->kind() == ExprKind::kLiteral) {
    const Value& v = e->literal();
    if (!v.is_null() && IsIntegral(v.type()) &&
        v.type() != DataType::kBoolean) {
      const int64_t x = v.AsInt();
      if (!*any) {
        *lo = *hi = x;
        *any = true;
      } else {
        *lo = std::min(*lo, x);
        *hi = std::max(*hi, x);
      }
    }
    return;
  }
  for (const auto& c : e->children()) ScanConstants(c, lo, hi, any);
}

// Collects the uninterpreted constants appearing in a Z3 expression.
void CollectConsts(const z3::expr& e, std::set<unsigned>* visited,
                   std::vector<z3::expr>* out) {
  const unsigned id = Z3_get_ast_id(e.ctx(), e);
  if (visited->contains(id)) return;
  visited->insert(id);
  if (e.is_const() && e.decl().decl_kind() == Z3_OP_UNINTERPRETED) {
    out->push_back(e);
    return;
  }
  for (unsigned i = 0; i < e.num_args(); ++i) {
    CollectConsts(e.arg(i), visited, out);
  }
}

}  // namespace

SampleGenerator::SampleGenerator(const ExprPtr& predicate,
                                 const Schema& schema,
                                 std::vector<size_t> cols,
                                 const SampleGenOptions& options)
    : predicate_(predicate),
      schema_(schema),
      cols_(std::move(cols)),
      options_(options),
      encoder_(&ctx_, schema, NullHandling::kIgnore) {
  ScanConstants(predicate_, &const_lo_, &const_hi_, &has_consts_);
  ctx_.set_budget(SolverBudget{options_.deadline, options_.solver_timeout_ms});
}

Result<z3::expr> SampleGenerator::NotOld(const std::vector<Tuple>& seen) {
  z3::expr acc = ctx_.z3().bool_val(true);
  for (const Tuple& t : seen) {
    SIA_ASSIGN_OR_RETURN(z3::expr eq, encoder_.TupleEquals(cols_, t));
    acc = acc && !eq;
  }
  return acc;
}

std::vector<z3::expr> SampleGenerator::HintLayers() {
  std::vector<z3::expr> layers;
  z3::context& z = ctx_.z3();
  if (has_consts_) {
    // Layer 0: tight box around the predicate's constants.
    const int64_t lo = const_lo_ - options_.domain_pad;
    const int64_t hi = const_hi_ + options_.domain_pad;
    z3::expr box = z.bool_val(true);
    for (const size_t c : cols_) {
      if (schema_.column(c).type == DataType::kDouble) continue;
      z3::expr v = encoder_.ColumnVar(c);
      box = box && (v >= z.int_val(lo)) && (v <= z.int_val(hi));
    }
    layers.push_back(box);
    // Layer 1: a 10x looser box.
    const int64_t span = (hi - lo) * 5 + 1000;
    z3::expr loose = z.bool_val(true);
    for (const size_t c : cols_) {
      if (schema_.column(c).type == DataType::kDouble) continue;
      z3::expr v = encoder_.ColumnVar(c);
      loose = loose && (v >= z.int_val(lo - span)) && (v <= z.int_val(hi + span));
    }
    layers.push_back(loose);
  }
  if (options_.prefer_nonzero) {
    z3::expr nz = z.bool_val(true);
    for (const size_t c : cols_) {
      if (schema_.column(c).type == DataType::kDouble) continue;
      nz = nz && (encoder_.ColumnVar(c) != 0);
    }
    layers.push_back(nz);
  }
  return layers;
}

Result<std::vector<Tuple>> SampleGenerator::Sample(
    const z3::expr& base, size_t count, std::vector<Tuple>* seen,
    std::string_view stage) {
  // `stage` is "synth.sample" for training samples and "verify.cex" for
  // counter-examples; the span name follows the caller's stage.
  obs::TraceSpan span(stage);
  exhausted_ = false;
  deadline_expired_ = false;
  std::vector<Tuple> produced;
  z3::context& z = ctx_.z3();

  z3::solver solver(z);
  z3::params params(z);
  params.set("random_seed", options_.random_seed);
  // Randomized simplex starting points diversify the returned models
  // (paper §5.3 heuristics); without it Z3 tends to return clustered
  // near-identical samples. The per-call timeout is derived from the
  // remaining budget inside SmtContext::Check.
  params.set("arith.random_initial_value", true);
  solver.add(base);
  // NotOld is monotone: every exclusion stays in force for the rest of
  // the run, so each one is asserted exactly once (incremental solving);
  // only the relaxable domain hints go through push/pop.
  SIA_ASSIGN_OR_RETURN(z3::expr prior, NotOld(*seen));
  solver.add(prior);

  const std::vector<z3::expr> hints = HintLayers();

  // Hint layers only get harder to satisfy as NotOld grows, so once a
  // layer is exhausted it stays exhausted: resume from the last layer
  // that produced a model instead of re-proving the tight layers UNSAT
  // for every sample.
  size_t start_layer = 0;
  while (produced.size() < count) {
    // Try hint layers from strongest to weakest; fall back to no hints.
    // A timeout on a hinted layer means the hints are not making the
    // query easier — jump straight to the unhinted check, whose verdict
    // is decisive, instead of paying the timeout once per layer.
    bool got_model = false;
    size_t layer = start_layer;
    while (true) {
      solver.push();
      // Apply hint layers `layer..end` (dropping the strongest first).
      for (size_t h = layer; h < hints.size(); ++h) solver.add(hints[h]);
      ++solver_calls_;
      auto checked = ctx_.Check(&solver, &params, stage);
      if (!checked.ok()) {
        solver.pop();
        if (checked.status().code() == StatusCode::kTimeout) {
          // End-to-end deadline spent: hand back whatever was produced
          // (the caller keeps partial progress); an empty return
          // surfaces the kTimeout so the stage name reaches the caller.
          deadline_expired_ = true;
          if (produced.empty()) return checked.status();
          return produced;
        }
        return checked.status();
      }
      const z3::check_result res = *checked;
      if (res == z3::sat) {
        z3::model model = solver.get_model();
        auto tuple = encoder_.ExtractTuple(model, cols_);
        solver.pop();
        if (!tuple.ok()) return tuple.status();
        SIA_ASSIGN_OR_RETURN(z3::expr eq,
                             encoder_.TupleEquals(cols_, tuple.value()));
        solver.add(!eq);
        seen->push_back(tuple.value());
        produced.push_back(std::move(tuple).value());
        got_model = true;
        start_layer = layer;
        break;
      }
      solver.pop();
      if (layer == hints.size()) {
        // Unhinted verdict is final.
        if (res == z3::unsat) exhausted_ = true;
        return produced;
      }
      layer = (res == z3::unknown) ? hints.size() : layer + 1;
    }
    if (!got_model) break;
  }
  return produced;
}

Result<z3::expr> SampleGenerator::BuildUnsatCore() {
  // ¬p over the full column set; then universally quantify every variable
  // that is not a Cols' value variable (i.e. the "other" columns plus any
  // non-linear auxiliary variables involving them).
  SIA_ASSIGN_OR_RETURN(z3::expr not_p, encoder_.EncodeNotTrue(predicate_));

  std::set<unsigned> visited;
  std::vector<z3::expr> consts;
  CollectConsts(not_p, &visited, &consts);

  std::set<std::string> keep;  // Cols' variable names
  for (const size_t c : cols_) {
    keep.insert(encoder_.ColumnVar(c).decl().name().str());
  }

  z3::expr_vector bound(ctx_.z3());
  for (const z3::expr& c : consts) {
    if (!keep.contains(c.decl().name().str())) bound.push_back(c);
  }
  if (bound.empty()) return not_p;
  return z3::forall(bound, not_p);
}

Result<std::vector<Tuple>> SampleGenerator::GenerateTrue(size_t count) {
  SIA_FAULT_INJECT("synth.sample");
  SIA_ASSIGN_OR_RETURN(z3::expr p_true, encoder_.EncodeTrue(predicate_));
  return Sample(p_true, count, &seen_true_, "synth.sample");
}

Result<std::vector<Tuple>> SampleGenerator::GenerateFalse(size_t count) {
  SIA_FAULT_INJECT("synth.sample");
  SIA_ASSIGN_OR_RETURN(z3::expr core, BuildUnsatCore());
  return Sample(core, count, &seen_false_, "synth.sample");
}

Result<std::vector<Tuple>> SampleGenerator::CounterTrue(
    const ExprPtr& learned, size_t count) {
  SIA_FAULT_INJECT("verify.cex");
  if (!UsesOnlyColumns(learned, cols_)) {
    return Status::InvalidArgument(
        "learned predicate uses columns outside Cols'");
  }
  SIA_ASSIGN_OR_RETURN(z3::expr p_true, encoder_.EncodeTrue(predicate_));
  SIA_ASSIGN_OR_RETURN(z3::expr p1_not, encoder_.EncodeNotTrue(learned));
  return Sample(p_true && p1_not, count, &seen_true_, "verify.cex");
}

Result<std::vector<Tuple>> SampleGenerator::CounterFalse(
    const ExprPtr& learned, size_t count) {
  SIA_FAULT_INJECT("verify.cex");
  if (!UsesOnlyColumns(learned, cols_)) {
    return Status::InvalidArgument(
        "learned predicate uses columns outside Cols'");
  }
  SIA_ASSIGN_OR_RETURN(z3::expr core, BuildUnsatCore());
  SIA_ASSIGN_OR_RETURN(z3::expr p1_true, encoder_.EncodeTrue(learned));
  return Sample(core && p1_true, count, &seen_false_, "verify.cex");
}

}  // namespace sia
