#include "synth/interval_synthesizer.h"

#include <algorithm>
#include <optional>

#include <z3++.h>

#include "common/stopwatch.h"
#include "ir/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"
#include "synth/sample_generator.h"

namespace sia {

namespace {

// Runs one objective query; nullopt when the objective is unbounded or
// the solver gave up. An expired deadline propagates as kTimeout.
Result<std::optional<int64_t>> Optimize(SmtContext* ctx,
                                        const z3::expr& formula,
                                        const z3::expr& var, bool maximize) {
  z3::optimize opt(ctx->z3());
  opt.add(formula);
  const z3::optimize::handle handle =
      maximize ? opt.maximize(var) : opt.minimize(var);
  SIA_ASSIGN_OR_RETURN(z3::check_result res,
                       ctx->CheckOptimize(&opt, "synth.interval"));
  if (res != z3::sat) return std::optional<int64_t>();
  const z3::expr bound = maximize ? opt.upper(handle) : opt.lower(handle);
  int64_t value = 0;
  if (!bound.is_numeral_i64(value)) {
    return std::optional<int64_t>();  // +/- infinity
  }
  return std::optional<int64_t>(value);
}

ExprPtr ColumnRef(const Schema& schema, size_t col) {
  const ColumnDef& def = schema.column(col);
  return Expr::BoundColumn(def.table, def.name, col, def.type);
}

ExprPtr BoundLiteral(const Schema& schema, size_t col, int64_t v) {
  if (schema.column(col).type == DataType::kDate) return Expr::DateLit(v);
  return Expr::IntLit(v);
}

}  // namespace

Result<SynthesisResult> SynthesizeInterval(const ExprPtr& predicate,
                                           const Schema& schema, size_t col,
                                           const IntervalOptions& options) {
  SIA_TRACE_SPAN("synth.interval");
  SIA_COUNTER_INC("synth.interval.runs");
  const std::vector<size_t> used = CollectColumnIndices(predicate);
  if (std::find(used.begin(), used.end(), col) == used.end()) {
    return Status::InvalidArgument("column not referenced by the predicate");
  }
  if (!IsIntegral(schema.column(col).type)) {
    return Status::Unsupported("interval synthesis requires an integral column");
  }

  const SolverBudget budget{options.deadline, options.solver_timeout_ms};
  SIA_RETURN_IF_ERROR(budget.RequireRemaining("synth.interval"));

  SynthesisResult result;
  Stopwatch sw;

  SmtContext ctx;
  ctx.set_budget(budget);
  Encoder encoder(&ctx, schema, NullHandling::kIgnore);
  SIA_ASSIGN_OR_RETURN(z3::expr p_true, encoder.EncodeTrue(predicate));
  z3::expr var = encoder.ColumnVar(col);

  SIA_ASSIGN_OR_RETURN(const std::optional<int64_t> lo,
                       Optimize(&ctx, p_true, var, /*maximize=*/false));
  SIA_ASSIGN_OR_RETURN(const std::optional<int64_t> hi,
                       Optimize(&ctx, p_true, var, /*maximize=*/true));
  result.stats.generation_ms = sw.ElapsedMillis();
  result.stats.solver_calls = 2;

  // Unsatisfiable predicate: both queries return UNSAT; FALSE is optimal.
  {
    z3::solver solver(ctx.z3());
    solver.add(p_true);
    ++result.stats.solver_calls;
    SIA_ASSIGN_OR_RETURN(z3::check_result sat_res,
                         ctx.Check(&solver, nullptr, "synth.interval"));
    if (sat_res == z3::unsat) {
      result.status = SynthesisStatus::kOptimal;
      result.predicate = Expr::BoolLit(false);
      return result;
    }
  }

  if (!lo.has_value() && !hi.has_value()) {
    result.status = SynthesisStatus::kNone;  // only TRUE is valid
    return result;
  }

  std::vector<ExprPtr> conjuncts;
  if (lo.has_value() && hi.has_value() && *lo == *hi) {
    conjuncts.push_back(Expr::Compare(CompareOp::kEq, ColumnRef(schema, col),
                                      BoundLiteral(schema, col, *lo)));
  } else {
    if (lo.has_value()) {
      conjuncts.push_back(Expr::Compare(CompareOp::kGe,
                                        ColumnRef(schema, col),
                                        BoundLiteral(schema, col, *lo)));
    }
    if (hi.has_value()) {
      conjuncts.push_back(Expr::Compare(CompareOp::kLe,
                                        ColumnRef(schema, col),
                                        BoundLiteral(schema, col, *hi)));
    }
  }
  result.predicate = Expr::And(conjuncts);

  // Optimality: the hull is optimal iff no value inside it is an
  // unsatisfaction tuple (Lemma 4) — one ∃∀ query.
  sw.Reset();
  SampleGenOptions gen_opts;
  gen_opts.solver_timeout_ms = options.solver_timeout_ms;
  gen_opts.deadline = options.deadline;
  SampleGenerator gen(predicate, schema, {col}, gen_opts);
  auto hole = gen.CounterFalse(result.predicate, 1);
  result.stats.validation_ms = sw.ElapsedMillis();
  result.stats.solver_calls += gen.solver_calls();
  if (hole.ok() && hole->empty() && gen.exhausted()) {
    result.status = SynthesisStatus::kOptimal;
  } else {
    result.status = SynthesisStatus::kValid;
  }
  return result;
}

}  // namespace sia
