#ifndef SIA_SYNTH_SYNTHESIZER_H_
#define SIA_SYNTH_SYNTHESIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "ir/expr.h"
#include "learn/learner.h"
#include "synth/sample_generator.h"
#include "synth/verifier.h"
#include "types/schema.h"

namespace sia {

// Configuration for one Synthesize run. Defaults match the paper's SIA
// configuration (§6.3 Table 1: 41 iterations, 10+10 initial samples, 5
// new samples per iteration). SIA_v1 / SIA_v2 are the non-iterative
// baselines.
struct SynthesisOptions {
  int max_iterations = 41;
  size_t initial_true_samples = 10;
  size_t initial_false_samples = 10;
  size_t samples_per_iteration = 5;
  SampleGenOptions samples;
  VerifyOptions verify;
  LearnOptions learn;
  // End-to-end wall-clock budget for the whole run (infinite by
  // default). Merged (as the earlier of the two) into the sampler's and
  // verifier's own deadlines, so every solver call across the run draws
  // from one shared budget.
  Deadline deadline;

  // Paper baselines (Table 1).
  static SynthesisOptions Sia() { return SynthesisOptions(); }
  static SynthesisOptions SiaV1() {
    SynthesisOptions o;
    o.max_iterations = 1;
    o.initial_true_samples = 110;
    o.initial_false_samples = 110;
    return o;
  }
  static SynthesisOptions SiaV2() {
    SynthesisOptions o;
    o.max_iterations = 1;
    o.initial_true_samples = 220;
    o.initial_false_samples = 220;
    return o;
  }
};

// How a synthesis run ended.
enum class SynthesisStatus {
  kOptimal,  // valid and proved optimal (CounterF exhausted, Lemma 4)
  kValid,    // valid but optimality not established (budget / timeout)
  kNone,     // no non-trivial valid predicate synthesized
};

const char* SynthesisStatusName(SynthesisStatus s);

// Timing and volume statistics for one run, matching the paper's Table 3
// breakdown and the Fig. 7 / Fig. 8 distributions.
struct SynthesisStats {
  double generation_ms = 0;  // initial samples + counter-examples
  double learning_ms = 0;    // SVM training
  double validation_ms = 0;  // Verify calls
  int iterations = 0;
  size_t true_samples = 0;   // at the final iteration
  size_t false_samples = 0;
  size_t solver_calls = 0;
};

struct SynthesisResult {
  SynthesisStatus status = SynthesisStatus::kNone;
  // The synthesized predicate over Cols' (bound against the input
  // schema); null when status == kNone. Dates are rendered back to DATE
  // literals where the predicate shape allows.
  ExprPtr predicate;
  // The conjunction structure: each element is one valid learned
  // disjunction-of-halfplanes that was conjoined into `predicate`.
  std::vector<LearnedPredicate> conjuncts;
  SynthesisStats stats;
  // True when the run was cut short by the end-to-end deadline; anything
  // already proved valid is still returned. `timeout_stage` names the
  // pipeline stage that hit the wall (e.g. "synth.sample").
  bool deadline_expired = false;
  std::string timeout_stage;
  // True when the run ended early because a solver gave up (timeout /
  // unknown / no progress) rather than because the result is complete.
  // Distinguishes a retryable kNone from a legitimate "not symbolically
  // relevant" kNone.
  bool solver_gave_up = false;

  bool has_predicate() const { return predicate != nullptr; }
  // Schema indices of the columns actually used (non-zero coefficients).
  std::vector<size_t> UsedColumns() const;
};

// The paper's Synthesize procedure (Alg. 1): counter-example guided
// learning of a valid, optimal dimensionality reduction of `predicate`
// to `cols` (schema indices, a subset of the predicate's columns).
//
// `predicate` must be bound against `schema`; NULL-able columns are
// handled in Verify via the three-valued encoding.
[[nodiscard]] Result<SynthesisResult> Synthesize(const ExprPtr& predicate,
                                   const Schema& schema,
                                   const std::vector<size_t>& cols,
                                   const SynthesisOptions& options =
                                       SynthesisOptions::Sia());

// Renders a synthesized predicate with DATE literals where possible:
// single-date-column halfplanes like `l_shipdate - 8571 > 0` become
// `l_shipdate > DATE '1993-06-20'`. Other shapes are returned unchanged.
ExprPtr PrettifyDates(const ExprPtr& expr, const Schema& schema);

}  // namespace sia

#endif  // SIA_SYNTH_SYNTHESIZER_H_
