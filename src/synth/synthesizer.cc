#include "synth/synthesizer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/stopwatch.h"
#include "ir/analysis.h"
#include "ir/simplify.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

const char* SynthesisStatusName(SynthesisStatus s) {
  switch (s) {
    case SynthesisStatus::kOptimal:
      return "optimal";
    case SynthesisStatus::kValid:
      return "valid";
    case SynthesisStatus::kNone:
      return "none";
  }
  return "?";
}

std::vector<size_t> SynthesisResult::UsedColumns() const {
  std::set<size_t> used;
  for (const LearnedPredicate& lp : conjuncts) {
    for (const LinearForm& f : lp.models) {
      for (size_t i = 0; i < f.coeffs.size(); ++i) {
        if (f.coeffs[i] != 0) used.insert(f.columns[i]);
      }
    }
  }
  if (used.empty() && predicate != nullptr) {
    // Fall back to the predicate's column refs (covers the finite-space
    // equality-disjunction shape).
    for (const size_t c : CollectColumnIndices(predicate)) used.insert(c);
  }
  return {used.begin(), used.end()};
}

namespace {

// Builds OR_i (AND_j col_j = sample_i[j]) — the strongest valid predicate
// when the satisfaction space over Cols' is finite (§5.3).
ExprPtr EqualityDisjunction(const std::vector<Tuple>& samples,
                            const std::vector<size_t>& cols,
                            const Schema& schema) {
  std::vector<ExprPtr> disjuncts;
  disjuncts.reserve(samples.size());
  for (const Tuple& t : samples) {
    std::vector<ExprPtr> eqs;
    eqs.reserve(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      const ColumnDef& col = schema.column(cols[i]);
      eqs.push_back(Expr::Compare(
          CompareOp::kEq,
          Expr::BoundColumn(col.table, col.name, cols[i], col.type),
          Expr::Literal(t.at(i))));
    }
    disjuncts.push_back(Expr::And(eqs));
  }
  return Expr::Or(disjuncts);
}

ExprPtr LearnedToExpr(const LearnedPredicate& lp, const Schema& schema) {
  std::vector<ExprPtr> disjuncts;
  disjuncts.reserve(lp.models.size());
  for (const LinearForm& f : lp.models) disjuncts.push_back(f.ToExpr(schema));
  return Expr::Or(disjuncts);
}

// Double-reports the run's SynthesisStats onto the metrics registry when
// the run returns (any path — the destructor fires on error returns too,
// reporting whatever partial stats accrued). The struct remains the API;
// this bridge is what keeps bench JSON and --metrics-out snapshots from
// ever disagreeing (see DESIGN.md, "Observability").
class StatsBridge {
 public:
  explicit StatsBridge(const SynthesisResult& result) : result_(result) {}

  StatsBridge(const StatsBridge&) = delete;
  StatsBridge& operator=(const StatsBridge&) = delete;

  ~StatsBridge() {
    if (!obs::MetricsRegistry::Enabled()) return;
    const SynthesisStats& stats = result_.stats;
    obs::IncrementCounter("synth.runs");
    obs::IncrementCounter("synth.iterations",
                          static_cast<uint64_t>(std::max(0, stats.iterations)));
    obs::IncrementCounter("synth.solver_calls",
                          static_cast<uint64_t>(stats.solver_calls));
    obs::IncrementCounter("synth.true_samples",
                          static_cast<uint64_t>(stats.true_samples));
    obs::IncrementCounter("synth.false_samples",
                          static_cast<uint64_t>(stats.false_samples));
    obs::RecordHistogram("synth.generation_ms", stats.generation_ms);
    obs::RecordHistogram("synth.learning_ms", stats.learning_ms);
    obs::RecordHistogram("synth.validation_ms", stats.validation_ms);
    obs::IncrementCounter(std::string("synth.status.") +
                          SynthesisStatusName(result_.status));
    if (result_.deadline_expired) {
      obs::IncrementCounter("synth.deadline_expired");
    }
    if (result_.solver_gave_up) {
      obs::IncrementCounter("synth.solver_gave_up");
    }
  }

 private:
  const SynthesisResult& result_;
};

}  // namespace

Result<SynthesisResult> Synthesize(const ExprPtr& predicate,
                                   const Schema& schema,
                                   const std::vector<size_t>& cols,
                                   const SynthesisOptions& options) {
  if (cols.empty()) {
    return Status::InvalidArgument("Cols' must be non-empty");
  }
  const std::vector<size_t> pred_cols = CollectColumnIndices(predicate);
  for (const size_t c : cols) {
    if (std::find(pred_cols.begin(), pred_cols.end(), c) == pred_cols.end()) {
      return Status::InvalidArgument(
          "Cols' must be a subset of the predicate's columns (column " +
          schema.column(c).QualifiedName() + " is not referenced)");
    }
  }

  SIA_TRACE_SPAN("synth.run");
  SynthesisResult result;
  StatsBridge stats_bridge(result);

  // One shared wall-clock budget: the run-level deadline is merged into
  // the sampler's and verifier's own (the earlier wins), so every solver
  // call below draws down the same clock.
  SampleGenOptions gen_opts = options.samples;
  gen_opts.deadline = Deadline::Earlier(gen_opts.deadline, options.deadline);
  VerifyOptions verify_opts = options.verify;
  verify_opts.deadline =
      Deadline::Earlier(verify_opts.deadline, options.deadline);

  SampleGenerator gen(predicate, schema, cols, gen_opts);
  Stopwatch total;

  // Converts a deadline-expiry Status from `stage` into a graceful
  // partial result; any other error propagates to the caller.
  auto note_timeout = [&result](const Status& st, const char* stage) {
    if (st.code() != StatusCode::kTimeout) return false;
    result.deadline_expired = true;
    result.timeout_stage = stage;
    result.solver_gave_up = true;
    return true;
  };

  // --- Stage 1: initial training samples (§5.3) ---
  Stopwatch sw;
  auto ts_r = gen.GenerateTrue(options.initial_true_samples);
  result.stats.generation_ms += sw.ElapsedMillis();
  if (!ts_r.ok()) {
    result.stats.solver_calls = gen.solver_calls();
    if (note_timeout(ts_r.status(), "synth.sample")) return result;
    return ts_r.status();
  }
  std::vector<Tuple> ts = std::move(*ts_r);
  const bool true_exhausted = gen.exhausted();
  if (gen.deadline_expired()) {
    result.deadline_expired = true;
    result.timeout_stage = "synth.sample";
  }

  if (ts.empty()) {
    if (true_exhausted) {
      // p is unsatisfiable: FALSE is the optimal reduction.
      result.status = SynthesisStatus::kOptimal;
      result.predicate = Expr::BoolLit(false);
      result.stats.solver_calls = gen.solver_calls();
      return result;
    }
    result.status = SynthesisStatus::kNone;  // solver budget exceeded
    result.solver_gave_up = true;
    result.stats.solver_calls = gen.solver_calls();
    return result;
  }
  if (true_exhausted) {
    // Finite satisfaction space: the disjunction of per-sample equality
    // constraints is the strongest valid reduction (§5.3).
    result.status = SynthesisStatus::kOptimal;
    result.predicate = EqualityDisjunction(ts, cols, schema);
    result.stats.true_samples = ts.size();
    result.stats.solver_calls = gen.solver_calls();
    return result;
  }

  sw.Reset();
  auto fs_r = gen.GenerateFalse(options.initial_false_samples);
  result.stats.generation_ms += sw.ElapsedMillis();
  if (!fs_r.ok()) {
    result.stats.true_samples = ts.size();
    result.stats.solver_calls = gen.solver_calls();
    if (note_timeout(fs_r.status(), "synth.sample")) return result;
    return fs_r.status();
  }
  std::vector<Tuple> fs = std::move(*fs_r);
  const bool false_exhausted = gen.exhausted();
  if (gen.deadline_expired()) {
    result.deadline_expired = true;
    result.timeout_stage = "synth.sample";
  }

  if (fs.empty()) {
    // No unsatisfaction tuple exists (TRUE is the only valid & optimal
    // reduction) or the solver gave up: either way there is no useful
    // predicate — the query is not "symbolically relevant" (§6.2). The
    // two cases differ for the degradation ladder, though: only the
    // gave-up one is worth retrying.
    result.solver_gave_up = !false_exhausted;
    result.status = SynthesisStatus::kNone;
    result.stats.true_samples = ts.size();
    result.stats.solver_calls = gen.solver_calls();
    return result;
  }

  // --- Stage 2: counter-example guided learning (Alg. 1) ---
  ExprPtr accumulated;  // p₁: conjunction of verified learned predicates
  bool proved_optimal = false;

  TrainingSet data;
  data.true_samples = std::move(ts);
  data.false_samples = std::move(fs);

  // FALSE samples already rejected by the accumulated conjunction are
  // settled: the next conjunct does not need to reject them again, and
  // keeping them in the SVM problem drags the separator back toward
  // directions p₁ already covers. Learn therefore trains against the
  // *active* FALSE set (all of them while p₁ = TRUE).
  auto active_false = [&]() {
    std::vector<Tuple> active;
    for (const Tuple& f : data.false_samples) {
      bool rejected = false;
      for (const LearnedPredicate& lp : result.conjuncts) {
        if (!lp.Accepts(f)) {
          rejected = true;
          break;
        }
      }
      if (!rejected) active.push_back(f);
    }
    return active;
  };

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    SIA_TRACE_SPAN("synth.iteration");
    // Learn (Alg. 2).
    sw.Reset();
    TrainingSet learn_set;
    learn_set.true_samples = data.true_samples;
    learn_set.false_samples = active_false();
    auto learned = Learn(learn_set, cols, options.learn);
    result.stats.learning_ms += sw.ElapsedMillis();
    if (!learned.ok()) return learned.status();
    ExprPtr p2 = LearnedToExpr(*learned, schema);

    // Verify p ⟹ p₂ (three-valued logic).
    sw.Reset();
    auto verdict = VerifyImplies(predicate, p2, schema, verify_opts);
    result.stats.validation_ms += sw.ElapsedMillis();
    if (!verdict.ok()) {
      // Deadline spent mid-loop: keep whatever is already proved valid.
      if (note_timeout(verdict.status(), "verify.check")) break;
      return verdict.status();
    }

    if (*verdict == VerifyResult::kUnknown) {
      // Solver budget exceeded mid-loop; keep whatever is already proved.
      result.solver_gave_up = true;
      break;
    }

    if (*verdict == VerifyResult::kValid) {
      // p₃ ← p₁ ∧ p₂, dropping conjuncts the new one subsumes: when both
      // are single halfplanes with the same direction, the one with the
      // smaller constant is strictly stronger (coeff·x + c > 0 accepts
      // fewer tuples for smaller c). Without this the bisection dynamics
      // of the loop leave a chain of superseded bounds in the output.
      const bool single = learned->models.size() == 1;
      if (single) {
        const LinearForm& fresh = learned->models[0];
        std::erase_if(result.conjuncts, [&](const LearnedPredicate& old) {
          return old.models.size() == 1 &&
                 old.models[0].columns == fresh.columns &&
                 old.models[0].coeffs == fresh.coeffs &&
                 old.models[0].constant >= fresh.constant;
        });
      }
      result.conjuncts.push_back(std::move(*learned));
      std::vector<ExprPtr> parts;
      parts.reserve(result.conjuncts.size());
      for (const LearnedPredicate& lp : result.conjuncts) {
        parts.push_back(LearnedToExpr(lp, schema));
      }
      accumulated = Expr::And(parts);

      sw.Reset();
      auto fs1 = gen.CounterFalse(accumulated,
                                  options.samples_per_iteration);
      result.stats.generation_ms += sw.ElapsedMillis();
      if (!fs1.ok()) {
        if (note_timeout(fs1.status(), "verify.cex")) {
          ++iteration;
          break;
        }
        return fs1.status();
      }
      if (fs1->empty()) {
        if (!gen.exhausted()) {
          // Solver budget exceeded: p₃ is valid, optimality unknown.
          result.solver_gave_up = true;
          ++iteration;
          break;
        }
        // The generator's NotOld constraints hide previously seen
        // unsatisfaction tuples, so exhaustion alone certifies only that
        // no NEW counter-example exists. Optimality (Lemma 4) further
        // requires that p₃ rejects every unsatisfaction tuple already
        // seen; if any is still accepted, keep learning — the active-
        // FALSE filter hands the learner exactly those stragglers.
        const bool rejects_all_seen = std::all_of(
            data.false_samples.begin(), data.false_samples.end(),
            [&](const Tuple& f) {
              return std::any_of(result.conjuncts.begin(),
                                 result.conjuncts.end(),
                                 [&](const LearnedPredicate& lp) {
                                   return !lp.Accepts(f);
                                 });
            });
        if (rejects_all_seen) {
          proved_optimal = true;  // Lemma 4
          ++iteration;
          break;
        }
        continue;
      }
      data.false_samples.insert(data.false_samples.end(), fs1->begin(),
                                fs1->end());
    } else {
      // Invalid: find TRUE counter-examples that p₂ wrongly rejects.
      sw.Reset();
      auto ts1 = gen.CounterTrue(p2, options.samples_per_iteration);
      result.stats.generation_ms += sw.ElapsedMillis();
      if (!ts1.ok()) {
        if (note_timeout(ts1.status(), "verify.cex")) break;
        return ts1.status();
      }
      if (ts1->empty()) {
        // Verify's 3VL witness is NULL-only (not reachable with concrete
        // non-NULL samples) or the solver gave up: no progress possible.
        result.solver_gave_up = true;
        break;
      }
      data.true_samples.insert(data.true_samples.end(), ts1->begin(),
                               ts1->end());
    }
  }

  result.stats.iterations = iteration;
  result.stats.true_samples = data.true_samples.size();
  result.stats.false_samples = data.false_samples.size();
  result.stats.solver_calls = gen.solver_calls();

  if (accumulated == nullptr) {
    result.status = SynthesisStatus::kNone;
    return result;
  }
  result.status = proved_optimal ? SynthesisStatus::kOptimal
                                 : SynthesisStatus::kValid;
  result.predicate = PrettifyDates(Simplify(accumulated), schema);
  return result;
}

namespace {

// Linear decomposition of a scalar expression: col index -> coefficient,
// plus a constant term. Fails (nullopt) on non-linear shapes or doubles.
struct LinearTerms {
  std::map<size_t, int64_t> coeffs;
  int64_t constant = 0;
};

std::optional<LinearTerms> Linearize(const ExprPtr& e, int64_t scale) {
  LinearTerms out;
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      if (!e->is_bound()) return std::nullopt;
      out.coeffs[e->index()] += scale;
      return out;
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_null() || !IsIntegral(v.type()) ||
          v.type() == DataType::kBoolean) {
        return std::nullopt;
      }
      out.constant = scale * v.AsInt();
      return out;
    }
    case ExprKind::kArith: {
      const ArithOp op = e->arith_op();
      if (op == ArithOp::kAdd || op == ArithOp::kSub) {
        auto l = Linearize(e->left(), scale);
        auto r = Linearize(e->right(),
                           op == ArithOp::kAdd ? scale : -scale);
        if (!l || !r) return std::nullopt;
        for (const auto& [c, k] : r->coeffs) l->coeffs[c] += k;
        l->constant += r->constant;
        return l;
      }
      if (op == ArithOp::kMul) {
        // const * expr or expr * const only.
        const ExprPtr* lit = nullptr;
        const ExprPtr* sub = nullptr;
        if (e->left()->kind() == ExprKind::kLiteral) {
          lit = &e->left();
          sub = &e->right();
        } else if (e->right()->kind() == ExprKind::kLiteral) {
          lit = &e->right();
          sub = &e->left();
        } else {
          return std::nullopt;
        }
        const Value& v = (*lit)->literal();
        if (v.is_null() || !IsIntegral(v.type())) return std::nullopt;
        return Linearize(*sub, scale * v.AsInt());
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

ExprPtr DateColumnRef(const Schema& schema, size_t index) {
  const ColumnDef& col = schema.column(index);
  return Expr::BoundColumn(col.table, col.name, index, col.type);
}

// Rewrites one comparison into date-literal form when it matches either
//   ±1 * date_col CP const            ->  date_col CP' DATE '...'
//   date_col - date_col CP const      ->  (a - b) CP' const
// Returns nullptr when the shape does not match.
ExprPtr PrettifyCompare(const ExprPtr& e, const Schema& schema) {
  auto l = Linearize(e->left(), 1);
  auto r = Linearize(e->right(), 1);
  if (!l || !r) return nullptr;
  // Move everything to the left: lhs - rhs CP 0.
  for (const auto& [c, k] : r->coeffs) l->coeffs[c] -= k;
  int64_t constant = l->constant - r->constant;
  std::vector<std::pair<size_t, int64_t>> nz;
  for (const auto& [c, k] : l->coeffs) {
    if (k != 0) nz.emplace_back(c, k);
  }
  const CompareOp op = e->compare_op();

  if (nz.size() == 1 && schema.column(nz[0].first).type == DataType::kDate) {
    const auto [col, k] = nz[0];
    if (k != 1 && k != -1) return nullptr;
    // k*col + constant CP 0  ->  col CP' -constant/k
    const int64_t day = -constant / k;
    const CompareOp op2 = (k == 1) ? op : SwapCompare(op);
    return Expr::Compare(op2, DateColumnRef(schema, col),
                         Expr::DateLit(day));
  }
  if (nz.size() == 2) {
    const auto [c0, k0] = nz[0];
    const auto [c1, k1] = nz[1];
    if (schema.column(c0).type != DataType::kDate ||
        schema.column(c1).type != DataType::kDate) {
      return nullptr;
    }
    if (k0 == 1 && k1 == -1) {
      // c0 - c1 + constant CP 0  ->  c0 - c1 CP -constant
      return Expr::Compare(
          op,
          Expr::Arith(ArithOp::kSub, DateColumnRef(schema, c0),
                      DateColumnRef(schema, c1)),
          Expr::IntLit(-constant));
    }
    if (k0 == -1 && k1 == 1) {
      return Expr::Compare(
          op,
          Expr::Arith(ArithOp::kSub, DateColumnRef(schema, c1),
                      DateColumnRef(schema, c0)),
          Expr::IntLit(-constant));
    }
  }
  return nullptr;
}

}  // namespace

ExprPtr PrettifyDates(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kCompare: {
      ExprPtr pretty = PrettifyCompare(expr, schema);
      return pretty != nullptr ? pretty : expr;
    }
    case ExprKind::kLogic: {
      ExprPtr l = PrettifyDates(expr->left(), schema);
      ExprPtr r = PrettifyDates(expr->right(), schema);
      if (l.get() == expr->left().get() && r.get() == expr->right().get()) {
        return expr;
      }
      return Expr::Logic(expr->logic_op(), std::move(l), std::move(r));
    }
    case ExprKind::kNot: {
      ExprPtr v = PrettifyDates(expr->operand(), schema);
      if (v.get() == expr->operand().get()) return expr;
      return Expr::Not(std::move(v));
    }
    default:
      return expr;
  }
}

}  // namespace sia
