#include "types/schema.h"

#include "common/strings.h"

namespace sia {

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  std::string table_part;
  std::string col_part = name;
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    table_part = name.substr(0, dot);
    col_part = name.substr(dot + 1);
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, col_part)) continue;
    if (!table_part.empty() && !EqualsIgnoreCase(c.table, table_part)) {
      continue;
    }
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = i;
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  return Schema(std::move(cols));
}

}  // namespace sia
