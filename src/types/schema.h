#ifndef SIA_TYPES_SCHEMA_H_
#define SIA_TYPES_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "types/data_type.h"

namespace sia {

// A column definition: name, type, nullability. `table` is the owning
// table's name ("" for derived schemas).
struct ColumnDef {
  std::string table;
  std::string name;
  DataType type = DataType::kInteger;
  bool nullable = false;

  // "table.name" (or just "name" when table is empty).
  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

// An ordered list of column definitions. Lookup is by (optionally
// table-qualified) name, case-insensitive, matching common SQL behavior.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  // Finds a column by name. `name` may be "col" or "table.col". Returns
  // nullopt when absent or ambiguous.
  std::optional<size_t> FindColumn(const std::string& name) const;

  // Concatenates two schemas (e.g. for join output).
  static Schema Concat(const Schema& left, const Schema& right);

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace sia

#endif  // SIA_TYPES_SCHEMA_H_
