#include "types/data_type.h"

namespace sia {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kDate:
      return "DATE";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kBoolean:
      return "BOOLEAN";
  }
  return "UNKNOWN";
}

bool IsIntegral(DataType type) {
  return type == DataType::kInteger || type == DataType::kDate ||
         type == DataType::kTimestamp || type == DataType::kBoolean;
}

bool IsNumericLike(DataType type) {
  return type == DataType::kInteger || type == DataType::kDouble ||
         type == DataType::kDate || type == DataType::kTimestamp;
}

}  // namespace sia
