#ifndef SIA_TYPES_VALUE_H_
#define SIA_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "types/data_type.h"

namespace sia {

// A nullable scalar runtime value. SQL three-valued logic is modeled by
// making NULL a first-class state: every operation in the evaluator
// (src/ir/evaluator.h) defines its NULL behavior explicitly.
//
// DATE and TIMESTAMP values are carried as int64 (epoch days / seconds);
// the DataType tag distinguishes them for printing and type checking.
class Value {
 public:
  // A NULL of unspecified type.
  Value() : type_(DataType::kInteger), data_(NullTag{}) {}

  static Value Null(DataType type = DataType::kInteger) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Integer(int64_t i) { return Value(DataType::kInteger, i); }
  static Value Double(double d) { return Value(DataType::kDouble, d); }
  static Value Date(int64_t epoch_day) {
    return Value(DataType::kDate, epoch_day);
  }
  static Value Timestamp(int64_t epoch_sec) {
    return Value(DataType::kTimestamp, epoch_sec);
  }
  static Value Boolean(bool b) { return Value(DataType::kBoolean, b); }

  bool is_null() const { return std::holds_alternative<NullTag>(data_); }
  DataType type() const { return type_; }

  // Accessors. Callers must check is_null() (and the type) first.
  int64_t AsInt() const {
    if (std::holds_alternative<bool>(data_)) {
      return std::get<bool>(data_) ? 1 : 0;
    }
    return std::get<int64_t>(data_);
  }
  double AsDouble() const {
    if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
    if (std::holds_alternative<int64_t>(data_)) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    return std::get<bool>(data_) ? 1.0 : 0.0;
  }
  bool AsBool() const { return std::get<bool>(data_); }

  // Equality is structural: same type class, same null-ness, same payload.
  // (This is host-language equality, not SQL `=`, which returns NULL for
  // NULL operands; see the evaluator for SQL semantics.)
  friend bool operator==(const Value& a, const Value& b);

  // Debug/SQL-ish rendering, e.g. "42", "3.5", "DATE '1993-06-01'", "NULL".
  std::string ToString() const;

 private:
  struct NullTag {
    friend bool operator==(const NullTag&, const NullTag&) { return true; }
  };

  Value(DataType t, int64_t i) : type_(t), data_(i) {}
  Value(DataType t, double d) : type_(t), data_(d) {}
  Value(DataType t, bool b) : type_(t), data_(b) {}

  DataType type_;
  std::variant<NullTag, int64_t, double, bool> data_;
};

}  // namespace sia

#endif  // SIA_TYPES_VALUE_H_
