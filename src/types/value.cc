#include "types/value.h"

#include <cmath>
#include <sstream>

#include "common/date.h"

namespace sia {

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (IsIntegral(a.type()) != IsIntegral(b.type())) {
    // Mixed int/double comparison: compare numerically.
    return a.AsDouble() == b.AsDouble();
  }
  return a.data_ == b.data_;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case DataType::kInteger:
      return std::to_string(AsInt());
    case DataType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kDate:
      return "DATE '" + FormatDay(AsInt()) + "'";
    case DataType::kTimestamp:
      return "TIMESTAMP " + std::to_string(AsInt());
    case DataType::kBoolean:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

}  // namespace sia
