#ifndef SIA_TYPES_DATA_TYPE_H_
#define SIA_TYPES_DATA_TYPE_H_

#include <string>

namespace sia {

// The column data types Sia supports (paper §4.1). DATE and TIMESTAMP are
// normalized to integral day / second counts before synthesis, which
// preserves all arithmetic and comparison relations (§3.2, §5.2). TEXT is
// deliberately unsupported, matching the paper.
enum class DataType {
  kInteger,
  kDouble,
  kDate,       // stored as epoch day number (int64)
  kTimestamp,  // stored as epoch seconds (int64)
  kBoolean,
};

// Short name, e.g. "INTEGER".
const char* DataTypeName(DataType type);

// True for types whose runtime representation is int64 (INTEGER, DATE,
// TIMESTAMP, BOOLEAN).
bool IsIntegral(DataType type);

// True for the numeric types usable inside arithmetic expressions.
bool IsNumericLike(DataType type);

}  // namespace sia

#endif  // SIA_TYPES_DATA_TYPE_H_
