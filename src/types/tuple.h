#ifndef SIA_TYPES_TUPLE_H_
#define SIA_TYPES_TUPLE_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace sia {

// A row of values, positionally aligned with some Schema. In the paper's
// terminology (§4.1) a tuple over columns Cols maps each column to a value
// of its type; here the mapping is positional.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  // "(v0, v1, ...)" for debugging and test failure messages.
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace sia

#endif  // SIA_TYPES_TUPLE_H_
