#include "common/status.h"

namespace sia {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kSolverError:
      return "SolverError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sia
