#ifndef SIA_COMMON_STOPWATCH_H_
#define SIA_COMMON_STOPWATCH_H_

#include <chrono>

namespace sia {

// Monotonic wall-clock stopwatch used by the synthesis-statistics and
// engine-timing code paths.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  // Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sia

#endif  // SIA_COMMON_STOPWATCH_H_
