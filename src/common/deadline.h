#ifndef SIA_COMMON_DEADLINE_H_
#define SIA_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace sia {

// A point in wall-clock (steady) time by which a pipeline stage must
// finish. Default-constructed deadlines are infinite, so plumbing one
// through an options struct costs nothing for callers that never set it.
//
// Deadlines are plain values: copying one shares the same end instant,
// which is exactly what budget propagation wants — the rewriter hands the
// same deadline to the synthesizer, the sampler, the verifier, and the
// solver wrapper, and each derives its per-call timeout from whatever
// wall-clock budget is *left*, not from a fresh per-component allowance.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // infinite

  static Deadline Infinite() { return Deadline(); }

  // Expires `ms` milliseconds from now (clamped to >= 0).
  static Deadline FromNowMillis(int64_t ms) {
    Deadline d;
    d.finite_ = true;
    d.end_ = Clock::now() + std::chrono::milliseconds(std::max<int64_t>(0, ms));
    return d;
  }

  static Deadline At(Clock::time_point end) {
    Deadline d;
    d.finite_ = true;
    d.end_ = end;
    return d;
  }

  // The earlier of the two deadlines (infinite is later than anything).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.infinite()) return b;
    if (b.infinite()) return a;
    return a.end_ <= b.end_ ? a : b;
  }

  bool infinite() const { return !finite_; }
  bool expired() const { return finite_ && Clock::now() >= end_; }

  // Milliseconds of budget left, clamped to >= 0. Infinite deadlines
  // report a large sentinel so min() arithmetic stays simple.
  int64_t RemainingMillis() const {
    if (!finite_) return kForeverMillis;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - Clock::now());
    return std::max<int64_t>(0, left.count());
  }

  static constexpr int64_t kForeverMillis = INT64_MAX / 2;

 private:
  Clock::time_point end_{};
  bool finite_ = false;
};

// Single source of truth for the per-solver-call timeout that three
// components (sampler, verifier, interval synthesizer) previously each
// hardcoded independently.
inline constexpr uint32_t kDefaultSolverTimeoutMs = 2000;

// A solver time budget: an end-to-end wall-clock deadline plus a cap on
// any single solver call. Per-call timeouts are derived from the
// *remaining* budget, so a stage that already burned most of the wall
// clock cannot stall for a full per-call allowance on top of it.
struct SolverBudget {
  Deadline deadline;  // infinite unless a caller set one
  uint32_t per_call_cap_ms = kDefaultSolverTimeoutMs;

  static SolverBudget Unbounded(uint32_t cap_ms = kDefaultSolverTimeoutMs) {
    return SolverBudget{Deadline::Infinite(), cap_ms};
  }

  bool Exhausted() const { return deadline.expired(); }

  // Timeout for the next solver call: min(cap, remaining wall clock),
  // never below 1ms (Z3 treats 0 as "no timeout").
  uint32_t CallTimeoutMs() const {
    const int64_t remaining = deadline.RemainingMillis();
    const int64_t cap = static_cast<int64_t>(per_call_cap_ms);
    return static_cast<uint32_t>(std::max<int64_t>(1, std::min(cap, remaining)));
  }

  // kTimeout naming the stage when the deadline is already spent.
  [[nodiscard]] Status RequireRemaining(std::string_view stage) const {
    if (!Exhausted()) return Status::OK();
    if (obs::MetricsRegistry::Enabled()) {
      obs::IncrementCounter("deadline.exhausted");
      obs::IncrementCounter("deadline.exhausted." + std::string(stage));
    }
    return Status::Timeout("deadline exhausted in stage '" +
                           std::string(stage) + "'");
  }

  // The retry rung's budget: same deadline, half the per-call cap.
  SolverBudget WithCapHalved() const {
    return SolverBudget{deadline, std::max<uint32_t>(1, per_call_cap_ms / 2)};
  }
};

}  // namespace sia

#endif  // SIA_COMMON_DEADLINE_H_
