#ifndef SIA_COMMON_SYNC_H_
#define SIA_COMMON_SYNC_H_

// Annotated synchronization primitives: the one place in the tree that
// touches std::mutex / std::condition_variable / std::thread directly.
// Everything else uses these wrappers (tools/sia_conventions enforces
// it), so every lock in the tree carries Clang thread-safety capability
// attributes and `clang++ -Wthread-safety -Werror` proves at compile
// time that guarded state is only touched with the right mutex held.
// On non-Clang compilers the attribute macros expand to nothing and the
// wrappers are zero-cost shims over the standard primitives.
//
// Layering: header-only and standard-library-only, so src/obs (which
// sits *below* src/common — see obs/metrics.h) can include it without a
// link-time dependency on sia_common.
//
// Usage pattern:
//
//   class Queue {
//    public:
//     void Push(Item item) SIA_EXCLUDES(mu_);
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::deque<Item> items_ SIA_GUARDED_BY(mu_);
//   };
//
//   void Queue::Push(Item item) {
//     MutexLock lock(&mu_);
//     items_.push_back(std::move(item));   // OK: mu_ held
//     cv_.NotifyOne();
//   }
//
// Condition waits are written as explicit loops, never predicate
// lambdas — the analysis cannot see that a lock is held inside a lambda
// body, so `cv.Wait(&mu)` in a `while (!ready_)` loop is both the
// idiomatic and the provable form:
//
//   while (!ready_) cv_.Wait(&mu_);
//
// SIA_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort; a
// use must carry a justification comment (tools/sia_conventions rejects
// bare uses) and DESIGN.md ("Static analysis") lists the acceptable
// reasons.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SIA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SIA_THREAD_ANNOTATION_
#define SIA_THREAD_ANNOTATION_(x)
#endif

// On the type: this class is a lockable capability.
#define SIA_CAPABILITY(x) SIA_THREAD_ANNOTATION_(capability(x))
// On the type: RAII object that acquires a capability for its lifetime.
#define SIA_SCOPED_CAPABILITY SIA_THREAD_ANNOTATION_(scoped_lockable)
// On a member: may only be read/written with the given mutex held.
#define SIA_GUARDED_BY(x) SIA_THREAD_ANNOTATION_(guarded_by(x))
// On a pointer member: the pointee is guarded by the given mutex.
#define SIA_PT_GUARDED_BY(x) SIA_THREAD_ANNOTATION_(pt_guarded_by(x))
// On a function: acquires/releases the capability.
#define SIA_ACQUIRE(...) \
  SIA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SIA_RELEASE(...) \
  SIA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SIA_TRY_ACQUIRE(...) \
  SIA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// On a function: caller must hold / must not hold the capability.
#define SIA_REQUIRES(...) \
  SIA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SIA_EXCLUDES(...) SIA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// On a mutex member: documents (and, under -Wthread-safety-beta, checks)
// the lock hierarchy — this mutex is always taken before/after that one.
#define SIA_ACQUIRED_BEFORE(...) \
  SIA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SIA_ACQUIRED_AFTER(...) \
  SIA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
// On a function: runtime assertion that the capability is held.
#define SIA_ASSERT_CAPABILITY(x) SIA_THREAD_ANNOTATION_(assert_capability(x))
// On a function: returns a reference to the given capability.
#define SIA_RETURN_CAPABILITY(x) SIA_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch: body is not analyzed. Requires a justification comment.
#define SIA_NO_THREAD_SAFETY_ANALYSIS \
  SIA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace sia {

class CondVar;

// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock
// pairing; the manual form exists for the rare non-scoped protocol.
class SIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIA_ACQUIRE() { mu_.lock(); }
  void Unlock() SIA_RELEASE() { mu_.unlock(); }
  bool TryLock() SIA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Documents (to the analysis and the reader) that the caller believes
  // the lock is held; pure annotation, no runtime check.
  void AssertHeld() const SIA_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock. Supports the release-then-reacquire protocol the
// single-flight RewriteCache uses (drop the lock around a slow
// synthesis, retake it to publish):
//
//   MutexLock lock(&mu_);
//   ...
//   lock.Unlock();
//   SlowWork();            // mu_ provably not held here
//   lock.Lock();
//   ...                    // guarded state accessible again
class SIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SIA_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() SIA_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() SIA_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() SIA_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

// Condition variable bound to sia::Mutex. Waits take the Mutex the
// caller already holds; there is deliberately no predicate-lambda
// overload (see the header comment — explicit while loops keep the
// guarded accesses visible to the analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) SIA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // still logically held by the caller
  }

  // Returns false iff the wait ended by timeout (the caller's predicate
  // loop decides what that means; spurious wakeups return true).
  bool WaitForMillis(Mutex* mu, int64_t timeout_ms) SIA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::milliseconds(timeout_ms));
    native.release();  // still logically held by the caller
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Thin movable wrapper over std::thread so spawning stays inside this
// header (the conventions linter bans raw std::thread elsewhere; a
// wrapped spawn is greppable and keeps join discipline in one place).
class Thread {
 public:
  Thread() = default;
  template <typename F>
  explicit Thread(F&& fn) : impl_(std::forward<F>(fn)) {}

  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (impl_.joinable()) impl_.join();
    impl_ = std::move(other.impl_);
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  // Joins on destruction: a Thread that goes out of scope running is a
  // bug we turn into a hang at the creation site, not std::terminate.
  ~Thread() {
    if (impl_.joinable()) impl_.join();
  }

  bool Joinable() const { return impl_.joinable(); }
  void Join() { impl_.join(); }

 private:
  std::thread impl_;
};

// std::thread::hardware_concurrency without naming std::thread at the
// call site; 0 when unknown (same contract as the standard).
inline unsigned HardwareConcurrency() {
  return std::thread::hardware_concurrency();
}

}  // namespace sia

#endif  // SIA_COMMON_SYNC_H_
