#ifndef SIA_COMMON_FAULT_INJECTION_H_
#define SIA_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"

namespace sia {

// Fault injection for the rewrite pipeline. Each seam that can fail in
// production (a solver call, sample generation, SVM training, a table
// scan, ...) declares a named fault point via SIA_FAULT_INJECT; tests and
// the fault-sweep gate arm points programmatically or through the
// SIA_FAULTS environment variable and assert that every injected failure
// degrades to a Status / a lower rewrite-ladder rung, never a crash or a
// wrong answer.
//
// SIA_FAULTS syntax (comma-separated `point=mode` entries):
//   SIA_FAULTS=smt.check=once                 fail the first hit, then heal
//   SIA_FAULTS=synth.sample=always            fail every hit
//   SIA_FAULTS=learn.train=nth:3              fail exactly the 3rd hit
//   SIA_FAULTS=verify.cex=prob:0.25           fail each hit with p=0.25
//   SIA_FAULTS=engine.scan=latency:50         sleep 50ms per hit, succeed
//   SIA_FAULTS=smt.check=once,engine.scan=always        (combined)
// A bare point name ("SIA_FAULTS=smt.check") means `once`.
//
// When nothing is armed the per-hit cost is one relaxed atomic load (the
// SIA_FAULT_INJECT macro does not even take the registry lock).

enum class FaultMode {
  kOnce,           // fail the first hit, succeed afterwards
  kAlways,         // fail every hit
  kNth,            // fail exactly the nth hit (1-based)
  kProbabilistic,  // fail each hit with probability `probability`
  kLatency,        // never fail; sleep `latency_ms` per hit
};

const char* FaultModeName(FaultMode mode);

struct FaultSpec {
  FaultMode mode = FaultMode::kOnce;
  uint64_t nth = 1;          // kNth only
  double probability = 1.0;  // kProbabilistic only
  uint32_t latency_ms = 0;   // kLatency only

  // Parses the part after `point=` in SIA_FAULTS ("once", "always",
  // "nth:3", "prob:0.25", "latency:50").
  [[nodiscard]] static Result<FaultSpec> Parse(std::string_view text);
};

class FaultRegistry {
 public:
  // Process-wide registry. The first call loads SIA_FAULTS from the
  // environment.
  static FaultRegistry& Instance();

  // Hot-path guard: true iff at least one point is armed anywhere.
  static bool Enabled() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  // Arms `point` with `spec`. The point must be one of KnownPoints()
  // (typos in a fault sweep otherwise silently test nothing).
  [[nodiscard]] Status Arm(const std::string& point, const FaultSpec& spec)
      SIA_EXCLUDES(mu_);

  // Parses and arms a full SIA_FAULTS-style spec string.
  [[nodiscard]] Status ArmFromSpec(const std::string& spec) SIA_EXCLUDES(mu_);

  void Disarm(const std::string& point) SIA_EXCLUDES(mu_);
  void DisarmAll() SIA_EXCLUDES(mu_);

  // Fires the fault point: returns a non-OK Status when the armed spec
  // says this hit fails (kInternal, message naming the point), sleeps
  // for latency specs, and returns OK otherwise. Hits on unarmed points
  // return OK.
  [[nodiscard]] Status Fire(std::string_view point) SIA_EXCLUDES(mu_);

  // Observability for tests: total hits / injected failures per point
  // since arming (reset by Arm/Disarm).
  uint64_t hits(const std::string& point) const SIA_EXCLUDES(mu_);
  uint64_t failures_injected(const std::string& point) const
      SIA_EXCLUDES(mu_);

  // Every fault point compiled into the pipeline. Kept in one place so
  // the fault-sweep driver can iterate them without firing anything.
  static const std::vector<std::string>& KnownPoints();

 private:
  FaultRegistry();

  struct Armed {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t failures = 0;
    bool spent = false;  // kOnce fired already
  };

  // Leaf lock: Fire deliberately reports metrics and sleeps *outside*
  // the critical section, so the obs registry lock is never taken under
  // mu_ and latency faults never serialize other threads' checks.
  mutable Mutex mu_;
  std::map<std::string, Armed, std::less<>> armed_ SIA_GUARDED_BY(mu_);
  // kProbabilistic; fixed seed for reproducible sweeps
  Rng rng_ SIA_GUARDED_BY(mu_){0xFA017u};

  static std::atomic<int> armed_points_;
};

// Declares a fault point inside a function returning Status or
// Result<T>: when the point is armed and the spec says "fail", the
// enclosing function returns the injected error.
#define SIA_FAULT_INJECT(point)                                      \
  do {                                                               \
    if (::sia::FaultRegistry::Enabled()) {                           \
      ::sia::Status _sia_fault_st =                                  \
          ::sia::FaultRegistry::Instance().Fire(point);              \
      if (!_sia_fault_st.ok()) return _sia_fault_st;                 \
    }                                                                \
  } while (0)

}  // namespace sia

#endif  // SIA_COMMON_FAULT_INJECTION_H_
