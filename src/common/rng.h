#ifndef SIA_COMMON_RNG_H_
#define SIA_COMMON_RNG_H_

#include <cstdint>

namespace sia {

// Deterministic, seedable random number generator (xoshiro256**).
// Used by the data generator and the workload generator so experiments are
// reproducible across runs and platforms. Not cryptographic.
class Rng {
 public:
  static constexpr uint64_t kDefaultSeed = 0x51A51A51A51AULL;

  explicit Rng(uint64_t seed = kDefaultSeed) { Seed(seed); }

  // Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  // Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace sia

#endif  // SIA_COMMON_RNG_H_
