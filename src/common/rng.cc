#include "common/rng.h"

#include <cmath>

namespace sia {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_gauss_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

}  // namespace sia
