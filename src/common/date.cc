#include "common/date.h"

#include <cstdio>

namespace sia {

namespace {

// Days-from-civil algorithm by Howard Hinnant (public domain); shifts the
// epoch so that day 0 == 1970-01-01.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                 // [0,399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0,365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0,146096]
  return era * 146097 + doe - 719468;
}

}  // namespace

int64_t CivilToDay(const CivilDate& d) {
  return DaysFromCivil(d.year, d.month, d.day);
}

CivilDate DayToCivil(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                               // [0,146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0,365]
  const int64_t mp = (5 * doy + 2) / 153;                             // [0,11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;                     // [1,31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                          // [1,12]
  CivilDate out;
  out.year = static_cast<int32_t>(y + (m <= 2));
  out.month = static_cast<int32_t>(m);
  out.day = static_cast<int32_t>(d);
  return out;
}

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[] = {31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Result<CivilDate> ParseDate(const std::string& text) {
  CivilDate d;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &d.year, &d.month, &d.day,
                  &extra) != 3) {
    return Status::ParseError("invalid date literal: '" + text + "'");
  }
  if (d.month < 1 || d.month > 12) {
    return Status::ParseError("month out of range in date: '" + text + "'");
  }
  if (d.day < 1 || d.day > DaysInMonth(d.year, d.month)) {
    return Status::ParseError("day out of range in date: '" + text + "'");
  }
  return d;
}

Result<int64_t> ParseDateToDay(const std::string& text) {
  SIA_ASSIGN_OR_RETURN(CivilDate d, ParseDate(text));
  return CivilToDay(d);
}

std::string FormatDay(int64_t day) {
  const CivilDate d = DayToCivil(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

}  // namespace sia
