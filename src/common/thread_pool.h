#ifndef SIA_COMMON_THREAD_POOL_H_
#define SIA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace sia {

// Fixed-size worker pool shared by every parallel stage in the tree:
// morsel-driven execution in src/engine and the concurrent batch
// rewriter in src/rewrite both draw from the same process-wide pool
// (Shared()), so going parallel in several components at once cannot
// oversubscribe the machine. Tests construct private pools to pin exact
// worker counts.
//
// `threads` counts the calling thread: a pool of size N owns N-1
// background workers, and ParallelFor always participates on the caller.
// A pool of size 1 therefore has no background threads at all —
// SIA_THREADS=1 is the genuinely serial engine, not a one-worker queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution width: background workers + the calling thread.
  size_t thread_count() const { return workers_.size() + 1; }

  // The process-wide pool, sized by DefaultThreadCount(). Constructed on
  // first use and intentionally leaked (workers may be parked in blocking
  // waits at process exit; joining them from a static destructor is a
  // shutdown-order hazard for no benefit).
  static ThreadPool& Shared();

  // SIA_THREADS if set to a positive integer (clamped to kMaxThreads),
  // else std::thread::hardware_concurrency(), never less than 1.
  static size_t DefaultThreadCount();

  static constexpr size_t kMaxThreads = 256;

  // Chunked parallel loop over [0, total): body(begin, end) runs once per
  // grain-sized chunk, on the calling thread plus up to thread_count()-1
  // background workers. Chunk boundaries depend only on `grain`, never on
  // the worker count or on scheduling, so per-chunk results concatenated
  // in chunk order are identical at every thread count — the determinism
  // guarantee the executor's byte-identical-output contract rests on.
  //
  // Error handling: the Status of the lowest-indexed failing chunk is
  // returned; a thrown exception is captured as kInternal. After a
  // failure, chunks that have not started yet are skipped (chunks already
  // running complete normally). A loop that fits in one chunk runs inline
  // on the caller with no synchronization at all, so sub-grain inputs pay
  // nothing for living in a parallel code path.
  //
  // Reentrant: safe to call from inside a body running on this pool.
  // Completion waits only on chunks actually claimed by a thread, never
  // on queued-but-unscheduled helper tasks, so nested calls cannot
  // deadlock (they may simply run with less parallelism).
  [[nodiscard]] Status ParallelFor(
      size_t total, size_t grain,
      const std::function<Status(size_t, size_t)>& body) SIA_EXCLUDES(mu_);

  // Enqueues `task` for a background worker (FIFO). ParallelFor is built
  // on this; exposed for tests and one-off asynchronous work. With no
  // background workers the task runs inline, on the caller.
  void Submit(std::function<void()> task) SIA_EXCLUDES(mu_);

  // Enqueues `task` on the low-priority background lane. Workers take
  // from this lane only when the normal queue is empty, so latency-
  // sensitive work (ParallelFor chunks, serving tasks) always preempts
  // it; background tasks still queued at shutdown are dropped, not run.
  // Returns false — and does NOT enqueue — when the pool has no
  // background workers: running inline would put background work on the
  // caller, which for the online learning loop is exactly the serving
  // path this lane exists to protect. Callers own the fallback (e.g. a
  // dedicated thread).
  bool SubmitBackground(std::function<void()> task) SIA_EXCLUDES(mu_);

  // True when the pool owns at least one background worker thread —
  // i.e. SubmitBackground can make progress.
  bool has_workers() const { return !workers_.empty(); }

 private:
  void WorkerLoop() SIA_EXCLUDES(mu_);

  // Lock hierarchy: mu_ is a leaf among sia locks (nothing in the tree
  // is acquired while it is held), but the obs registry lock may be
  // taken under it for the queue-depth gauge.
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SIA_GUARDED_BY(mu_);
  // The low-priority lane (SubmitBackground). Drained only when queue_
  // is empty; abandoned at shutdown.
  std::deque<std::function<void()>> background_ SIA_GUARDED_BY(mu_);
  bool shutdown_ SIA_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker exists; read-only
  // afterwards, so unguarded reads (thread_count, Submit) are safe.
  std::vector<Thread> workers_;
};

}  // namespace sia

#endif  // SIA_COMMON_THREAD_POOL_H_
