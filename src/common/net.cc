#include "common/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace sia::net {
namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

// Polls `fd` for `events` until the absolute deadline; kTimeout when it
// passes without readiness. POLLERR/POLLHUP readiness is reported as
// success so the subsequent read/write surfaces the real errno/EOF.
Status PollUntil(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) return Status::Timeout("socket poll timed out");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, static_cast<int>(
        std::min<int64_t>(remaining.count(), 1000)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc > 0) return Status::OK();
  }
}

Clock::time_point DeadlineFromMillis(int64_t timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

bool ParseIpv4(const std::string& host, struct sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Status Socket::WriteAll(const void* data, size_t size, int64_t timeout_ms) {
  if (fd_ < 0) return Status::Internal("WriteAll on closed socket");
  const auto deadline = DeadlineFromMillis(timeout_ms);
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = send(fd_, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SIA_RETURN_IF_ERROR(PollUntil(fd_, POLLOUT, deadline));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed the connection during write");
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Status Socket::ReadExact(void* data, size_t size, int64_t timeout_ms) {
  if (fd_ < 0) return Status::Internal("ReadExact on closed socket");
  const auto deadline = DeadlineFromMillis(timeout_ms);
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable(
          got == 0 ? "peer closed the connection"
                   : "peer closed mid-read after " + std::to_string(got) +
                         " of " + std::to_string(size) + " bytes");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SIA_RETURN_IF_ERROR(PollUntil(fd_, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::Unavailable("connection reset during read");
    }
    return ErrnoStatus("recv");
  }
  return Status::OK();
}

Status Socket::SendFrame(std::string_view payload, int64_t timeout_ms) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload must be 1.." +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  unsigned char header[4];
  const uint32_t n = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n >> 24);
  header[1] = static_cast<unsigned char>(n >> 16);
  header[2] = static_cast<unsigned char>(n >> 8);
  header[3] = static_cast<unsigned char>(n);
  SIA_RETURN_IF_ERROR(WriteAll(header, sizeof(header), timeout_ms));
  return WriteAll(payload.data(), payload.size(), timeout_ms);
}

Result<std::string> Socket::RecvFrame(int64_t timeout_ms) {
  unsigned char header[4];
  SIA_RETURN_IF_ERROR(ReadExact(header, sizeof(header), timeout_ms));
  const uint32_t n = (static_cast<uint32_t>(header[0]) << 24) |
                     (static_cast<uint32_t>(header[1]) << 16) |
                     (static_cast<uint32_t>(header[2]) << 8) |
                     static_cast<uint32_t>(header[3]);
  if (n == 0) return Status::ParseError("zero-length frame");
  if (n > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(n) +
                              " exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  std::string payload(n, '\0');
  SIA_RETURN_IF_ERROR(ReadExact(payload.data(), n, timeout_ms));
  return payload;
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  struct sockaddr_in addr;
  if (!ParseIpv4(host, &addr)) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  addr.sin_port = htons(port);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket owner(fd);
  const int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  SIA_RETURN_IF_ERROR(SetNonBlocking(fd));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (listen(fd, backlog) < 0) return ErrnoStatus("listen");
  // Read back the kernel-chosen port when the caller asked for 0.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  Listener out;
  out.fd_ = std::move(owner);
  out.port_ = ntohs(bound.sin_port);
  return out;
}

Result<Socket> Listener::Accept(int64_t timeout_ms) {
  if (!fd_.valid()) return Status::Internal("Accept on closed listener");
  const auto deadline = DeadlineFromMillis(timeout_ms);
  for (;;) {
    const int fd = accept(fd_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      SIA_RETURN_IF_ERROR(SetNonBlocking(fd));
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SIA_RETURN_IF_ERROR(PollUntil(fd_.fd(), POLLIN, deadline));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return ErrnoStatus("accept");
  }
}

Result<Socket> Connect(const std::string& host, uint16_t port,
                       int64_t timeout_ms) {
  struct sockaddr_in addr;
  if (!ParseIpv4(host, &addr)) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  addr.sin_port = htons(port);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket conn(fd);
  SIA_RETURN_IF_ERROR(SetNonBlocking(fd));
  const auto deadline = DeadlineFromMillis(timeout_ms);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect");
    SIA_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      if (err == ECONNREFUSED) {
        return Status::Unavailable("connection refused");
      }
      return Status::Internal(std::string("connect: ") + strerror(err));
    }
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

}  // namespace sia::net
