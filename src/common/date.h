#ifndef SIA_COMMON_DATE_H_
#define SIA_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sia {

// Calendar dates are represented throughout Sia as a signed day number:
// the number of days since the Unix epoch (1970-01-01 is day 0). This
// matches the paper's DATE -> INTEGER normalization (§3.2): all arithmetic
// (date - date, date + interval) and comparison relations are preserved.
//
// The conversion uses the proleptic Gregorian calendar and is exact for
// the full int32 year range; TPC-H dates span 1992-1998.

struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1-12
  int32_t day = 1;    // 1-31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

// Converts a civil date to its epoch day number.
int64_t CivilToDay(const CivilDate& d);

// Converts an epoch day number back to a civil date.
CivilDate DayToCivil(int64_t day);

// Parses "YYYY-MM-DD". Rejects out-of-range months/days.
[[nodiscard]] Result<CivilDate> ParseDate(const std::string& text);

// Parses "YYYY-MM-DD" directly to an epoch day number.
[[nodiscard]] Result<int64_t> ParseDateToDay(const std::string& text);

// Formats an epoch day number as "YYYY-MM-DD".
std::string FormatDay(int64_t day);

// True if `year` is a Gregorian leap year.
bool IsLeapYear(int32_t year);

// Number of days in `month` of `year` (month in 1-12).
int32_t DaysInMonth(int32_t year, int32_t month);

}  // namespace sia

#endif  // SIA_COMMON_DATE_H_
