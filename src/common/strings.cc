#include "common/strings.h"

#include <cctype>

namespace sia {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexDigest64(uint64_t value) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace sia
