#include "common/fault_injection.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/strings.h"
#include "obs/metrics.h"

namespace sia {

std::atomic<int> FaultRegistry::armed_points_{0};

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kOnce:
      return "once";
    case FaultMode::kAlways:
      return "always";
    case FaultMode::kNth:
      return "nth";
    case FaultMode::kProbabilistic:
      return "prob";
    case FaultMode::kLatency:
      return "latency";
  }
  return "?";
}

Result<FaultSpec> FaultSpec::Parse(std::string_view text) {
  FaultSpec spec;
  const size_t colon = text.find(':');
  const std::string_view mode =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view()
                                      : text.substr(colon + 1);
  if (mode == "once" || mode.empty()) {
    spec.mode = FaultMode::kOnce;
    return spec;
  }
  if (mode == "always") {
    spec.mode = FaultMode::kAlways;
    return spec;
  }
  if (mode == "nth") {
    spec.mode = FaultMode::kNth;
    uint64_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), n);
    if (ec != std::errc() || ptr != arg.data() + arg.size() || n == 0) {
      return Status::InvalidArgument("fault spec: nth wants a positive "
                                     "integer, got '" + std::string(arg) + "'");
    }
    spec.nth = n;
    return spec;
  }
  if (mode == "prob") {
    spec.mode = FaultMode::kProbabilistic;
    char* end = nullptr;
    const std::string copy(arg);  // strtod needs a terminator
    const double p = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || copy.empty() || p < 0.0 ||
        p > 1.0) {
      return Status::InvalidArgument("fault spec: prob wants a probability "
                                     "in [0,1], got '" + copy + "'");
    }
    spec.probability = p;
    return spec;
  }
  if (mode == "latency") {
    spec.mode = FaultMode::kLatency;
    uint32_t ms = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), ms);
    if (ec != std::errc() || ptr != arg.data() + arg.size()) {
      return Status::InvalidArgument("fault spec: latency wants milliseconds, "
                                     "got '" + std::string(arg) + "'");
    }
    spec.latency_ms = ms;
    return spec;
  }
  return Status::InvalidArgument("fault spec: unknown mode '" +
                                 std::string(mode) + "'");
}

const std::vector<std::string>& FaultRegistry::KnownPoints() {
  static const std::vector<std::string>* const points =
      new std::vector<std::string>{
          "smt.check",     // any solver (un)sat check through SmtContext
          "smt.optimize",  // OMT objective queries (interval synthesizer)
          "synth.sample",  // TRUE/FALSE training-sample generation
          "verify.cex",    // counter-example generation
          "verify.check",  // the Verify implication check
          "learn.train",   // SVM training (Alg. 2)
          "engine.scan",   // executor table scans
          "background.synth.crash",    // background synthesis job fails
          "background.synth.latency",  // background synthesis job stalls
          "promote.bad_rewrite",       // force-promote a wrong predicate
          "obs.observe.latency",       // OBSERVE handler stalls/fails
      };
  return *points;
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* const registry = new FaultRegistry();
  return *registry;
}

namespace {

// Forces SIA_FAULTS to load at process start: the SIA_FAULT_INJECT
// hot-path gate checks armed_points_ before ever constructing the
// registry, so env arming must not wait for the first Instance() call.
const bool kFaultEnvAnchor = (FaultRegistry::Instance(), true);

}  // namespace

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("SIA_FAULTS");
  if (env == nullptr || env[0] == '\0') return;
  const Status st = ArmFromSpec(env);
  if (!st.ok()) {
    std::fprintf(stderr, "SIA_FAULTS ignored: %s\n", st.ToString().c_str());
  }
}

Status FaultRegistry::Arm(const std::string& point, const FaultSpec& spec) {
  const auto& known = KnownPoints();
  if (std::find(known.begin(), known.end(), point) == known.end()) {
    return Status::InvalidArgument("unknown fault point '" + point + "'");
  }
  MutexLock lock(&mu_);
  const bool fresh = armed_.find(point) == armed_.end();
  armed_[point] = Armed{spec, 0, 0, false};
  if (fresh) armed_points_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultRegistry::ArmFromSpec(const std::string& spec) {
  for (const std::string& entry : Split(spec, ',')) {
    const std::string_view stripped = StripWhitespace(entry);
    if (stripped.empty()) continue;
    const size_t eq = stripped.find('=');
    const std::string point(stripped.substr(0, eq));
    FaultSpec parsed;
    if (eq != std::string_view::npos) {
      SIA_ASSIGN_OR_RETURN(parsed, FaultSpec::Parse(stripped.substr(eq + 1)));
    }
    SIA_RETURN_IF_ERROR(Arm(point, parsed));
  }
  return Status::OK();
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  if (armed_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(&mu_);
  armed_points_.fetch_sub(static_cast<int>(armed_.size()),
                          std::memory_order_relaxed);
  armed_.clear();
}

Status FaultRegistry::Fire(std::string_view point) {
  uint32_t sleep_ms = 0;
  Status injected = Status::OK();
  bool armed_hit = false;
  {
    MutexLock lock(&mu_);
    const auto it = armed_.find(point);
    if (it == armed_.end()) return Status::OK();
    armed_hit = true;
    Armed& armed = it->second;
    ++armed.hits;
    bool fail = false;
    switch (armed.spec.mode) {
      case FaultMode::kOnce:
        fail = !armed.spent;
        armed.spent = true;
        break;
      case FaultMode::kAlways:
        fail = true;
        break;
      case FaultMode::kNth:
        fail = armed.hits == armed.spec.nth;
        break;
      case FaultMode::kProbabilistic:
        fail = rng_.Bernoulli(armed.spec.probability);
        break;
      case FaultMode::kLatency:
        sleep_ms = armed.spec.latency_ms;
        break;
    }
    if (fail) {
      ++armed.failures;
      injected = Status::Internal("injected fault at '" + std::string(point) +
                                  "' (" + FaultModeName(armed.spec.mode) +
                                  ", hit " + std::to_string(armed.hits) + ")");
    }
  }
  // Metrics outside the lock: the obs registry has its own mutex and the
  // dynamic-name lookup should not extend the fault critical section.
  if (armed_hit && obs::MetricsRegistry::Enabled()) {
    obs::IncrementCounter("fault.hit." + std::string(point));
    if (!injected.ok()) {
      obs::IncrementCounter("fault.injected." + std::string(point));
    }
  }
  // Sleep outside the lock so latency faults do not serialize other
  // threads' fault checks.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return injected;
}

uint64_t FaultRegistry::hits(const std::string& point) const {
  MutexLock lock(&mu_);
  const auto it = armed_.find(point);
  return it == armed_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::failures_injected(const std::string& point) const {
  MutexLock lock(&mu_);
  const auto it = armed_.find(point);
  return it == armed_.end() ? 0 : it->second.failures;
}

}  // namespace sia
