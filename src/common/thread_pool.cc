#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace sia {

namespace {

// Shared state of one ParallelFor call. Held by shared_ptr from the
// caller and from every helper task, because helper tasks queued behind
// other work may only run (as no-ops) after the call has returned.
struct ForState {
  size_t chunks = 0;
  size_t grain = 0;
  size_t total = 0;
  std::function<Status(size_t, size_t)> body;

  std::atomic<size_t> next{0};        // next chunk index to claim
  std::atomic<bool> failed{false};    // set => unstarted chunks skip

  Mutex mu;
  CondVar done_cv;
  // chunks finished (run or skipped)
  size_t done SIA_GUARDED_BY(mu) = 0;
  size_t error_chunk SIA_GUARDED_BY(mu) = std::numeric_limits<size_t>::max();
  Status status SIA_GUARDED_BY(mu);
};

Status RunChunk(const ForState& state, size_t chunk) {
  const size_t begin = chunk * state.grain;
  const size_t end = std::min(state.total, begin + state.grain);
  try {
    return state.body(begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

// Claims and runs chunks until none remain. Every claimed chunk is
// counted in `done` even when skipped after a failure, so the caller's
// done == chunks wait cannot miss.
void DrainChunks(ForState& state, bool is_helper) {
  size_t ran = 0;
  for (;;) {
    const size_t chunk = state.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state.chunks) break;
    Status chunk_status;
    if (!state.failed.load(std::memory_order_acquire)) {
      chunk_status = RunChunk(state, chunk);
      ++ran;
    }
    MutexLock lock(&state.mu);
    if (!chunk_status.ok() && chunk < state.error_chunk) {
      // Keep the lowest-indexed failure so the reported error does not
      // depend on scheduling.
      state.error_chunk = chunk;
      state.status = std::move(chunk_status);
      state.failed.store(true, std::memory_order_release);
    }
    if (++state.done == state.chunks) state.done_cv.NotifyAll();
  }
  if (is_helper && ran > 0) SIA_COUNTER_ADD("pool.chunks_stolen", ran);
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(1, std::min(threads, kMaxThreads));
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (Thread& w : workers_) w.Join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty() && background_.empty()) {
        cv_.Wait(&mu_);
      }
      // Strict priority: the normal queue always preempts the background
      // lane. At shutdown the normal queue is drained but still-queued
      // background tasks are dropped — they are droppable by contract.
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        if (obs::MetricsRegistry::Enabled()) {
          obs::SetGauge("pool.queue_depth",
                        static_cast<double>(queue_.size()));
        }
      } else if (!shutdown_ && !background_.empty()) {
        task = std::move(background_.front());
        background_.pop_front();
      } else {
        return;  // shutdown with a drained normal queue
      }
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    SIA_COUNTER_INC("pool.tasks");
    if (obs::MetricsRegistry::Enabled()) {
      obs::SetGauge("pool.queue_depth", static_cast<double>(queue_.size()));
    }
  }
  cv_.NotifyOne();
}

bool ThreadPool::SubmitBackground(std::function<void()> task) {
  if (workers_.empty()) return false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) return false;
    background_.push_back(std::move(task));
    SIA_COUNTER_INC("pool.background.tasks");
  }
  cv_.NotifyOne();
  return true;
}

Status ThreadPool::ParallelFor(
    size_t total, size_t grain,
    const std::function<Status(size_t, size_t)>& body) {
  if (total == 0) return Status::OK();
  grain = std::max<size_t>(1, grain);
  const size_t chunks = (total + grain - 1) / grain;

  if (chunks == 1 || workers_.empty()) {
    // Serial path, still chunk-at-a-time so the observable call pattern
    // (and therefore any chunk-granular state the body keeps) matches
    // the parallel path exactly.
    ForState state;
    state.chunks = chunks;
    state.grain = grain;
    state.total = total;
    state.body = body;
    for (size_t c = 0; c < chunks; ++c) {
      Status st = RunChunk(state, c);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  SIA_COUNTER_INC("pool.parallel_for.calls");
  SIA_COUNTER_ADD("pool.parallel_for.chunks", chunks);
  auto state = std::make_shared<ForState>();
  state->chunks = chunks;
  state->grain = grain;
  state->total = total;
  state->body = body;

  // One helper per worker, capped by the number of chunks the caller
  // leaves over. Helpers that reach the queue after all chunks are
  // claimed exit immediately; nobody ever waits on a queued task.
  const size_t helpers = std::min(workers_.size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { DrainChunks(*state, /*is_helper=*/true); });
  }
  DrainChunks(*state, /*is_helper=*/false);

  MutexLock lock(&state->mu);
  while (state->done != state->chunks) state->done_cv.Wait(&state->mu);
  return state->status;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SIA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return std::min<size_t>(static_cast<size_t>(v), kMaxThreads);
    }
    // Malformed values fall through to the hardware default rather than
    // silently serializing the whole process.
  }
  const unsigned hw = HardwareConcurrency();
  return hw == 0 ? 1 : std::min<size_t>(hw, kMaxThreads);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultThreadCount());
    if (obs::MetricsRegistry::Enabled()) {
      obs::SetGauge("pool.threads", static_cast<double>(p->thread_count()));
    }
    return p;
  }();
  return *pool;
}

}  // namespace sia
