#ifndef SIA_COMMON_NET_H_
#define SIA_COMMON_NET_H_

// Minimal TCP helpers for the serving subsystem (src/server): move-only
// RAII sockets, a listener with poll-based accept timeouts, and a
// length-prefixed frame layer shared by server and client so neither can
// drift from the wire format.
//
// Every blocking operation takes an explicit timeout. Sockets are put in
// non-blocking mode and each read/write polls first, so a stalled or
// malicious peer costs the caller at most its timeout — never a wedged
// thread. Status codes:
//   kTimeout      the timeout elapsed before the operation finished
//   kUnavailable  the peer closed the connection (EOF mid-frame, EPIPE)
//   kParseError   a malformed frame header (zero or oversized length)
//   kInternal     an unexpected socket error (errno in the message)

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sia::net {

// Hard cap on a frame payload in either direction. A length prefix above
// this is rejected as kParseError before any payload byte is read, so a
// hostile 4-byte header cannot make a peer allocate gigabytes.
inline constexpr size_t kMaxFrameBytes = 1 << 20;  // 1 MiB

// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Writes all of `data`, polling for writability; partial progress
  // consumes the one shared timeout.
  [[nodiscard]] Status WriteAll(const void* data, size_t size, int64_t timeout_ms);

  // Reads exactly `size` bytes. kUnavailable on EOF (with the byte count
  // in the message when the close was mid-read).
  [[nodiscard]] Status ReadExact(void* data, size_t size, int64_t timeout_ms);

  // Sends one frame: 4-byte big-endian payload length, then the payload.
  [[nodiscard]] Status SendFrame(std::string_view payload, int64_t timeout_ms);

  // Receives one frame. kUnavailable when the peer closed before sending
  // a complete header (the clean end-of-stream case) or mid-payload;
  // kParseError for a zero or >kMaxFrameBytes length prefix.
  [[nodiscard]] Result<std::string> RecvFrame(int64_t timeout_ms);

  // Half-closes the write side (the peer sees EOF after draining).
  void ShutdownWrite();

 private:
  int fd_ = -1;
};

// A bound, listening TCP socket (IPv4, loopback by default).
class Listener {
 public:
  // Binds and listens on `host:port`; port 0 picks an ephemeral port
  // (read it back from port()).
  [[nodiscard]] static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog = 128);

  Listener() = default;
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  bool valid() const { return fd_.valid(); }
  uint16_t port() const { return port_; }
  void Close() { fd_.Close(); }

  // Waits up to `timeout_ms` for a connection; kTimeout when none
  // arrived (the accept loop's polling heartbeat, not an error).
  [[nodiscard]] Result<Socket> Accept(int64_t timeout_ms);

 private:
  Socket fd_;  // listening fd, reusing Socket's RAII
  uint16_t port_ = 0;
};

// Connects to `host:port` within `timeout_ms`.
[[nodiscard]] Result<Socket> Connect(const std::string& host, uint16_t port,
                       int64_t timeout_ms);

}  // namespace sia::net

#endif  // SIA_COMMON_NET_H_
