#ifndef SIA_COMMON_STRINGS_H_
#define SIA_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sia {

// ASCII-lowercases `s`.
std::string ToLower(std::string_view s);

// ASCII-uppercases `s`.
std::string ToUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// 64-bit FNV-1a hash of `s`. Stable across platforms and runs — used
// wherever two processes must agree on a digest of the same text (the
// serving protocol's sql_hash, sia_lint's digest files).
uint64_t Fnv1a64(std::string_view s);

// `value` as 16 lowercase hex digits (the canonical rendering of the
// digests above).
std::string HexDigest64(uint64_t value);

}  // namespace sia

#endif  // SIA_COMMON_STRINGS_H_
