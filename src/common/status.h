#ifndef SIA_COMMON_STATUS_H_
#define SIA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sia {

// Error category for a failed operation. Kept coarse on purpose: callers
// branch on "did it work", and read the message for diagnostics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kParseError,
  kTypeError,
  kSolverError,
  kTimeout,
  kUnavailable,
  kInternal,
};

// Returns a short human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

// Status is the result of an operation that can fail but returns no value.
// It is cheap to copy in the OK case and carries a message otherwise.
//
// The class itself is [[nodiscard]]: any call returning a Status (or a
// Result<T>) by value must consume it — SIA_RETURN_IF_ERROR, a branch on
// ok(), or an explicit `(void)` cast with a comment saying why dropping
// the error is correct. Declaration-site [[nodiscard]] on factories and
// pipeline entry points is still swept on by convention (and enforced by
// tools/sia_conventions) so the intent survives at the API surface even
// for readers who never open this header.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]] static Status SolverError(std::string msg) {
    return Status(StatusCode::kSolverError, std::move(msg));
  }
  [[nodiscard]] static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  // The resource exists but cannot take the work right now (a full
  // admission queue, a draining server, a peer that closed mid-frame).
  // Retrying later may succeed — unlike kInternal, which means a bug.
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. The accessors CHECK
// the state in debug builds; use ok() before dereferencing. [[nodiscard]]
// for the same reason as Status: a dropped Result is a swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

// Propagates a non-OK Status from an expression to the caller.
#define SIA_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::sia::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Evaluates a Result expression, assigning the value to `lhs` (which may
// be a declaration) or propagating the error status to the caller.
//
// The expansion is necessarily more than one statement (it introduces a
// temporary *and* may declare `lhs` in the enclosing scope), so it is
// only legal inside a braced block. The temporary is keyed by
// __COUNTER__, which makes every expansion's name globally unique:
// using the macro as the un-braced body of an `if`/`else`/loop fails to
// compile (the follow-up statements reference a temporary that is
// already out of scope) instead of conditionally evaluating `expr` and
// then consulting whichever same-named temporary an earlier same-line
// expansion left in scope, as the previous __LINE__-keyed version could.
#define SIA_ASSIGN_OR_RETURN(lhs, expr)        \
  SIA_ASSIGN_OR_RETURN_IMPL(                   \
      SIA_STATUS_CONCAT(_sia_result_, __COUNTER__), lhs, expr)

#define SIA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

#define SIA_STATUS_CONCAT_INNER(a, b) a##b
#define SIA_STATUS_CONCAT(a, b) SIA_STATUS_CONCAT_INNER(a, b)

}  // namespace sia

#endif  // SIA_COMMON_STATUS_H_
