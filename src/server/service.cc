#include "server/service.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "engine/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace sia::server {
namespace {

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

QueryReply ReplyFromOutcome(const RewriteOutcome& outcome) {
  QueryReply reply;
  reply.rewritten = outcome.changed();
  reply.rung = RewriteRungName(outcome.rung);
  reply.from_cache = outcome.from_cache;
  reply.rewritten_sql = outcome.rewritten.ToString();
  reply.sql_hash = Fnv1a64(reply.rewritten_sql);
  return reply;
}

Status ExecuteInto(const ParsedQuery& query, const Catalog& catalog,
                   Executor& executor, QueryReply* reply) {
  SIA_ASSIGN_OR_RETURN(QueryOutput output, RunQuery(query, catalog, executor));
  reply->executed = true;
  reply->rows = output.row_count;
  reply->content_hash = output.content_hash;
  reply->order_hash = output.order_hash;
  return Status::OK();
}

QueryService::QueryService(const ServiceOptions& options)
    : options_(options), catalog_(Catalog::TpchCatalog()) {
  if (options_.scale_factor > 0) {
    data_.emplace(GenerateTpch(options_.scale_factor, options_.data_seed));
    executor_.RegisterTable("orders", &data_->orders);
    executor_.RegisterTable("lineitem", &data_->lineitem);
  }
}

std::string QueryService::Handle(std::string_view payload, int64_t queue_us) {
  auto request = ParseRequest(payload);
  if (!request.ok()) return FormatError(request.status());
  if (request->verb == kVerbPing) return FormatOkPing();
  if (request->verb == kVerbStats) {
    return FormatOkStats(obs::MetricsRegistry::Instance().SnapshotJson());
  }
  return HandleQuery(request->body, queue_us);
}

std::string QueryService::HandleQuery(const std::string& sql,
                                      int64_t queue_us) {
  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) return FormatError(parsed.status());

  // Queries that do not touch the rewrite target pass through unchanged
  // — a serving endpoint answers them rather than erroring, the same way
  // the ladder's kOriginal rung answers a failed synthesis.
  const bool has_target =
      std::find(parsed->tables.begin(), parsed->tables.end(),
                options_.target_table) != parsed->tables.end();
  const auto rewrite_start = std::chrono::steady_clock::now();
  RewriteOutcome outcome;
  if (has_target) {
    SIA_TRACE_SPAN("server.rewrite");
    RewriteOptions rewrite_options;
    rewrite_options.target_table = options_.target_table;
    rewrite_options.cache = &cache_;
    if (options_.max_iterations > 0) {
      rewrite_options.synthesis.max_iterations = options_.max_iterations;
    }
    if (options_.request_deadline_ms > 0) {
      rewrite_options.deadline =
          Deadline::FromNowMillis(options_.request_deadline_ms);
    }
    auto rewritten = RewriteQuery(*parsed, catalog_, rewrite_options);
    if (!rewritten.ok()) return FormatError(rewritten.status());
    outcome = std::move(*rewritten);
  } else {
    outcome.rewritten = *parsed;
  }
  const int64_t rewrite_us = ElapsedMicros(rewrite_start);

  QueryReply fields = ReplyFromOutcome(outcome);
  fields.queue_us = queue_us;
  fields.rewrite_us = rewrite_us;

  if (data_.has_value()) {
    SIA_TRACE_SPAN("server.execute");
    const auto exec_start = std::chrono::steady_clock::now();
    const Status executed =
        ExecuteInto(outcome.rewritten, catalog_, executor_, &fields);
    if (!executed.ok()) return FormatError(executed);
    fields.exec_us = ElapsedMicros(exec_start);
  }
  return FormatOkQuery(fields);
}

}  // namespace sia::server
