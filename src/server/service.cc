#include "server/service.h"

#include <algorithm>
#include <chrono>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "engine/runner.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace sia::server {
namespace {

int64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Monotonic millisecond clock for promotion/demotion timestamps (the
// kDemoted TTL compares differences only, so the epoch is irrelevant).
int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryReply ReplyFromOutcome(const RewriteOutcome& outcome) {
  QueryReply reply;
  reply.rewritten = outcome.changed();
  reply.rung = RewriteRungName(outcome.rung);
  reply.from_cache = outcome.from_cache;
  reply.rewritten_sql = outcome.rewritten.ToString();
  reply.sql_hash = Fnv1a64(reply.rewritten_sql);
  return reply;
}

Status ExecuteInto(const ParsedQuery& query, const Catalog& catalog,
                   Executor& executor, QueryReply* reply) {
  SIA_ASSIGN_OR_RETURN(QueryOutput output, RunQuery(query, catalog, executor));
  reply->executed = true;
  reply->rows = output.row_count;
  reply->content_hash = output.content_hash;
  reply->order_hash = output.order_hash;
  return Status::OK();
}

QueryService::QueryService(const ServiceOptions& options)
    : options_(options), catalog_(Catalog::TpchCatalog()) {
  policy_.promote_after = std::max(1, options_.promote_after);
  policy_.demote_after = std::max(1, options_.demote_after);
  policy_.shadow_sample_rate = options_.shadow_sample_rate;
  policy_.demote_ttl_ms = options_.demote_ttl_ms;
  if (options_.scale_factor > 0) {
    data_.emplace(GenerateTpch(options_.scale_factor, options_.data_seed));
    executor_.RegisterTable("orders", &data_->orders);
    executor_.RegisterTable("lineitem", &data_->lineitem);
  }
}

QueryService::~QueryService() { DrainBackground(); }

void QueryService::StartBackground(ThreadPool* pool) {
  if (!options_.background_learning || synthesizer_ != nullptr) return;
  BackgroundSynthesizer::Options opts;
  opts.rewrite.target_table = options_.target_table;
  if (options_.max_iterations > 0) {
    opts.rewrite.synthesis.max_iterations = options_.max_iterations;
  }
  opts.budget_ms = std::max<int64_t>(1, options_.background_budget_ms);
  opts.queue_depth = std::max<size_t>(1, options_.background_queue_depth);
  opts.policy = policy_;
  if (data_.has_value()) {
    // Evidence loop: paranoid-run the fresh candidate up to promote_after
    // times so an unambiguous winner is promoted without waiting for
    // serving-path samples. Runs on the background lane, after the
    // publish, against the same executor the workers use (it is
    // internally synchronized).
    opts.evidence = [this](const BackgroundJob& job, const ExprPtr& learned) {
      ParsedQuery rewritten = job.query;
      rewritten.where = Expr::Logic(LogicOp::kAnd, job.query.where, learned);
      for (int i = 0; i < policy_.promote_after; ++i) {
        auto report = RunRewriteParanoid(job.query, rewritten, catalog_,
                                         executor_);
        if (!report.ok()) return;
        ShadowOutcome evidence;
        evidence.mismatch = report->mismatch;
        evidence.rewrite_failed = report->rewritten_failed;
        evidence.original_ms = report->original_ms;
        evidence.rewritten_ms = report->rewritten_ms;
        auto state = cache_.RecordShadow(job.bound, job.cols, evidence,
                                         policy_, SteadyMillis());
        if (!state.ok() || *state != EntryState::kQuarantined) return;
      }
    };
  }
  synthesizer_ =
      std::make_unique<BackgroundSynthesizer>(&cache_, pool, std::move(opts));
}

void QueryService::DrainBackground() {
  if (synthesizer_ != nullptr) synthesizer_->DrainAndStop();
}

bool QueryService::SampleShadow() {
  const double rate = policy_.shadow_sample_rate;
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  // The n-th request samples iff floor((n+1)*rate) > floor(n*rate): an
  // exact, deterministic rate with no per-request RNG.
  const double n =
      static_cast<double>(shadow_ticket_.fetch_add(1, std::memory_order_relaxed));
  return static_cast<uint64_t>((n + 1) * rate) !=
         static_cast<uint64_t>(n * rate);
}

std::string QueryService::Handle(std::string_view payload, int64_t queue_us) {
  auto request = ParseRequest(payload);
  if (!request.ok()) return FormatError(request.status());
  if (request->verb == kVerbPing) return FormatOkPing();
  if (request->verb == kVerbStats) {
    // Lifetime totals plus the rolling windows, all through the one
    // shared snapshot-to-JSON formatter (sia_lint --metrics-out renders
    // the same snapshot without the windows).
    windows_.Tick(obs::Tracer::Instance().NowMicros());
    const std::string extra = "\"windows\":" + windows_.WindowsJson() + ",";
    return FormatOkStats(obs::FormatSnapshotJson(
        obs::MetricsRegistry::Instance().Snapshot(), extra));
  }
  if (request->verb == kVerbObserve) return HandleObserve();
  return HandleQuery(request->body, queue_us);
}

std::string QueryService::HandleObserve() {
  SIA_TRACE_SPAN("server.observe");
  if (FaultRegistry::Enabled()) {
    // Proves a slow/failing OBSERVE poller is contained here: a latency
    // fault stalls only this handler's worker slot, an error fault turns
    // into an ERROR frame — admission and drain never notice either way.
    const Status injected =
        FaultRegistry::Instance().Fire("obs.observe.latency");
    if (!injected.ok()) return FormatError(injected);
  }
  const uint64_t now_us = obs::Tracer::Instance().NowMicros();
  windows_.Tick(now_us);
  obs::EventLog& events = obs::EventLog::Instance();
  std::string json = "{\"now_us\":" + std::to_string(now_us);
  json += ",\"windows\":";
  json += windows_.WindowsJson();
  json += ",\"events\":";
  json += events.Json();
  json += ",\"events_dropped\":" + std::to_string(events.DroppedCount());
  json += ",\"cache\":{\"entries\":[";
  bool first = true;
  for (const RewriteCache::EntryInfo& info : cache_.EntryInfos()) {
    if (!first) json += ',';
    first = false;
    json += "{\"key\":\"";
    json += obs::internal::JsonEscape(info.key);
    json += "\",\"state\":\"";
    json += EntryStateName(info.state);
    json += "\",\"rung\":" + std::to_string(info.rung);
    json += ",\"wins\":" + std::to_string(info.wins);
    json += ",\"losses\":" + std::to_string(info.losses);
    json += ",\"shadow_runs\":" + std::to_string(info.shadow_runs);
    json += ",\"poisoned\":";
    json += info.poisoned ? "true" : "false";
    json += "}";
  }
  json += "]}}";
  return FormatOkStats(json);
}

std::string QueryService::HandleQuery(const std::string& sql,
                                      int64_t queue_us) {
  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) return FormatError(parsed.status());

  // Queries that do not touch the rewrite target pass through unchanged
  // — a serving endpoint answers them rather than erroring, the same way
  // the ladder's kOriginal rung answers a failed synthesis.
  const bool has_target =
      std::find(parsed->tables.begin(), parsed->tables.end(),
                options_.target_table) != parsed->tables.end();
  const auto rewrite_start = std::chrono::steady_clock::now();
  if (has_target && synthesizer_ != nullptr) {
    SIA_TRACE_SPAN("server.rewrite");
    RewriteOptions key_options;
    key_options.target_table = options_.target_table;
    auto key = MakeRewriteKey(*parsed, catalog_, key_options);
    if (!key.ok()) return FormatError(key.status());
    return HandleQueryLearning(*parsed, *key, queue_us,
                               ElapsedMicros(rewrite_start));
  }
  RewriteOutcome outcome;
  if (has_target) {
    SIA_TRACE_SPAN("server.rewrite");
    RewriteOptions rewrite_options;
    rewrite_options.target_table = options_.target_table;
    rewrite_options.cache = &cache_;
    if (options_.max_iterations > 0) {
      rewrite_options.synthesis.max_iterations = options_.max_iterations;
    }
    if (options_.request_deadline_ms > 0) {
      rewrite_options.deadline =
          Deadline::FromNowMillis(options_.request_deadline_ms);
    }
    auto rewritten = RewriteQuery(*parsed, catalog_, rewrite_options);
    if (!rewritten.ok()) return FormatError(rewritten.status());
    outcome = std::move(*rewritten);
  } else {
    outcome.rewritten = *parsed;
  }
  const int64_t rewrite_us = ElapsedMicros(rewrite_start);

  QueryReply fields = ReplyFromOutcome(outcome);
  fields.queue_us = queue_us;
  fields.rewrite_us = rewrite_us;

  if (data_.has_value()) {
    SIA_TRACE_SPAN("server.execute");
    const auto exec_start = std::chrono::steady_clock::now();
    const Status executed =
        ExecuteInto(outcome.rewritten, catalog_, executor_, &fields);
    if (!executed.ok()) return FormatError(executed);
    fields.exec_us = ElapsedMicros(exec_start);
  }
  if (fields.from_cache) {
    SIA_HISTOGRAM_RECORD("server.handle.hit_us",
                         fields.rewrite_us + fields.exec_us);
  } else {
    SIA_HISTOGRAM_RECORD("server.handle.miss_us",
                         fields.rewrite_us + fields.exec_us);
  }
  return FormatOkQuery(fields);
}

std::string QueryService::HandleQueryLearning(const ParsedQuery& parsed,
                                              const RewriteKey& key,
                                              int64_t queue_us,
                                              int64_t rewrite_start_us) {
  RewriteOutcome outcome;
  outcome.rewritten = parsed;
  ServingDecision decision;
  if (key.synthesizable) {
    decision = cache_.Decide(key.bound, key.cols, policy_, SampleShadow(),
                             SteadyMillis());
    if (decision.enqueue) {
      // This request owns the fresh kSynthesizing marker; hand the key
      // to the background lane and keep serving the original. A full or
      // draining queue sheds the job (and releases the marker) inside
      // Enqueue — serving never waits either way.
      BackgroundJob job;
      job.bound = key.bound;
      job.cols = key.cols;
      job.joint = key.joint;
      job.query = parsed;
      job.trace_id = obs::CurrentTraceId();
      (void)synthesizer_->Enqueue(std::move(job));
    }
    if (decision.serve_rewrite) {
      outcome.learned = decision.predicate;
      outcome.synthesis.predicate = decision.predicate;
      outcome.synthesis.status = SynthesisStatus::kValid;
      outcome.rung = static_cast<RewriteRung>(decision.rung);
      outcome.from_cache = true;
      outcome.rewritten.where =
          Expr::Logic(LogicOp::kAnd, parsed.where, decision.predicate);
    }
  }

  QueryReply fields = ReplyFromOutcome(outcome);
  fields.queue_us = queue_us;
  fields.rewrite_us = rewrite_start_us;

  if (data_.has_value()) {
    SIA_TRACE_SPAN("server.execute");
    const auto exec_start = std::chrono::steady_clock::now();
    Status executed;
    if (decision.shadow && decision.predicate != nullptr) {
      // Sampled request on a shadow-eligible entry: cross-check the
      // candidate and feed the evidence back. Quarantined entries still
      // serve the original's digests; promoted ones serve the rewrite's
      // unless the cross-check just failed.
      ParsedQuery rewritten = parsed;
      rewritten.where =
          Expr::Logic(LogicOp::kAnd, parsed.where, decision.predicate);
      executed = ShadowExecute(parsed, rewritten, decision.serve_rewrite,
                               key.bound, key.cols, &fields);
    } else {
      executed = ExecuteInto(outcome.rewritten, catalog_, executor_, &fields);
    }
    if (!executed.ok()) return FormatError(executed);
    fields.exec_us = ElapsedMicros(exec_start);
  }
  // Hit = a promoted rewrite served from the cache; miss = everything
  // else (the original was served, learning may be in flight). The split
  // is what the bench and sia_top read as the amortization payoff.
  if (fields.from_cache) {
    SIA_HISTOGRAM_RECORD("server.handle.hit_us",
                         fields.rewrite_us + fields.exec_us);
  } else {
    SIA_HISTOGRAM_RECORD("server.handle.miss_us",
                         fields.rewrite_us + fields.exec_us);
  }
  return FormatOkQuery(fields);
}

Status QueryService::ShadowExecute(const ParsedQuery& original,
                                   const ParsedQuery& rewritten,
                                   bool serve_rewrite, const ExprPtr& bound,
                                   const std::vector<size_t>& cols,
                                   QueryReply* reply) {
  SIA_TRACE_SPAN("server.shadow");
  SIA_ASSIGN_OR_RETURN(
      ParanoidReport report,
      RunRewriteParanoid(original, rewritten, catalog_, executor_));
  ShadowOutcome evidence;
  evidence.mismatch = report.mismatch;
  evidence.rewrite_failed = report.rewritten_failed;
  evidence.original_ms = report.original_ms;
  evidence.rewritten_ms = report.rewritten_ms;
  // The entry may have been cleared or re-keyed while we executed; the
  // evidence is simply lost then.
  (void)cache_.RecordShadow(bound, cols, evidence, policy_, SteadyMillis());

  // report.output already falls back to the original's result on a
  // mismatch or a rewritten-side failure; quarantined entries serve the
  // original's digests even when the candidate agreed.
  const QueryOutput& chosen =
      serve_rewrite ? report.output : report.original_output;
  reply->executed = true;
  reply->rows = chosen.row_count;
  reply->content_hash = chosen.content_hash;
  reply->order_hash = chosen.order_hash;
  return Status::OK();
}

}  // namespace sia::server
