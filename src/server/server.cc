#include "server/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia::server {
namespace {

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Accept-loop polling heartbeat: how often the acceptor re-checks the
// stopping flag while idle.
constexpr int64_t kAcceptPollMillis = 50;

// A shed/error frame is tens of bytes; if the peer cannot take that in
// this long it has stopped reading and is not worth an acceptor stall.
constexpr int64_t kBestEffortWriteMillis = 1000;

// Lingering close for shed connections. Closing right after the SHED
// write races the client's in-flight request bytes: data arriving at a
// closed socket makes the kernel answer with RST, and an RST discards
// the client's unread receive buffer — the SHED frame evaporates. So a
// shed connection is half-closed (FIN) and parked; the acceptor keeps
// discarding its inbound bytes until EOF or this deadline, then closes.
constexpr int64_t kLingerMillis = 2000;
// Park at most this many shed sockets; beyond it the oldest is closed
// hard (an RST to a client we are already refusing beats unbounded fds).
constexpr size_t kMaxLingering = 1024;

// A shed connection waiting out its lingering close.
struct LingeringConn {
  net::Socket conn;
  uint64_t close_us = 0;  // SteadyMicros() deadline
};

}  // namespace

int64_t AdaptiveRetryHint(int64_t base_ms, size_t queue_len,
                          size_t queue_depth, double recent_sheds) {
  base_ms = std::max<int64_t>(1, base_ms);
  const double fullness =
      queue_depth == 0
          ? 1.0
          : static_cast<double>(queue_len) / static_cast<double>(queue_depth);
  const double scaled =
      static_cast<double>(base_ms) * (1.0 + fullness + recent_sheds);
  const double cap = static_cast<double>(base_ms) * 32.0;
  return static_cast<int64_t>(std::min(scaled, cap));
}

SiaServer::SiaServer(const ServerOptions& options)
    : options_(options),
      service_(options.service),
      queue_(std::max<size_t>(1, options.queue_depth)) {}

Result<std::unique_ptr<SiaServer>> SiaServer::Start(
    const ServerOptions& options) {
  ServerOptions opts = options;
  opts.workers = std::max<size_t>(1, opts.workers);
  // A resident server always collects metrics: STATS is part of the
  // protocol, and the counters cost one relaxed RMW per event.
  obs::MetricsRegistry::SetEnabled(true);
  std::unique_ptr<SiaServer> server(new SiaServer(opts));
  SIA_ASSIGN_OR_RETURN(server->listener_,
                       net::Listener::Bind(opts.host, opts.port));
  obs::SetGauge("server.queue.depth", 0);
  obs::SetGauge("server.inflight", 0);
  // A pool of size N owns N-1 pool threads; each serving worker loop
  // occupies one for the server's lifetime, and the caller's slot is
  // never used (the acceptor is a dedicated thread). The extra +1 pool
  // thread is the background lane's slack: the serving loops pin their
  // own threads, so without it low-priority tasks would wait for drain.
  // Lane priority still holds — that thread takes any queued serving
  // task first — and serving workers are never borrowed for synthesis.
  server->pool_ = std::make_unique<ThreadPool>(opts.workers + 2);
  // Background learning rides the same pool's low-priority lane: a
  // bounded, droppable job queue that can never starve admitted
  // requests.
  server->service_.StartBackground(server->pool_.get());
  {
    MutexLock lock(&server->drain_mu_);
    server->live_workers_ = opts.workers;
  }
  for (size_t i = 0; i < opts.workers; ++i) {
    server->pool_->Submit([raw = server.get()] { raw->WorkerLoop(); });
  }
  server->acceptor_ = Thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

SiaServer::~SiaServer() {
  // A drain timeout is already recorded in drain_result_ for callers who
  // asked; the destructor has nobody to report it to.
  (void)DrainAndStop();
}

void SiaServer::AcceptLoop() {
  std::vector<LingeringConn> lingering;
  // Decaying shed pressure: +1 per shed, halved per successful
  // admission. Acceptor-thread-only state, so no lock.
  double recent_sheds = 0.0;
  // Sweeps the parked shed connections: discard whatever the refused
  // client sent, close on EOF or deadline. Runs at the accept loop's
  // heartbeat and never blocks (the sockets are non-blocking).
  const auto reap = [&lingering] {
    char scratch[256];
    const uint64_t now = SteadyMicros();
    for (size_t i = 0; i < lingering.size();) {
      bool drop = now >= lingering[i].close_us;
      while (!drop) {
        const ssize_t n = ::recv(lingering[i].conn.fd(), scratch,
                                 sizeof(scratch), MSG_DONTWAIT);
        if (n > 0) continue;  // request bytes from a refused client
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        drop = true;  // EOF (clean) or a hard error: done lingering
      }
      if (drop) {
        std::swap(lingering[i], lingering.back());
        lingering.pop_back();
      } else {
        ++i;
      }
    }
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept(kAcceptPollMillis);
    reap();
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      // A transient accept failure (EMFILE under load, say) must not
      // spin the acceptor; anything persistent ends with drain anyway.
      if (stopping_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptPollMillis));
      continue;
    }
    // The request's trace is born here: every span and event on this
    // connection's journey — admission, queue, rewrite, background
    // synthesis, promotion — carries this ID.
    const uint64_t trace_id = obs::MintTraceId();
    obs::TraceContext trace_ctx(trace_id);
    SIA_TRACE_SPAN("server.accept");
    accepted_.fetch_add(1, std::memory_order_relaxed);
    SIA_COUNTER_INC("server.requests.accepted");
    AdmittedConn admitted;
    admitted.conn = std::move(*conn);
    admitted.admit_us = SteadyMicros();
    admitted.trace_id = trace_id;
    if (!queue_.TryPush(std::move(admitted))) {
      // Load shed: refuse explicitly and immediately, before reading a
      // single request byte, with a Retry-After hint that scales with
      // how overloaded we actually are — a fixed hint resynchronizes
      // every refused client into the next burst. The connection then
      // lingers half-closed so the refused client's own request write
      // cannot RST the SHED frame out of its receive buffer.
      shed_.fetch_add(1, std::memory_order_relaxed);
      SIA_COUNTER_INC("server.requests.shed");
      recent_sheds += 1.0;
      const int64_t hint =
          AdaptiveRetryHint(options_.retry_after_ms, queue_.size(),
                            options_.queue_depth, recent_sheds);
      obs::SetGauge("server.shed.retry_hint_ms", static_cast<double>(hint));
      SIA_EVENT("server.shed",
                "retry_after_ms=" + std::to_string(hint) +
                    " queue=" + std::to_string(queue_.size()));
      if (admitted.conn
              .SendFrame(FormatShed(hint), kBestEffortWriteMillis)
              .ok()) {
        admitted.conn.ShutdownWrite();
        if (lingering.size() >= kMaxLingering) {
          std::swap(lingering.front(), lingering.back());
          lingering.pop_back();
        }
        lingering.push_back(
            {std::move(admitted.conn), SteadyMicros() + kLingerMillis * 1000});
      }
    } else {
      recent_sheds *= 0.5;
    }
  }
  // Remaining parked connections close when `lingering` goes out of
  // scope; by now every one has had a full accept-poll tick to be read.
}

void SiaServer::WorkerLoop() {
  for (;;) {
    std::optional<AdmittedConn> item;
    {
      // The wait-for-work span; the per-request queue delay is the
      // server.queue.wait_us histogram recorded in ServeConn.
      SIA_TRACE_SPAN("server.queue");
      item = queue_.Pop();
    }
    if (!item.has_value()) break;  // closed and drained
    ServeConn(std::move(*item));
  }
  {
    MutexLock lock(&drain_mu_);
    --live_workers_;
  }
  drain_cv_.NotifyAll();
}

void SiaServer::ServeConn(AdmittedConn admitted) {
  // Rejoin the trace minted at admission: spans and events recorded on
  // this worker (and the background job the request may enqueue) link to
  // the acceptor's server.accept span.
  obs::TraceContext trace_ctx(admitted.trace_id);
  obs::AddGauge("server.inflight", 1);
  const int64_t queue_us =
      static_cast<int64_t>(SteadyMicros() - admitted.admit_us);
  SIA_HISTOGRAM_RECORD("server.queue.wait_us", queue_us);

  auto payload = admitted.conn.RecvFrame(options_.io_timeout_ms);
  if (!payload.ok()) {
    // Unreadable request: oversized/zero length prefix, truncated
    // payload, peer gone. Answer when the transport still works (a
    // malformed frame deserves an ERROR, not a silent close).
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SIA_COUNTER_INC("server.requests.protocol_errors");
    if (payload.status().code() != StatusCode::kUnavailable) {
      // Best effort: the connection is already broken from the client's
      // point of view; a failed ERROR write changes nothing.
      (void)admitted.conn.SendFrame(FormatError(payload.status()),
                                    kBestEffortWriteMillis);
    }
    obs::AddGauge("server.inflight", -1);
    return;
  }

  const std::string response = service_.Handle(*payload, queue_us);
  if (response.rfind("ERROR", 0) == 0) {
    SIA_COUNTER_INC("server.requests.errors");
  }
  {
    SIA_TRACE_SPAN("server.respond");
    const Status sent =
        admitted.conn.SendFrame(response, options_.io_timeout_ms);
    if (sent.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      SIA_COUNTER_INC("server.requests.completed");
    } else {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SIA_COUNTER_INC("server.requests.protocol_errors");
    }
  }
  const uint64_t latency_us = SteadyMicros() - admitted.admit_us;
  SIA_HISTOGRAM_RECORD("server.request.latency_us", latency_us);
  if (options_.slow_request_us > 0 &&
      latency_us > static_cast<uint64_t>(options_.slow_request_us)) {
    SIA_EVENT("server.slow_query",
              "latency_us=" + std::to_string(latency_us) +
                  " queue_us=" + std::to_string(queue_us));
  }
  obs::AddGauge("server.inflight", -1);
}

Status SiaServer::DrainAndStop() {
  // Serialized, idempotent: the first caller drains, later callers (and
  // the destructor) get the stored result.
  MutexLock stop_lock(&stop_mu_);
  if (stopped_) return drain_result_;
  stopped_ = true;

  stopping_.store(true, std::memory_order_release);
  if (acceptor_.Joinable()) acceptor_.Join();
  listener_.Close();
  queue_.Close();

  Status result = Status::OK();
  {
    MutexLock lock(&drain_mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_deadline_ms);
    while (live_workers_ != 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        result = Status::Timeout(
            "drain deadline (" + std::to_string(options_.drain_deadline_ms) +
            "ms) passed with " + std::to_string(live_workers_) +
            " workers still busy");
        break;
      }
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count() +
          1;
      drain_cv_.WaitForMillis(&drain_mu_, remaining_ms);
    }
    // The deadline bounds the graceful exit, not thread lifetime: the
    // workers are joined regardless (every blocking step they can be in
    // carries its own timeout, so this terminates).
    while (live_workers_ != 0) drain_cv_.Wait(&drain_mu_);
  }
  // Background learning drains after the workers (no new jobs can arrive
  // once every worker exited) and strictly before the pool dies: queued
  // jobs are aborted back to re-queueable, the in-flight one — which is
  // occupying a live pool worker — is waited out.
  service_.DrainBackground();
  pool_.reset();
  drain_result_ = result;
  return result;
}

ServerCounters SiaServer::counters() const {
  ServerCounters out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sia::server
