#ifndef SIA_SERVER_PROTOCOL_H_
#define SIA_SERVER_PROTOCOL_H_

// The sia_serve wire protocol, one layer above common/net.h framing.
//
// Every frame payload is UTF-8 text. Requests are a verb line, optionally
// followed by a body:
//
//   PING                     liveness probe
//   STATS                    src/obs metrics snapshot (JSON), lifetime
//                            totals plus rolling 1s/10s/60s windows
//   OBSERVE                  live-telemetry snapshot (JSON): windowed
//                            metrics, recent events, per-entry cache
//                            states — what sia_top polls
//   QUERY\n<sql>             rewrite (and, when the server holds data,
//                            execute) one SELECT statement
//
// Responses start with a status line:
//
//   OK                       request served; body follows
//   SHED retry_after_ms=<N>  load-shed: the admission queue was full.
//                            <N> is the server's Retry-After hint
//   ERROR <Code>: <message>  the request failed; <Code> is a
//                            StatusCodeName (ParseError, Timeout, ...)
//
// An OK QUERY response body is `key=value` lines (one per line, keys in
// a fixed order) with `rewritten_sql=` last, since SQL text is the one
// value that may contain '='. Numeric hashes are 16 lowercase hex
// digits (common/strings.h HexDigest64 of an Fnv1a64).
//
// The same module formats sia_lint / sia_client *digest lines* — the
// canonical one-line-per-query records scripts/check.sh diffs between a
// served run and a batch sia_lint run. Keeping both renderings here is
// what makes "byte-identical" a compile-time property rather than two
// tools' printf calls staying in sync by luck.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sia::server {

// Request verbs.
inline constexpr std::string_view kVerbPing = "PING";
inline constexpr std::string_view kVerbStats = "STATS";
inline constexpr std::string_view kVerbObserve = "OBSERVE";
inline constexpr std::string_view kVerbQuery = "QUERY";

struct Request {
  std::string verb;  // uppercased
  std::string body;  // SQL for QUERY; empty otherwise
};

// Splits a request payload into verb + body. kParseError on an empty
// payload, an unknown verb, embedded NUL bytes, or a missing QUERY body.
[[nodiscard]] Result<Request> ParseRequest(std::string_view payload);

// Per-request outcome fields carried in an OK QUERY response.
struct QueryReply {
  bool rewritten = false;    // a predicate was learned and conjoined
  std::string rung;          // degradation-ladder rung name
  bool from_cache = false;   // served by the shared RewriteCache
  uint64_t sql_hash = 0;     // Fnv1a64 of the rewritten SQL text
  std::string rewritten_sql;
  int64_t queue_us = 0;      // admission-queue wait
  int64_t rewrite_us = 0;
  int64_t exec_us = 0;
  // Execution digests; present only when the server executes queries
  // (scale_factor > 0).
  bool executed = false;
  uint64_t rows = 0;
  uint64_t content_hash = 0;
  uint64_t order_hash = 0;
};

// --- Response rendering (server side) ---
std::string FormatOkPing();
std::string FormatOkStats(std::string_view metrics_json);
std::string FormatOkQuery(const QueryReply& reply);
std::string FormatShed(int64_t retry_after_ms);
std::string FormatError(const Status& status);

// --- Response parsing (client side) ---
enum class ResponseKind { kOk, kShed, kError };

struct Response {
  ResponseKind kind = ResponseKind::kError;
  std::string body;               // lines after the status line
  int64_t retry_after_ms = 0;     // kShed
  Status error;                   // kError: reconstructed Status
  // kOk QUERY responses parsed into fields; nullopt when the body is not
  // a QUERY reply (PING/STATS).
  std::optional<QueryReply> query;
};

[[nodiscard]] Result<Response> ParseResponse(std::string_view payload);

// --- Digest lines (shared by sia_lint --digests-out and sia_client) ---
//
//   workload:seed<seed> rewritten=<0|1> rung=<rung> sql_hash=<hex>
//   [rows=<n> content_hash=<hex> order_hash=<hex>]
//
// Deliberately excludes from_cache and timings: those are legitimately
// different between a serial lint, a batch lint, and a served run over
// the same workload, while everything above must be identical.
std::string FormatDigestLine(uint64_t seed, const QueryReply& reply);

}  // namespace sia::server

#endif  // SIA_SERVER_PROTOCOL_H_
