#ifndef SIA_SERVER_ADMISSION_QUEUE_H_
#define SIA_SERVER_ADMISSION_QUEUE_H_

// Bounded admission queue between the acceptor thread and the worker
// pool. Entries are accepted-but-unread connections, so admission (and
// load-shedding) happens before the server spends anything on a request
// beyond the accept itself: the acceptor never blocks on client I/O, and
// a full queue is answered with an immediate SHED frame instead of an
// ever-growing backlog.
//
// Close() flips the queue into drain mode: pushes are refused, pops keep
// draining until empty, then return nullopt — exactly the SIGTERM
// semantics ("stop accepting, finish what was admitted").

#include <cstdint>
#include <deque>
#include <optional>

#include "common/net.h"
#include "common/sync.h"

namespace sia::server {

// A connection the acceptor admitted, stamped with its admission time
// (tracer-epoch microseconds) so the worker can record queue wait, and
// with the trace ID minted at admission so the worker (and everything
// downstream — background synthesis, promotion) joins the same trace.
struct AdmittedConn {
  net::Socket conn;
  uint64_t admit_us = 0;
  uint64_t trace_id = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t depth) : depth_(depth) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // False when the queue is full or closed — the caller sheds. `item` is
  // moved from only on success, so the caller still owns the connection
  // (and can write the SHED response) after a refusal.
  bool TryPush(AdmittedConn&& item) SIA_EXCLUDES(mu_);

  // Blocks until an item arrives or the queue is closed and empty.
  std::optional<AdmittedConn> Pop() SIA_EXCLUDES(mu_);

  // Refuse new pushes; wake every blocked Pop once the backlog drains.
  void Close() SIA_EXCLUDES(mu_);

  size_t size() const SIA_EXCLUDES(mu_);
  size_t depth() const { return depth_; }
  bool closed() const SIA_EXCLUDES(mu_);

 private:
  const size_t depth_;
  // Leaf among sia::server locks (only the obs registry lock is ever
  // taken under it, for the queue-depth gauge).
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<AdmittedConn> items_ SIA_GUARDED_BY(mu_);
  bool closed_ SIA_GUARDED_BY(mu_) = false;
};

}  // namespace sia::server

#endif  // SIA_SERVER_ADMISSION_QUEUE_H_
