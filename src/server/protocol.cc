#include "server/protocol.h"

#include <cstring>

#include "common/strings.h"

namespace sia::server {
namespace {

// One-line rendering of a Status message: the status line must stay a
// single line, whatever a parser or solver put in the message.
std::string OneLine(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  return out;
}

StatusCode CodeFromName(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kUnsupported, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kSolverError, StatusCode::kTimeout,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

}  // namespace

Result<Request> ParseRequest(std::string_view payload) {
  if (payload.empty()) return Status::ParseError("empty request");
  if (payload.find('\0') != std::string_view::npos) {
    return Status::ParseError("request contains NUL bytes");
  }
  const size_t eol = payload.find('\n');
  const std::string_view verb_line =
      StripWhitespace(eol == std::string_view::npos ? payload
                                                    : payload.substr(0, eol));
  const std::string verb = ToUpper(verb_line);
  Request request;
  request.verb = verb;
  if (verb == kVerbPing || verb == kVerbStats || verb == kVerbObserve) {
    return request;
  }
  if (verb == kVerbQuery) {
    if (eol == std::string_view::npos) {
      return Status::ParseError("QUERY without a SQL body");
    }
    request.body = std::string(StripWhitespace(payload.substr(eol + 1)));
    if (request.body.empty()) {
      return Status::ParseError("QUERY with an empty SQL body");
    }
    return request;
  }
  return Status::ParseError("unknown verb '" + OneLine(verb_line) + "'");
}

std::string FormatOkPing() { return "OK\npong"; }

std::string FormatOkStats(std::string_view metrics_json) {
  std::string out = "OK\n";
  out += metrics_json;
  return out;
}

std::string FormatOkQuery(const QueryReply& reply) {
  std::string out = "OK\n";
  out += "rewritten=" + std::string(reply.rewritten ? "1" : "0") + "\n";
  out += "rung=" + reply.rung + "\n";
  out += "from_cache=" + std::string(reply.from_cache ? "1" : "0") + "\n";
  out += "sql_hash=" + HexDigest64(reply.sql_hash) + "\n";
  out += "queue_us=" + std::to_string(reply.queue_us) + "\n";
  out += "rewrite_us=" + std::to_string(reply.rewrite_us) + "\n";
  out += "exec_us=" + std::to_string(reply.exec_us) + "\n";
  if (reply.executed) {
    out += "rows=" + std::to_string(reply.rows) + "\n";
    out += "content_hash=" + HexDigest64(reply.content_hash) + "\n";
    out += "order_hash=" + HexDigest64(reply.order_hash) + "\n";
  }
  out += "rewritten_sql=" + reply.rewritten_sql;
  return out;
}

std::string FormatShed(int64_t retry_after_ms) {
  return "SHED retry_after_ms=" + std::to_string(retry_after_ms);
}

std::string FormatError(const Status& status) {
  return "ERROR " + std::string(StatusCodeName(status.code())) + ": " +
         OneLine(status.message());
}

Result<Response> ParseResponse(std::string_view payload) {
  if (payload.empty()) return Status::ParseError("empty response");
  const size_t eol = payload.find('\n');
  const std::string_view status_line =
      eol == std::string_view::npos ? payload : payload.substr(0, eol);
  Response response;
  response.body =
      eol == std::string_view::npos ? "" : std::string(payload.substr(eol + 1));

  if (status_line == "OK") {
    response.kind = ResponseKind::kOk;
    // A QUERY reply body always starts with `rewritten=`; PING/STATS
    // bodies never do.
    if (response.body.rfind("rewritten=", 0) != 0) return response;
    QueryReply reply;
    std::string_view rest = response.body;
    while (!rest.empty()) {
      const size_t line_end = rest.find('\n');
      std::string_view line = rest.substr(0, line_end);
      // rewritten_sql= is the final field and may itself contain '\n'-free
      // SQL with '=' characters; consume the remainder wholesale.
      if (line.rfind("rewritten_sql=", 0) == 0) {
        reply.rewritten_sql = std::string(rest.substr(strlen("rewritten_sql=")));
        rest = {};
        break;
      }
      const size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return Status::ParseError("malformed reply line '" +
                                  std::string(line) + "'");
      }
      const std::string_view key = line.substr(0, eq);
      const std::string_view value = line.substr(eq + 1);
      uint64_t number = 0;
      if (key == "rewritten") {
        reply.rewritten = value == "1";
      } else if (key == "rung") {
        reply.rung = std::string(value);
      } else if (key == "from_cache") {
        reply.from_cache = value == "1";
      } else if (key == "sql_hash" && ParseHex64(value, &number)) {
        reply.sql_hash = number;
      } else if (key == "queue_us" && ParseU64(value, &number)) {
        reply.queue_us = static_cast<int64_t>(number);
      } else if (key == "rewrite_us" && ParseU64(value, &number)) {
        reply.rewrite_us = static_cast<int64_t>(number);
      } else if (key == "exec_us" && ParseU64(value, &number)) {
        reply.exec_us = static_cast<int64_t>(number);
      } else if (key == "rows" && ParseU64(value, &number)) {
        reply.rows = number;
        reply.executed = true;
      } else if (key == "content_hash" && ParseHex64(value, &number)) {
        reply.content_hash = number;
      } else if (key == "order_hash" && ParseHex64(value, &number)) {
        reply.order_hash = number;
      } else {
        return Status::ParseError("malformed reply field '" +
                                  std::string(line) + "'");
      }
      if (line_end == std::string_view::npos) break;
      rest = rest.substr(line_end + 1);
    }
    response.query = std::move(reply);
    return response;
  }

  if (status_line.rfind("SHED", 0) == 0) {
    response.kind = ResponseKind::kShed;
    const size_t eq = status_line.find("retry_after_ms=");
    uint64_t ms = 0;
    if (eq == std::string_view::npos ||
        !ParseU64(status_line.substr(eq + strlen("retry_after_ms=")), &ms)) {
      return Status::ParseError("malformed SHED line '" +
                                std::string(status_line) + "'");
    }
    response.retry_after_ms = static_cast<int64_t>(ms);
    return response;
  }

  if (status_line.rfind("ERROR ", 0) == 0) {
    response.kind = ResponseKind::kError;
    const std::string_view rest = status_line.substr(strlen("ERROR "));
    const size_t colon = rest.find(": ");
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed ERROR line '" +
                                std::string(status_line) + "'");
    }
    response.error = Status(CodeFromName(rest.substr(0, colon)),
                            std::string(rest.substr(colon + 2)));
    return response;
  }

  return Status::ParseError("unknown response status line '" +
                            std::string(status_line) + "'");
}

std::string FormatDigestLine(uint64_t seed, const QueryReply& reply) {
  std::string out = "workload:seed" + std::to_string(seed);
  out += " rewritten=" + std::string(reply.rewritten ? "1" : "0");
  out += " rung=" + reply.rung;
  out += " sql_hash=" + HexDigest64(reply.sql_hash);
  if (reply.executed) {
    out += " rows=" + std::to_string(reply.rows);
    out += " content_hash=" + HexDigest64(reply.content_hash);
    out += " order_hash=" + HexDigest64(reply.order_hash);
  }
  return out;
}

}  // namespace sia::server
