#include "server/admission_queue.h"

#include "obs/metrics.h"

namespace sia::server {

bool AdmissionQueue::TryPush(AdmittedConn&& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= depth_) return false;
    items_.push_back(std::move(item));
    if (obs::MetricsRegistry::Enabled()) {
      obs::SetGauge("server.queue.depth", static_cast<double>(items_.size()));
    }
  }
  cv_.notify_one();
  return true;
}

std::optional<AdmittedConn> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  AdmittedConn item = std::move(items_.front());
  items_.pop_front();
  if (obs::MetricsRegistry::Enabled()) {
    obs::SetGauge("server.queue.depth", static_cast<double>(items_.size()));
  }
  return item;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace sia::server
