#include "server/admission_queue.h"

#include "obs/metrics.h"

namespace sia::server {

bool AdmissionQueue::TryPush(AdmittedConn&& item) {
  {
    MutexLock lock(&mu_);
    if (closed_ || items_.size() >= depth_) return false;
    items_.push_back(std::move(item));
    if (obs::MetricsRegistry::Enabled()) {
      obs::SetGauge("server.queue.depth", static_cast<double>(items_.size()));
    }
  }
  cv_.NotifyOne();
  return true;
}

std::optional<AdmittedConn> AdmissionQueue::Pop() {
  MutexLock lock(&mu_);
  while (!closed_ && items_.empty()) cv_.Wait(&mu_);
  if (items_.empty()) return std::nullopt;  // closed and drained
  AdmittedConn item = std::move(items_.front());
  items_.pop_front();
  if (obs::MetricsRegistry::Enabled()) {
    obs::SetGauge("server.queue.depth", static_cast<double>(items_.size()));
  }
  return item;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionQueue::size() const {
  MutexLock lock(&mu_);
  return items_.size();
}

bool AdmissionQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

}  // namespace sia::server
