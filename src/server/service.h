#ifndef SIA_SERVER_SERVICE_H_
#define SIA_SERVER_SERVICE_H_

// The per-request brains of sia_serve, separated from the threading in
// server.h: given one request payload, produce one response payload.
// QueryService owns everything a request needs — the TPC-H catalog, the
// process-lifetime RewriteCache (the §6.2 "optimize once, serve many"
// deployment mode), and optionally generated TPC-H data plus an Executor
// so QUERY responses carry result digests.
//
// Handle() is called concurrently from every worker; all shared state is
// either immutable after construction (catalog, tables) or internally
// synchronized (RewriteCache single-flight, Executor's shared pool).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/tpch_gen.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "server/protocol.h"

namespace sia::server {

struct ServiceOptions {
  // Rewrite configuration, mirroring sia_lint's flags so a served run
  // and a batch lint run can be configured identically.
  std::string target_table = "lineitem";
  int max_iterations = 0;        // 0 = synthesizer default
  // Per-request wall-clock budget for the rewrite ladder (0 = none).
  // Unlike sia_lint --deadline-ms, this is naturally per-request: each
  // request derives a fresh Deadline when a worker picks it up.
  int64_t request_deadline_ms = 0;
  // When > 0, generate TPC-H data at this scale factor and execute every
  // rewritten query, reporting result digests in the response.
  double scale_factor = 0;
  uint64_t data_seed = 42;
};

// Renders the protocol reply fields for a rewrite outcome. Shared with
// sia_lint --digests-out so both sides compute sql_hash/rung/rewritten
// from the same code.
QueryReply ReplyFromOutcome(const RewriteOutcome& outcome);

// Executes `query` and folds row_count/content_hash/order_hash into
// `reply`. Shared with sia_lint --execute-sf.
[[nodiscard]] Status ExecuteInto(const ParsedQuery& query, const Catalog& catalog,
                   Executor& executor, QueryReply* reply);

class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Serves one request; never throws and always returns a well-formed
  // response payload (failures become ERROR frames). `queue_us` is the
  // admission-queue wait the server measured for this request.
  std::string Handle(std::string_view payload, int64_t queue_us);

  bool executes() const { return data_.has_value(); }
  const Catalog& catalog() const { return catalog_; }
  RewriteCache& cache() { return cache_; }

 private:
  std::string HandleQuery(const std::string& sql, int64_t queue_us);

  ServiceOptions options_;
  Catalog catalog_;
  RewriteCache cache_;
  std::optional<TpchData> data_;
  Executor executor_;  // used only when data_ is populated
};

}  // namespace sia::server

#endif  // SIA_SERVER_SERVICE_H_
