#ifndef SIA_SERVER_SERVICE_H_
#define SIA_SERVER_SERVICE_H_

// The per-request brains of sia_serve, separated from the threading in
// server.h: given one request payload, produce one response payload.
// QueryService owns everything a request needs — the TPC-H catalog, the
// process-lifetime RewriteCache (the §6.2 "optimize once, serve many"
// deployment mode), and optionally generated TPC-H data plus an Executor
// so QUERY responses carry result digests.
//
// Handle() is called concurrently from every worker; all shared state is
// either immutable after construction (catalog, tables) or internally
// synchronized (RewriteCache single-flight, Executor's shared pool).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/tpch_gen.h"
#include "obs/window.h"
#include "rewrite/background_synthesizer.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "server/protocol.h"

namespace sia::server {

struct ServiceOptions {
  // Rewrite configuration, mirroring sia_lint's flags so a served run
  // and a batch lint run can be configured identically.
  std::string target_table = "lineitem";
  int max_iterations = 0;        // 0 = synthesizer default
  // Per-request wall-clock budget for the rewrite ladder (0 = none).
  // Unlike sia_lint --deadline-ms, this is naturally per-request: each
  // request derives a fresh Deadline when a worker picks it up.
  int64_t request_deadline_ms = 0;
  // When > 0, generate TPC-H data at this scale factor and execute every
  // rewritten query, reporting result digests in the response.
  double scale_factor = 0;
  uint64_t data_seed = 42;

  // --- background learning loop ("never synthesize on the serving
  // path") ------------------------------------------------------------
  // When true (and StartBackground was called), a cache miss is answered
  // immediately with the original query and the key is queued for
  // background synthesis; entries then earn promotion on measured shadow
  // evidence. When false, the legacy synchronous ladder runs on the
  // serving path (sia_serve --sync-rewrite), which is what byte-exact
  // digest comparisons against batch runs need.
  bool background_learning = true;
  int promote_after = 3;           // shadow wins required to promote
  int demote_after = 3;            // shadow losses that demote
  double shadow_sample_rate = 0.1; // fraction of eligible serves shadowed
  int64_t demote_ttl_ms = 60000;   // demoted -> re-queue after this long
  int64_t background_budget_ms = 2000;  // per-job synthesis budget
  size_t background_queue_depth = 64;   // queued jobs beyond this drop
};

// Renders the protocol reply fields for a rewrite outcome. Shared with
// sia_lint --digests-out so both sides compute sql_hash/rung/rewritten
// from the same code.
QueryReply ReplyFromOutcome(const RewriteOutcome& outcome);

// Executes `query` and folds row_count/content_hash/order_hash into
// `reply`. Shared with sia_lint --execute-sf.
[[nodiscard]] Status ExecuteInto(const ParsedQuery& query, const Catalog& catalog,
                   Executor& executor, QueryReply* reply);

class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Turns the background learning loop on (when the options ask for it):
  // misses stop synthesizing inline and enqueue onto `pool`'s background
  // lane instead. `pool` may be null — a dedicated drainer thread is
  // used then. Call before the first concurrent Handle(); the server
  // calls it at startup.
  void StartBackground(ThreadPool* pool);

  // Stops the background lane: queued jobs are aborted (their keys
  // become re-queueable), the in-flight one finishes. Idempotent; the
  // server's drain path calls it before tearing down the pool.
  void DrainBackground();

  // Serves one request; never throws and always returns a well-formed
  // response payload (failures become ERROR frames). `queue_us` is the
  // admission-queue wait the server measured for this request.
  std::string Handle(std::string_view payload, int64_t queue_us);

  bool executes() const { return data_.has_value(); }
  const Catalog& catalog() const { return catalog_; }
  RewriteCache& cache() { return cache_; }
  // Null until StartBackground; stable afterwards.
  BackgroundSynthesizer* background() { return synthesizer_.get(); }

 private:
  // The OBSERVE verb: windowed metrics + recent events + per-entry cache
  // states as one JSON document. Pull-side only — it samples and
  // renders, never touching serving state beyond read-only snapshots.
  std::string HandleObserve();
  std::string HandleQuery(const std::string& sql, int64_t queue_us);
  // The background-learning serving path for a synthesizable query:
  // consult the cache state machine, maybe enqueue, never synthesize.
  std::string HandleQueryLearning(const ParsedQuery& parsed,
                                  const RewriteKey& key, int64_t queue_us,
                                  int64_t rewrite_start_us);
  // Paranoid-executes `rewritten` against `original`, folds the evidence
  // into the cache entry for (bound, cols), and fills `reply` with the
  // servable digests (the rewrite's only when `serve_rewrite` and the
  // cross-check passed; the original's otherwise).
  [[nodiscard]] Status ShadowExecute(const ParsedQuery& original,
                                     const ParsedQuery& rewritten,
                                     bool serve_rewrite, const ExprPtr& bound,
                                     const std::vector<size_t>& cols,
                                     QueryReply* reply);
  // Deterministic Bernoulli(shadow_sample_rate) over the request ticket
  // sequence — no RNG state on the hot path.
  bool SampleShadow();

  ServiceOptions options_;
  PromotionPolicy policy_;
  Catalog catalog_;
  RewriteCache cache_;
  std::optional<TpchData> data_;
  Executor executor_;  // used only when data_ is populated
  // Set once by StartBackground before concurrent serving, then only
  // read — no lock needed on the request path.
  std::unique_ptr<BackgroundSynthesizer> synthesizer_;
  std::atomic<uint64_t> shadow_ticket_{0};
  // Rolling 1s/10s/60s windows over the registry, sampled by the STATS
  // and OBSERVE readers (never by the serving path).
  obs::WindowedStats windows_;
};

}  // namespace sia::server

#endif  // SIA_SERVER_SERVICE_H_
