#ifndef SIA_SERVER_SERVER_H_
#define SIA_SERVER_SERVER_H_

// The concurrent query-serving subsystem (sia_serve): a resident process
// boundary around the rewrite pipeline, shaped as
//
//   acceptor thread -> bounded AdmissionQueue -> worker pool -> responses
//
// The acceptor owns all accept(2) work and the load-shed decision: a
// connection that cannot be admitted is answered with a SHED frame
// (Retry-After hint) and closed, so overload degrades to fast, explicit
// refusals instead of unbounded queueing. Workers (long-running tasks on
// a private common/thread_pool) read the request frame, run it through
// QueryService — rewrite ladder, shared RewriteCache, optional execution
// — and write the response. Per-request deadlines come from
// ServiceOptions::request_deadline_ms; per-request spans are
// server.accept / server.queue / server.rewrite / server.execute /
// server.respond.
//
// Shutdown is a graceful drain: DrainAndStop() stops accepting, lets the
// workers finish everything already admitted, and reports kTimeout when
// that takes longer than drain_deadline_ms (workers are still joined —
// the deadline bounds the *graceful* exit, not thread lifetime).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/net.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "server/admission_queue.h"
#include "server/service.h"

namespace sia::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via SiaServer::port()
  size_t workers = 2;
  size_t queue_depth = 64;
  // How long a worker waits for a client's request frame / response
  // write before giving up on the connection.
  int64_t io_timeout_ms = 5000;
  // Graceful-drain budget for DrainAndStop().
  int64_t drain_deadline_ms = 10000;
  // Base Retry-After hint carried in SHED responses. The hint actually
  // sent scales with current pressure (see AdaptiveRetryHint); this is
  // its floor.
  int64_t retry_after_ms = 100;
  // Requests slower than this (accept-to-response, queue wait included)
  // land in the OBSERVE event log as server.slow_query. 0 disables.
  int64_t slow_request_us = 100000;
  ServiceOptions service;
};

// The Retry-After hint for one SHED response: the configured base scaled
// by how full the admission queue is and by the acceptor's recent shed
// pressure (a decaying count of sheds since the last successful
// admission). Clamped to [base, 32*base] so a client backoff can trust
// the hint's order of magnitude. Pure; the acceptor owns the pressure
// accounting.
int64_t AdaptiveRetryHint(int64_t base_ms, size_t queue_len,
                          size_t queue_depth, double recent_sheds);

// Monotonic request accounting, valid while the server runs and after it
// stops. accepted == shed + completed + protocol_errors once drained.
struct ServerCounters {
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;        // a response frame was written
  uint64_t protocol_errors = 0;  // unreadable/over-long/abandoned requests
};

class SiaServer {
 public:
  // Binds, spawns the acceptor and `workers` worker loops, and returns a
  // serving instance.
  [[nodiscard]] static Result<std::unique_ptr<SiaServer>> Start(
      const ServerOptions& options);

  // Drains (if the caller did not) and joins everything.
  ~SiaServer();

  uint16_t port() const { return listener_.port(); }

  // The serving brains; valid for the server's lifetime. Exposed so
  // tests and tools can read cache/background state after a drain.
  QueryService& service() { return service_; }

  // Stop accepting, refuse new admissions, finish all admitted requests.
  // Idempotent. Returns kTimeout when the backlog outlived
  // drain_deadline_ms; OK otherwise.
  [[nodiscard]] Status DrainAndStop() SIA_EXCLUDES(stop_mu_, drain_mu_);

  ServerCounters counters() const;

 private:
  explicit SiaServer(const ServerOptions& options);

  void AcceptLoop();
  void WorkerLoop() SIA_EXCLUDES(drain_mu_);
  // One admitted connection end to end: read frame, serve, respond.
  void ServeConn(AdmittedConn admitted);

  ServerOptions options_;
  QueryService service_;
  net::Listener listener_;
  AdmissionQueue queue_;
  // workers + 2 (caller-counting pool): one pool thread per serving
  // loop plus one left free for the low-priority background lane.
  std::unique_ptr<ThreadPool> pool_;
  Thread acceptor_;

  std::atomic<bool> stopping_{false};

  // Lock hierarchy: stop_mu_ -> drain_mu_ (DrainAndStop holds the stop
  // lock for its whole run, taking the drain lock inside it). Both are
  // ordered before the AdmissionQueue's internal lock, which Close()
  // takes while stop_mu_ is held.
  // DrainAndStop serialization + stored result for idempotent calls.
  Mutex stop_mu_ SIA_ACQUIRED_BEFORE(drain_mu_);
  bool stopped_ SIA_GUARDED_BY(stop_mu_) = false;
  Status drain_result_ SIA_GUARDED_BY(stop_mu_);

  Mutex drain_mu_;
  CondVar drain_cv_;
  size_t live_workers_ SIA_GUARDED_BY(drain_mu_) = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace sia::server

#endif  // SIA_SERVER_SERVER_H_
