#include "check/plan_validator.h"

#include <cassert>
#include <cstdio>

#include "check/expr_validator.h"
#include "common/strings.h"
#include "ir/analysis.h"

namespace sia {

namespace {

std::string NodeLabel(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return "Scan(" + node.table() + ")";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kProject:
      return "Project";
  }
  return "?";
}

// Schemas agree when widths and column types match; names are compared
// case-insensitively and only when both sides carry one (derived columns
// such as Aggregate's count have empty table names).
bool SchemaEquals(const Schema& a, const Schema& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const ColumnDef& ca = a.column(i);
    const ColumnDef& cb = b.column(i);
    if (ca.type != cb.type) return false;
    if (!ca.name.empty() && !cb.name.empty() &&
        !EqualsIgnoreCase(ca.name, cb.name)) {
      return false;
    }
  }
  return true;
}

std::string SchemaBrief(const Schema& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.column(i).name.empty() ? "?" : s.column(i).name;
    out += ":";
    out += DataTypeName(s.column(i).type);
  }
  out += "]";
  return out;
}

bool CheckArity(const PlanNode& node, size_t expected, Diagnostics* diags) {
  if (node.children().size() == expected) return true;
  diags->Add(DiagCode::kPlanArityMismatch, NodeLabel(node),
             "expected " + std::to_string(expected) + " children, got " +
                 std::to_string(node.children().size()));
  return false;
}

// Validates a predicate over the node's input schema. Out-of-range
// column refs are reported as the plan-level out-of-scope code: at this
// layer they mean the predicate was bound against (or moved to) the
// wrong schema.
void ValidateNodePredicate(const PlanNode& node, const ExprPtr& pred,
                           const Schema& input, Diagnostics* diags) {
  Diagnostics sub;
  ValidateExpr(pred, input, &sub, ExprValidatorOptions{});
  for (Diagnostic d : sub.items()) {
    if (d.code == DiagCode::kExprColumnOutOfRange) {
      d.code = DiagCode::kPlanPredicateOutOfScope;
    }
    d.where = NodeLabel(node) + " predicate/" + d.where;
    diags->Add(std::move(d));
  }
  if (pred->type() != DataType::kBoolean) {
    diags->Add(DiagCode::kPlanNonBooleanPredicate,
               NodeLabel(node) + " predicate",
               std::string("typed ") + DataTypeName(pred->type()) +
                   ", expected BOOLEAN");
  }
}

void ValidateNode(const PlanPtr& plan, Diagnostics* diags,
                  const PlanValidatorOptions& options) {
  for (const PlanPtr& child : plan->children()) {
    ValidateNode(child, diags, options);
  }

  switch (plan->kind()) {
    case PlanKind::kScan: {
      CheckArity(*plan, 0, diags);
      if (options.catalog != nullptr) {
        auto table = options.catalog->GetTable(plan->table());
        if (!table.ok()) {
          diags->Add(DiagCode::kPlanUnknownTable, NodeLabel(*plan),
                     "table is not in the catalog");
        } else if (!SchemaEquals(*table, plan->output_schema())) {
          diags->Add(DiagCode::kPlanSchemaMismatch, NodeLabel(*plan),
                     "scan schema " + SchemaBrief(plan->output_schema()) +
                         " disagrees with catalog " + SchemaBrief(*table));
        }
      }
      if (plan->predicate() != nullptr) {
        ValidateNodePredicate(*plan, plan->predicate(),
                              plan->output_schema(), diags);
        // Pushdown safety: a residual scan filter must only touch the
        // scanned table — a ref to any other table means a join-side mixup.
        for (const std::string& t : CollectTables(plan->predicate())) {
          if (!t.empty() && !EqualsIgnoreCase(t, plan->table())) {
            diags->Add(DiagCode::kPlanScanFilterForeignColumn,
                       NodeLabel(*plan) + " filter",
                       "references column of table '" + t + "'");
          }
        }
      }
      return;
    }
    case PlanKind::kFilter: {
      if (!CheckArity(*plan, 1, diags)) return;
      const Schema& input = plan->child()->output_schema();
      if (!SchemaEquals(plan->output_schema(), input)) {
        diags->Add(DiagCode::kPlanSchemaMismatch, NodeLabel(*plan),
                   "filter output " + SchemaBrief(plan->output_schema()) +
                       " differs from its input " + SchemaBrief(input));
      }
      if (plan->predicate() == nullptr) {
        diags->Add(DiagCode::kPlanMissingPredicate, NodeLabel(*plan),
                   "filter node without a predicate");
        return;
      }
      ValidateNodePredicate(*plan, plan->predicate(), input, diags);
      return;
    }
    case PlanKind::kJoin: {
      if (!CheckArity(*plan, 2, diags)) return;
      const Schema input = Schema::Concat(plan->child(0)->output_schema(),
                                          plan->child(1)->output_schema());
      if (!SchemaEquals(plan->output_schema(), input)) {
        diags->Add(DiagCode::kPlanSchemaMismatch, NodeLabel(*plan),
                   "join output " + SchemaBrief(plan->output_schema()) +
                       " is not the concatenation of its inputs " +
                       SchemaBrief(input));
      }
      if (plan->predicate() == nullptr) {
        diags->Add(DiagCode::kPlanCrossJoin, NodeLabel(*plan),
                   "join without a condition degrades to a cross product");
        return;
      }
      ValidateNodePredicate(*plan, plan->predicate(), input, diags);
      return;
    }
    case PlanKind::kAggregate: {
      if (!CheckArity(*plan, 1, diags)) return;
      const Schema& input = plan->child()->output_schema();
      bool cols_ok = true;
      for (const size_t c : plan->columns()) {
        if (c >= input.size()) {
          diags->Add(DiagCode::kPlanColumnOutOfRange, NodeLabel(*plan),
                     "group-by column " + std::to_string(c) +
                         " exceeds input width " +
                         std::to_string(input.size()));
          cols_ok = false;
        }
      }
      if (!cols_ok) return;
      Schema expected;
      for (const size_t c : plan->columns()) {
        expected.AddColumn(input.column(c));
      }
      expected.AddColumn(ColumnDef{"", "count", DataType::kInteger, false});
      if (!SchemaEquals(plan->output_schema(), expected)) {
        diags->Add(DiagCode::kPlanSchemaMismatch, NodeLabel(*plan),
                   "aggregate output " + SchemaBrief(plan->output_schema()) +
                       " should be group-by columns plus count " +
                       SchemaBrief(expected));
      }
      return;
    }
    case PlanKind::kProject: {
      if (!CheckArity(*plan, 1, diags)) return;
      const Schema& input = plan->child()->output_schema();
      bool cols_ok = true;
      for (const size_t c : plan->columns()) {
        if (c >= input.size()) {
          diags->Add(DiagCode::kPlanColumnOutOfRange, NodeLabel(*plan),
                     "projected column " + std::to_string(c) +
                         " exceeds input width " +
                         std::to_string(input.size()));
          cols_ok = false;
        }
      }
      if (!cols_ok) return;
      Schema expected;
      for (const size_t c : plan->columns()) {
        expected.AddColumn(input.column(c));
      }
      if (!SchemaEquals(plan->output_schema(), expected)) {
        diags->Add(DiagCode::kPlanSchemaMismatch, NodeLabel(*plan),
                   "project output " + SchemaBrief(plan->output_schema()) +
                       " does not match the selected columns " +
                       SchemaBrief(expected));
      }
      return;
    }
  }
}

}  // namespace

void ValidatePlan(const PlanPtr& plan, Diagnostics* diags,
                  const PlanValidatorOptions& options) {
  if (plan == nullptr) return;
  ValidateNode(plan, diags, options);
}

Status CheckPlan(const PlanPtr& plan, const std::string& context,
                 const Catalog* catalog) {
  Diagnostics diags;
  PlanValidatorOptions options;
  options.catalog = catalog;
  ValidatePlan(plan, &diags, options);
#ifndef NDEBUG
  if (!diags.ok()) {
    std::fprintf(stderr, "CheckPlan(%s) failed:\n%s", context.c_str(),
                 diags.ToString().c_str());
    assert(diags.ok() && "plan invariant violation at a validated seam");
  }
#endif
  return diags.ToStatus(context);
}

void DebugCheckPlan(const PlanPtr& plan, const char* context) {
#ifndef NDEBUG
  Diagnostics diags;
  ValidatePlan(plan, &diags);
  if (!diags.ok()) {
    std::fprintf(stderr, "DebugCheckPlan(%s) failed:\n%s", context,
                 diags.ToString().c_str());
    assert(diags.ok() && "plan invariant violation after a rewrite rule");
  }
#else
  (void)plan;
  (void)context;
#endif
}

}  // namespace sia
