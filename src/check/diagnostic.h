#ifndef SIA_CHECK_DIAGNOSTIC_H_
#define SIA_CHECK_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sia {

// Structured findings produced by the static validators (check/
// expr_validator.h, check/plan_validator.h). Every malformed-input class
// has its own stable code so tests and tooling can assert on *what* went
// wrong, not on message text.
enum class DiagCode {
  // --- Expression-level (expr.*) ---------------------------------------
  kExprUnboundColumn,        // column ref never resolved by the binder
  kExprColumnOutOfRange,     // bound index >= schema width
  kExprColumnTypeMismatch,   // bound type disagrees with the schema slot
  kExprColumnNameMismatch,   // bound name disagrees with the schema slot
  kExprArithTypeError,       // arithmetic over boolean / non-numeric
  kExprCompareTypeError,     // comparison over boolean / non-numeric
  kExprLogicTypeError,       // AND/OR/NOT over non-boolean operand
  kExprResultTypeError,      // node's cached type != recomputed type
  kExprDateOutOfRange,       // DATE literal outside year 1..9999
  kExprNonFiniteLiteral,     // NaN / infinity DOUBLE literal
  kExprNullComparison,       // `x = NULL` — always UNKNOWN under 3VL
  kExprDivisionByZero,       // division by a constant zero
  kExprNotCnf,               // claimed-CNF predicate is not in CNF

  // --- Plan-level (plan.*) ----------------------------------------------
  kPlanArityMismatch,          // wrong number of children for node kind
  kPlanUnknownTable,           // scan table absent from the catalog
  kPlanSchemaMismatch,         // output schema inconsistent with inputs
  kPlanMissingPredicate,       // Filter node with no predicate
  kPlanNonBooleanPredicate,    // filter/join/scan predicate not boolean
  kPlanPredicateOutOfScope,    // predicate refs a column outside the
                               // node's input schema
  kPlanScanFilterForeignColumn,  // pushed-down filter refs another table
  kPlanColumnOutOfRange,       // aggregate/project column out of range
  kPlanCrossJoin,              // join without a condition (warning)
};

enum class DiagSeverity { kWarning, kError };

// Stable identifier, e.g. "expr.unbound-column".
const char* DiagCodeName(DiagCode code);

// Default severity for a code (everything is an error except the
// explicit lint-style warnings).
DiagSeverity DiagCodeSeverity(DiagCode code);

struct Diagnostic {
  DiagCode code = DiagCode::kExprUnboundColumn;
  DiagSeverity severity = DiagSeverity::kError;
  // Where the finding is anchored: a plan-node / pipeline-stage path such
  // as "Join/Scan(lineitem) filter" plus the offending (sub)expression.
  std::string where;
  std::string message;

  // "error [expr.unbound-column] <where>: <message>".
  std::string ToString() const;
};

// An append-only collection of diagnostics with severity accounting.
class Diagnostics {
 public:
  void Add(DiagCode code, std::string where, std::string message);
  void Add(Diagnostic diag);

  // Appends every diagnostic of `other`, prefixing its `where` with
  // `where_prefix` (used when a sub-validation is embedded in a larger
  // context, e.g. an expression inside a plan node).
  void Merge(const Diagnostics& other, const std::string& where_prefix);

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return items_.size() - error_count_; }

  // True when no *errors* were recorded (warnings allowed).
  bool ok() const { return error_count_ == 0; }

  bool Has(DiagCode code) const;

  const std::vector<Diagnostic>& items() const { return items_; }

  // One diagnostic per line.
  std::string ToString() const;

  // OK when no errors; otherwise InvalidArgument carrying the first
  // error's rendering plus an error count, prefixed with `context`.
  [[nodiscard]] Status ToStatus(const std::string& context) const;

 private:
  std::vector<Diagnostic> items_;
  size_t error_count_ = 0;
};

}  // namespace sia

#endif  // SIA_CHECK_DIAGNOSTIC_H_
