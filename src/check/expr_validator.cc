#include "check/expr_validator.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/date.h"
#include "common/strings.h"

namespace sia {

namespace {

// DATE literals must denote a proleptic-Gregorian date in year 1..9999
// (the range FormatDay/DayToCivil round-trip exactly; TPC-H uses
// 1992-1998). Values outside are almost certainly arithmetic gone wrong.
int64_t MinEpochDay() {
  static const int64_t kMin = CivilToDay(CivilDate{1, 1, 1});
  return kMin;
}

int64_t MaxEpochDay() {
  static const int64_t kMax = CivilToDay(CivilDate{9999, 12, 31});
  return kMax;
}

bool IsZeroLiteral(const ExprPtr& e) {
  if (e->kind() != ExprKind::kLiteral || e->literal().is_null()) return false;
  const Value& v = e->literal();
  if (v.type() == DataType::kDouble) return v.AsDouble() == 0.0;
  if (v.type() == DataType::kBoolean) return false;
  return v.AsInt() == 0;
}

bool IsNullLiteral(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral && e->literal().is_null();
}

void ValidateNode(const ExprPtr& expr, const Schema& schema,
                  Diagnostics* diags, const ExprValidatorOptions& options) {
  for (const ExprPtr& child : expr->children()) {
    ValidateNode(child, schema, diags, options);
  }

  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      if (!expr->is_bound()) {
        if (options.require_bound) {
          diags->Add(DiagCode::kExprUnboundColumn, expr->ToString(),
                     "column reference was never bound to a schema slot");
        }
        return;
      }
      if (expr->index() >= schema.size()) {
        diags->Add(DiagCode::kExprColumnOutOfRange, expr->ToString(),
                   "bound index " + std::to_string(expr->index()) +
                       " exceeds schema width " +
                       std::to_string(schema.size()));
        return;
      }
      const ColumnDef& slot = schema.column(expr->index());
      if (slot.type != expr->type()) {
        diags->Add(DiagCode::kExprColumnTypeMismatch, expr->ToString(),
                   std::string("ref type ") + DataTypeName(expr->type()) +
                       " but schema slot " + std::to_string(expr->index()) +
                       " is " + DataTypeName(slot.type));
      }
      if (!expr->name().empty() && !slot.name.empty() &&
          !EqualsIgnoreCase(expr->name(), slot.name)) {
        diags->Add(DiagCode::kExprColumnNameMismatch, expr->ToString(),
                   "ref names column '" + expr->name() +
                       "' but schema slot " + std::to_string(expr->index()) +
                       " is '" + slot.name + "'");
      }
      return;
    }
    case ExprKind::kLiteral: {
      const Value& v = expr->literal();
      if (v.is_null()) return;
      if (v.type() == DataType::kDate &&
          (v.AsInt() < MinEpochDay() || v.AsInt() > MaxEpochDay())) {
        diags->Add(DiagCode::kExprDateOutOfRange, expr->ToString(),
                   "epoch day " + std::to_string(v.AsInt()) +
                       " is outside year 1..9999");
      }
      if (v.type() == DataType::kDouble && !std::isfinite(v.AsDouble())) {
        diags->Add(DiagCode::kExprNonFiniteLiteral, expr->ToString(),
                   "literal is NaN or infinite");
      }
      return;
    }
    case ExprKind::kArith: {
      const ExprPtr& l = expr->left();
      const ExprPtr& r = expr->right();
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        diags->Add(DiagCode::kExprArithTypeError, expr->ToString(),
                   std::string("arithmetic over ") + DataTypeName(l->type()) +
                       " and " + DataTypeName(r->type()));
        return;
      }
      if (expr->arith_op() == ArithOp::kDiv && IsZeroLiteral(r)) {
        diags->Add(DiagCode::kExprDivisionByZero, expr->ToString(),
                   "division by a constant zero always yields NULL");
      }
      // Recompute the result type through the factory so the check can
      // never drift from the IR's own inference rules.
      const DataType expected = Expr::Arith(expr->arith_op(), l, r)->type();
      if (expr->type() != expected) {
        diags->Add(DiagCode::kExprResultTypeError, expr->ToString(),
                   std::string("cached type ") + DataTypeName(expr->type()) +
                       " but operands infer " + DataTypeName(expected));
      }
      return;
    }
    case ExprKind::kCompare: {
      const ExprPtr& l = expr->left();
      const ExprPtr& r = expr->right();
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        diags->Add(DiagCode::kExprCompareTypeError, expr->ToString(),
                   std::string("comparison over ") + DataTypeName(l->type()) +
                       " and " + DataTypeName(r->type()));
        return;
      }
      if (IsNullLiteral(l) || IsNullLiteral(r)) {
        diags->Add(DiagCode::kExprNullComparison, expr->ToString(),
                   "comparison against NULL is always UNKNOWN; no row can "
                   "satisfy it");
      }
      if (expr->type() != DataType::kBoolean) {
        diags->Add(DiagCode::kExprResultTypeError, expr->ToString(),
                   std::string("comparison typed as ") +
                       DataTypeName(expr->type()) + ", expected BOOLEAN");
      }
      return;
    }
    case ExprKind::kLogic: {
      if (expr->left()->type() != DataType::kBoolean ||
          expr->right()->type() != DataType::kBoolean) {
        diags->Add(DiagCode::kExprLogicTypeError, expr->ToString(),
                   std::string(LogicOpName(expr->logic_op())) + " over " +
                       DataTypeName(expr->left()->type()) + " and " +
                       DataTypeName(expr->right()->type()));
      }
      if (expr->type() != DataType::kBoolean) {
        diags->Add(DiagCode::kExprResultTypeError, expr->ToString(),
                   "logic node not typed BOOLEAN");
      }
      return;
    }
    case ExprKind::kNot: {
      if (expr->operand()->type() != DataType::kBoolean) {
        diags->Add(DiagCode::kExprLogicTypeError, expr->ToString(),
                   std::string("NOT over ") +
                       DataTypeName(expr->operand()->type()));
      }
      if (expr->type() != DataType::kBoolean) {
        diags->Add(DiagCode::kExprResultTypeError, expr->ToString(),
                   "NOT node not typed BOOLEAN");
      }
      return;
    }
  }
}

// An atom for CNF purposes: a comparison or a boolean leaf.
bool IsCnfAtom(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kCompare:
      return true;
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return e->type() == DataType::kBoolean;
    default:
      return false;
  }
}

bool IsCnfLiteral(const ExprPtr& e) {
  if (e->kind() == ExprKind::kNot) return IsCnfAtom(e->operand());
  return IsCnfAtom(e);
}

bool IsClause(const ExprPtr& e) {
  if (e->kind() == ExprKind::kLogic && e->logic_op() == LogicOp::kOr) {
    return IsClause(e->left()) && IsClause(e->right());
  }
  return IsCnfLiteral(e);
}

void ValidateClause(const ExprPtr& e, Diagnostics* diags) {
  if (e->kind() == ExprKind::kLogic) {
    if (e->logic_op() == LogicOp::kOr) {
      ValidateClause(e->left(), diags);
      ValidateClause(e->right(), diags);
      return;
    }
    diags->Add(DiagCode::kExprNotCnf, e->ToString(),
               "conjunction nested inside a clause");
    return;
  }
  if (e->kind() == ExprKind::kNot && !IsCnfAtom(e->operand())) {
    diags->Add(DiagCode::kExprNotCnf, e->ToString(),
               "NOT applied to a non-atomic predicate");
  }
}

}  // namespace

void ValidateExpr(const ExprPtr& expr, const Schema& schema,
                  Diagnostics* diags, const ExprValidatorOptions& options) {
  if (expr == nullptr) return;
  ValidateNode(expr, schema, diags, options);
  if (options.require_boolean && expr->type() != DataType::kBoolean) {
    diags->Add(DiagCode::kExprLogicTypeError, expr->ToString(),
               std::string("predicate must be BOOLEAN, got ") +
                   DataTypeName(expr->type()));
  }
}

bool IsCnf(const ExprPtr& expr) {
  if (expr == nullptr) return true;
  if (expr->kind() == ExprKind::kLogic &&
      expr->logic_op() == LogicOp::kAnd) {
    return IsCnf(expr->left()) && IsCnf(expr->right());
  }
  return IsClause(expr);
}

void ValidateCnf(const ExprPtr& expr, Diagnostics* diags) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kLogic &&
      expr->logic_op() == LogicOp::kAnd) {
    ValidateCnf(expr->left(), diags);
    ValidateCnf(expr->right(), diags);
    return;
  }
  ValidateClause(expr, diags);
}

Status CheckBoundPredicate(const ExprPtr& expr, const Schema& schema,
                           const std::string& context) {
  Diagnostics diags;
  ExprValidatorOptions options;
  options.require_bound = true;
  options.require_boolean = true;
  ValidateExpr(expr, schema, &diags, options);
#ifndef NDEBUG
  if (!diags.ok()) {
    std::fprintf(stderr, "CheckBoundPredicate(%s) failed:\n%s",
                 context.c_str(), diags.ToString().c_str());
    assert(diags.ok() && "invariant violation at a validated pipeline seam");
  }
#endif
  return diags.ToStatus(context);
}

}  // namespace sia
