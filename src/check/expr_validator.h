#ifndef SIA_CHECK_EXPR_VALIDATOR_H_
#define SIA_CHECK_EXPR_VALIDATOR_H_

#include <string>

#include "check/diagnostic.h"
#include "common/status.h"
#include "ir/expr.h"
#include "types/schema.h"

namespace sia {

// Static well-formedness analysis over the expression IR. The binder
// (ir/binder.h) enforces these properties while it builds a tree; the
// validator re-checks them on *any* tree, so rewrites, synthesis output,
// and hand-built plans cannot smuggle a malformed expression deeper into
// the pipeline. A malformed rewrite silently produces wrong rows — this
// is the guardrail the paper's equivalence story (§4-§5) rests on.
struct ExprValidatorOptions {
  // Every column ref must be bound to a schema slot. Disable for
  // freshly-parsed (pre-bind) trees.
  bool require_bound = true;
  // The root must be boolean-typed (set for WHERE clauses / filters).
  bool require_boolean = false;
};

// Appends one diagnostic per violation found in `expr` (checked against
// `schema`) to `diags`. Checks, per node kind:
//  - column refs: bound, index < schema width, type/name agree with the
//    schema slot;
//  - literals: DATE within year 1..9999, DOUBLE finite;
//  - arithmetic/comparison: operands numeric-like (no booleans), cached
//    result type equals the recomputed one, comparison against a NULL
//    literal flagged (always UNKNOWN under 3VL), division by a constant
//    zero flagged;
//  - AND/OR/NOT: operands boolean.
void ValidateExpr(const ExprPtr& expr, const Schema& schema,
                  Diagnostics* diags, const ExprValidatorOptions& options = {});

// True iff `expr` is in conjunctive normal form: a conjunction of
// clauses, each a disjunction of literals (atom or NOT atom, where an
// atom is a comparison or a boolean leaf). The synthesizer's output
// (conjoined disjunctions of halfplanes, Alg. 2) must satisfy this.
bool IsCnf(const ExprPtr& expr);

// Appends kExprNotCnf diagnostics for every subtree violating CNF
// structure (AND nested under OR, or NOT applied to a non-atom).
void ValidateCnf(const ExprPtr& expr, Diagnostics* diags);

// Convenience pipeline hook: validates `expr` as a bound boolean
// predicate over `schema` and converts error diagnostics to a Status.
// Debug builds additionally assert so a broken invariant fails loudly at
// the rewrite seam that introduced it; release builds report the error
// to the caller.
[[nodiscard]] Status CheckBoundPredicate(const ExprPtr& expr, const Schema& schema,
                           const std::string& context);

}  // namespace sia

#endif  // SIA_CHECK_EXPR_VALIDATOR_H_
