#include "check/diagnostic.h"

namespace sia {

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kExprUnboundColumn:
      return "expr.unbound-column";
    case DiagCode::kExprColumnOutOfRange:
      return "expr.column-out-of-range";
    case DiagCode::kExprColumnTypeMismatch:
      return "expr.column-type-mismatch";
    case DiagCode::kExprColumnNameMismatch:
      return "expr.column-name-mismatch";
    case DiagCode::kExprArithTypeError:
      return "expr.arith-type";
    case DiagCode::kExprCompareTypeError:
      return "expr.compare-type";
    case DiagCode::kExprLogicTypeError:
      return "expr.logic-type";
    case DiagCode::kExprResultTypeError:
      return "expr.result-type";
    case DiagCode::kExprDateOutOfRange:
      return "expr.date-out-of-range";
    case DiagCode::kExprNonFiniteLiteral:
      return "expr.non-finite-literal";
    case DiagCode::kExprNullComparison:
      return "expr.null-comparison";
    case DiagCode::kExprDivisionByZero:
      return "expr.division-by-zero";
    case DiagCode::kExprNotCnf:
      return "expr.not-cnf";
    case DiagCode::kPlanArityMismatch:
      return "plan.arity";
    case DiagCode::kPlanUnknownTable:
      return "plan.unknown-table";
    case DiagCode::kPlanSchemaMismatch:
      return "plan.schema-mismatch";
    case DiagCode::kPlanMissingPredicate:
      return "plan.missing-predicate";
    case DiagCode::kPlanNonBooleanPredicate:
      return "plan.non-boolean-predicate";
    case DiagCode::kPlanPredicateOutOfScope:
      return "plan.predicate-out-of-scope";
    case DiagCode::kPlanScanFilterForeignColumn:
      return "plan.scan-filter-foreign-column";
    case DiagCode::kPlanColumnOutOfRange:
      return "plan.column-out-of-range";
    case DiagCode::kPlanCrossJoin:
      return "plan.cross-join";
  }
  return "unknown";
}

DiagSeverity DiagCodeSeverity(DiagCode code) {
  switch (code) {
    case DiagCode::kExprColumnNameMismatch:
    case DiagCode::kExprNullComparison:
    case DiagCode::kExprDivisionByZero:
    case DiagCode::kPlanCrossJoin:
      return DiagSeverity::kWarning;
    default:
      return DiagSeverity::kError;
  }
}

std::string Diagnostic::ToString() const {
  std::string out = severity == DiagSeverity::kError ? "error" : "warning";
  out += " [";
  out += DiagCodeName(code);
  out += "] ";
  if (!where.empty()) {
    out += where;
    out += ": ";
  }
  out += message;
  return out;
}

void Diagnostics::Add(DiagCode code, std::string where, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = DiagCodeSeverity(code);
  d.where = std::move(where);
  d.message = std::move(message);
  Add(std::move(d));
}

void Diagnostics::Add(Diagnostic diag) {
  if (diag.severity == DiagSeverity::kError) ++error_count_;
  items_.push_back(std::move(diag));
}

void Diagnostics::Merge(const Diagnostics& other,
                        const std::string& where_prefix) {
  for (Diagnostic d : other.items_) {
    if (!where_prefix.empty()) {
      d.where = d.where.empty() ? where_prefix
                                : where_prefix + "/" + d.where;
    }
    Add(std::move(d));
  }
}

bool Diagnostics::Has(DiagCode code) const {
  for (const Diagnostic& d : items_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Diagnostics::ToString() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

Status Diagnostics::ToStatus(const std::string& context) const {
  if (ok()) return Status::OK();
  for (const Diagnostic& d : items_) {
    if (d.severity != DiagSeverity::kError) continue;
    std::string msg = context.empty() ? "" : context + ": ";
    msg += d.ToString();
    if (error_count_ > 1) {
      msg += " (+" + std::to_string(error_count_ - 1) + " more errors)";
    }
    return Status::InvalidArgument(std::move(msg));
  }
  return Status::OK();  // unreachable: error_count_ > 0 implies an error item
}

}  // namespace sia
