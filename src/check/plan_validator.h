#ifndef SIA_CHECK_PLAN_VALIDATOR_H_
#define SIA_CHECK_PLAN_VALIDATOR_H_

#include <string>

#include "catalog/catalog.h"
#include "check/diagnostic.h"
#include "common/status.h"
#include "rewrite/plan.h"

namespace sia {

// Static well-formedness analysis over logical plans. Validates, per
// node, the invariants the planner and rewrite rules are supposed to
// preserve and the executor silently assumes:
//  - arity: scans are leaves, filters/aggregates/projects unary, joins
//    binary;
//  - schema propagation: a filter emits its child's schema, a join emits
//    Concat(left, right), aggregate emits group-by columns + COUNT,
//    project emits the selected columns;
//  - predicates: boolean-typed, bound, every column index inside the
//    node's input schema (the concatenation of child output schemas);
//  - pushdown safety: a scan's residual filter may only reference the
//    scanned table's own columns — never the other side of a join;
//  - with a catalog: scan tables exist and their schemas match.
struct PlanValidatorOptions {
  // When set, scan nodes are checked against the catalog's table
  // definitions (kPlanUnknownTable / kPlanSchemaMismatch).
  const Catalog* catalog = nullptr;
};

// Appends one diagnostic per violation in the plan tree to `diags`.
void ValidatePlan(const PlanPtr& plan, Diagnostics* diags,
                  const PlanValidatorOptions& options = {});

// Convenience pipeline hook: validates and converts error diagnostics to
// a Status (debug builds assert; see CheckBoundPredicate).
[[nodiscard]] Status CheckPlan(const PlanPtr& plan, const std::string& context,
                 const Catalog* catalog = nullptr);

// Debug-build-only assertion for seams whose signatures cannot carry a
// Status (e.g. the plan movement rules, which return PlanPtr). No-op in
// release builds.
void DebugCheckPlan(const PlanPtr& plan, const char* context);

}  // namespace sia

#endif  // SIA_CHECK_PLAN_VALIDATOR_H_
