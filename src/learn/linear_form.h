#ifndef SIA_LEARN_LINEAR_FORM_H_
#define SIA_LEARN_LINEAR_FORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace sia {

// A halfplane predicate over a fixed ordered column set Cols':
//
//   coeff[0]*col[0] + ... + coeff[k-1]*col[k-1] + constant > 0
//
// This is the shape the paper's SVM-derived predicates take (§5.4). All
// arithmetic is exact int64; the columns carry their schema indices so
// the form can be rendered back to IR.
struct LinearForm {
  std::vector<size_t> columns;     // schema indices, parallel to coeffs
  std::vector<int64_t> coeffs;
  int64_t constant = 0;

  // coeff·x + constant, where x is a tuple over `columns` (same order).
  int64_t Project(const Tuple& sample) const;

  // True iff Project(sample) > 0.
  bool Accepts(const Tuple& sample) const;

  // Number of columns with a non-zero coefficient.
  size_t UsedColumnCount() const;

  // Renders to IR against `schema`:
  //   2*a1 + a2 + 50 > 0   (coefficient 1 omitted; negative terms and a
  //   negative constant move to the right-hand side, so e.g.
  //   a1 - a2 + 29 > 0 prints as written).
  ExprPtr ToExpr(const Schema& schema) const;

  std::string ToString(const Schema& schema) const;
};

}  // namespace sia

#endif  // SIA_LEARN_LINEAR_FORM_H_
