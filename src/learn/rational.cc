#include "learn/rational.h"

#include <cmath>
#include <numeric>

namespace sia {

Rational ApproximateRational(double x, int64_t max_den) {
  if (max_den < 1) max_den = 1;
  const bool neg = x < 0;
  double v = std::abs(x);
  // Continued-fraction expansion keeping convergents p/q with q <= max_den.
  int64_t p0 = 0, q0 = 1;  // previous convergent
  int64_t p1 = 1, q1 = 0;  // current convergent
  double frac = v;
  for (int iter = 0; iter < 64; ++iter) {
    const double a_f = std::floor(frac);
    if (a_f > 9.2e18) break;
    const int64_t a = static_cast<int64_t>(a_f);
    // Overflow / bound checks before committing the next convergent.
    if (q1 != 0 && (a > (max_den - q0) / q1)) {
      // The next denominator would exceed max_den: take the best
      // semiconvergent.
      const int64_t k = (max_den - q0) / (q1 == 0 ? 1 : q1);
      const int64_t p2 = p0 + k * p1;
      const int64_t q2 = q0 + k * q1;
      // Choose between p1/q1 and the semiconvergent p2/q2.
      const double e1 = q1 == 0 ? 1e300 : std::abs(v - static_cast<double>(p1) / q1);
      const double e2 = q2 == 0 ? 1e300 : std::abs(v - static_cast<double>(p2) / q2);
      int64_t pn = (e2 < e1 && q2 > 0) ? p2 : p1;
      int64_t qn = (e2 < e1 && q2 > 0) ? q2 : q1;
      if (qn == 0) {
        pn = static_cast<int64_t>(std::llround(v));
        qn = 1;
      }
      return Rational{neg ? -pn : pn, qn};
    }
    const int64_t p2 = a * p1 + p0;
    const int64_t q2 = a * q1 + q0;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double rem = frac - a_f;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  if (q1 == 0) return Rational{0, 1};
  return Rational{neg ? -p1 : p1, q1};
}

std::vector<int64_t> SnapToIntegers(const std::vector<double>& weights,
                                    int64_t max_den, double zero_eps) {
  std::vector<int64_t> out(weights.size(), 0);
  double max_abs = 0;
  for (const double w : weights) max_abs = std::max(max_abs, std::abs(w));
  if (max_abs <= 0) return out;

  std::vector<Rational> rationals(weights.size());
  int64_t lcm = 1;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double ratio = weights[i] / max_abs;
    if (std::abs(ratio) < zero_eps) {
      rationals[i] = Rational{0, 1};
      continue;
    }
    rationals[i] = ApproximateRational(ratio, max_den);
    const int64_t g = std::gcd(lcm, rationals[i].den);
    lcm = lcm / g * rationals[i].den;
    if (lcm > (int64_t{1} << 40)) lcm = int64_t{1} << 40;  // safety clamp
  }
  int64_t all_gcd = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    out[i] = rationals[i].num * (lcm / rationals[i].den);
    all_gcd = std::gcd(all_gcd, std::abs(out[i]));
  }
  if (all_gcd > 1) {
    for (auto& v : out) v /= all_gcd;
  }
  return out;
}

}  // namespace sia
