#ifndef SIA_LEARN_RATIONAL_H_
#define SIA_LEARN_RATIONAL_H_

#include <cstdint>
#include <vector>

namespace sia {

// A reduced rational number.
struct Rational {
  int64_t num = 0;
  int64_t den = 1;

  double ToDouble() const { return static_cast<double>(num) / den; }
};

// Best rational approximation of `x` with denominator <= max_den, via the
// continued-fraction convergents (Stern-Brocot). Exact for rationals that
// fit the bound.
Rational ApproximateRational(double x, int64_t max_den);

// Snaps a real weight vector to small co-prime integers: approximates
// each w_i / max|w| by a bounded rational, multiplies through by the LCM
// of denominators, and divides by the collective GCD. Zero weights stay
// zero; weights below `zero_eps` relative to the largest are snapped to
// zero. Returns all-zeros when every weight is (near) zero.
std::vector<int64_t> SnapToIntegers(const std::vector<double>& weights,
                                    int64_t max_den = 12,
                                    double zero_eps = 1e-4);

}  // namespace sia

#endif  // SIA_LEARN_RATIONAL_H_
