#ifndef SIA_LEARN_SVM_H_
#define SIA_LEARN_SVM_H_

#include <cstdint>
#include <vector>

namespace sia {

// A trained linear separator: Decision(x) = w·x + bias.
struct SvmModel {
  std::vector<double> weights;
  double bias = 0;
  // The weights in the internally centered/scaled feature space. Because
  // scaling normalizes each dimension's spread, |scaled_weights[j]|
  // measures dimension j's actual contribution to the decision — the
  // right signal for deciding which coefficients are noise (the
  // original-space magnitudes are distorted by the per-dimension scale).
  std::vector<double> scaled_weights;

  double Decision(const std::vector<double>& x) const;
};

struct SvmOptions {
  double c = 10.0;        // soft-margin penalty
  int max_epochs = 1000;  // coordinate-descent epochs
  double tolerance = 1e-6;
};

// Trains an L2-regularized L1-loss linear SVM by dual coordinate descent
// (the LIBLINEAR algorithm). `labels` are +1 / -1; `points` are dense
// feature rows of equal arity. The bias term is learned via feature
// augmentation. Features are internally centered and scaled for
// conditioning; the returned model is expressed in the ORIGINAL feature
// space.
SvmModel TrainLinearSvm(const std::vector<std::vector<double>>& points,
                        const std::vector<int>& labels,
                        const SvmOptions& options = SvmOptions());

}  // namespace sia

#endif  // SIA_LEARN_SVM_H_
