#include "learn/svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

double SvmModel::Decision(const std::vector<double>& x) const {
  double acc = bias;
  for (size_t i = 0; i < weights.size() && i < x.size(); ++i) {
    acc += weights[i] * x[i];
  }
  return acc;
}

SvmModel TrainLinearSvm(const std::vector<std::vector<double>>& points,
                        const std::vector<int>& labels,
                        const SvmOptions& options) {
  SIA_TRACE_SPAN("learn.svm");
  SvmModel model;
  if (points.empty()) return model;
  const size_t n = points.size();
  const size_t d = points[0].size();
  model.weights.assign(d, 0.0);

  // Center and scale features for conditioning.
  std::vector<double> mean(d, 0.0);
  std::vector<double> scale(d, 1.0);
  for (const auto& row : points) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
  for (const auto& row : points) {
    for (size_t j = 0; j < d; ++j) {
      scale[j] = std::max(scale[j], std::abs(row[j] - mean[j]));
    }
  }

  // Scaled rows with an augmented constant feature for the bias.
  const double kBiasFeature = 1.0;
  std::vector<std::vector<double>> x(n, std::vector<double>(d + 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      x[i][j] = (points[i][j] - mean[j]) / scale[j];
    }
    x[i][d] = kBiasFeature;
  }

  // Dual coordinate descent for min_a 0.5 aᵀQa - eᵀa, 0 <= a_i <= C,
  // maintaining w = Σ a_i y_i x_i.
  std::vector<double> alpha(n, 0.0);
  std::vector<double> w(d + 1, 0.0);
  std::vector<double> q_ii(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    q_ii[i] = std::inner_product(x[i].begin(), x[i].end(), x[i].begin(), 0.0);
    if (q_ii[i] <= 0) q_ii[i] = 1e-12;
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  int epochs_run = 0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    ++epochs_run;
    double max_violation = 0.0;
    // Deterministic shuffled order (simple LCG keyed by epoch) improves
    // convergence vs strictly sequential sweeps while staying repeatable.
    uint64_t state = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(epoch);
    for (size_t k = n; k > 1; --k) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const size_t r = static_cast<size_t>((state >> 33) % k);
      std::swap(order[k - 1], order[r]);
    }
    for (const size_t i : order) {
      const double y = labels[i];
      const double g =
          y * std::inner_product(x[i].begin(), x[i].end(), w.begin(), 0.0) -
          1.0;
      double pg = g;
      if (alpha[i] <= 0) {
        pg = std::min(g, 0.0);
      } else if (alpha[i] >= options.c) {
        pg = std::max(g, 0.0);
      }
      max_violation = std::max(max_violation, std::abs(pg));
      if (std::abs(pg) < 1e-12) continue;
      const double old = alpha[i];
      alpha[i] = std::clamp(old - g / q_ii[i], 0.0, options.c);
      const double delta = (alpha[i] - old) * y;
      for (size_t j = 0; j <= d; ++j) w[j] += delta * x[i][j];
    }
    if (max_violation < options.tolerance) break;
  }
  SIA_COUNTER_INC("learn.svm.trainings");
  SIA_COUNTER_ADD("learn.svm.epochs", epochs_run);

  // Map back to the original feature space:
  //   w_scaled · (x - mean)/scale + b = Σ (w_j/scale_j) x_j +
  //                                     (b - Σ w_j mean_j / scale_j)
  model.bias = w[d] * kBiasFeature;
  model.scaled_weights.assign(w.begin(), w.begin() + d);
  for (size_t j = 0; j < d; ++j) {
    model.weights[j] = w[j] / scale[j];
    model.bias -= w[j] * mean[j] / scale[j];
  }
  return model;
}

}  // namespace sia
