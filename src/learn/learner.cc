#include "learn/learner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault_injection.h"
#include "learn/rational.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

namespace {

std::vector<double> ToFeatures(const Tuple& t) {
  std::vector<double> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out[i] = t.at(i).is_null() ? 0.0 : t.at(i).AsDouble();
  }
  return out;
}

// Picks the integer threshold for direction `coeffs` that maximizes
// training accuracy, preferring thresholds that misclassify fewer TRUE
// samples on ties and — among equally accurate boundaries — the
// MAX-MARGIN one (gap midpoint). The margin tie-break matters for the
// CEGIS loop's convergence: a boundary hugging the FALSE samples invites
// a counter-example just past it, inching forward by one batch per
// iteration, whereas the midpoint bisects the unknown gap.
// Returns the LinearForm constant c so that the predicate is
// coeff·x + c > 0.
// A direction candidate scored on the training data. Ordering:
// higher accuracy, then fewer misclassified TRUE samples, then larger
// normalized margin (margin in projection units divided by the
// direction's Euclidean norm, so different directions compare fairly).
struct ScoredDirection {
  std::vector<int64_t> coeffs;
  int64_t constant = 0;
  int64_t correct = std::numeric_limits<int64_t>::min();
  size_t true_miss = 0;
  double norm_margin = -1;

  bool BetterThan(const ScoredDirection& other) const {
    if (correct != other.correct) return correct > other.correct;
    if (true_miss != other.true_miss) return true_miss < other.true_miss;
    return norm_margin > other.norm_margin;
  }
};

ScoredDirection EvaluateDirection(const std::vector<int64_t>& coeffs,
                                  const std::vector<size_t>& columns,
                                  const std::vector<Tuple>& true_samples,
                                  const std::vector<Tuple>& false_samples) {
  LinearForm probe;
  probe.columns = columns;
  probe.coeffs = coeffs;
  probe.constant = 0;

  ScoredDirection scored;
  scored.coeffs = coeffs;
  double norm_sq = 0;
  for (const int64_t c : coeffs) norm_sq += static_cast<double>(c) * c;
  const double norm = std::sqrt(std::max(norm_sq, 1e-12));

  std::vector<int64_t> t_proj;
  t_proj.reserve(true_samples.size());
  for (const Tuple& t : true_samples) t_proj.push_back(probe.Project(t));
  std::vector<int64_t> f_proj;
  f_proj.reserve(false_samples.size());
  for (const Tuple& t : false_samples) f_proj.push_back(probe.Project(t));
  if (t_proj.empty() && f_proj.empty()) {
    scored.constant = 1;
    scored.correct = 0;
    return scored;
  }

  // Distinct projection values; the classifier "keep iff proj > b" is
  // constant for b within [v_i, v_{i+1}-1], so evaluate one candidate per
  // gap (its midpoint, for max margin) plus the two extremes.
  std::vector<int64_t> values;
  values.reserve(t_proj.size() + f_proj.size());
  values.insert(values.end(), t_proj.begin(), t_proj.end());
  values.insert(values.end(), f_proj.begin(), f_proj.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::vector<std::pair<int64_t, int64_t>> candidates;  // (b, margin)
  candidates.emplace_back(values.front() - 1,
                          1);  // accept everything
  candidates.emplace_back(values.back(), 1);  // reject everything
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    const int64_t lo = values[i];
    const int64_t hi = values[i + 1];
    const int64_t mid = lo + (hi - 1 - lo) / 2;
    candidates.emplace_back(mid, std::min(mid - lo + 1, hi - mid));
  }

  int64_t best_b = candidates.front().first;
  int64_t best_score = std::numeric_limits<int64_t>::min();
  size_t best_true_miss = true_samples.size() + 1;
  int64_t best_margin = -1;
  for (const auto& [b, margin] : candidates) {
    int64_t correct = 0;
    size_t true_miss = 0;
    for (const int64_t v : t_proj) {
      if (v > b) {
        ++correct;
      } else {
        ++true_miss;
      }
    }
    for (const int64_t v : f_proj) {
      if (v <= b) ++correct;
    }
    if (correct > best_score ||
        (correct == best_score && true_miss < best_true_miss) ||
        (correct == best_score && true_miss == best_true_miss &&
         margin > best_margin)) {
      best_score = correct;
      best_true_miss = true_miss;
      best_margin = margin;
      best_b = b;
    }
  }
  scored.constant = -best_b;  // proj > b  ==  proj + (-b) > 0
  scored.correct = best_score;
  scored.true_miss = best_true_miss;
  scored.norm_margin = static_cast<double>(best_margin) / norm;
  return scored;
}

// Enumerates the candidate directions for one Learn round: the snapped
// SVM normal plus the axis-aligned bounds (±e_i) and pairwise differences
// (±(e_i − e_j)) that dominate real predicates (column bounds and
// column-difference windows). The SVM direction is geometry-driven and
// wins on genuinely sloped boundaries; the structured candidates win when
// integer snapping would destroy a near-axis SVM normal (their ability to
// separate is evaluated on the exact integer projections, not on the
// float geometry).
std::vector<std::vector<int64_t>> CandidateDirections(
    const std::vector<int64_t>& svm_snapped, size_t dims) {
  std::vector<std::vector<int64_t>> out;
  const bool svm_nonzero =
      std::any_of(svm_snapped.begin(), svm_snapped.end(),
                  [](int64_t c) { return c != 0; });
  if (svm_nonzero) out.push_back(svm_snapped);
  for (size_t i = 0; i < dims; ++i) {
    std::vector<int64_t> plus(dims, 0);
    plus[i] = 1;
    out.push_back(plus);
    std::vector<int64_t> minus(dims, 0);
    minus[i] = -1;
    out.push_back(std::move(minus));
    for (size_t j = i + 1; j < dims; ++j) {
      std::vector<int64_t> diff(dims, 0);
      diff[i] = 1;
      diff[j] = -1;
      out.push_back(diff);
      diff[i] = -1;
      diff[j] = 1;
      out.push_back(std::move(diff));
    }
  }
  if (out.empty()) {
    std::vector<int64_t> fallback(dims, 0);
    if (dims > 0) fallback[0] = 1;
    out.push_back(std::move(fallback));
  }
  return out;
}

}  // namespace

Result<LearnedPredicate> Learn(const TrainingSet& data,
                               const std::vector<size_t>& columns,
                               const LearnOptions& options) {
  SIA_TRACE_SPAN("learn.train");
  SIA_COUNTER_INC("learn.train.calls");
  SIA_FAULT_INJECT("learn.train");
  if (data.true_samples.empty()) {
    return Status::InvalidArgument("Learn requires at least one TRUE sample");
  }
  for (const Tuple& t : data.true_samples) {
    if (t.size() != columns.size()) {
      return Status::InvalidArgument("TRUE sample arity mismatch");
    }
  }
  for (const Tuple& t : data.false_samples) {
    if (t.size() != columns.size()) {
      return Status::InvalidArgument("FALSE sample arity mismatch");
    }
  }

  LearnedPredicate out;
  std::vector<Tuple> remaining_true = data.true_samples;

  while (!remaining_true.empty() && out.models.size() < options.max_models) {
    // Assemble the SVM problem: remaining TRUE (+1) vs all FALSE (-1).
    std::vector<std::vector<double>> points;
    std::vector<int> labels;
    points.reserve(remaining_true.size() + data.false_samples.size());
    for (const Tuple& t : remaining_true) {
      points.push_back(ToFeatures(t));
      labels.push_back(+1);
    }
    for (const Tuple& t : data.false_samples) {
      points.push_back(ToFeatures(t));
      labels.push_back(-1);
    }

    SvmModel svm = TrainLinearSvm(points, labels, options.svm);

    // Suppress noise dimensions before integer snapping. The decision on
    // which coefficients matter must use the SCALED weights: in the
    // original space a negligible direction can carry a large-looking
    // weight purely because its data spread is small, and snapping the
    // distorted ratio produces junk separators.
    if (!svm.scaled_weights.empty()) {
      double max_contrib = 0;
      for (const double w : svm.scaled_weights) {
        max_contrib = std::max(max_contrib, std::abs(w));
      }
      for (size_t j = 0; j < svm.weights.size(); ++j) {
        if (std::abs(svm.scaled_weights[j]) < 0.05 * max_contrib) {
          svm.weights[j] = 0;
        }
      }
    }

    std::vector<int64_t> svm_coeffs;
    if (options.snap_to_integers) {
      svm_coeffs = SnapToIntegers(svm.weights, options.max_denominator);
    } else {
      // Ablation mode: round scaled weights directly.
      svm_coeffs.resize(svm.weights.size());
      double max_abs = 0;
      for (double w : svm.weights) max_abs = std::max(max_abs, std::abs(w));
      const double s = max_abs > 0 ? 1024.0 / max_abs : 0.0;
      for (size_t i = 0; i < svm.weights.size(); ++i) {
        svm_coeffs[i] = static_cast<int64_t>(std::llround(svm.weights[i] * s));
      }
    }

    // Score the SVM direction against the structured candidates on the
    // exact integer projections; the best (accuracy, TRUE-miss, margin)
    // wins. The integer threshold is re-derived per direction (the SVM
    // bias is a float in a scaled space).
    ScoredDirection best;
    for (const auto& dir :
         CandidateDirections(svm_coeffs, columns.size())) {
      const ScoredDirection scored = EvaluateDirection(
          dir, columns, remaining_true, data.false_samples);
      if (scored.BetterThan(best)) best = scored;
    }

    LinearForm form;
    form.columns = columns;
    form.coeffs = best.coeffs;
    form.constant = best.constant;

    std::vector<Tuple> misclassified;
    for (const Tuple& t : remaining_true) {
      if (!form.Accepts(t)) misclassified.push_back(t);
    }

    if (misclassified.size() == remaining_true.size()) {
      // No progress: relax the threshold so every residual TRUE sample is
      // covered, ending the loop. (May admit FALSE samples; Verify and
      // CounterF handle that downstream, per §6.7.)
      int64_t min_proj = std::numeric_limits<int64_t>::max();
      LinearForm probe = form;
      probe.constant = 0;
      for (const Tuple& t : remaining_true) {
        min_proj = std::min(min_proj, probe.Project(t));
      }
      form.constant = 1 - min_proj;  // proj + c > 0 for all residual TRUE
      misclassified.clear();
    }

    out.models.push_back(std::move(form));
    remaining_true = std::move(misclassified);
  }

  if (!remaining_true.empty()) {
    // Hit the model cap without covering everything; relax the last model
    // to absorb the rest (same fallback as above).
    LinearForm& last = out.models.back();
    LinearForm probe = last;
    probe.constant = 0;
    int64_t min_proj = std::numeric_limits<int64_t>::max();
    for (const Tuple& t : remaining_true) {
      min_proj = std::min(min_proj, probe.Project(t));
    }
    last.constant = std::max(last.constant, 1 - min_proj);
  }

  return out;
}

}  // namespace sia
