#ifndef SIA_LEARN_LEARNER_H_
#define SIA_LEARN_LEARNER_H_

#include <vector>

#include "common/status.h"
#include "learn/linear_form.h"
#include "learn/svm.h"
#include "types/tuple.h"

namespace sia {

// Training samples over an ordered column set Cols'. TRUE samples are
// feasible restrictions of the original predicate; FALSE samples are
// unsatisfaction tuples (paper §4.2). All values are non-NULL integers
// (dates arrive as day numbers).
struct TrainingSet {
  std::vector<Tuple> true_samples;
  std::vector<Tuple> false_samples;
};

struct LearnOptions {
  SvmOptions svm;
  int64_t max_denominator = 12;  // rational-snapping bound
  size_t max_models = 8;         // cap on the Alg. 2 disjunction length
  bool snap_to_integers = true;  // ablation switch: raw-float vs snapped
};

// Result of one Learn call: a disjunction of halfplanes that classifies
// every TRUE sample as TRUE (Alg. 2's contract).
struct LearnedPredicate {
  std::vector<LinearForm> models;

  bool Accepts(const Tuple& sample) const {
    for (const LinearForm& m : models) {
      if (m.Accepts(sample)) return true;
    }
    return false;
  }
};

// The paper's Learn procedure (Alg. 2): trains a linear SVM, peels off
// the TRUE samples the (integer-snapped) model misclassifies, retrains on
// just those plus all FALSE samples, and returns the disjunction.
//
// Guarantees: every TRUE sample is accepted by the returned disjunction.
// When the SVM makes no progress on a residual TRUE set (possible with
// non-separable data, §6.7), the final model's threshold is relaxed until
// the residual TRUE samples are covered, which may admit FALSE samples —
// exactly the failure mode the paper notes is later discarded by Verify.
//
// `columns` gives the schema indices of the sample dimensions, in order.
[[nodiscard]] Result<LearnedPredicate> Learn(const TrainingSet& data,
                               const std::vector<size_t>& columns,
                               const LearnOptions& options = LearnOptions());

}  // namespace sia

#endif  // SIA_LEARN_LEARNER_H_
