#include "learn/linear_form.h"

namespace sia {

int64_t LinearForm::Project(const Tuple& sample) const {
  int64_t acc = constant;
  for (size_t i = 0; i < coeffs.size(); ++i) {
    acc += coeffs[i] * sample.at(i).AsInt();
  }
  return acc;
}

bool LinearForm::Accepts(const Tuple& sample) const {
  return Project(sample) > 0;
}

size_t LinearForm::UsedColumnCount() const {
  size_t n = 0;
  for (const int64_t c : coeffs) n += (c != 0);
  return n;
}

ExprPtr LinearForm::ToExpr(const Schema& schema) const {
  // Build lhs > rhs with positive terms (and positive constant) on the
  // left and negated negative terms on the right; this prints naturally
  // (a1 - a2 + 29 > 0 style comes from keeping a single-sided form when
  // there is at most one negative term; we use the two-sided canonical
  // form which is equivalent and equally readable).
  ExprPtr lhs;
  ExprPtr rhs;
  auto add_term = [&](ExprPtr* side, ExprPtr term) {
    *side = (*side == nullptr)
                ? std::move(term)
                : Expr::Arith(ArithOp::kAdd, *side, std::move(term));
  };
  for (size_t i = 0; i < coeffs.size(); ++i) {
    const int64_t c = coeffs[i];
    if (c == 0) continue;
    const ColumnDef& col = schema.column(columns[i]);
    ExprPtr ref = Expr::BoundColumn(col.table, col.name, columns[i], col.type);
    const int64_t mag = c < 0 ? -c : c;
    ExprPtr term = (mag == 1)
                       ? std::move(ref)
                       : Expr::Arith(ArithOp::kMul, Expr::IntLit(mag),
                                     std::move(ref));
    add_term(c > 0 ? &lhs : &rhs, std::move(term));
  }
  if (constant > 0) {
    add_term(&lhs, Expr::IntLit(constant));
  } else if (constant < 0) {
    add_term(&rhs, Expr::IntLit(-constant));
  }
  if (lhs == nullptr && rhs == nullptr) return Expr::BoolLit(false);  // 0 > 0
  if (lhs == nullptr) lhs = Expr::IntLit(0);
  if (rhs == nullptr) rhs = Expr::IntLit(0);
  return Expr::Compare(CompareOp::kGt, std::move(lhs), std::move(rhs));
}

std::string LinearForm::ToString(const Schema& schema) const {
  return ToExpr(schema)->ToString();
}

}  // namespace sia
