#include "ir/analysis.h"

#include <algorithm>

namespace sia {

namespace {

void CollectIndicesImpl(const ExprPtr& expr, std::set<size_t>* out) {
  if (expr->kind() == ExprKind::kColumnRef) {
    if (expr->is_bound()) out->insert(expr->index());
    return;
  }
  for (const auto& c : expr->children()) CollectIndicesImpl(c, out);
}

}  // namespace

std::vector<size_t> CollectColumnIndices(const ExprPtr& expr) {
  std::set<size_t> set;
  CollectIndicesImpl(expr, &set);
  return {set.begin(), set.end()};
}

std::set<std::string> CollectTables(const ExprPtr& expr) {
  std::set<std::string> out;
  if (expr->kind() == ExprKind::kColumnRef) {
    if (!expr->table().empty()) out.insert(expr->table());
    return out;
  }
  for (const auto& c : expr->children()) {
    auto sub = CollectTables(c);
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool UsesOnlyColumns(const ExprPtr& expr,
                     const std::vector<size_t>& allowed) {
  const std::vector<size_t> used = CollectColumnIndices(expr);
  return std::all_of(used.begin(), used.end(), [&](size_t i) {
    return std::find(allowed.begin(), allowed.end(), i) != allowed.end();
  });
}

namespace {

void SplitConjunctsImpl(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kLogic &&
      expr->logic_op() == LogicOp::kAnd) {
    SplitConjunctsImpl(expr->left(), out);
    SplitConjunctsImpl(expr->right(), out);
    return;
  }
  out->push_back(expr);
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  SplitConjunctsImpl(expr, &out);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  return Expr::And(conjuncts);
}

ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::vector<ColumnSubstitution>& mapping) {
  if (expr->kind() == ExprKind::kColumnRef) {
    if (expr->is_bound()) {
      for (const auto& m : mapping) {
        if (m.index == expr->index()) return m.replacement;
      }
    }
    return expr;
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    ExprPtr nc = SubstituteColumns(c, mapping);
    changed |= (nc.get() != c.get());
    kids.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kArith:
      return Expr::Arith(expr->arith_op(), kids[0], kids[1]);
    case ExprKind::kCompare:
      return Expr::Compare(expr->compare_op(), kids[0], kids[1]);
    case ExprKind::kLogic:
      return Expr::Logic(expr->logic_op(), kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    default:
      return expr;
  }
}

ExprPtr RemapColumnIndices(
    const ExprPtr& expr,
    const std::vector<std::pair<size_t, size_t>>& map) {
  if (expr->kind() == ExprKind::kColumnRef) {
    if (expr->is_bound()) {
      for (const auto& [from, to] : map) {
        if (from == expr->index()) {
          return Expr::BoundColumn(expr->table(), expr->name(), to,
                                   expr->type());
        }
      }
    }
    return expr;
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    ExprPtr nc = RemapColumnIndices(c, map);
    changed |= (nc.get() != c.get());
    kids.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kArith:
      return Expr::Arith(expr->arith_op(), kids[0], kids[1]);
    case ExprKind::kCompare:
      return Expr::Compare(expr->compare_op(), kids[0], kids[1]);
    case ExprKind::kLogic:
      return Expr::Logic(expr->logic_op(), kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    default:
      return expr;
  }
}

}  // namespace sia
