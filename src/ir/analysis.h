#ifndef SIA_IR_ANALYSIS_H_
#define SIA_IR_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace sia {

// Indices (into the bound schema) of all columns referenced by `expr`,
// sorted ascending. This is the paper's Cols of a predicate (§4.1).
std::vector<size_t> CollectColumnIndices(const ExprPtr& expr);

// Names of all tables whose columns appear in `expr`.
std::set<std::string> CollectTables(const ExprPtr& expr);

// True iff every column referenced by `expr` is in `allowed` (the paper's
// "p is a predicate over columns Cols'").
bool UsesOnlyColumns(const ExprPtr& expr, const std::vector<size_t>& allowed);

// Splits a predicate into its top-level conjuncts: `a AND (b AND c)` ->
// {a, b, c}. Non-AND predicates yield a single element.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

// Inverse of SplitConjuncts (TRUE for empty input).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

// Replaces each bound column reference whose index appears in `mapping`
// with the paired expression. Used for the date-origin shift during
// synthesis and for re-basing predicates onto new schemas.
struct ColumnSubstitution {
  size_t index;
  ExprPtr replacement;
};
ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::vector<ColumnSubstitution>& mapping);

// Rebinds bound column indices: each column ref with index i gets index
// new_index[i]; refs whose index is not a key are left untouched.
// Used when a predicate moves between plan schemas (e.g. join output ->
// single-table scan).
ExprPtr RemapColumnIndices(const ExprPtr& expr,
                           const std::vector<std::pair<size_t, size_t>>& map);

}  // namespace sia

#endif  // SIA_IR_ANALYSIS_H_
