#ifndef SIA_IR_SIMPLIFY_H_
#define SIA_IR_SIMPLIFY_H_

#include "ir/expr.h"

namespace sia {

// Bottom-up simplification that is sound under SQL three-valued logic:
//  - folds arithmetic and comparisons on literals,
//  - applies the 3VL-safe logic identities
//      TRUE AND p -> p      FALSE AND p -> FALSE
//      TRUE OR p  -> TRUE   FALSE OR p  -> p
//      NOT NOT p  -> p      NOT (a CP b) -> a !CP b
//  - normalizes "x + 0", "x - 0", "x * 1", "1 * x", "0 + x",
//    "x * 0" (only when x is a column/literal, as 0 * NULL is NULL —
//    columns declared NOT NULL are safe).
//
// The simplifier is used to clean up synthesized predicates before they
// are printed or inserted into a rewritten query.
ExprPtr Simplify(const ExprPtr& expr);

}  // namespace sia

#endif  // SIA_IR_SIMPLIFY_H_
