#include "ir/expr.h"

#include <utility>

namespace sia {

namespace {

// Operator precedence used for minimal parenthesization when printing.
// Higher binds tighter.
constexpr int kPrecOr = 1;
constexpr int kPrecAnd = 2;
constexpr int kPrecNot = 3;
constexpr int kPrecCompare = 4;
constexpr int kPrecAddSub = 5;
constexpr int kPrecMulDiv = 6;
constexpr int kPrecAtom = 7;

int ArithPrec(ArithOp op) {
  return (op == ArithOp::kAdd || op == ArithOp::kSub) ? kPrecAddSub
                                                      : kPrecMulDiv;
}

// Result type of a binary arithmetic expression. Dates interact with
// integers naturally: DATE - DATE = INTEGER (days), DATE +/- INTEGER =
// DATE; anything involving DOUBLE is DOUBLE.
DataType ArithResultType(ArithOp op, DataType l, DataType r) {
  if (l == DataType::kDouble || r == DataType::kDouble) {
    return DataType::kDouble;
  }
  const bool l_date = (l == DataType::kDate || l == DataType::kTimestamp);
  const bool r_date = (r == DataType::kDate || r == DataType::kTimestamp);
  if (op == ArithOp::kSub && l_date && r_date) return DataType::kInteger;
  if (l_date && !r_date) return l;
  if (r_date && !l_date && op == ArithOp::kAdd) return r;
  if (l_date && r_date) return DataType::kInteger;
  return DataType::kInteger;
}

}  // namespace

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
  }
  return "?";
}

const char* LogicOpName(LogicOp op) {
  return op == LogicOp::kAnd ? "AND" : "OR";
}

CompareOp SwapCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
  }
  return op;
}

ExprPtr Expr::Column(std::string table, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->table_ = std::move(table);
  e->name_ = std::move(name);
  e->type_ = DataType::kInteger;  // placeholder until bound
  return e;
}

ExprPtr Expr::BoundColumn(std::string table, std::string name, size_t index,
                          DataType type) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->table_ = std::move(table);
  e->name_ = std::move(name);
  e->index_ = static_cast<int64_t>(index);
  e->type_ = type;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->type_ = v.type();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->type_ = ArithResultType(op, lhs->type(), rhs->type());
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->type_ = DataType::kBoolean;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Logic(LogicOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogic;
  e->logic_op_ = op;
  e->type_ = DataType::kBoolean;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->type_ = DataType::kBoolean;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::And(const std::vector<ExprPtr>& terms) {
  if (terms.empty()) return BoolLit(true);
  ExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = Logic(LogicOp::kAnd, acc, terms[i]);
  }
  return acc;
}

ExprPtr Expr::Or(const std::vector<ExprPtr>& terms) {
  if (terms.empty()) return BoolLit(false);
  ExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = Logic(LogicOp::kOr, acc, terms[i]);
  }
  return acc;
}

bool Expr::IsTrueLiteral() const {
  return kind_ == ExprKind::kLiteral && !literal_.is_null() &&
         literal_.type() == DataType::kBoolean && literal_.AsBool();
}

bool Expr::IsFalseLiteral() const {
  return kind_ == ExprKind::kLiteral && !literal_.is_null() &&
         literal_.type() == DataType::kBoolean && !literal_.AsBool();
}

void Expr::AppendTo(std::string* out, int parent_prec) const {
  int prec = kPrecAtom;
  switch (kind_) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      prec = kPrecAtom;
      break;
    case ExprKind::kArith:
      prec = ArithPrec(arith_op_);
      break;
    case ExprKind::kCompare:
      prec = kPrecCompare;
      break;
    case ExprKind::kNot:
      prec = kPrecNot;
      break;
    case ExprKind::kLogic:
      prec = logic_op_ == LogicOp::kAnd ? kPrecAnd : kPrecOr;
      break;
  }
  const bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (kind_) {
    case ExprKind::kColumnRef:
      if (!table_.empty()) {
        *out += table_;
        *out += ".";
      }
      *out += name_;
      break;
    case ExprKind::kLiteral:
      *out += literal_.ToString();
      break;
    case ExprKind::kArith:
      children_[0]->AppendTo(out, prec);
      *out += " ";
      *out += ArithOpName(arith_op_);
      *out += " ";
      // Subtraction and division are left-associative: parenthesize a
      // same-precedence right child.
      children_[1]->AppendTo(out, prec + 1);
      break;
    case ExprKind::kCompare:
      children_[0]->AppendTo(out, prec + 1);
      *out += " ";
      *out += CompareOpName(compare_op_);
      *out += " ";
      children_[1]->AppendTo(out, prec + 1);
      break;
    case ExprKind::kNot:
      *out += "NOT ";
      children_[0]->AppendTo(out, prec);
      break;
    case ExprKind::kLogic:
      children_[0]->AppendTo(out, prec);
      *out += " ";
      *out += LogicOpName(logic_op_);
      *out += " ";
      children_[1]->AppendTo(out, prec + 1);
      break;
  }
  if (parens) *out += ")";
}

std::string Expr::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case ExprKind::kColumnRef:
      return a->index_ == b->index_ && a->name_ == b->name_ &&
             a->table_ == b->table_;
    case ExprKind::kLiteral:
      return a->literal_ == b->literal_ && a->type_ == b->type_;
    case ExprKind::kArith:
      if (a->arith_op_ != b->arith_op_) return false;
      break;
    case ExprKind::kCompare:
      if (a->compare_op_ != b->compare_op_) return false;
      break;
    case ExprKind::kLogic:
      if (a->logic_op_ != b->logic_op_) return false;
      break;
    case ExprKind::kNot:
      break;
  }
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equal(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->TreeSize();
  return n;
}

}  // namespace sia
