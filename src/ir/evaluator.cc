#include "ir/evaluator.h"

#include <cmath>

namespace sia {

TruthValue And3(TruthValue a, TruthValue b) {
  if (a == TruthValue::kFalse || b == TruthValue::kFalse) {
    return TruthValue::kFalse;
  }
  if (a == TruthValue::kUnknown || b == TruthValue::kUnknown) {
    return TruthValue::kUnknown;
  }
  return TruthValue::kTrue;
}

TruthValue Or3(TruthValue a, TruthValue b) {
  if (a == TruthValue::kTrue || b == TruthValue::kTrue) {
    return TruthValue::kTrue;
  }
  if (a == TruthValue::kUnknown || b == TruthValue::kUnknown) {
    return TruthValue::kUnknown;
  }
  return TruthValue::kFalse;
}

TruthValue Not3(TruthValue a) {
  switch (a) {
    case TruthValue::kTrue:
      return TruthValue::kFalse;
    case TruthValue::kFalse:
      return TruthValue::kTrue;
    case TruthValue::kUnknown:
      return TruthValue::kUnknown;
  }
  return TruthValue::kUnknown;
}

namespace {

Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r,
                        DataType result_type) {
  if (l.is_null() || r.is_null()) return Value::Null(result_type);
  const bool use_double = (l.type() == DataType::kDouble ||
                           r.type() == DataType::kDouble);
  if (use_double) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    double out = 0;
    switch (op) {
      case ArithOp::kAdd:
        out = a + b;
        break;
      case ArithOp::kSub:
        out = a - b;
        break;
      case ArithOp::kMul:
        out = a * b;
        break;
      case ArithOp::kDiv:
        if (b == 0) return Value::Null(DataType::kDouble);
        out = a / b;
        break;
    }
    return Value::Double(out);
  }
  const int64_t a = l.AsInt();
  const int64_t b = r.AsInt();
  int64_t out = 0;
  switch (op) {
    case ArithOp::kAdd:
      out = a + b;
      break;
    case ArithOp::kSub:
      out = a - b;
      break;
    case ArithOp::kMul:
      out = a * b;
      break;
    case ArithOp::kDiv:
      if (b == 0) return Value::Null(result_type);
      out = a / b;  // SQL truncates toward zero
      break;
  }
  // Re-tag DATE results so printing round-trips.
  if (result_type == DataType::kDate) return Value::Date(out);
  if (result_type == DataType::kTimestamp) return Value::Timestamp(out);
  return Value::Integer(out);
}

TruthValue EvalCompare(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return TruthValue::kUnknown;
  int cmp;
  if (l.type() == DataType::kDouble || r.type() == DataType::kDouble) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    cmp = (a < b) ? -1 : (a > b ? 1 : 0);
  } else {
    const int64_t a = l.AsInt();
    const int64_t b = r.AsInt();
    cmp = (a < b) ? -1 : (a > b ? 1 : 0);
  }
  bool out = false;
  switch (op) {
    case CompareOp::kLt:
      out = cmp < 0;
      break;
    case CompareOp::kLe:
      out = cmp <= 0;
      break;
    case CompareOp::kGt:
      out = cmp > 0;
      break;
    case CompareOp::kGe:
      out = cmp >= 0;
      break;
    case CompareOp::kEq:
      out = cmp == 0;
      break;
    case CompareOp::kNe:
      out = cmp != 0;
      break;
  }
  return out ? TruthValue::kTrue : TruthValue::kFalse;
}

}  // namespace

Result<Value> EvalScalar(const Expr& expr, const Tuple& tuple) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      if (!expr.is_bound()) {
        return Status::Internal("unbound column '" + expr.name() +
                                "' in evaluation");
      }
      if (expr.index() >= tuple.size()) {
        return Status::Internal("column index out of range: " +
                                std::to_string(expr.index()));
      }
      return tuple.at(expr.index());
    }
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kArith: {
      SIA_ASSIGN_OR_RETURN(Value l, EvalScalar(*expr.left(), tuple));
      SIA_ASSIGN_OR_RETURN(Value r, EvalScalar(*expr.right(), tuple));
      return EvalArith(expr.arith_op(), l, r, expr.type());
    }
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot: {
      SIA_ASSIGN_OR_RETURN(TruthValue tv, EvalPredicate(expr, tuple));
      if (tv == TruthValue::kUnknown) return Value::Null(DataType::kBoolean);
      return Value::Boolean(tv == TruthValue::kTrue);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<TruthValue> EvalPredicate(const Expr& expr, const Tuple& tuple) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      if (v.is_null()) return TruthValue::kUnknown;
      if (v.type() != DataType::kBoolean) {
        return Status::TypeError("literal '" + v.ToString() +
                                 "' is not a predicate");
      }
      return v.AsBool() ? TruthValue::kTrue : TruthValue::kFalse;
    }
    case ExprKind::kCompare: {
      SIA_ASSIGN_OR_RETURN(Value l, EvalScalar(*expr.left(), tuple));
      SIA_ASSIGN_OR_RETURN(Value r, EvalScalar(*expr.right(), tuple));
      return EvalCompare(expr.compare_op(), l, r);
    }
    case ExprKind::kLogic: {
      SIA_ASSIGN_OR_RETURN(TruthValue l, EvalPredicate(*expr.left(), tuple));
      // Short-circuit where 3VL permits.
      if (expr.logic_op() == LogicOp::kAnd && l == TruthValue::kFalse) {
        return TruthValue::kFalse;
      }
      if (expr.logic_op() == LogicOp::kOr && l == TruthValue::kTrue) {
        return TruthValue::kTrue;
      }
      SIA_ASSIGN_OR_RETURN(TruthValue r, EvalPredicate(*expr.right(), tuple));
      return expr.logic_op() == LogicOp::kAnd ? And3(l, r) : Or3(l, r);
    }
    case ExprKind::kNot: {
      SIA_ASSIGN_OR_RETURN(TruthValue v,
                           EvalPredicate(*expr.operand(), tuple));
      return Not3(v);
    }
    case ExprKind::kColumnRef: {
      if (expr.type() != DataType::kBoolean) {
        return Status::TypeError("column '" + expr.name() +
                                 "' is not boolean");
      }
      SIA_ASSIGN_OR_RETURN(Value v, EvalScalar(expr, tuple));
      if (v.is_null()) return TruthValue::kUnknown;
      return v.AsBool() ? TruthValue::kTrue : TruthValue::kFalse;
    }
    case ExprKind::kArith:
      break;  // arithmetic is never boolean
  }
  return Status::TypeError("expression is not a predicate: " +
                           expr.ToString());
}

Result<bool> Satisfies(const Expr& expr, const Tuple& tuple) {
  SIA_ASSIGN_OR_RETURN(TruthValue tv, EvalPredicate(expr, tuple));
  return tv == TruthValue::kTrue;
}

}  // namespace sia
