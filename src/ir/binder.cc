#include "ir/binder.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

namespace {

// The recursion lives here so the public Bind instruments once per
// top-level expression, not once per AST node.
Result<ExprPtr> BindImpl(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const std::string qualified = expr->table().empty()
                                        ? expr->name()
                                        : expr->table() + "." + expr->name();
      const auto idx = schema.FindColumn(qualified);
      if (!idx.has_value()) {
        return Status::NotFound("column not found or ambiguous: '" +
                                qualified + "'");
      }
      const ColumnDef& col = schema.column(*idx);
      return Expr::BoundColumn(col.table, col.name, *idx, col.type);
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kArith: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, BindImpl(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, BindImpl(expr->right(), schema));
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        return Status::TypeError("arithmetic on non-numeric operand in: " +
                                 expr->ToString());
      }
      return Expr::Arith(expr->arith_op(), std::move(l), std::move(r));
    }
    case ExprKind::kCompare: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, BindImpl(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, BindImpl(expr->right(), schema));
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        return Status::TypeError("comparison on non-numeric operand in: " +
                                 expr->ToString());
      }
      return Expr::Compare(expr->compare_op(), std::move(l), std::move(r));
    }
    case ExprKind::kLogic: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, BindImpl(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, BindImpl(expr->right(), schema));
      if (l->type() != DataType::kBoolean || r->type() != DataType::kBoolean) {
        return Status::TypeError("logical operator on non-boolean in: " +
                                 expr->ToString());
      }
      return Expr::Logic(expr->logic_op(), std::move(l), std::move(r));
    }
    case ExprKind::kNot: {
      SIA_ASSIGN_OR_RETURN(ExprPtr v, BindImpl(expr->operand(), schema));
      if (v->type() != DataType::kBoolean) {
        return Status::TypeError("NOT on non-boolean in: " +
                                 expr->ToString());
      }
      return Expr::Not(std::move(v));
    }
  }
  return Status::Internal("unreachable expression kind in Bind");
}

}  // namespace

Result<ExprPtr> Bind(const ExprPtr& expr, const Schema& schema) {
  SIA_TRACE_SPAN("bind.expr");
  SIA_COUNTER_INC("bind.exprs");
  Result<ExprPtr> bound = BindImpl(expr, schema);
  if (!bound.ok()) SIA_COUNTER_INC("bind.errors");
  return bound;
}

}  // namespace sia
