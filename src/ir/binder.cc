#include "ir/binder.h"

namespace sia {

Result<ExprPtr> Bind(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const std::string qualified = expr->table().empty()
                                        ? expr->name()
                                        : expr->table() + "." + expr->name();
      const auto idx = schema.FindColumn(qualified);
      if (!idx.has_value()) {
        return Status::NotFound("column not found or ambiguous: '" +
                                qualified + "'");
      }
      const ColumnDef& col = schema.column(*idx);
      return Expr::BoundColumn(col.table, col.name, *idx, col.type);
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kArith: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, Bind(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, Bind(expr->right(), schema));
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        return Status::TypeError("arithmetic on non-numeric operand in: " +
                                 expr->ToString());
      }
      return Expr::Arith(expr->arith_op(), std::move(l), std::move(r));
    }
    case ExprKind::kCompare: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, Bind(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, Bind(expr->right(), schema));
      if (!IsNumericLike(l->type()) || !IsNumericLike(r->type())) {
        return Status::TypeError("comparison on non-numeric operand in: " +
                                 expr->ToString());
      }
      return Expr::Compare(expr->compare_op(), std::move(l), std::move(r));
    }
    case ExprKind::kLogic: {
      SIA_ASSIGN_OR_RETURN(ExprPtr l, Bind(expr->left(), schema));
      SIA_ASSIGN_OR_RETURN(ExprPtr r, Bind(expr->right(), schema));
      if (l->type() != DataType::kBoolean || r->type() != DataType::kBoolean) {
        return Status::TypeError("logical operator on non-boolean in: " +
                                 expr->ToString());
      }
      return Expr::Logic(expr->logic_op(), std::move(l), std::move(r));
    }
    case ExprKind::kNot: {
      SIA_ASSIGN_OR_RETURN(ExprPtr v, Bind(expr->operand(), schema));
      if (v->type() != DataType::kBoolean) {
        return Status::TypeError("NOT on non-boolean in: " +
                                 expr->ToString());
      }
      return Expr::Not(std::move(v));
    }
  }
  return Status::Internal("unreachable expression kind in Bind");
}

}  // namespace sia
