#include "ir/simplify.h"

#include "ir/evaluator.h"
#include "types/tuple.h"

namespace sia {

namespace {

bool IsIntLiteral(const ExprPtr& e, int64_t v) {
  return e->kind() == ExprKind::kLiteral && !e->literal().is_null() &&
         IsIntegral(e->literal().type()) &&
         e->literal().type() != DataType::kBoolean &&
         e->literal().AsInt() == v;
}

bool IsLiteral(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

// Evaluates a literal-only subtree (no columns) to a constant.
ExprPtr FoldConstant(const ExprPtr& e) {
  static const Tuple kEmpty;
  auto value = EvalScalar(*e, kEmpty);
  if (!value.ok()) return e;
  return Expr::Literal(std::move(value).value());
}

}  // namespace

ExprPtr Simplify(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kArith: {
      ExprPtr l = Simplify(expr->left());
      ExprPtr r = Simplify(expr->right());
      if (IsLiteral(l) && IsLiteral(r)) {
        return FoldConstant(Expr::Arith(expr->arith_op(), l, r));
      }
      switch (expr->arith_op()) {
        case ArithOp::kAdd:
          if (IsIntLiteral(r, 0)) return l;
          if (IsIntLiteral(l, 0)) return r;
          break;
        case ArithOp::kSub:
          if (IsIntLiteral(r, 0)) return l;
          break;
        case ArithOp::kMul:
          if (IsIntLiteral(r, 1)) return l;
          if (IsIntLiteral(l, 1)) return r;
          break;
        case ArithOp::kDiv:
          if (IsIntLiteral(r, 1)) return l;
          break;
      }
      if (l.get() == expr->left().get() && r.get() == expr->right().get()) {
        return expr;
      }
      return Expr::Arith(expr->arith_op(), std::move(l), std::move(r));
    }
    case ExprKind::kCompare: {
      ExprPtr l = Simplify(expr->left());
      ExprPtr r = Simplify(expr->right());
      if (IsLiteral(l) && IsLiteral(r) && !l->literal().is_null() &&
          !r->literal().is_null()) {
        return FoldConstant(Expr::Compare(expr->compare_op(), l, r));
      }
      if (l.get() == expr->left().get() && r.get() == expr->right().get()) {
        return expr;
      }
      return Expr::Compare(expr->compare_op(), std::move(l), std::move(r));
    }
    case ExprKind::kLogic: {
      ExprPtr l = Simplify(expr->left());
      ExprPtr r = Simplify(expr->right());
      if (expr->logic_op() == LogicOp::kAnd) {
        if (l->IsFalseLiteral() || r->IsFalseLiteral()) {
          return Expr::BoolLit(false);
        }
        if (l->IsTrueLiteral()) return r;
        if (r->IsTrueLiteral()) return l;
      } else {
        if (l->IsTrueLiteral() || r->IsTrueLiteral()) {
          return Expr::BoolLit(true);
        }
        if (l->IsFalseLiteral()) return r;
        if (r->IsFalseLiteral()) return l;
      }
      if (l.get() == expr->left().get() && r.get() == expr->right().get()) {
        return expr;
      }
      return Expr::Logic(expr->logic_op(), std::move(l), std::move(r));
    }
    case ExprKind::kNot: {
      ExprPtr v = Simplify(expr->operand());
      if (v->IsTrueLiteral()) return Expr::BoolLit(false);
      if (v->IsFalseLiteral()) return Expr::BoolLit(true);
      if (v->kind() == ExprKind::kNot) return v->operand();
      // NOT (a CP b) -> a !CP b is only 2VL-sound in general; under 3VL
      // both sides are UNKNOWN exactly when an operand is NULL, so the
      // rewrite is also 3VL-sound for comparisons.
      if (v->kind() == ExprKind::kCompare) {
        return Expr::Compare(NegateCompare(v->compare_op()), v->left(),
                             v->right());
      }
      if (v.get() == expr->operand().get()) return expr;
      return Expr::Not(std::move(v));
    }
  }
  return expr;
}

}  // namespace sia
