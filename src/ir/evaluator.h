#ifndef SIA_IR_EVALUATOR_H_
#define SIA_IR_EVALUATOR_H_

#include "common/status.h"
#include "ir/expr.h"
#include "types/tuple.h"

namespace sia {

// SQL three-valued truth value. A predicate evaluates to TRUE, FALSE, or
// UNKNOWN (the paper calls the latter NULL); a WHERE clause keeps a row
// only when the predicate is TRUE.
enum class TruthValue { kFalse = 0, kTrue = 1, kUnknown = 2 };

// 3VL connectives (Kleene logic).
TruthValue And3(TruthValue a, TruthValue b);
TruthValue Or3(TruthValue a, TruthValue b);
TruthValue Not3(TruthValue a);

// Evaluates a bound scalar expression against `tuple`. Column references
// must be bound (index() valid for `tuple`). NULL propagates through
// arithmetic; division by zero yields NULL (documented deviation: SQL
// raises an error, but synthesis never needs to observe it).
[[nodiscard]] Result<Value> EvalScalar(const Expr& expr, const Tuple& tuple);

// Evaluates a bound predicate against `tuple` under three-valued logic.
[[nodiscard]] Result<TruthValue> EvalPredicate(const Expr& expr, const Tuple& tuple);

// Convenience: true iff the predicate evaluates to TRUE (not UNKNOWN).
// Returns an error for unbound columns or type errors.
[[nodiscard]] Result<bool> Satisfies(const Expr& expr, const Tuple& tuple);

}  // namespace sia

#endif  // SIA_IR_EVALUATOR_H_
