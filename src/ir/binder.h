#ifndef SIA_IR_BINDER_H_
#define SIA_IR_BINDER_H_

#include "common/status.h"
#include "ir/expr.h"
#include "types/schema.h"

namespace sia {

// Resolves the column references in `expr` against `schema`, producing a
// new tree whose kColumnRef nodes carry a valid index and the column's
// DataType, and whose operator nodes have correct inferred result types.
//
// Also type-checks: predicates may only combine boolean subexpressions
// with AND/OR/NOT, comparisons require numeric-like operands, and
// arithmetic rejects boolean operands.
[[nodiscard]] Result<ExprPtr> Bind(const ExprPtr& expr, const Schema& schema);

}  // namespace sia

#endif  // SIA_IR_BINDER_H_
