#ifndef SIA_IR_BUILDER_H_
#define SIA_IR_BUILDER_H_

#include <string>

#include "ir/expr.h"

// Terse expression-building DSL for tests and examples:
//
//   using namespace sia::dsl;
//   ExprPtr p = (Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0));
//
// The operators build *unbound* trees; run sia::Bind before evaluating.

namespace sia::dsl {

inline ExprPtr Col(std::string name) { return Expr::Column("", std::move(name)); }
inline ExprPtr Col(std::string table, std::string name) {
  return Expr::Column(std::move(table), std::move(name));
}
inline ExprPtr Lit(int64_t v) { return Expr::IntLit(v); }
inline ExprPtr Lit(int v) { return Expr::IntLit(v); }
inline ExprPtr Lit(double v) { return Expr::DoubleLit(v); }
inline ExprPtr DateL(int64_t epoch_day) { return Expr::DateLit(epoch_day); }

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kDiv, std::move(a), std::move(b));
}

inline ExprPtr operator<(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr operator>(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr operator==(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr operator!=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kNe, std::move(a), std::move(b));
}

inline ExprPtr operator&&(ExprPtr a, ExprPtr b) {
  return Expr::Logic(LogicOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr operator||(ExprPtr a, ExprPtr b) {
  return Expr::Logic(LogicOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr operator!(ExprPtr a) { return Expr::Not(std::move(a)); }

}  // namespace sia::dsl

#endif  // SIA_IR_BUILDER_H_
