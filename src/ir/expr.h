#ifndef SIA_IR_EXPR_H_
#define SIA_IR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace sia {

// Expression IR implementing the predicate grammar of paper §4.1:
//
//   P  := E CP E | P L P | NOT P
//   E  := Column | Const | E OP E
//   CP := > | < | = | <= | >= | <>
//   OP := + | - | * | /
//   L  := AND | OR
//
// Nodes are immutable and shared via ExprPtr; rewrites build new trees.

enum class ExprKind {
  kColumnRef,  // reference to a column, bound to a schema slot
  kLiteral,    // constant Value (possibly NULL)
  kArith,      // binary arithmetic
  kCompare,    // binary comparison (predicate leaf)
  kLogic,      // AND / OR
  kNot,        // negation
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };
enum class LogicOp { kAnd, kOr };

// SQL token for each operator ("+", "<=", "AND", ...).
const char* ArithOpName(ArithOp op);
const char* CompareOpName(CompareOp op);
const char* LogicOpName(LogicOp op);

// The comparison with operands swapped (a < b  ==  b > a).
CompareOp SwapCompare(CompareOp op);
// The logical negation (NOT (a < b)  ==  a >= b), two-valued.
CompareOp NegateCompare(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  // --- Factories ------------------------------------------------------

  // Unbound column reference; the binder resolves `table`/`name` to an
  // index and fills in the type.
  static ExprPtr Column(std::string table, std::string name);

  // Bound column reference (index into the relevant Schema).
  static ExprPtr BoundColumn(std::string table, std::string name,
                             size_t index, DataType type);

  static ExprPtr Literal(Value v);
  static ExprPtr IntLit(int64_t v) { return Literal(Value::Integer(v)); }
  static ExprPtr DateLit(int64_t epoch_day) {
    return Literal(Value::Date(epoch_day));
  }
  static ExprPtr DoubleLit(double v) { return Literal(Value::Double(v)); }
  static ExprPtr BoolLit(bool v) { return Literal(Value::Boolean(v)); }

  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Logic(LogicOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);

  // Conjunction of `terms` (TRUE literal when empty).
  static ExprPtr And(const std::vector<ExprPtr>& terms);
  // Disjunction of `terms` (FALSE literal when empty).
  static ExprPtr Or(const std::vector<ExprPtr>& terms);

  // --- Accessors ------------------------------------------------------

  ExprKind kind() const { return kind_; }
  DataType type() const { return type_; }

  // Column-ref fields.
  const std::string& table() const { return table_; }
  const std::string& name() const { return name_; }
  bool is_bound() const { return index_ >= 0; }
  size_t index() const { return static_cast<size_t>(index_); }

  // Literal field.
  const Value& literal() const { return literal_; }

  // Operator fields.
  ArithOp arith_op() const { return arith_op_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicOp logic_op() const { return logic_op_; }

  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const ExprPtr& operand() const { return children_[0]; }
  const std::vector<ExprPtr>& children() const { return children_; }

  // True for TRUE/FALSE literals.
  bool IsTrueLiteral() const;
  bool IsFalseLiteral() const;

  // SQL-ish rendering, fully parenthesized only where needed.
  std::string ToString() const;

  // Structural equality (same shape, ops, literals, column indices).
  static bool Equal(const ExprPtr& a, const ExprPtr& b);

  // Number of nodes in the tree (used by tests and stats).
  size_t TreeSize() const;

 private:
  Expr() = default;

  void AppendTo(std::string* out, int parent_prec) const;

  ExprKind kind_ = ExprKind::kLiteral;
  DataType type_ = DataType::kBoolean;

  std::string table_;
  std::string name_;
  int64_t index_ = -1;

  Value literal_;

  ArithOp arith_op_ = ArithOp::kAdd;
  CompareOp compare_op_ = CompareOp::kLt;
  LogicOp logic_op_ = LogicOp::kAnd;

  std::vector<ExprPtr> children_;
};

}  // namespace sia

#endif  // SIA_IR_EXPR_H_
