#ifndef SIA_REWRITE_BACKGROUND_SYNTHESIZER_H_
#define SIA_REWRITE_BACKGROUND_SYNTHESIZER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "parser/ast.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "types/schema.h"

namespace sia {

// One unit of background learning work: everything RunSynthesisLadder
// needs for a key (the serving path computed it via MakeRewriteKey and
// inserted the kSynthesizing marker before enqueueing), plus the parsed
// query so the evidence callback can paranoid-run candidate rewrites.
struct BackgroundJob {
  ExprPtr bound;             // bound WHERE clause (the cache key)
  std::vector<size_t> cols;  // Cols' (the cache key)
  Schema joint;
  ParsedQuery query;
  // The admitting request's trace ID (obs::CurrentTraceId() at enqueue):
  // RunJob reinstalls it so the synthesis and evidence spans link into
  // the trace of the miss that queued them. 0 = untraced.
  uint64_t trace_id = 0;
};

// Runs the synthesis ladder off the serving path, on the shared thread
// pool's low-priority background lane (common/thread_pool.h): a bounded,
// droppable job queue drained one job at a time by a task that only runs
// when no serving work is queued. With a worker-less pool (SIA_THREADS=1)
// a dedicated thread drains instead — running background work inline on
// the serving path is exactly what this class exists to prevent.
//
// Every job this class accepts owns its key's kSynthesizing marker in
// the RewriteCache. The invariant enforced here is that the marker is
// ALWAYS released — CompleteSynthesis on success, AbortSynthesis on
// every failure path (drop at enqueue, injected crash, ladder error,
// drain) — so a key can never wedge in kSynthesizing.
//
// Layering: src/rewrite cannot link the engine, so the evidence loop
// (paranoid shadow executions feeding RecordShadow) is injected by the
// owner (src/server QueryService) as a callback run after a successful
// publish.
class BackgroundSynthesizer {
 public:
  // Gathers promotion evidence for a freshly quarantined entry:
  // `predicate` is the learned predicate just published for `job`'s key.
  // Runs on the background lane; implementations shadow-execute and call
  // RewriteCache::RecordShadow.
  using EvidenceFn =
      std::function<void(const BackgroundJob& job, const ExprPtr& predicate)>;

  struct Options {
    // Ladder configuration (target table, synthesis budgets, rungs).
    // Its deadline is ignored: every job gets its own fresh budget.
    RewriteOptions rewrite;
    // Per-job wall-clock budget. Background jobs deliberately do NOT
    // inherit the admitting request's deadline — that deadline is
    // scoped to a reply that has long been sent (and is typically
    // nearly exhausted), and a learned predicate benefits every future
    // request, so it gets its own clock.
    int64_t budget_ms = 2000;
    // Jobs queued beyond this are dropped (markers aborted) — learning
    // is best-effort and must shed before it backs up the server.
    size_t queue_depth = 64;
    // Thresholds used by the force-promote fault path (the real
    // evidence loop carries its own copy inside `evidence`).
    PromotionPolicy policy;
    EvidenceFn evidence;  // optional; null skips evidence gathering
  };

  // `cache` is borrowed and must outlive this object. `pool` may be
  // null or worker-less; a dedicated drainer thread is used then.
  BackgroundSynthesizer(RewriteCache* cache, ThreadPool* pool,
                        Options options);

  // Drains on destruction (idempotent with an earlier DrainAndStop).
  ~BackgroundSynthesizer();

  BackgroundSynthesizer(const BackgroundSynthesizer&) = delete;
  BackgroundSynthesizer& operator=(const BackgroundSynthesizer&) = delete;

  // Hands a job to the background lane. Returns false — after releasing
  // the job's kSynthesizing marker so the key stays re-queueable — when
  // the queue is full, draining has begun, or the pool is shutting
  // down. Never blocks on synthesis.
  bool Enqueue(BackgroundJob job) SIA_EXCLUDES(mu_);

  // Stops accepting jobs, aborts everything still queued (their keys
  // become re-queueable) and waits for the in-flight job, if any, to
  // finish. Idempotent; called by QueryService teardown and by the
  // server's drain path before the pool is torn down.
  void DrainAndStop() SIA_EXCLUDES(mu_);

  struct Stats {
    size_t enqueued = 0;
    size_t dropped = 0;
    size_t completed = 0;
    size_t failed = 0;  // crash-injected, ladder error, or stale marker
  };
  Stats stats() const SIA_EXCLUDES(mu_);

 private:
  // Runs queued jobs until the queue is empty, then retires. Scheduled
  // on the pool's background lane (one at a time).
  void DrainQueue() SIA_EXCLUDES(mu_);
  // Dedicated-thread fallback body (worker-less pool).
  void ThreadLoop() SIA_EXCLUDES(mu_);
  // Synthesizes one job and publishes or aborts its marker.
  void RunJob(const BackgroundJob& job) SIA_EXCLUDES(mu_);

  RewriteCache* const cache_;
  ThreadPool* const pool_;  // null => thread_ drains
  const Options options_;
  const bool use_pool_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<BackgroundJob> queue_ SIA_GUARDED_BY(mu_);
  bool draining_ SIA_GUARDED_BY(mu_) = false;
  // A DrainQueue task has been handed to the pool and has not retired.
  bool drainer_scheduled_ SIA_GUARDED_BY(mu_) = false;
  // A job is executing right now (DrainAndStop waits on this; a merely
  // scheduled drainer may be dropped by pool shutdown and is not waited
  // for).
  bool job_running_ SIA_GUARDED_BY(mu_) = false;
  bool stop_thread_ SIA_GUARDED_BY(mu_) = false;
  Stats stats_ SIA_GUARDED_BY(mu_);
  // Fallback drainer; joined by ~Thread after DrainAndStop.
  std::unique_ptr<Thread> thread_;
};

}  // namespace sia

#endif  // SIA_REWRITE_BACKGROUND_SYNTHESIZER_H_
