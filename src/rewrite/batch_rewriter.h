#ifndef SIA_REWRITE_BATCH_REWRITER_H_
#define SIA_REWRITE_BATCH_REWRITER_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"

namespace sia {

class ThreadPool;

// Concurrent driver for rewriting a whole workload (the paper's §6.3
// 200-query batch): queries are distributed over the pool, one
// RewriteQuery per worker at a time. Thread safety rests on two rules
// this driver maintains:
//   - every Z3 context stays private to one synthesis call (the
//     synthesizer, sampler, verifier, and interval fallback each
//     construct their own SmtContext — Z3 contexts are not thread-safe
//     and are never shared across workers), and
//   - the single shared mutable structure, the RewriteCache, is
//     single-flight: concurrent misses on one key coalesce onto one
//     in-flight synthesis instead of duplicating the CEGIS run.
struct BatchRewriteOptions {
  // Per-query rewrite options. Its `cache` field is overridden with the
  // `cache` below. Note RewriteOptions::deadline is one absolute
  // wall-clock budget — under a batch it bounds the whole batch, not
  // each query.
  RewriteOptions rewrite;
  // Optional cache shared by all workers (and with any later callers).
  RewriteCache* cache = nullptr;
  // Pool to run on; nullptr = the process-wide ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

// Rewrites every query, returning outcomes in input order regardless of
// completion order. With synthesis itself deterministic (fixed seeds, no
// solver-budget expiry), the result is identical at every thread count;
// the first failing query's error aborts the batch. Queries rewritten on
// a worker get full stats; queries served by the shared cache come back
// with `from_cache` set.
[[nodiscard]] Result<std::vector<RewriteOutcome>> RewriteBatch(
    const std::vector<ParsedQuery>& queries, const Catalog& catalog,
    const BatchRewriteOptions& options);

}  // namespace sia

#endif  // SIA_REWRITE_BATCH_REWRITER_H_
