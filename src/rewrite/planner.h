#ifndef SIA_REWRITE_PLANNER_H_
#define SIA_REWRITE_PLANNER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"
#include "rewrite/plan.h"

namespace sia {

struct PlannerOptions {
  // Push single-table conjuncts below joins into the scans (what every
  // production optimizer, including the paper's Postgres v12, does).
  // Disable to measure the cost of a missing pushdown in isolation.
  bool push_down_filters = true;
};

// Plans a parsed query into a left-deep logical tree:
//
//   [Aggregate] <- [Filter residual] <- Join ... Join <- Scan(filtered)
//
// WHERE conjuncts are placed at the lowest level where all their columns
// are available (single-table conjuncts inside the scans when pushdown is
// enabled, join-level conjuncts on the join, the rest in a residual
// filter). Expressions in the returned plan are bound to their node's
// input schema.
[[nodiscard]] Result<PlanPtr> PlanQuery(const ParsedQuery& query, const Catalog& catalog,
                          const PlannerOptions& options = {});

}  // namespace sia

#endif  // SIA_REWRITE_PLANNER_H_
