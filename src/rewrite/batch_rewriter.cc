#include "rewrite/batch_rewriter.h"

#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

Result<std::vector<RewriteOutcome>> RewriteBatch(
    const std::vector<ParsedQuery>& queries, const Catalog& catalog,
    const BatchRewriteOptions& options) {
  SIA_TRACE_SPAN("rewrite.batch");
  SIA_COUNTER_ADD("rewrite.batch.queries", queries.size());
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Shared();
  RewriteOptions per_query = options.rewrite;
  per_query.cache = options.cache;

  // Grain 1: synthesis latency varies by orders of magnitude across
  // queries, so each one is its own unit of work. Outcomes land at their
  // input index — completion order never shows in the result.
  std::vector<RewriteOutcome> outcomes(queries.size());
  SIA_RETURN_IF_ERROR(pool.ParallelFor(
      queries.size(), 1, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          auto outcome = RewriteQuery(queries[i], catalog, per_query);
          if (!outcome.ok()) return outcome.status();
          outcomes[i] = std::move(*outcome);
        }
        return Status::OK();
      }));
  return outcomes;
}

}  // namespace sia
