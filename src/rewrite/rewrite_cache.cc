#include "rewrite/rewrite_cache.h"

namespace sia {

std::string RewriteCache::MakeKey(const ExprPtr& bound_predicate,
                                  const std::vector<size_t>& cols) {
  std::string key = bound_predicate->ToString();
  key += " @ ";
  for (const size_t c : cols) {
    key += std::to_string(c);
    key += ',';
  }
  return key;
}

std::optional<RewriteCache::Entry> RewriteCache::Lookup(
    const ExprPtr& bound_predicate, const std::vector<size_t>& cols) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void RewriteCache::Insert(const ExprPtr& bound_predicate,
                          const std::vector<size_t>& cols, Entry entry) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  entries_[key] = std::move(entry);
}

RewriteCache::Stats RewriteCache::stats() const {
  MutexLock lock(&mutex_);
  return Stats{hits_, misses_, entries_.size(), coalesced_};
}

void RewriteCache::Clear() {
  MutexLock lock(&mutex_);
  // In-flight markers are deliberately left alone: their leaders will
  // still erase them and wake any waiters.
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  coalesced_ = 0;
}

}  // namespace sia
