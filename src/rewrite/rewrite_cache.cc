#include "rewrite/rewrite_cache.h"

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

const char* EntryStateName(EntryState state) {
  switch (state) {
    case EntryState::kSynthesizing:
      return "synthesizing";
    case EntryState::kQuarantined:
      return "quarantined";
    case EntryState::kPromoted:
      return "promoted";
    case EntryState::kDemoted:
      return "demoted";
  }
  return "?";
}

std::string RewriteCache::MakeKey(const ExprPtr& bound_predicate,
                                  const std::vector<size_t>& cols) {
  std::string key = bound_predicate->ToString();
  key += " @ ";
  for (const size_t c : cols) {
    key += std::to_string(c);
    key += ',';
  }
  return key;
}

std::optional<RewriteCache::Entry> RewriteCache::Lookup(
    const ExprPtr& bound_predicate, const std::vector<size_t>& cols) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void RewriteCache::Insert(const ExprPtr& bound_predicate,
                          const std::vector<size_t>& cols, Entry entry) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  entries_[key] = std::move(entry);
}

ServingDecision RewriteCache::Decide(const ExprPtr& bound_predicate,
                                     const std::vector<size_t>& cols,
                                     const PromotionPolicy& policy,
                                     bool shadow_sampled, int64_t now_ms) {
  const std::string key = MakeKey(bound_predicate, cols);
  ServingDecision decision;
  MutexLock lock(&mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    SIA_COUNTER_INC("rewrite.cache.miss");
    // A legacy single-flight leader may be synthesizing this key right
    // now; let it publish rather than double-queueing the work.
    if (!inflight_.contains(key)) {
      Entry marker;
      marker.state = EntryState::kSynthesizing;
      marker.predicate = nullptr;
      marker.origin_trace_id = obs::CurrentTraceId();
      entries_[key] = std::move(marker);
      decision.enqueue = true;
    }
    decision.state = EntryState::kSynthesizing;
    return decision;
  }
  ++hits_;
  SIA_COUNTER_INC("rewrite.cache.hit");
  Entry& entry = it->second;
  decision.state = entry.state;
  switch (entry.state) {
    case EntryState::kSynthesizing:
      break;  // background job owns the key; serve the original
    case EntryState::kQuarantined:
      // Gather evidence: a sampled request paranoid-runs the candidate
      // rewrite but still serves the original's digests.
      if (shadow_sampled && entry.predicate != nullptr && !entry.poisoned) {
        decision.shadow = true;
        decision.predicate = entry.predicate;
        decision.rung = entry.rung;
      }
      break;
    case EntryState::kPromoted:
      if (entry.predicate != nullptr) {
        decision.serve_rewrite = true;
        decision.predicate = entry.predicate;
        decision.rung = entry.rung;
        // Regression watch: sampled promoted serves stay cross-checked.
        decision.shadow = shadow_sampled;
      }
      // Null predicate: a verified "nothing to learn"; the original is
      // the promoted answer.
      break;
    case EntryState::kDemoted:
      if (!entry.poisoned &&
          now_ms - entry.demoted_at_ms >= policy.demote_ttl_ms) {
        // TTL expired: forget the failed attempt and re-learn.
        Entry marker;
        marker.state = EntryState::kSynthesizing;
        marker.origin_trace_id = obs::CurrentTraceId();
        entry = std::move(marker);
        decision.state = EntryState::kSynthesizing;
        decision.enqueue = true;
        SIA_COUNTER_INC("rewrite.promote.requeued");
      }
      break;
  }
  return decision;
}

Status RewriteCache::CompleteSynthesis(const ExprPtr& bound_predicate,
                                       const std::vector<size_t>& cols,
                                       Entry entry) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("synthesis marker vanished for key '" + key +
                            "' (aborted or cleared)");
  }
  if (it->second.state != EntryState::kSynthesizing) {
    return Status::InvalidArgument(
        std::string("illegal transition: CompleteSynthesis on a ") +
        EntryStateName(it->second.state) + " entry");
  }
  entry.state = entry.predicate != nullptr ? EntryState::kQuarantined
                                           : EntryState::kPromoted;
  entry.wins = 0;
  entry.losses = 0;
  entry.shadow_runs = 0;
  entry.poisoned = false;
  // The marker remembers which request's miss started this lifecycle;
  // the published entry keeps that link for the promotion decision.
  entry.origin_trace_id = it->second.origin_trace_id;
  it->second = std::move(entry);
  return Status::OK();
}

void RewriteCache::AbortSynthesis(const ExprPtr& bound_predicate,
                                  const std::vector<size_t>& cols) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.state == EntryState::kSynthesizing) {
    entries_.erase(it);
  }
}

Result<EntryState> RewriteCache::RecordShadow(const ExprPtr& bound_predicate,
                                              const std::vector<size_t>& cols,
                                              const ShadowOutcome& outcome,
                                              const PromotionPolicy& policy,
                                              int64_t now_ms) {
  const std::string key = MakeKey(bound_predicate, cols);
  MutexLock lock(&mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no entry to record shadow evidence against");
  }
  Entry& entry = it->second;
  // The promotion decision links back to the request whose miss created
  // this entry: reinstalling its trace ID puts the decision span (and
  // any promotion/demotion events below) in the same exported trace as
  // that request's admission span and the background synthesis job.
  // Sync-mode entries never had a marker; they keep the caller's trace.
  obs::TraceContext origin_ctx(entry.origin_trace_id != 0
                                   ? entry.origin_trace_id
                                   : obs::CurrentTraceId());
  SIA_TRACE_SPAN("rewrite.promote.decision");
  if (entry.state == EntryState::kSynthesizing) {
    return Status::InvalidArgument(
        "illegal transition: RecordShadow on a synthesizing entry");
  }
  ++entry.shadow_runs;
  SIA_COUNTER_INC("rewrite.promote.shadow_runs");

  if (outcome.mismatch) {
    // A wrong rewrite slipped through verification: evict it and
    // quarantine the entry permanently. The paranoid runner already
    // served the original's result, so no client saw the wrong answer.
    SIA_COUNTER_INC("rewrite.promote.digest_mismatch");
    SIA_EVENT("rewrite.digest_mismatch", key);
    if (entry.state == EntryState::kPromoted) {
      SIA_COUNTER_INC("rewrite.promote.demoted");
    }
    entry.predicate = nullptr;
    entry.poisoned = true;
    entry.state = EntryState::kQuarantined;
    return entry.state;
  }

  const bool win = !outcome.rewrite_failed &&
                   outcome.rewritten_ms <=
                       outcome.original_ms * policy.win_factor +
                           policy.win_slack_ms;
  if (win) {
    ++entry.wins;
    SIA_COUNTER_INC("rewrite.promote.wins");
    if (entry.state == EntryState::kQuarantined && !entry.poisoned &&
        entry.wins >= policy.promote_after) {
      entry.state = EntryState::kPromoted;
      SIA_COUNTER_INC("rewrite.promote.promoted");
      SIA_EVENT("rewrite.promoted",
                key + " wins=" + std::to_string(entry.wins));
    }
  } else {
    ++entry.losses;
    SIA_COUNTER_INC("rewrite.promote.losses");
    if ((entry.state == EntryState::kPromoted ||
         entry.state == EntryState::kQuarantined) &&
        entry.losses >= policy.demote_after) {
      if (entry.state == EntryState::kPromoted) {
        SIA_COUNTER_INC("rewrite.promote.demoted");
      }
      entry.state = EntryState::kDemoted;
      entry.demoted_at_ms = now_ms;
      SIA_EVENT("rewrite.demoted",
                key + " losses=" + std::to_string(entry.losses));
    }
  }
  return entry.state;
}

RewriteCache::Stats RewriteCache::stats() const {
  MutexLock lock(&mutex_);
  Stats out{hits_, misses_, entries_.size(), coalesced_};
  for (const auto& [key, entry] : entries_) {
    switch (entry.state) {
      case EntryState::kSynthesizing:
        ++out.synthesizing;
        break;
      case EntryState::kQuarantined:
        ++out.quarantined;
        break;
      case EntryState::kPromoted:
        ++out.promoted;
        break;
      case EntryState::kDemoted:
        ++out.demoted;
        break;
    }
    if (entry.poisoned) ++out.poisoned;
  }
  return out;
}

std::vector<RewriteCache::EntryInfo> RewriteCache::EntryInfos() const {
  MutexLock lock(&mutex_);
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    EntryInfo info;
    info.key = key;
    info.state = entry.state;
    info.rung = entry.rung;
    info.wins = entry.wins;
    info.losses = entry.losses;
    info.shadow_runs = entry.shadow_runs;
    info.poisoned = entry.poisoned;
    out.push_back(std::move(info));
  }
  return out;
}

void RewriteCache::Clear() {
  MutexLock lock(&mutex_);
  // In-flight markers are deliberately left alone: their leaders will
  // still erase them and wake any waiters.
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  coalesced_ = 0;
}

}  // namespace sia
