#ifndef SIA_REWRITE_SIA_REWRITER_H_
#define SIA_REWRITE_SIA_REWRITER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "parser/ast.h"
#include "synth/synthesizer.h"

namespace sia {

class RewriteCache;

// End-to-end query rewriting with learned predicates (the full Sia
// pipeline of Fig. 5): parse -> bind -> synthesize a valid reduction of
// the WHERE predicate onto one table's columns -> conjoin it back.
struct RewriteOptions {
  // The table whose columns the synthesized predicate may use (the
  // pushdown target, e.g. "lineitem").
  std::string target_table;
  // Optional explicit Cols' (qualified or bare column names). When empty,
  // every `target_table` column referenced by the WHERE clause is used.
  std::vector<std::string> target_columns;
  SynthesisOptions synthesis;
  // End-to-end wall-clock budget for the whole rewrite, shared by every
  // rung of the degradation ladder (infinite by default). Merged into
  // the synthesis deadline as the earlier of the two.
  Deadline deadline;
  // Degradation ladder toggles. With both off a failed synthesis drops
  // straight to "no rewrite".
  bool enable_retry = true;              // rung 2: reseeded, budget-halved
  bool enable_interval_fallback = true;  // rung 3: single-column interval
  // Optional shared synthesis cache (rewrite/rewrite_cache.h). When set,
  // the whole degradation ladder runs through the cache's single-flight
  // GetOrSynthesize keyed by (bound WHERE, Cols'): a repeated predicate
  // pays the CEGIS cost once per process, and concurrent batch workers
  // missing on the same key block on the one in-flight synthesis instead
  // of duplicating it. Borrowed, not owned; must outlive the call.
  RewriteCache* cache = nullptr;
};

// Which rung of the degradation ladder produced the outcome. The ladder
// never fails a query: synthesis trouble only ever costs the learned
// predicate, falling through full synthesis -> reseeded budget-halved
// retry -> exact single-column interval synthesis -> original query.
enum class RewriteRung {
  kFull = 0,  // full CEGIS synthesis
  kRetry,     // budget-halved reseeded retry succeeded
  kInterval,  // interval-only fallback succeeded
  kOriginal,  // no rewrite: the query is returned unchanged
};

const char* RewriteRungName(RewriteRung rung);

struct RewriteOutcome {
  // The rewritten query: original WHERE ∧ learned predicate. Equals the
  // input query when synthesis produced nothing.
  ParsedQuery rewritten;
  // Synthesis record (status, stats, learned conjuncts) of the rung that
  // produced the outcome.
  SynthesisResult synthesis;
  // The learned predicate bound against the query's joint schema; null
  // when synthesis produced nothing.
  ExprPtr learned;
  // The ladder rung that produced this outcome. kOriginal both for
  // "nothing to learn" (no degradation notes) and for "every rung
  // failed" (notes say why).
  RewriteRung rung = RewriteRung::kOriginal;
  // One human-readable note per abandoned rung, in ladder order. Empty
  // when the first attempt succeeded or there was nothing to synthesize.
  std::vector<std::string> degradation;
  // True when the learned predicate (or the "nothing learned" record)
  // was served from RewriteOptions::cache rather than synthesized in
  // this call. Cached outcomes carry no stats or degradation notes —
  // those belong to the call that ran the ladder.
  bool from_cache = false;

  bool changed() const { return learned != nullptr; }
};

// The cache coordinates of one query: the WHERE clause bound against the
// joint FROM schema plus the derived target-column set Cols'. This is
// everything the serving path needs to consult the RewriteCache (and
// everything a background job needs to synthesize for the key) without
// running any synthesis itself.
struct RewriteKey {
  ExprPtr bound;             // bound WHERE clause; null when !synthesizable
  std::vector<size_t> cols;  // Cols' (column indices into `joint`)
  Schema joint;
  // False when there is nothing to synthesize for this query (no WHERE,
  // no target-table columns in it, or the predicate already only uses
  // Cols'). `bound`/`cols` are meaningless then; serve the original.
  bool synthesizable = false;
};

// Computes the rewrite-cache key for `query` without synthesizing.
// Errors mirror RewriteQuery's input validation (missing target table,
// unbound columns, unknown explicit target columns).
[[nodiscard]] Result<RewriteKey> MakeRewriteKey(const ParsedQuery& query,
                                                const Catalog& catalog,
                                                const RewriteOptions& options);

// One full run of the degradation ladder for an already-computed key.
struct LadderRun {
  SynthesisResult synthesis;  // record of the rung that produced the run
  ExprPtr learned;            // null when nothing was learned
  RewriteRung rung = RewriteRung::kOriginal;
  std::vector<std::string> degradation;
};

// Runs the full degradation ladder (CEGIS → reseeded retry → interval
// fallback) for one key, honoring options.deadline — the background
// synthesizer's entry point, also the core of RewriteQuery. Never fails
// a query for synthesis trouble; non-degradable errors (malformed
// input) still surface.
[[nodiscard]] Result<LadderRun> RunSynthesisLadder(
    const ExprPtr& bound, const Schema& joint,
    const std::vector<size_t>& cols, const RewriteOptions& options);

// Rewrites `query` (which must reference `options.target_table` in FROM).
// Returns the outcome even when no predicate could be learned (status
// kNone, rewritten == query); errors indicate malformed input.
[[nodiscard]] Result<RewriteOutcome> RewriteQuery(const ParsedQuery& query,
                                    const Catalog& catalog,
                                    const RewriteOptions& options);

// Convenience overload: parses `sql` first.
[[nodiscard]] Result<RewriteOutcome> RewriteQuery(const std::string& sql,
                                    const Catalog& catalog,
                                    const RewriteOptions& options);

}  // namespace sia

#endif  // SIA_REWRITE_SIA_REWRITER_H_
