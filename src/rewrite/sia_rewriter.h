#ifndef SIA_REWRITE_SIA_REWRITER_H_
#define SIA_REWRITE_SIA_REWRITER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"
#include "synth/synthesizer.h"

namespace sia {

// End-to-end query rewriting with learned predicates (the full Sia
// pipeline of Fig. 5): parse -> bind -> synthesize a valid reduction of
// the WHERE predicate onto one table's columns -> conjoin it back.
struct RewriteOptions {
  // The table whose columns the synthesized predicate may use (the
  // pushdown target, e.g. "lineitem").
  std::string target_table;
  // Optional explicit Cols' (qualified or bare column names). When empty,
  // every `target_table` column referenced by the WHERE clause is used.
  std::vector<std::string> target_columns;
  SynthesisOptions synthesis;
};

struct RewriteOutcome {
  // The rewritten query: original WHERE ∧ learned predicate. Equals the
  // input query when synthesis produced nothing.
  ParsedQuery rewritten;
  // Synthesis record (status, stats, learned conjuncts).
  SynthesisResult synthesis;
  // The learned predicate bound against the query's joint schema; null
  // when synthesis produced nothing.
  ExprPtr learned;

  bool changed() const { return learned != nullptr; }
};

// Rewrites `query` (which must reference `options.target_table` in FROM).
// Returns the outcome even when no predicate could be learned (status
// kNone, rewritten == query); errors indicate malformed input.
Result<RewriteOutcome> RewriteQuery(const ParsedQuery& query,
                                    const Catalog& catalog,
                                    const RewriteOptions& options);

// Convenience overload: parses `sql` first.
Result<RewriteOutcome> RewriteQuery(const std::string& sql,
                                    const Catalog& catalog,
                                    const RewriteOptions& options);

}  // namespace sia

#endif  // SIA_REWRITE_SIA_REWRITER_H_
