#ifndef SIA_REWRITE_REWRITE_CACHE_H_
#define SIA_REWRITE_REWRITE_CACHE_H_

#include <cstdint>
#include <exception>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "ir/expr.h"
#include "synth/synthesizer.h"

namespace sia {

// Cache of synthesis results keyed by (predicate, Cols') — the paper's
// §6.2 deployment mode: production queries are dominated by stored
// procedures that are "optimized only once and their query execution
// plans are stored in a plan cache", so the seconds-scale synthesis cost
// is paid once per distinct predicate shape.
//
// Keys canonicalize through the bound predicate's printed form, which is
// deterministic for structurally identical predicates. Thread-safe, with
// single-flight misses: when N batch-rewrite workers miss on the same
// key concurrently, exactly one runs synthesize() while the others block
// on the in-flight entry and are served its result — never N CEGIS runs
// for one key, and never a last-writer-wins insert race.
class RewriteCache {
 public:
  struct Entry {
    SynthesisStatus status = SynthesisStatus::kNone;
    ExprPtr predicate;  // null for kNone
    // Ordinal of the RewriteRung (rewrite/sia_rewriter.h) that produced
    // the entry; stored as an int because that enum lives above this
    // header in the layering. 3 == kOriginal (no rewrite).
    int rung = 3;
  };

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    // Callers that found another thread's synthesis of their key in
    // flight, blocked on it, and were served its result without running
    // their own (each such wait also counts as a hit once served).
    size_t coalesced = 0;
  };

  // Returns the cached entry, or nullopt on miss. Does not wait for
  // in-flight synthesis; use GetOrSynthesize for single-flight reads.
  std::optional<Entry> Lookup(const ExprPtr& bound_predicate,
                              const std::vector<size_t>& cols)
      SIA_EXCLUDES(mutex_);

  // Records a synthesis result.
  void Insert(const ExprPtr& bound_predicate,
              const std::vector<size_t>& cols, Entry entry)
      SIA_EXCLUDES(mutex_);

  // Looks up, and on a miss runs `synthesize()` — at most once per key
  // across all concurrent callers — and caches its result. `synthesize`
  // returns either Result<Entry> or (legacy form) Result<SynthesisResult>.
  //
  // Concurrency: the first thread to miss on a key becomes its leader
  // and synthesizes outside the lock; later arrivals block until the
  // leader publishes, then return its entry. A failed synthesis is NOT
  // cached — the leader returns the error and one waiter takes over as
  // the new leader, so a transient solver failure does not poison the
  // key. A synthesize() that throws is mapped to kInternal (leaking the
  // exception would strand the waiters).
  template <typename F>
  [[nodiscard]] Result<Entry> GetOrSynthesize(const ExprPtr& bound_predicate,
                                const std::vector<size_t>& cols,
                                F&& synthesize) SIA_EXCLUDES(mutex_) {
    const std::string key = MakeKey(bound_predicate, cols);
    MutexLock lock(&mutex_);
    for (;;) {
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        return it->second;
      }
      if (inflight_.insert(key).second) break;  // we lead; synthesize below
      ++coalesced_;
      // Wait for the leader, then re-check from the top: entry present
      // means the leader published (count it a hit); entry absent means
      // the leader failed and this thread may take over.
      while (inflight_.contains(key)) inflight_cv_.Wait(&mutex_);
    }
    ++misses_;
    lock.Unlock();
    Result<Entry> result = RunSynthesize(std::forward<F>(synthesize));
    lock.Lock();
    inflight_.erase(key);
    inflight_cv_.NotifyAll();
    if (!result.ok()) return result;
    entries_[key] = *result;
    return result;
  }

  Stats stats() const SIA_EXCLUDES(mutex_);
  void Clear() SIA_EXCLUDES(mutex_);

 private:
  static std::string MakeKey(const ExprPtr& bound_predicate,
                             const std::vector<size_t>& cols);

  template <typename F>
  [[nodiscard]] static Result<Entry> RunSynthesize(F&& synthesize) {
    using R = std::decay_t<decltype(synthesize())>;
    try {
      if constexpr (std::is_same_v<R, Result<Entry>>) {
        return synthesize();
      } else {
        // Legacy callback: Result<SynthesisResult>. kFull when a
        // predicate was learned, kOriginal otherwise.
        auto result = synthesize();
        if (!result.ok()) return result.status();
        Entry entry;
        entry.status = result->status;
        entry.predicate = result->predicate;
        entry.rung = result->has_predicate() ? 0 : 3;
        return entry;
      }
    } catch (const std::exception& e) {
      return Status::Internal(std::string("synthesize() threw: ") + e.what());
    } catch (...) {
      return Status::Internal("synthesize() threw a non-std exception");
    }
  }

  // Leaf lock; never held across a synthesize() call (the single-flight
  // protocol releases it around the CEGIS run and retakes it to
  // publish), so a slow solver cannot serialize unrelated lookups.
  mutable Mutex mutex_;
  CondVar inflight_cv_;
  std::map<std::string, Entry> entries_ SIA_GUARDED_BY(mutex_);
  // keys with a synthesis in progress
  std::set<std::string> inflight_ SIA_GUARDED_BY(mutex_);
  size_t hits_ SIA_GUARDED_BY(mutex_) = 0;
  size_t misses_ SIA_GUARDED_BY(mutex_) = 0;
  size_t coalesced_ SIA_GUARDED_BY(mutex_) = 0;
};

}  // namespace sia

#endif  // SIA_REWRITE_REWRITE_CACHE_H_
