#ifndef SIA_REWRITE_REWRITE_CACHE_H_
#define SIA_REWRITE_REWRITE_CACHE_H_

#include <cstdint>
#include <exception>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "ir/expr.h"
#include "synth/synthesizer.h"

namespace sia {

// Lifecycle of a cache entry under the online learning loop (see
// DESIGN.md "Online learning loop" for the transition table):
//
//   (absent) --Decide miss--> kSynthesizing --CompleteSynthesis-->
//   kQuarantined --RecordShadow wins>=K--> kPromoted
//
// kSynthesizing   a background job owns the key; serve the original.
//                 AbortSynthesis (crash / drop / drain) erases the
//                 marker so the key is re-queueable, never wedged.
// kQuarantined    synthesized and paranoid-checkable, but not yet
//                 evidence-backed; serve the original, shadow-sample
//                 the rewrite to gather win/loss evidence.
// kPromoted       earned trust: serve the rewrite (still shadow-sampled
//                 for regression detection). Entries with a null
//                 predicate ("nothing to learn") promote immediately —
//                 the original IS the right answer.
// kDemoted        lost trust on measured regressions; serve the
//                 original until demote_ttl_ms passes, then the key is
//                 re-queued for a fresh synthesis.
//
// A shadow digest mismatch poisons the entry: the predicate is evicted
// and the entry is quarantined permanently (no TTL resurrection, never
// promoted again) — a wrong rewrite gets exactly zero more chances.
enum class EntryState {
  kSynthesizing = 0,
  kQuarantined,
  kPromoted,
  kDemoted,
};

const char* EntryStateName(EntryState state);

// Evidence thresholds for the promote/demote state machine. Carried by
// the caller (service/server flags --promote-after, --demote-after,
// --shadow-sample-rate) and passed into Decide/RecordShadow.
struct PromotionPolicy {
  // Shadow wins required to promote a quarantined entry.
  int promote_after = 3;
  // Shadow losses that demote (quarantined or promoted) an entry.
  int demote_after = 3;
  // Fraction of requests on shadow-eligible entries that run the
  // paranoid cross-check; sampling itself is the caller's job.
  double shadow_sample_rate = 0.1;
  // How long a demoted entry serves the original before the key is
  // re-queued for synthesis.
  int64_t demote_ttl_ms = 60000;
  // A shadow run is a win when
  //   rewritten_ms <= original_ms * win_factor + win_slack_ms.
  // The slack keeps sub-millisecond runtimes at small scale factors
  // from turning timer noise into losses.
  double win_factor = 1.25;
  double win_slack_ms = 2.0;
};

// What the serving path should do for one request, per Decide().
struct ServingDecision {
  bool serve_rewrite = false;  // conjoin `predicate` (kPromoted only)
  bool enqueue = false;        // caller should enqueue background synthesis
  bool shadow = false;         // caller should paranoid-run + RecordShadow
  EntryState state = EntryState::kSynthesizing;
  ExprPtr predicate;           // non-null when serve_rewrite or shadow
  int rung = 3;                // RewriteRung ordinal; 3 == kOriginal
};

// One shadow (paranoid cross-checked) execution's evidence.
struct ShadowOutcome {
  bool mismatch = false;        // digests disagreed: poison the entry
  bool rewrite_failed = false;  // rewritten side errored: counts as a loss
  double original_ms = 0;
  double rewritten_ms = 0;
};

// Cache of synthesis results keyed by (predicate, Cols') — the paper's
// §6.2 deployment mode: production queries are dominated by stored
// procedures that are "optimized only once and their query execution
// plans are stored in a plan cache", so the seconds-scale synthesis cost
// is paid once per distinct predicate shape.
//
// Keys canonicalize through the bound predicate's printed form, which is
// deterministic for structurally identical predicates. Thread-safe, with
// single-flight misses: when N batch-rewrite workers miss on the same
// key concurrently, exactly one runs synthesize() while the others block
// on the in-flight entry and are served its result — never N CEGIS runs
// for one key, and never a last-writer-wins insert race.
//
// Two serving modes share this store and must not be mixed on one cache
// instance:
//  * Synchronous (GetOrSynthesize): the ladder runs on the calling
//    thread; entries are inserted fully trusted (kPromoted) because the
//    caller conjoined the predicate it just synthesized and validated.
//  * Background (Decide / CompleteSynthesis / AbortSynthesis /
//    RecordShadow): the serving path never synthesizes; entries climb
//    the EntryState machine on measured evidence.
class RewriteCache {
 public:
  struct Entry {
    SynthesisStatus status = SynthesisStatus::kNone;
    ExprPtr predicate;  // null for kNone
    // Ordinal of the RewriteRung (rewrite/sia_rewriter.h) that produced
    // the entry; stored as an int because that enum lives above this
    // header in the layering. 3 == kOriginal (no rewrite).
    int rung = 3;
    // --- online learning loop state (background mode only) ---
    // Synchronous inserts default to kPromoted: the sync path trusts
    // the ladder it just ran, exactly as it did before states existed.
    EntryState state = EntryState::kPromoted;
    int wins = 0;
    int losses = 0;
    int shadow_runs = 0;
    // A shadow digest mismatch happened: the predicate was evicted and
    // this entry can never be promoted or re-queued again.
    bool poisoned = false;
    int64_t demoted_at_ms = 0;  // stamp for the kDemoted TTL
    // Trace ID of the request whose miss created this entry (0 when
    // untraced or sync-inserted). RecordShadow reinstalls it so the
    // promotion decision lands in the same exported trace as the
    // admission span and background synthesis job that led to it.
    uint64_t origin_trace_id = 0;
  };

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    // Callers that found another thread's synthesis of their key in
    // flight, blocked on it, and were served its result without running
    // their own (each such wait also counts as a hit once served).
    size_t coalesced = 0;
    // Per-state entry counts (background mode).
    size_t synthesizing = 0;
    size_t quarantined = 0;
    size_t promoted = 0;
    size_t demoted = 0;
    size_t poisoned = 0;
  };

  // Returns the cached entry, or nullopt on miss. Does not wait for
  // in-flight synthesis; use GetOrSynthesize for single-flight reads.
  std::optional<Entry> Lookup(const ExprPtr& bound_predicate,
                              const std::vector<size_t>& cols)
      SIA_EXCLUDES(mutex_);

  // Records a synthesis result.
  void Insert(const ExprPtr& bound_predicate,
              const std::vector<size_t>& cols, Entry entry)
      SIA_EXCLUDES(mutex_);

  // --- Background (online learning) mode -------------------------------

  // One serving-path consultation; never blocks on synthesis. On a miss
  // (or an expired kDemoted TTL) it inserts a kSynthesizing marker and
  // asks the caller to enqueue a background job — the marker is what
  // dedups concurrent misses: exactly one caller sees enqueue == true
  // per key. `shadow_sampled` is the caller's coin flip; Decide turns it
  // into shadow == true only for entries that can use evidence.
  // `now_ms` is any monotonic millisecond clock (injected for TTL
  // testability).
  ServingDecision Decide(const ExprPtr& bound_predicate,
                         const std::vector<size_t>& cols,
                         const PromotionPolicy& policy, bool shadow_sampled,
                         int64_t now_ms) SIA_EXCLUDES(mutex_);

  // Publishes a finished background synthesis: kSynthesizing →
  // kQuarantined (entries with a learned predicate) or kPromoted
  // (nothing to learn — serving the original is the verified answer).
  // Any other current state is an illegal transition and returns
  // kInvalidArgument; a vanished marker returns kNotFound (the job was
  // aborted or the cache cleared while it ran).
  [[nodiscard]] Status CompleteSynthesis(const ExprPtr& bound_predicate,
                                         const std::vector<size_t>& cols,
                                         Entry entry) SIA_EXCLUDES(mutex_);

  // Releases a kSynthesizing marker without publishing — the crashed /
  // dropped / drained background job path. The key becomes re-queueable
  // (the next Decide miss enqueues again); entries in any other state
  // are left untouched.
  void AbortSynthesis(const ExprPtr& bound_predicate,
                      const std::vector<size_t>& cols) SIA_EXCLUDES(mutex_);

  // Folds one shadow execution's evidence into the entry and returns the
  // resulting state. Promotion: a quarantined, unpoisoned entry reaching
  // policy.promote_after wins. Demotion: policy.demote_after losses
  // (stamped with now_ms for the TTL). A digest mismatch poisons the
  // entry permanently and evicts its predicate. Recording against a
  // missing entry returns kNotFound; against a kSynthesizing marker,
  // kInvalidArgument (there is no predicate to have shadowed).
  [[nodiscard]] Result<EntryState> RecordShadow(
      const ExprPtr& bound_predicate, const std::vector<size_t>& cols,
      const ShadowOutcome& outcome, const PromotionPolicy& policy,
      int64_t now_ms) SIA_EXCLUDES(mutex_);

  // Looks up, and on a miss runs `synthesize()` — at most once per key
  // across all concurrent callers — and caches its result. `synthesize`
  // returns either Result<Entry> or (legacy form) Result<SynthesisResult>.
  //
  // Concurrency: the first thread to miss on a key becomes its leader
  // and synthesizes outside the lock; later arrivals block until the
  // leader publishes, then return its entry. A failed synthesis is NOT
  // cached — the leader returns the error and one waiter takes over as
  // the new leader, so a transient solver failure does not poison the
  // key. A synthesize() that throws is mapped to kInternal (leaking the
  // exception would strand the waiters).
  template <typename F>
  [[nodiscard]] Result<Entry> GetOrSynthesize(const ExprPtr& bound_predicate,
                                const std::vector<size_t>& cols,
                                F&& synthesize) SIA_EXCLUDES(mutex_) {
    const std::string key = MakeKey(bound_predicate, cols);
    MutexLock lock(&mutex_);
    for (;;) {
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        return it->second;
      }
      if (inflight_.insert(key).second) break;  // we lead; synthesize below
      ++coalesced_;
      // Wait for the leader, then re-check from the top: entry present
      // means the leader published (count it a hit); entry absent means
      // the leader failed and this thread may take over.
      while (inflight_.contains(key)) inflight_cv_.Wait(&mutex_);
    }
    ++misses_;
    lock.Unlock();
    Result<Entry> result = RunSynthesize(std::forward<F>(synthesize));
    lock.Lock();
    inflight_.erase(key);
    inflight_cv_.NotifyAll();
    if (!result.ok()) return result;
    entries_[key] = *result;
    return result;
  }

  Stats stats() const SIA_EXCLUDES(mutex_);
  void Clear() SIA_EXCLUDES(mutex_);

  // One entry's observable lifecycle state, for OBSERVE / sia_top.
  struct EntryInfo {
    std::string key;  // MakeKey's canonical form
    EntryState state = EntryState::kSynthesizing;
    int rung = 3;
    int wins = 0;
    int losses = 0;
    int shadow_runs = 0;
    bool poisoned = false;
  };

  // Snapshot of every entry's state, sorted by key (map order). Intended
  // for polling introspection, not the serving path.
  std::vector<EntryInfo> EntryInfos() const SIA_EXCLUDES(mutex_);

 private:
  static std::string MakeKey(const ExprPtr& bound_predicate,
                             const std::vector<size_t>& cols);

  template <typename F>
  [[nodiscard]] static Result<Entry> RunSynthesize(F&& synthesize) {
    using R = std::decay_t<decltype(synthesize())>;
    try {
      if constexpr (std::is_same_v<R, Result<Entry>>) {
        return synthesize();
      } else {
        // Legacy callback: Result<SynthesisResult>. kFull when a
        // predicate was learned, kOriginal otherwise.
        auto result = synthesize();
        if (!result.ok()) return result.status();
        Entry entry;
        entry.status = result->status;
        entry.predicate = result->predicate;
        entry.rung = result->has_predicate() ? 0 : 3;
        return entry;
      }
    } catch (const std::exception& e) {
      return Status::Internal(std::string("synthesize() threw: ") + e.what());
    } catch (...) {
      return Status::Internal("synthesize() threw a non-std exception");
    }
  }

  // Leaf lock; never held across a synthesize() call (the single-flight
  // protocol releases it around the CEGIS run and retakes it to
  // publish), so a slow solver cannot serialize unrelated lookups. The
  // obs registry lock may be taken under it (promotion counters).
  mutable Mutex mutex_;
  CondVar inflight_cv_;
  std::map<std::string, Entry> entries_ SIA_GUARDED_BY(mutex_);
  // keys with a synthesis in progress
  std::set<std::string> inflight_ SIA_GUARDED_BY(mutex_);
  size_t hits_ SIA_GUARDED_BY(mutex_) = 0;
  size_t misses_ SIA_GUARDED_BY(mutex_) = 0;
  size_t coalesced_ SIA_GUARDED_BY(mutex_) = 0;
};

}  // namespace sia

#endif  // SIA_REWRITE_REWRITE_CACHE_H_
