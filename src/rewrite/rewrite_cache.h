#ifndef SIA_REWRITE_REWRITE_CACHE_H_
#define SIA_REWRITE_REWRITE_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "synth/synthesizer.h"

namespace sia {

// Cache of synthesis results keyed by (predicate, Cols') — the paper's
// §6.2 deployment mode: production queries are dominated by stored
// procedures that are "optimized only once and their query execution
// plans are stored in a plan cache", so the seconds-scale synthesis cost
// is paid once per distinct predicate shape.
//
// Keys canonicalize through the bound predicate's printed form, which is
// deterministic for structurally identical predicates. Thread-safe.
class RewriteCache {
 public:
  struct Entry {
    SynthesisStatus status = SynthesisStatus::kNone;
    ExprPtr predicate;  // null for kNone
  };

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
  };

  // Returns the cached entry, or nullopt on miss.
  std::optional<Entry> Lookup(const ExprPtr& bound_predicate,
                              const std::vector<size_t>& cols);

  // Records a synthesis result.
  void Insert(const ExprPtr& bound_predicate,
              const std::vector<size_t>& cols, Entry entry);

  // Looks up, and on a miss runs `synthesize()` and caches its result.
  // `synthesize` must return a Result<SynthesisResult>.
  template <typename F>
  Result<Entry> GetOrSynthesize(const ExprPtr& bound_predicate,
                                const std::vector<size_t>& cols,
                                F&& synthesize) {
    if (auto hit = Lookup(bound_predicate, cols)) return *hit;
    auto result = synthesize();
    if (!result.ok()) return result.status();
    Entry entry;
    entry.status = result->status;
    entry.predicate = result->predicate;
    Insert(bound_predicate, cols, entry);
    return entry;
  }

  Stats stats() const;
  void Clear();

 private:
  static std::string MakeKey(const ExprPtr& bound_predicate,
                             const std::vector<size_t>& cols);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace sia

#endif  // SIA_REWRITE_REWRITE_CACHE_H_
