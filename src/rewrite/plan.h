#ifndef SIA_REWRITE_PLAN_H_
#define SIA_REWRITE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "types/schema.h"

namespace sia {

// Logical relational-algebra plan. Expressions inside a node are bound
// against the node's INPUT schema (the concatenation of child output
// schemas, left-to-right); `output_schema` describes what the node emits.
enum class PlanKind {
  kScan,       // table scan, optional residual filter pushed into it
  kFilter,     // predicate over child output
  kJoin,       // inner join with a predicate over concat(child outputs)
  kAggregate,  // GROUP BY columns with COUNT(*)
  kProject,    // column subset
};

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

class PlanNode {
 public:
  static PlanPtr Scan(std::string table, Schema schema,
                      ExprPtr filter = nullptr);
  static PlanPtr Filter(ExprPtr predicate, PlanPtr child);
  static PlanPtr Join(ExprPtr condition, PlanPtr left, PlanPtr right);
  static PlanPtr Aggregate(std::vector<size_t> group_by_cols, PlanPtr child);
  static PlanPtr Project(std::vector<size_t> columns, PlanPtr child);

  PlanKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::string& table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<size_t>& columns() const { return columns_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i = 0) const { return children_[i]; }

  // Multi-line indented rendering for tests and EXPLAIN-style output.
  std::string ToString() const;

 private:
  PlanNode() = default;
  void AppendTo(std::string* out, int indent) const;

  PlanKind kind_ = PlanKind::kScan;
  Schema output_schema_;
  std::string table_;
  ExprPtr predicate_;             // filter / join condition / scan filter
  std::vector<size_t> columns_;   // aggregate group-by or project columns
  std::vector<PlanPtr> children_;
};

}  // namespace sia

#endif  // SIA_REWRITE_PLAN_H_
