#include "rewrite/sia_rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "check/expr_validator.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rewrite/rewrite_cache.h"
#include "synth/interval_synthesizer.h"

namespace sia {

const char* RewriteRungName(RewriteRung rung) {
  switch (rung) {
    case RewriteRung::kFull:
      return "full";
    case RewriteRung::kRetry:
      return "retry";
    case RewriteRung::kInterval:
      return "interval";
    case RewriteRung::kOriginal:
      return "original";
  }
  return "?";
}

namespace {

// Columns that only ever appear in cross-table `col = col` equalities
// (join keys). Learning over them is useless — for any key value the
// other side can match — and the extra dimension degrades the SVM, so
// the default Cols' excludes them.
std::set<size_t> JoinKeyOnlyColumns(const ExprPtr& bound,
                                    const Schema& joint) {
  std::map<size_t, bool> only_in_join_eq;  // col -> true while join-only
  for (const ExprPtr& c : SplitConjuncts(bound)) {
    const bool is_join_eq =
        c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumnRef &&
        c->right()->kind() == ExprKind::kColumnRef &&
        c->left()->is_bound() && c->right()->is_bound() &&
        joint.column(c->left()->index()).table !=
            joint.column(c->right()->index()).table;
    for (const size_t col : CollectColumnIndices(c)) {
      auto [it, inserted] = only_in_join_eq.try_emplace(col, is_join_eq);
      if (!is_join_eq) it->second = false;
    }
  }
  std::set<size_t> out;
  for (const auto& [col, join_only] : only_in_join_eq) {
    if (join_only) out.insert(col);
  }
  return out;
}

// Failure categories the degradation ladder absorbs (the next rung runs
// instead of the error propagating). Anything else — kInvalidArgument,
// kParseError, kTypeError, ... — indicates malformed input or a caller
// bug and must surface.
bool IsDegradable(const Status& st) {
  return st.code() == StatusCode::kTimeout ||
         st.code() == StatusCode::kSolverError ||
         st.code() == StatusCode::kInternal;
}

// The synthesized predicate enters the plan as a trusted, provably
// implied conjunct — re-validate it before conjoining: it must be a
// well-formed bound boolean over the joint schema, in the CNF shape
// Alg. 2 claims (a conjunction of halfplane disjunctions). A failure
// here costs the predicate (degradation), never the query.
Status ValidateLearned(const ExprPtr& learned, const Schema& joint) {
  SIA_RETURN_IF_ERROR(
      CheckBoundPredicate(learned, joint, "learned predicate"));
  Diagnostics cnf;
  ValidateCnf(learned, &cnf);
  return cnf.ToStatus("learned predicate CNF");
}

// The ladder itself; the public RewriteQuery wraps this with the
// rewrite.query span, latency histogram, and per-rung counters.
Result<RewriteOutcome> RewriteQueryImpl(const ParsedQuery& query,
                                        const Catalog& catalog,
                                        const RewriteOptions& options) {
  RewriteOutcome outcome;
  outcome.rewritten = query;

  SIA_ASSIGN_OR_RETURN(RewriteKey key, MakeRewriteKey(query, catalog, options));
  if (!key.synthesizable) {
    return outcome;  // nothing to synthesize from; serve the original
  }
  const ExprPtr& bound = key.bound;
  const Schema& joint = key.joint;
  const std::vector<size_t>& cols = key.cols;

  // Folds a finished ladder run into the outcome.
  auto adopt_run = [&](LadderRun run) {
    outcome.synthesis = std::move(run.synthesis);
    outcome.learned = run.learned;
    outcome.rung = run.rung;
    outcome.degradation = std::move(run.degradation);
    if (outcome.learned != nullptr) {
      outcome.rewritten.where =
          Expr::Logic(LogicOp::kAnd, query.where, outcome.learned);
    }
  };

  // The degradation ladder, filling `outcome` as it goes and returning
  // the cacheable entry. Runs directly, or as the single-flight miss
  // callback when options.cache is set.
  auto run_ladder = [&]() -> Result<RewriteCache::Entry> {
    SIA_ASSIGN_OR_RETURN(LadderRun run,
                         RunSynthesisLadder(bound, joint, cols, options));
    adopt_run(std::move(run));
    RewriteCache::Entry entry;
    entry.status = outcome.synthesis.status;
    entry.predicate = outcome.learned;
    entry.rung = static_cast<int>(outcome.rung);
    return entry;
  };

  if (options.cache != nullptr) {
    bool ran_here = false;
    auto cached = options.cache->GetOrSynthesize(bound, cols, [&]() {
      ran_here = true;
      return run_ladder();
    });
    if (!cached.ok()) return cached.status();
    if (!ran_here) {
      // Served from the cache (possibly after waiting out another
      // thread's in-flight synthesis): rebuild the outcome from the
      // entry. The learned predicate is bound against the joint schema
      // of (bound WHERE, Cols') — the cache key — so it conjoins here
      // exactly as it did in the call that synthesized it.
      SIA_COUNTER_INC("rewrite.cache.hit");
      outcome.from_cache = true;
      outcome.rung = static_cast<RewriteRung>(cached->rung);
      outcome.synthesis.status = cached->status;
      outcome.synthesis.predicate = cached->predicate;
      outcome.learned = cached->predicate;
      if (outcome.learned != nullptr) {
        outcome.rewritten.where =
            Expr::Logic(LogicOp::kAnd, query.where, outcome.learned);
      }
    } else {
      SIA_COUNTER_INC("rewrite.cache.miss");
    }
    return outcome;
  }

  auto ladder = run_ladder();
  if (!ladder.ok()) return ladder.status();
  return outcome;
}

}  // namespace

Result<RewriteKey> MakeRewriteKey(const ParsedQuery& query,
                                  const Catalog& catalog,
                                  const RewriteOptions& options) {
  RewriteKey key;

  if (query.where == nullptr) {
    return key;  // nothing to synthesize from
  }
  const bool has_target =
      std::any_of(query.tables.begin(), query.tables.end(),
                  [&](const std::string& t) {
                    return EqualsIgnoreCase(t, options.target_table);
                  });
  if (!has_target) {
    return Status::InvalidArgument("target table '" + options.target_table +
                                   "' is not in the query's FROM list");
  }

  SIA_ASSIGN_OR_RETURN(key.joint, catalog.JointSchema(query.tables));
  SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(query.where, key.joint));
  SIA_RETURN_IF_ERROR(
      CheckBoundPredicate(bound, key.joint, "bound WHERE clause"));

  // Determine Cols': explicit list, or every referenced target column.
  std::vector<size_t> cols;
  if (!options.target_columns.empty()) {
    for (const std::string& name : options.target_columns) {
      const auto idx = key.joint.FindColumn(name);
      if (!idx.has_value()) {
        return Status::NotFound("target column not found: '" + name + "'");
      }
      cols.push_back(*idx);
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  } else {
    const std::set<size_t> join_keys = JoinKeyOnlyColumns(bound, key.joint);
    for (const size_t c : CollectColumnIndices(bound)) {
      if (EqualsIgnoreCase(key.joint.column(c).table, options.target_table) &&
          !join_keys.contains(c)) {
        cols.push_back(c);
      }
    }
  }
  if (cols.empty()) {
    return key;  // predicate does not touch the target table
  }

  // The predicate must actually constrain columns beyond Cols' for the
  // reduction to be interesting; if it already only uses Cols', the
  // pushdown rule applies as-is and Sia has nothing to add.
  const std::vector<size_t> used = CollectColumnIndices(bound);
  if (used.size() == cols.size()) {
    return key;
  }

  key.bound = std::move(bound);
  key.cols = std::move(cols);
  key.synthesizable = true;
  return key;
}

Result<LadderRun> RunSynthesisLadder(const ExprPtr& bound, const Schema& joint,
                                     const std::vector<size_t>& cols,
                                     const RewriteOptions& options) {
  LadderRun run;

  SynthesisOptions base_opts = options.synthesis;
  base_opts.deadline = Deadline::Earlier(base_opts.deadline, options.deadline);

  // Adopts a validated predicate as the final run.
  auto adopt = [&](SynthesisResult synth, RewriteRung rung) {
    run.synthesis = std::move(synth);
    run.learned = run.synthesis.predicate;
    run.rung = rung;
  };

  // --- Rungs 1-2: CEGIS synthesis, then a reseeded retry with halved
  // budgets ---
  struct RungPlan {
    RewriteRung rung;
    SynthesisOptions opts;
  };
  std::vector<RungPlan> plans;
  plans.push_back({RewriteRung::kFull, base_opts});
  if (options.enable_retry) {
    SynthesisOptions retry = base_opts;
    // A different solver seed explores a different sample trajectory;
    // halved per-call caps and iteration count keep the retry from
    // doubling the worst-case latency.
    retry.samples.random_seed = base_opts.samples.random_seed + 0x9e37;
    retry.samples.solver_timeout_ms =
        std::max<uint32_t>(1, base_opts.samples.solver_timeout_ms / 2);
    retry.verify.solver_timeout_ms =
        std::max<uint32_t>(1, base_opts.verify.solver_timeout_ms / 2);
    retry.max_iterations = std::max(1, base_opts.max_iterations / 2);
    plans.push_back({RewriteRung::kRetry, retry});
  }

  for (const RungPlan& plan : plans) {
    if (plan.rung != RewriteRung::kFull && base_opts.deadline.expired()) {
      SIA_COUNTER_INC("rewrite.degraded.rung_skipped_deadline");
      run.degradation.push_back(std::string(RewriteRungName(plan.rung)) +
                                " rung skipped: deadline exhausted");
      break;
    }
    obs::TraceSpan rung_span(plan.rung == RewriteRung::kFull
                                 ? "rewrite.rung.full"
                                 : "rewrite.rung.retry");
    auto synth = Synthesize(bound, joint, cols, plan.opts);
    if (!synth.ok()) {
      if (!IsDegradable(synth.status())) return synth.status();
      SIA_COUNTER_INC("rewrite.degraded.synthesis_failed");
      run.degradation.push_back(std::string(RewriteRungName(plan.rung)) +
                                " synthesis failed: " +
                                synth.status().ToString());
      continue;
    }
    if (synth->has_predicate()) {
      const Status valid = ValidateLearned(synth->predicate, joint);
      if (!valid.ok()) {
        SIA_COUNTER_INC("rewrite.degraded.predicate_discarded");
        run.degradation.push_back(std::string(RewriteRungName(plan.rung)) +
                                  " predicate discarded: " + valid.ToString());
        continue;
      }
      adopt(std::move(*synth), plan.rung);
      return run;
    }
    if (!synth->solver_gave_up && !synth->deadline_expired) {
      // Legitimate kNone: the query is not symbolically relevant. No
      // lower rung can do better, so this is not a degradation — keep
      // the original plan and stop.
      run.synthesis = std::move(*synth);
      return run;
    }
    SIA_COUNTER_INC("rewrite.degraded.gave_up");
    run.degradation.push_back(
        std::string(RewriteRungName(plan.rung)) + " synthesis gave up" +
        (synth->deadline_expired
             ? " (deadline expired in '" + synth->timeout_stage + "')"
             : ""));
    run.synthesis = std::move(*synth);  // keep the richest record
  }

  // --- Rung 3: exact single-column interval synthesis. Much cheaper
  // than the learning loop (two OMT queries per column) and immune to
  // SVM/learner faults, at the cost of single-column box predicates. ---
  if (options.enable_interval_fallback) {
    SIA_TRACE_SPAN("rewrite.rung.interval");
    for (const size_t c : cols) {
      if (base_opts.deadline.expired()) {
        SIA_COUNTER_INC("rewrite.degraded.rung_skipped_deadline");
        run.degradation.push_back("interval rung skipped: deadline exhausted");
        break;
      }
      const DataType type = joint.column(c).type;
      if (!IsIntegral(type) || type == DataType::kBoolean) continue;
      IntervalOptions iopts;
      iopts.solver_timeout_ms = base_opts.samples.solver_timeout_ms;
      iopts.deadline = base_opts.deadline;
      auto iv = SynthesizeInterval(bound, joint, c, iopts);
      if (!iv.ok()) {
        if (!IsDegradable(iv.status())) return iv.status();
        SIA_COUNTER_INC("rewrite.degraded.interval_failed");
        run.degradation.push_back(
            "interval synthesis on '" + joint.column(c).QualifiedName() +
            "' failed: " + iv.status().ToString());
        continue;
      }
      if (!iv->has_predicate()) continue;
      const Status valid = ValidateLearned(iv->predicate, joint);
      if (!valid.ok()) {
        SIA_COUNTER_INC("rewrite.degraded.interval_discarded");
        run.degradation.push_back(
            "interval predicate on '" + joint.column(c).QualifiedName() +
            "' discarded: " + valid.ToString());
        continue;
      }
      adopt(std::move(*iv), RewriteRung::kInterval);
      return run;
    }
  }

  // --- Rung 4: every rung failed — run the original query unchanged.
  // run.rung stays kOriginal and `degradation` says why. ---
  return run;
}

Result<RewriteOutcome> RewriteQuery(const ParsedQuery& query,
                                    const Catalog& catalog,
                                    const RewriteOptions& options) {
  SIA_TRACE_SPAN("rewrite.query");
  SIA_COUNTER_INC("rewrite.queries");
  Stopwatch timer;
  Result<RewriteOutcome> outcome = RewriteQueryImpl(query, catalog, options);
  SIA_HISTOGRAM_RECORD("rewrite.query_ms", timer.ElapsedMillis());
  if (!outcome.ok()) {
    SIA_COUNTER_INC("rewrite.errors");
    return outcome;
  }
  if (obs::MetricsRegistry::Enabled()) {
    obs::IncrementCounter(std::string("rewrite.rung.") +
                          RewriteRungName(outcome->rung));
    if (outcome->changed()) obs::IncrementCounter("rewrite.changed");
    obs::IncrementCounter("rewrite.degradation_steps",
                          outcome->degradation.size());
  }
  return outcome;
}

Result<RewriteOutcome> RewriteQuery(const std::string& sql,
                                    const Catalog& catalog,
                                    const RewriteOptions& options) {
  SIA_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(sql));
  return RewriteQuery(q, catalog, options);
}

}  // namespace sia
