#include "rewrite/sia_rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "check/expr_validator.h"
#include "common/strings.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "parser/parser.h"

namespace sia {

namespace {

// Columns that only ever appear in cross-table `col = col` equalities
// (join keys). Learning over them is useless — for any key value the
// other side can match — and the extra dimension degrades the SVM, so
// the default Cols' excludes them.
std::set<size_t> JoinKeyOnlyColumns(const ExprPtr& bound,
                                    const Schema& joint) {
  std::map<size_t, bool> only_in_join_eq;  // col -> true while join-only
  for (const ExprPtr& c : SplitConjuncts(bound)) {
    const bool is_join_eq =
        c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumnRef &&
        c->right()->kind() == ExprKind::kColumnRef &&
        c->left()->is_bound() && c->right()->is_bound() &&
        joint.column(c->left()->index()).table !=
            joint.column(c->right()->index()).table;
    for (const size_t col : CollectColumnIndices(c)) {
      auto [it, inserted] = only_in_join_eq.try_emplace(col, is_join_eq);
      if (!is_join_eq) it->second = false;
    }
  }
  std::set<size_t> out;
  for (const auto& [col, join_only] : only_in_join_eq) {
    if (join_only) out.insert(col);
  }
  return out;
}

}  // namespace

Result<RewriteOutcome> RewriteQuery(const ParsedQuery& query,
                                    const Catalog& catalog,
                                    const RewriteOptions& options) {
  RewriteOutcome outcome;
  outcome.rewritten = query;

  if (query.where == nullptr) {
    return outcome;  // nothing to synthesize from
  }
  const bool has_target =
      std::any_of(query.tables.begin(), query.tables.end(),
                  [&](const std::string& t) {
                    return EqualsIgnoreCase(t, options.target_table);
                  });
  if (!has_target) {
    return Status::InvalidArgument("target table '" + options.target_table +
                                   "' is not in the query's FROM list");
  }

  SIA_ASSIGN_OR_RETURN(Schema joint, catalog.JointSchema(query.tables));
  SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(query.where, joint));
  SIA_RETURN_IF_ERROR(
      CheckBoundPredicate(bound, joint, "bound WHERE clause"));

  // Determine Cols': explicit list, or every referenced target column.
  std::vector<size_t> cols;
  if (!options.target_columns.empty()) {
    for (const std::string& name : options.target_columns) {
      const auto idx = joint.FindColumn(name);
      if (!idx.has_value()) {
        return Status::NotFound("target column not found: '" + name + "'");
      }
      cols.push_back(*idx);
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  } else {
    const std::set<size_t> join_keys = JoinKeyOnlyColumns(bound, joint);
    for (const size_t c : CollectColumnIndices(bound)) {
      if (EqualsIgnoreCase(joint.column(c).table, options.target_table) &&
          !join_keys.contains(c)) {
        cols.push_back(c);
      }
    }
  }
  if (cols.empty()) {
    return outcome;  // predicate does not touch the target table
  }

  // The predicate must actually constrain columns beyond Cols' for the
  // reduction to be interesting; if it already only uses Cols', the
  // pushdown rule applies as-is and Sia has nothing to add.
  const std::vector<size_t> used = CollectColumnIndices(bound);
  if (used.size() == cols.size()) {
    return outcome;
  }

  SIA_ASSIGN_OR_RETURN(SynthesisResult synth,
                       Synthesize(bound, joint, cols, options.synthesis));
  outcome.synthesis = std::move(synth);
  if (!outcome.synthesis.has_predicate()) {
    return outcome;
  }

  outcome.learned = outcome.synthesis.predicate;
  // The synthesized predicate enters the plan as a trusted, provably
  // implied conjunct — re-validate it before conjoining: it must be a
  // well-formed bound boolean over the joint schema, in the CNF shape
  // Alg. 2 claims (a conjunction of halfplane disjunctions).
  SIA_RETURN_IF_ERROR(
      CheckBoundPredicate(outcome.learned, joint, "learned predicate"));
  {
    Diagnostics cnf;
    ValidateCnf(outcome.learned, &cnf);
    SIA_RETURN_IF_ERROR(cnf.ToStatus("learned predicate CNF"));
  }
  outcome.rewritten.where = Expr::Logic(LogicOp::kAnd, query.where,
                                        outcome.learned);
  return outcome;
}

Result<RewriteOutcome> RewriteQuery(const std::string& sql,
                                    const Catalog& catalog,
                                    const RewriteOptions& options) {
  SIA_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(sql));
  return RewriteQuery(q, catalog, options);
}

}  // namespace sia
