#include "rewrite/planner.h"

#include <algorithm>

#include "check/plan_validator.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

namespace {

// Column-index interval [begin, end) that table position `t` occupies in
// the joint schema.
struct TableSpan {
  size_t begin = 0;
  size_t end = 0;
};

bool AllWithin(const std::vector<size_t>& cols, size_t begin, size_t end) {
  return std::all_of(cols.begin(), cols.end(), [&](size_t c) {
    return c >= begin && c < end;
  });
}

}  // namespace

Result<PlanPtr> PlanQuery(const ParsedQuery& query, const Catalog& catalog,
                          const PlannerOptions& options) {
  SIA_TRACE_SPAN("plan.query");
  SIA_COUNTER_INC("plan.queries");
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no FROM tables");
  }

  // Joint schema and per-table spans.
  SIA_ASSIGN_OR_RETURN(Schema joint, catalog.JointSchema(query.tables));
  std::vector<TableSpan> spans(query.tables.size());
  std::vector<Schema> table_schemas;
  {
    size_t offset = 0;
    for (size_t t = 0; t < query.tables.size(); ++t) {
      SIA_ASSIGN_OR_RETURN(Schema s, catalog.GetTable(query.tables[t]));
      spans[t].begin = offset;
      offset += s.size();
      spans[t].end = offset;
      table_schemas.push_back(std::move(s));
    }
  }

  // Bind and split the WHERE clause.
  std::vector<ExprPtr> conjuncts;
  if (query.where != nullptr) {
    SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(query.where, joint));
    conjuncts = SplitConjuncts(bound);
  }

  // Partition conjuncts: per-scan, per-join-level, residual.
  std::vector<std::vector<ExprPtr>> scan_filters(query.tables.size());
  // join_level[k] collects conjuncts evaluable once tables 0..k+1 are
  // joined (k = index of the join in the left-deep chain).
  std::vector<std::vector<ExprPtr>> join_level(
      query.tables.size() > 0 ? query.tables.size() - 1 : 0);
  std::vector<ExprPtr> residual;

  for (const ExprPtr& c : conjuncts) {
    const std::vector<size_t> used = CollectColumnIndices(c);
    bool placed = false;
    if (options.push_down_filters) {
      for (size_t t = 0; t < spans.size(); ++t) {
        if (AllWithin(used, spans[t].begin, spans[t].end)) {
          scan_filters[t].push_back(c);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      // Lowest join level whose joint prefix covers the columns.
      for (size_t k = 0; k + 1 < spans.size(); ++k) {
        if (AllWithin(used, 0, spans[k + 1].end)) {
          join_level[k].push_back(c);
          placed = true;
          break;
        }
      }
    }
    if (!placed) residual.push_back(c);
  }

  // Build scans (scan filters are rebased to table-local indices).
  std::vector<PlanPtr> scans;
  for (size_t t = 0; t < query.tables.size(); ++t) {
    ExprPtr filter;
    if (!scan_filters[t].empty()) {
      std::vector<std::pair<size_t, size_t>> remap;
      for (size_t i = spans[t].begin; i < spans[t].end; ++i) {
        remap.emplace_back(i, i - spans[t].begin);
      }
      std::vector<ExprPtr> local;
      local.reserve(scan_filters[t].size());
      for (const ExprPtr& f : scan_filters[t]) {
        local.push_back(RemapColumnIndices(f, remap));
      }
      filter = CombineConjuncts(local);
    }
    scans.push_back(PlanNode::Scan(query.tables[t], table_schemas[t],
                                   std::move(filter)));
  }

  // Left-deep join chain; join-level conjuncts become the join
  // conditions (the executor splits out hash keys itself).
  PlanPtr plan = scans[0];
  for (size_t k = 0; k + 1 < scans.size(); ++k) {
    ExprPtr cond = join_level[k].empty() ? nullptr
                                         : CombineConjuncts(join_level[k]);
    plan = PlanNode::Join(std::move(cond), plan, scans[k + 1]);
  }

  if (!residual.empty()) {
    plan = PlanNode::Filter(CombineConjuncts(residual), plan);
  }

  if (!query.group_by.empty()) {
    std::vector<size_t> group_cols;
    for (const ExprPtr& g : query.group_by) {
      SIA_ASSIGN_OR_RETURN(ExprPtr bound, Bind(g, joint));
      if (bound->kind() != ExprKind::kColumnRef) {
        return Status::Unsupported("GROUP BY supports plain columns only");
      }
      group_cols.push_back(bound->index());
    }
    plan = PlanNode::Aggregate(std::move(group_cols), std::move(plan));
  }

  // Planner output is the contract every downstream consumer (movement
  // rules, executor) builds on; validate it against the catalog before it
  // leaves this seam.
  SIA_RETURN_IF_ERROR(CheckPlan(plan, "planned query", &catalog));
  return plan;
}

}  // namespace sia
