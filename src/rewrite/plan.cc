#include "rewrite/plan.h"

namespace sia {

PlanPtr PlanNode::Scan(std::string table, Schema schema, ExprPtr filter) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kScan;
  n->table_ = std::move(table);
  n->output_schema_ = std::move(schema);
  n->predicate_ = std::move(filter);
  return n;
}

PlanPtr PlanNode::Filter(ExprPtr predicate, PlanPtr child) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kFilter;
  n->output_schema_ = child->output_schema();
  n->predicate_ = std::move(predicate);
  n->children_ = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Join(ExprPtr condition, PlanPtr left, PlanPtr right) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kJoin;
  n->output_schema_ =
      Schema::Concat(left->output_schema(), right->output_schema());
  n->predicate_ = std::move(condition);
  n->children_ = {std::move(left), std::move(right)};
  return n;
}

PlanPtr PlanNode::Aggregate(std::vector<size_t> group_by_cols,
                            PlanPtr child) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kAggregate;
  Schema out;
  for (const size_t c : group_by_cols) {
    // Out-of-range columns get a placeholder slot instead of undefined
    // behavior; the plan validator reports them as plan.column-out-of-range.
    if (c < child->output_schema().size()) {
      out.AddColumn(child->output_schema().column(c));
    } else {
      out.AddColumn(ColumnDef{"", "<invalid>", DataType::kInteger, false});
    }
  }
  out.AddColumn(ColumnDef{"", "count", DataType::kInteger, false});
  n->output_schema_ = std::move(out);
  n->columns_ = std::move(group_by_cols);
  n->children_ = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Project(std::vector<size_t> columns, PlanPtr child) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kProject;
  Schema out;
  for (const size_t c : columns) {
    if (c < child->output_schema().size()) {
      out.AddColumn(child->output_schema().column(c));
    } else {
      out.AddColumn(ColumnDef{"", "<invalid>", DataType::kInteger, false});
    }
  }
  n->output_schema_ = std::move(out);
  n->columns_ = std::move(columns);
  n->children_ = {std::move(child)};
  return n;
}

void PlanNode::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (kind_) {
    case PlanKind::kScan:
      *out += "Scan(" + table_;
      if (predicate_ != nullptr) {
        *out += ", filter=" + predicate_->ToString();
      }
      *out += ")";
      break;
    case PlanKind::kFilter:
      *out += "Filter(" + predicate_->ToString() + ")";
      break;
    case PlanKind::kJoin:
      *out += "Join(" +
              (predicate_ ? predicate_->ToString() : std::string("TRUE")) +
              ")";
      break;
    case PlanKind::kAggregate: {
      *out += "Aggregate(group_by=[";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += std::to_string(columns_[i]);
      }
      *out += "])";
      break;
    }
    case PlanKind::kProject: {
      *out += "Project([";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += std::to_string(columns_[i]);
      }
      *out += "])";
      break;
    }
  }
  *out += "\n";
  for (const PlanPtr& c : children_) c->AppendTo(out, indent + 1);
}

std::string PlanNode::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

}  // namespace sia
