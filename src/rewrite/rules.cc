#include "rewrite/rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "check/plan_validator.h"
#include "ir/analysis.h"
#include "ir/simplify.h"

namespace sia {

namespace {

// A normalized inequality edge: lhs (< | <=) rhs.
struct Edge {
  ExprPtr lhs;
  ExprPtr rhs;
  bool strict = false;
};

// Normalizes a comparison conjunct to `lhs < rhs` / `lhs <= rhs` edges.
// Equalities contribute an edge in both directions; <> contributes none.
void NormalizeToEdges(const ExprPtr& c, std::vector<Edge>* edges) {
  if (c->kind() != ExprKind::kCompare) return;
  const ExprPtr& l = c->left();
  const ExprPtr& r = c->right();
  switch (c->compare_op()) {
    case CompareOp::kLt:
      edges->push_back({l, r, true});
      break;
    case CompareOp::kLe:
      edges->push_back({l, r, false});
      break;
    case CompareOp::kGt:
      edges->push_back({r, l, true});
      break;
    case CompareOp::kGe:
      edges->push_back({r, l, false});
      break;
    case CompareOp::kEq:
      edges->push_back({l, r, false});
      edges->push_back({r, l, false});
      break;
    case CompareOp::kNe:
      break;
  }
}

}  // namespace

std::vector<ExprPtr> TransitiveClosure(
    const std::vector<ExprPtr>& conjuncts) {
  std::vector<Edge> edges;
  for (const ExprPtr& c : conjuncts) NormalizeToEdges(c, &edges);

  std::set<std::string> existing;
  for (const ExprPtr& c : conjuncts) existing.insert(c->ToString());

  // One transitive step is what the classical syntax-driven rule applies;
  // iterating to a fixpoint would still only chain syntactically equal
  // middles, so we saturate for completeness (bounded by edge pairs).
  std::vector<ExprPtr> derived;
  std::set<std::string> seen;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 4) {
    changed = false;
    ++rounds;
    const std::vector<Edge> snapshot = edges;
    for (const Edge& e1 : snapshot) {
      const std::string mid = e1.rhs->ToString();
      for (const Edge& e2 : snapshot) {
        if (e2.lhs->ToString() != mid) continue;
        if (e1.lhs->ToString() == e2.rhs->ToString()) continue;
        const bool strict = e1.strict || e2.strict;
        ExprPtr out = Expr::Compare(strict ? CompareOp::kLt : CompareOp::kLe,
                                    e1.lhs, e2.rhs);
        const std::string key = out->ToString();
        if (existing.contains(key) || seen.contains(key)) continue;
        seen.insert(key);
        derived.push_back(out);
        edges.push_back({e1.lhs, e2.rhs, strict});
        changed = true;
      }
    }
  }
  return derived;
}

std::vector<ExprPtr> PropagateConstants(
    const std::vector<ExprPtr>& conjuncts) {
  // Bindings col-index -> literal from `col = literal` conjuncts.
  std::vector<ColumnSubstitution> bindings;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq) {
      continue;
    }
    const ExprPtr* col = nullptr;
    const ExprPtr* lit = nullptr;
    if (c->left()->kind() == ExprKind::kColumnRef &&
        c->right()->kind() == ExprKind::kLiteral) {
      col = &c->left();
      lit = &c->right();
    } else if (c->right()->kind() == ExprKind::kColumnRef &&
               c->left()->kind() == ExprKind::kLiteral) {
      col = &c->right();
      lit = &c->left();
    } else {
      continue;
    }
    if (!(*col)->is_bound() || (*lit)->literal().is_null()) continue;
    bindings.push_back({(*col)->index(), *lit});
  }
  if (bindings.empty()) return conjuncts;

  std::vector<ExprPtr> out;
  out.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    // Keep the defining equality itself; substitute everywhere else.
    bool is_definition = false;
    if (c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq) {
      for (const auto& b : bindings) {
        if ((c->left()->kind() == ExprKind::kColumnRef &&
             c->left()->is_bound() && c->left()->index() == b.index) ||
            (c->right()->kind() == ExprKind::kColumnRef &&
             c->right()->is_bound() && c->right()->index() == b.index)) {
          is_definition = true;
          break;
        }
      }
    }
    if (is_definition) {
      out.push_back(c);
    } else {
      out.push_back(Simplify(SubstituteColumns(c, bindings)));
    }
  }
  return out;
}

std::vector<ExprPtr> TransferThroughEquivalences(
    const std::vector<ExprPtr>& conjuncts) {
  // Union-find over bound column indices, seeded by col = col conjuncts.
  std::map<size_t, size_t> parent;
  std::function<size_t(size_t)> find = [&](size_t x) -> size_t {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    return it->second = find(it->second);
  };
  auto unite = [&](size_t a, size_t b) {
    a = find(a);
    b = find(b);
    parent.try_emplace(a, a);
    parent.try_emplace(b, b);
    if (a != b) parent[find(a)] = find(b);
  };

  std::map<size_t, const Expr*> column_ref;  // index -> a representative ref
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumnRef &&
        c->right()->kind() == ExprKind::kColumnRef && c->left()->is_bound() &&
        c->right()->is_bound()) {
      unite(c->left()->index(), c->right()->index());
      column_ref[c->left()->index()] = c->left().get();
      column_ref[c->right()->index()] = c->right().get();
    }
  }
  if (parent.empty()) return {};

  std::set<std::string> existing;
  for (const ExprPtr& c : conjuncts) existing.insert(c->ToString());

  std::vector<ExprPtr> derived;
  std::set<std::string> seen;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare) continue;
    // One side a bare equivalence-class column, the other column-free.
    const ExprPtr* col_side = nullptr;
    const ExprPtr* other = nullptr;
    bool col_on_left = true;
    if (c->left()->kind() == ExprKind::kColumnRef && c->left()->is_bound() &&
        CollectColumnIndices(c->right()).empty()) {
      col_side = &c->left();
      other = &c->right();
    } else if (c->right()->kind() == ExprKind::kColumnRef &&
               c->right()->is_bound() &&
               CollectColumnIndices(c->left()).empty()) {
      col_side = &c->right();
      other = &c->left();
      col_on_left = false;
    } else {
      continue;
    }
    const size_t root = find((*col_side)->index());
    for (const auto& [idx, ref] : column_ref) {
      if (idx == (*col_side)->index() || find(idx) != root) continue;
      ExprPtr replacement = Expr::BoundColumn(ref->table(), ref->name(), idx,
                                              ref->type());
      ExprPtr out =
          col_on_left
              ? Expr::Compare(c->compare_op(), std::move(replacement), *other)
              : Expr::Compare(c->compare_op(), *other, std::move(replacement));
      const std::string key = out->ToString();
      if (existing.contains(key) || seen.contains(key)) continue;
      seen.insert(key);
      derived.push_back(std::move(out));
    }
  }
  return derived;
}

PlanPtr PushFilterBelowJoin(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kFilter) return plan;
  const PlanPtr& join = plan->child();
  if (join->kind() != PlanKind::kJoin) return plan;

  const size_t left_size = join->child(0)->output_schema().size();
  const size_t total = join->output_schema().size();

  std::vector<ExprPtr> to_left;
  std::vector<ExprPtr> to_right;
  std::vector<ExprPtr> stay;
  for (const ExprPtr& c : SplitConjuncts(plan->predicate())) {
    const std::vector<size_t> used = CollectColumnIndices(c);
    const bool all_left = std::all_of(used.begin(), used.end(), [&](size_t i) {
      return i < left_size;
    });
    const bool all_right = std::all_of(used.begin(), used.end(),
                                       [&](size_t i) { return i >= left_size; });
    if (all_left && !used.empty()) {
      to_left.push_back(c);
    } else if (all_right && !used.empty()) {
      std::vector<std::pair<size_t, size_t>> remap;
      for (size_t i = left_size; i < total; ++i) {
        remap.emplace_back(i, i - left_size);
      }
      to_right.push_back(RemapColumnIndices(c, remap));
    } else {
      stay.push_back(c);
    }
  }
  if (to_left.empty() && to_right.empty()) return plan;

  PlanPtr left = join->child(0);
  PlanPtr right = join->child(1);
  if (!to_left.empty()) {
    left = PlanNode::Filter(CombineConjuncts(to_left), left);
  }
  if (!to_right.empty()) {
    right = PlanNode::Filter(CombineConjuncts(to_right), right);
  }
  PlanPtr new_join = PlanNode::Join(join->predicate(), left, right);
  if (stay.empty()) return new_join;
  return PlanNode::Filter(CombineConjuncts(stay), new_join);
}

PlanPtr PushFilterBelowAggregate(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kFilter) return plan;
  const PlanPtr& agg = plan->child();
  if (agg->kind() != PlanKind::kAggregate) return plan;

  const size_t group_count = agg->columns().size();
  std::vector<ExprPtr> below;
  std::vector<ExprPtr> stay;
  // Output column i < group_count corresponds to child column
  // agg->columns()[i]; the trailing count column cannot move.
  std::vector<std::pair<size_t, size_t>> remap;
  for (size_t i = 0; i < group_count; ++i) {
    remap.emplace_back(i, agg->columns()[i]);
  }
  for (const ExprPtr& c : SplitConjuncts(plan->predicate())) {
    const std::vector<size_t> used = CollectColumnIndices(c);
    const bool group_only = std::all_of(
        used.begin(), used.end(), [&](size_t i) { return i < group_count; });
    if (group_only && !used.empty()) {
      below.push_back(RemapColumnIndices(c, remap));
    } else {
      stay.push_back(c);
    }
  }
  if (below.empty()) return plan;

  PlanPtr child = PlanNode::Filter(CombineConjuncts(below), agg->child());
  PlanPtr new_agg = PlanNode::Aggregate(agg->columns(), child);
  if (stay.empty()) return new_agg;
  return PlanNode::Filter(CombineConjuncts(stay), new_agg);
}

namespace {

PlanPtr ApplyOnce(const PlanPtr& plan) {
  // Recurse first so children are in normal form.
  std::vector<PlanPtr> kids;
  bool changed = false;
  for (const PlanPtr& c : plan->children()) {
    PlanPtr nc = ApplyOnce(c);
    changed |= (nc.get() != c.get());
    kids.push_back(std::move(nc));
  }
  PlanPtr base = plan;
  if (changed) {
    switch (plan->kind()) {
      case PlanKind::kFilter:
        base = PlanNode::Filter(plan->predicate(), kids[0]);
        break;
      case PlanKind::kJoin:
        base = PlanNode::Join(plan->predicate(), kids[0], kids[1]);
        break;
      case PlanKind::kAggregate:
        base = PlanNode::Aggregate(plan->columns(), kids[0]);
        break;
      case PlanKind::kProject:
        base = PlanNode::Project(plan->columns(), kids[0]);
        break;
      case PlanKind::kScan:
        break;
    }
  }
  PlanPtr out = PushFilterBelowJoin(base);
  out = PushFilterBelowAggregate(out);
  return out;
}

}  // namespace

PlanPtr ApplyPredicateMovement(const PlanPtr& plan) {
  PlanPtr current = plan;
  for (int i = 0; i < 8; ++i) {
    PlanPtr next = ApplyOnce(current);
    if (next.get() == current.get()) break;
    DebugCheckPlan(next, "ApplyPredicateMovement iteration");
    current = next;
  }
  return current;
}

}  // namespace sia
