#include "rewrite/background_synthesizer.h"

#include <utility>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

BackgroundSynthesizer::BackgroundSynthesizer(RewriteCache* cache,
                                             ThreadPool* pool, Options options)
    : cache_(cache),
      pool_(pool),
      options_(std::move(options)),
      use_pool_(pool != nullptr && pool->has_workers()) {
  if (!use_pool_) {
    thread_ = std::make_unique<Thread>([this] { ThreadLoop(); });
  }
}

BackgroundSynthesizer::~BackgroundSynthesizer() { DrainAndStop(); }

bool BackgroundSynthesizer::Enqueue(BackgroundJob job) {
  bool schedule = false;
  {
    MutexLock lock(&mu_);
    if (draining_ || queue_.size() >= options_.queue_depth) {
      ++stats_.dropped;
      lock.Unlock();
      // Shedding a job must release its kSynthesizing marker, or the key
      // would wedge until process exit.
      SIA_COUNTER_INC("rewrite.background.dropped");
      SIA_EVENT("rewrite.background.dropped", "queue full or draining");
      cache_->AbortSynthesis(job.bound, job.cols);
      return false;
    }
    queue_.push_back(std::move(job));
    ++stats_.enqueued;
    if (obs::MetricsRegistry::Enabled()) {
      obs::SetGauge("rewrite.background.queue_depth",
                    static_cast<double>(queue_.size()));
    }
    if (use_pool_ && !drainer_scheduled_) {
      drainer_scheduled_ = true;
      schedule = true;
    }
  }
  SIA_COUNTER_INC("rewrite.background.enqueued");
  if (!use_pool_) {
    cv_.NotifyOne();
    return true;
  }
  if (schedule && !pool_->SubmitBackground([this] { DrainQueue(); })) {
    // The pool is shutting down: nothing will ever drain, so abort every
    // queued job now.
    std::deque<BackgroundJob> orphans;
    {
      MutexLock lock(&mu_);
      drainer_scheduled_ = false;
      orphans.swap(queue_);
      stats_.dropped += orphans.size();
      if (obs::MetricsRegistry::Enabled()) {
        obs::SetGauge("rewrite.background.queue_depth", 0.0);
      }
    }
    for (const BackgroundJob& orphan : orphans) {
      SIA_COUNTER_INC("rewrite.background.dropped");
      cache_->AbortSynthesis(orphan.bound, orphan.cols);
    }
    return false;
  }
  return true;
}

void BackgroundSynthesizer::DrainQueue() {
  for (;;) {
    BackgroundJob job;
    {
      MutexLock lock(&mu_);
      if (draining_ || queue_.empty()) {
        drainer_scheduled_ = false;
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      if (obs::MetricsRegistry::Enabled()) {
        obs::SetGauge("rewrite.background.queue_depth",
                      static_cast<double>(queue_.size()));
      }
      job_running_ = true;
    }
    RunJob(job);
    {
      MutexLock lock(&mu_);
      job_running_ = false;
      cv_.NotifyAll();
    }
  }
}

void BackgroundSynthesizer::ThreadLoop() {
  for (;;) {
    BackgroundJob job;
    {
      MutexLock lock(&mu_);
      while (!stop_thread_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stopped; DrainAndStop owns the orphans
      job = std::move(queue_.front());
      queue_.pop_front();
      if (obs::MetricsRegistry::Enabled()) {
        obs::SetGauge("rewrite.background.queue_depth",
                      static_cast<double>(queue_.size()));
      }
      job_running_ = true;
    }
    RunJob(job);
    {
      MutexLock lock(&mu_);
      job_running_ = false;
      cv_.NotifyAll();
    }
  }
}

void BackgroundSynthesizer::DrainAndStop() {
  std::deque<BackgroundJob> orphans;
  {
    MutexLock lock(&mu_);
    draining_ = true;
    stop_thread_ = true;
    orphans.swap(queue_);
    stats_.dropped += orphans.size();
    if (obs::MetricsRegistry::Enabled() && !orphans.empty()) {
      obs::SetGauge("rewrite.background.queue_depth", 0.0);
    }
    cv_.NotifyAll();
    // Wait only for a job that is actually executing; a drainer task the
    // pool never ran (or will drop at shutdown) sees draining_ and
    // retires without touching anything.
    while (job_running_) cv_.Wait(&mu_);
  }
  for (const BackgroundJob& orphan : orphans) {
    SIA_COUNTER_INC("rewrite.background.dropped");
    cache_->AbortSynthesis(orphan.bound, orphan.cols);
  }
  thread_.reset();  // joins the fallback drainer, if any
}

void BackgroundSynthesizer::RunJob(const BackgroundJob& job) {
  // Continue the admitting request's trace on the background lane.
  obs::TraceContext trace_ctx(job.trace_id);
  obs::TraceSpan span("rewrite.background.synthesize");
  Stopwatch timer;

  Status injected;
  if (FaultRegistry::Enabled()) {
    FaultRegistry& faults = FaultRegistry::Instance();
    injected = faults.Fire("background.synth.latency");
    if (injected.ok()) injected = faults.Fire("background.synth.crash");
  }

  Result<LadderRun> run = [&]() -> Result<LadderRun> {
    if (!injected.ok()) return injected;
    RewriteOptions opts = options_.rewrite;
    // Satellite of the ISSUE: a background job gets its own budget, not
    // the admitting request's (long-replied, likely exhausted) deadline.
    opts.deadline = Deadline::FromNowMillis(options_.budget_ms);
    return RunSynthesisLadder(job.bound, job.joint, job.cols, opts);
  }();
  if (!run.ok()) {
    // A crashed job releases its marker: the key stays re-queueable and
    // the next miss simply tries again.
    cache_->AbortSynthesis(job.bound, job.cols);
    SIA_COUNTER_INC("rewrite.background.failed");
    MutexLock lock(&mu_);
    ++stats_.failed;
    return;
  }

  bool force_promote = false;
  if (FaultRegistry::Enabled() && !job.cols.empty() &&
      !FaultRegistry::Instance().Fire("promote.bad_rewrite").ok()) {
    // Adversarial fault: publish a contradiction (col < -4e9 underflows
    // every integral TPC-H column) and push it straight to kPromoted, so
    // the shadow cross-check — not synthesis-time verification — must be
    // what catches it.
    for (const size_t c : job.cols) {
      const ColumnDef& col = job.joint.column(c);
      if (!IsIntegral(col.type) || col.type == DataType::kBoolean) continue;
      run->learned = Expr::Compare(
          CompareOp::kLt, Expr::BoundColumn(col.table, col.name, c, col.type),
          Expr::IntLit(-4000000000LL));
      run->synthesis.status = SynthesisStatus::kValid;
      run->synthesis.predicate = run->learned;
      run->rung = RewriteRung::kFull;
      force_promote = true;
      break;
    }
  }

  RewriteCache::Entry entry;
  entry.status = run->synthesis.status;
  entry.predicate = run->learned;
  entry.rung = static_cast<int>(run->rung);
  const ExprPtr predicate = entry.predicate;
  const Status published =
      cache_->CompleteSynthesis(job.bound, job.cols, std::move(entry));
  if (!published.ok()) {
    // The marker vanished (aborted by a drop/drain race, or the cache
    // was cleared). Nothing to publish against; the work is discarded.
    SIA_COUNTER_INC("rewrite.background.failed");
    MutexLock lock(&mu_);
    ++stats_.failed;
    return;
  }
  SIA_COUNTER_INC("rewrite.background.completed");
  SIA_HISTOGRAM_RECORD("rewrite.background.synth_ms", timer.ElapsedMillis());
  {
    MutexLock lock(&mu_);
    ++stats_.completed;
  }
  if (predicate == nullptr) return;  // "nothing to learn" self-promotes

  if (force_promote) {
    ShadowOutcome win;
    win.original_ms = 10.0;
    win.rewritten_ms = 0.0;
    for (int i = 0; i < options_.policy.promote_after; ++i) {
      auto state = cache_->RecordShadow(job.bound, job.cols, win,
                                        options_.policy, /*now_ms=*/0);
      if (!state.ok() || *state == EntryState::kPromoted) break;
    }
    return;
  }
  if (options_.evidence) {
    obs::TraceSpan shadow_span("rewrite.background.shadow");
    options_.evidence(job, predicate);
  }
}

BackgroundSynthesizer::Stats BackgroundSynthesizer::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace sia
