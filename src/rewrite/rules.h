#ifndef SIA_REWRITE_RULES_H_
#define SIA_REWRITE_RULES_H_

#include <vector>

#include "ir/expr.h"
#include "rewrite/plan.h"
#include "types/schema.h"

namespace sia {

// --- Syntax-driven baselines (paper §2 "Prior Work", §6.3) -------------

// Transitive-closure transformation [Ioannidis & Ramakrishnan, VLDB'88]:
// from aligned inequalities over syntactically identical middle terms,
//   e1 < m  AND  m < e2   ==>   e1 < e2
// (<= handled with strictness tracking, = treated as both directions).
// Returns ONLY newly derived conjuncts, deduplicated against the inputs.
std::vector<ExprPtr> TransitiveClosure(const std::vector<ExprPtr>& conjuncts);

// Constant propagation [Consens et al., RIDS'95]: for each equality
// `col = literal`, substitutes the literal into the other conjuncts and
// simplifies. Returns the rewritten conjunct list (same length).
std::vector<ExprPtr> PropagateConstants(const std::vector<ExprPtr>& conjuncts);

// Predicate transfer through join-key equivalence classes: column-to-
// column equalities (`a = b`) induce equivalence classes, and any
// conjunct comparing a member against a column-free expression transfers
// to every other member (`a = b AND a < 10  ==>  b < 10`). This is the
// classical complement to transitive closure that production optimizers
// apply to join keys; like the other syntax-driven rules it cannot reason
// through arithmetic that mixes columns — exactly the gap Sia fills.
// Returns ONLY newly derived conjuncts, deduplicated against the inputs.
std::vector<ExprPtr> TransferThroughEquivalences(
    const std::vector<ExprPtr>& conjuncts);

// --- Plan-level predicate movement rules --------------------------------

// Filter(pred, Join(l, r)) => pushes the conjuncts of `pred` that only
// use one side's columns into that side (as a child Filter). Returns the
// input plan unchanged when nothing moves.
PlanPtr PushFilterBelowJoin(const PlanPtr& plan);

// Filter(pred, Aggregate(g, child)) => moves conjuncts that only
// reference GROUP BY columns below the aggregation [Levy et al.,
// VLDB'94]. Returns the input plan unchanged when nothing moves.
PlanPtr PushFilterBelowAggregate(const PlanPtr& plan);

// Applies both movement rules bottom-up until fixpoint.
PlanPtr ApplyPredicateMovement(const PlanPtr& plan);

}  // namespace sia

#endif  // SIA_REWRITE_RULES_H_
