#ifndef SIA_SMT_ENCODER_H_
#define SIA_SMT_ENCODER_H_

#include <vector>

#include <z3++.h>

#include "common/status.h"
#include "ir/expr.h"
#include "smt/smt_context.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace sia {

// How SQL NULL is modeled in the SMT encoding (paper §5.2).
enum class NullHandling {
  // One value variable per column; all columns assumed non-NULL. Used for
  // sample generation, where Sia only ever produces concrete non-NULL
  // tuples.
  kIgnore,
  // Value + is-null boolean pair per nullable column (the scheme of
  // [Zhou et al., PVLDB'19]). Used by Verify so that validity holds under
  // three-valued logic.
  kThreeValued,
};

// Translates bound predicates into Z3 formulas over per-column variables.
//
// Non-linear arithmetic (§5.2): a multiplication or division whose both
// operands reference columns is folded into a single fresh auxiliary
// variable so the resulting formula stays within decidable linear
// arithmetic. (This is only sound for synthesis purposes when the folded
// subexpression does not otherwise constrain the involved columns, which
// mirrors the paper's caveat.)
class Encoder {
 public:
  Encoder(SmtContext* ctx, const Schema& schema, NullHandling nulls)
      : ctx_(ctx), schema_(schema), nulls_(nulls) {}

  // Formula asserting "p evaluates to TRUE" for the symbolic tuple.
  // Under kThreeValued this is is_true(p) (NULL outcomes excluded),
  // matching the WHERE-clause semantics.
  [[nodiscard]] Result<z3::expr> EncodeTrue(const ExprPtr& predicate);

  // Formula asserting "p does NOT evaluate to TRUE" (FALSE or NULL).
  [[nodiscard]] Result<z3::expr> EncodeNotTrue(const ExprPtr& predicate);

  // Value variable for a column (shared with the owning SmtContext).
  z3::expr ColumnVar(size_t index);

  // Constraint pinning the Cols' variables to a concrete sample, i.e.
  // AND_i (c_i == sample[i]). Used to build the paper's NotOld formulas.
  [[nodiscard]] Result<z3::expr> TupleEquals(const std::vector<size_t>& cols,
                               const Tuple& sample);

  // Extracts concrete values for `cols` from a model, completing
  // unconstrained variables with 0. Values are tagged with the columns'
  // schema types (dates come back as DATE values).
  [[nodiscard]] Result<Tuple> ExtractTuple(const z3::model& model,
                             const std::vector<size_t>& cols);

  const Schema& schema() const { return schema_; }
  SmtContext* context() { return ctx_; }

 private:
  // (value, is_null) pair for scalar subexpressions; for predicates the
  // pair is (is_true, is_null) with z3 Bool value.
  struct Encoded {
    z3::expr value;
    z3::expr is_null;
  };

  [[nodiscard]] Result<Encoded> EncodeScalar(const ExprPtr& e);
  [[nodiscard]] Result<Encoded> EncodePredicate(const ExprPtr& e);

  bool ReferencesColumns(const ExprPtr& e) const;

  SmtContext* ctx_;
  const Schema& schema_;
  NullHandling nulls_;
};

}  // namespace sia

#endif  // SIA_SMT_ENCODER_H_
