#ifndef SIA_SMT_SMT_CONTEXT_H_
#define SIA_SMT_SMT_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include <z3++.h>

#include "common/deadline.h"
#include "common/status.h"
#include "types/data_type.h"

namespace sia {

// Owns a z3::context plus the variable caches for one synthesis run.
// Z3 contexts are not thread-safe; create one SmtContext per thread.
//
// Naming scheme: column i gets value variable "c<i>" (Int sort for
// INTEGER/DATE/TIMESTAMP, Real for DOUBLE) and null-flag "n<i>" (Bool).
// Auxiliary variables for non-linear subexpressions (paper §5.2) are
// keyed by the subexpression's printed form.
class SmtContext {
 public:
  SmtContext() = default;

  SmtContext(const SmtContext&) = delete;
  SmtContext& operator=(const SmtContext&) = delete;

  z3::context& z3() { return ctx_; }

  // Attaches the time budget every subsequent Check/CheckOptimize call
  // draws from. Defaults to an unbounded budget with the shared per-call
  // cap, so contexts used outside the rewrite pipeline behave as before.
  void set_budget(const SolverBudget& budget) { budget_ = budget; }
  const SolverBudget& budget() const { return budget_; }

  // Runs `solver->check()` under the remaining budget: fires the
  // `smt.check` fault point, refuses with kTimeout (naming `stage`) when
  // the deadline is already spent, derives this call's solver timeout
  // from min(per-call cap, remaining wall clock), and maps Z3 exceptions
  // to kSolverError. `params` carries caller settings (seeds, tactics)
  // that must survive the per-call timeout update; pass nullptr when
  // there are none.
  [[nodiscard]] Result<z3::check_result> Check(z3::solver* solver, z3::params* params,
                                 std::string_view stage);

  // Same contract for optimization queries (`smt.optimize` fault point).
  [[nodiscard]] Result<z3::check_result> CheckOptimize(z3::optimize* opt,
                                         std::string_view stage);

  // Value variable for column `index`.
  z3::expr ColumnVar(size_t index, DataType type);

  // Null flag for column `index`.
  z3::expr NullVar(size_t index);

  // Auxiliary variable standing in for a non-linear subexpression.
  z3::expr AuxVar(const std::string& key, bool is_real);

  // Null flag paired with an auxiliary variable.
  z3::expr AuxNullVar(const std::string& key);

  // Number of distinct auxiliary variables created (stats/tests).
  size_t aux_count() const { return aux_.size(); }

 private:
  z3::context ctx_;
  SolverBudget budget_;
  std::map<std::string, std::unique_ptr<z3::expr>> cache_;
  std::map<std::string, std::unique_ptr<z3::expr>> aux_;

  z3::expr Intern(std::map<std::string, std::unique_ptr<z3::expr>>* pool,
                  const std::string& name, bool is_real, bool is_bool);
};

}  // namespace sia

#endif  // SIA_SMT_SMT_CONTEXT_H_
