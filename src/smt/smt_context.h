#ifndef SIA_SMT_SMT_CONTEXT_H_
#define SIA_SMT_SMT_CONTEXT_H_

#include <map>
#include <memory>
#include <string>

#include <z3++.h>

#include "types/data_type.h"

namespace sia {

// Owns a z3::context plus the variable caches for one synthesis run.
// Z3 contexts are not thread-safe; create one SmtContext per thread.
//
// Naming scheme: column i gets value variable "c<i>" (Int sort for
// INTEGER/DATE/TIMESTAMP, Real for DOUBLE) and null-flag "n<i>" (Bool).
// Auxiliary variables for non-linear subexpressions (paper §5.2) are
// keyed by the subexpression's printed form.
class SmtContext {
 public:
  SmtContext() = default;

  SmtContext(const SmtContext&) = delete;
  SmtContext& operator=(const SmtContext&) = delete;

  z3::context& z3() { return ctx_; }

  // Value variable for column `index`.
  z3::expr ColumnVar(size_t index, DataType type);

  // Null flag for column `index`.
  z3::expr NullVar(size_t index);

  // Auxiliary variable standing in for a non-linear subexpression.
  z3::expr AuxVar(const std::string& key, bool is_real);

  // Null flag paired with an auxiliary variable.
  z3::expr AuxNullVar(const std::string& key);

  // Number of distinct auxiliary variables created (stats/tests).
  size_t aux_count() const { return aux_.size(); }

 private:
  z3::context ctx_;
  std::map<std::string, std::unique_ptr<z3::expr>> cache_;
  std::map<std::string, std::unique_ptr<z3::expr>> aux_;

  z3::expr Intern(std::map<std::string, std::unique_ptr<z3::expr>>* pool,
                  const std::string& name, bool is_real, bool is_bool);
};

}  // namespace sia

#endif  // SIA_SMT_SMT_CONTEXT_H_
