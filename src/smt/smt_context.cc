#include "smt/smt_context.h"

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sia {

namespace {

// Z3 reports its own timeouts as `unknown`, so the unknown counter doubles
// as the solver-timeout counter (deadline exhaustion before the call is
// counted separately).
void CountCheckResult(z3::check_result result, std::string_view metric_stem) {
  if (!obs::MetricsRegistry::Enabled()) return;
  const char* suffix = result == z3::sat     ? ".sat"
                       : result == z3::unsat ? ".unsat"
                                             : ".unknown";
  obs::IncrementCounter(std::string(metric_stem) + suffix);
}

}  // namespace

Result<z3::check_result> SmtContext::Check(z3::solver* solver,
                                           z3::params* params,
                                           std::string_view stage) {
  SIA_TRACE_SPAN("smt.check");
  SIA_COUNTER_INC("smt.check.calls");
  SIA_FAULT_INJECT("smt.check");
  {
    const Status remaining = budget_.RequireRemaining(stage);
    if (!remaining.ok()) {
      SIA_COUNTER_INC("smt.check.deadline_exhausted");
      return remaining;
    }
  }
  Stopwatch timer;
  try {
    z3::params p = params != nullptr ? *params : z3::params(ctx_);
    p.set("timeout", budget_.CallTimeoutMs());
    solver->set(p);
    const z3::check_result result = solver->check();
    SIA_HISTOGRAM_RECORD("smt.check.latency_us", timer.ElapsedMicros());
    CountCheckResult(result, "smt.check");
    return result;
  } catch (const z3::exception& e) {
    SIA_HISTOGRAM_RECORD("smt.check.latency_us", timer.ElapsedMicros());
    SIA_COUNTER_INC("smt.check.errors");
    return Status::SolverError("Z3 failed in stage '" + std::string(stage) +
                               "': " + e.msg());
  }
}

Result<z3::check_result> SmtContext::CheckOptimize(z3::optimize* opt,
                                                   std::string_view stage) {
  SIA_TRACE_SPAN("smt.optimize");
  SIA_COUNTER_INC("smt.optimize.calls");
  SIA_FAULT_INJECT("smt.optimize");
  {
    const Status remaining = budget_.RequireRemaining(stage);
    if (!remaining.ok()) {
      SIA_COUNTER_INC("smt.optimize.deadline_exhausted");
      return remaining;
    }
  }
  Stopwatch timer;
  try {
    z3::params p(ctx_);
    p.set("timeout", budget_.CallTimeoutMs());
    opt->set(p);
    const z3::check_result result = opt->check();
    SIA_HISTOGRAM_RECORD("smt.optimize.latency_us", timer.ElapsedMicros());
    CountCheckResult(result, "smt.optimize");
    return result;
  } catch (const z3::exception& e) {
    SIA_HISTOGRAM_RECORD("smt.optimize.latency_us", timer.ElapsedMicros());
    SIA_COUNTER_INC("smt.optimize.errors");
    return Status::SolverError("Z3 optimize failed in stage '" +
                               std::string(stage) + "': " + e.msg());
  }
}

z3::expr SmtContext::Intern(
    std::map<std::string, std::unique_ptr<z3::expr>>* pool,
    const std::string& name, bool is_real, bool is_bool) {
  const auto it = pool->find(name);
  if (it != pool->end()) return *it->second;
  z3::expr var = is_bool   ? ctx_.bool_const(name.c_str())
                 : is_real ? ctx_.real_const(name.c_str())
                           : ctx_.int_const(name.c_str());
  auto inserted =
      pool->emplace(name, std::make_unique<z3::expr>(var));
  return *inserted.first->second;
}

z3::expr SmtContext::ColumnVar(size_t index, DataType type) {
  const bool is_real = (type == DataType::kDouble);
  return Intern(&cache_, "c" + std::to_string(index), is_real, false);
}

z3::expr SmtContext::NullVar(size_t index) {
  return Intern(&cache_, "n" + std::to_string(index), false, true);
}

z3::expr SmtContext::AuxVar(const std::string& key, bool is_real) {
  return Intern(&aux_, "aux_v!" + key, is_real, false);
}

z3::expr SmtContext::AuxNullVar(const std::string& key) {
  return Intern(&aux_, "aux_n!" + key, false, true);
}

}  // namespace sia
