#include "smt/smt_context.h"

#include "common/fault_injection.h"

namespace sia {

Result<z3::check_result> SmtContext::Check(z3::solver* solver,
                                           z3::params* params,
                                           std::string_view stage) {
  SIA_FAULT_INJECT("smt.check");
  SIA_RETURN_IF_ERROR(budget_.RequireRemaining(stage));
  try {
    z3::params p = params != nullptr ? *params : z3::params(ctx_);
    p.set("timeout", budget_.CallTimeoutMs());
    solver->set(p);
    return solver->check();
  } catch (const z3::exception& e) {
    return Status::SolverError("Z3 failed in stage '" + std::string(stage) +
                               "': " + e.msg());
  }
}

Result<z3::check_result> SmtContext::CheckOptimize(z3::optimize* opt,
                                                   std::string_view stage) {
  SIA_FAULT_INJECT("smt.optimize");
  SIA_RETURN_IF_ERROR(budget_.RequireRemaining(stage));
  try {
    z3::params p(ctx_);
    p.set("timeout", budget_.CallTimeoutMs());
    opt->set(p);
    return opt->check();
  } catch (const z3::exception& e) {
    return Status::SolverError("Z3 optimize failed in stage '" +
                               std::string(stage) + "': " + e.msg());
  }
}

z3::expr SmtContext::Intern(
    std::map<std::string, std::unique_ptr<z3::expr>>* pool,
    const std::string& name, bool is_real, bool is_bool) {
  const auto it = pool->find(name);
  if (it != pool->end()) return *it->second;
  z3::expr var = is_bool   ? ctx_.bool_const(name.c_str())
                 : is_real ? ctx_.real_const(name.c_str())
                           : ctx_.int_const(name.c_str());
  auto inserted =
      pool->emplace(name, std::make_unique<z3::expr>(var));
  return *inserted.first->second;
}

z3::expr SmtContext::ColumnVar(size_t index, DataType type) {
  const bool is_real = (type == DataType::kDouble);
  return Intern(&cache_, "c" + std::to_string(index), is_real, false);
}

z3::expr SmtContext::NullVar(size_t index) {
  return Intern(&cache_, "n" + std::to_string(index), false, true);
}

z3::expr SmtContext::AuxVar(const std::string& key, bool is_real) {
  return Intern(&aux_, "aux_v!" + key, is_real, false);
}

z3::expr SmtContext::AuxNullVar(const std::string& key) {
  return Intern(&aux_, "aux_n!" + key, false, true);
}

}  // namespace sia
