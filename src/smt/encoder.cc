#include "smt/encoder.h"

#include <cmath>
#include <sstream>

#include "ir/analysis.h"

namespace sia {

namespace {

// Truncated (SQL/C++) integer division in terms of Z3's Euclidean-style
// div, for a constant, non-zero divisor:
//   tdiv(a, b) = ite(a >= 0, a div |b| * sgn(b), -((-a) div |b|) * sgn(b))
// For b > 0, Z3's (a div b) is floor(a/b); truncation differs for a < 0.
z3::expr TruncatedDiv(z3::context& c, const z3::expr& a, int64_t b) {
  const int64_t abs_b = b < 0 ? -b : b;
  const int sign = b < 0 ? -1 : 1;
  z3::expr abs_b_e = c.int_val(abs_b);
  z3::expr pos = a / abs_b_e;
  z3::expr neg = -((-a) / abs_b_e);
  z3::expr t = z3::ite(a >= 0, pos, neg);
  return sign < 0 ? -t : t;
}

}  // namespace

bool Encoder::ReferencesColumns(const ExprPtr& e) const {
  if (e->kind() == ExprKind::kColumnRef) return true;
  for (const auto& child : e->children()) {
    if (ReferencesColumns(child)) return true;
  }
  return false;
}

z3::expr Encoder::ColumnVar(size_t index) {
  return ctx_->ColumnVar(index, schema_.column(index).type);
}

Result<Encoder::Encoded> Encoder::EncodeScalar(const ExprPtr& e) {
  z3::context& c = ctx_->z3();
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      if (!e->is_bound()) {
        return Status::Internal("unbound column in SMT encoding: " +
                                e->ToString());
      }
      const ColumnDef& col = schema_.column(e->index());
      z3::expr value = ctx_->ColumnVar(e->index(), col.type);
      z3::expr is_null = (nulls_ == NullHandling::kThreeValued && col.nullable)
                             ? ctx_->NullVar(e->index())
                             : c.bool_val(false);
      return Encoded{value, is_null};
    }
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_null()) {
        // Typed placeholder value; is_null masks it.
        return Encoded{c.int_val(0), c.bool_val(true)};
      }
      if (v.type() == DataType::kDouble) {
        // Represent doubles as exact rationals via their decimal string.
        std::ostringstream os;
        os.precision(17);
        os << v.AsDouble();
        return Encoded{c.real_val(os.str().c_str()), c.bool_val(false)};
      }
      if (v.type() == DataType::kBoolean) {
        return Status::TypeError("boolean literal in scalar context");
      }
      return Encoded{c.int_val(static_cast<int64_t>(v.AsInt())),
                     c.bool_val(false)};
    }
    case ExprKind::kArith: {
      const ArithOp op = e->arith_op();
      const bool lhs_cols = ReferencesColumns(e->left());
      const bool rhs_cols = ReferencesColumns(e->right());
      // Non-linear escape hatch (§5.2): fold col*col / col/col into one
      // fresh variable. The fold can only be NULL when an input column is
      // nullable (or the op is a division, whose zero-divisor case is
      // NULL); otherwise pinning its null flag to false keeps the
      // three-valued encoding in agreement with the simple one.
      if ((op == ArithOp::kMul || op == ArithOp::kDiv) && lhs_cols &&
          rhs_cols) {
        const std::string key = e->ToString();
        const bool is_real = (e->type() == DataType::kDouble);
        z3::expr value = ctx_->AuxVar(key, is_real);
        bool can_be_null = (op == ArithOp::kDiv);
        for (const size_t col : CollectColumnIndices(e)) {
          can_be_null |= schema_.column(col).nullable;
        }
        z3::expr is_null =
            (nulls_ == NullHandling::kThreeValued && can_be_null)
                ? ctx_->AuxNullVar(key)
                : c.bool_val(false);
        return Encoded{value, is_null};
      }
      SIA_ASSIGN_OR_RETURN(Encoded l, EncodeScalar(e->left()));
      SIA_ASSIGN_OR_RETURN(Encoded r, EncodeScalar(e->right()));
      z3::expr is_null = l.is_null || r.is_null;
      switch (op) {
        case ArithOp::kAdd:
          return Encoded{l.value + r.value, is_null};
        case ArithOp::kSub:
          return Encoded{l.value - r.value, is_null};
        case ArithOp::kMul:
          return Encoded{l.value * r.value, is_null};
        case ArithOp::kDiv: {
          // Divisor is constant here (both-column case folded above).
          if (e->right()->kind() == ExprKind::kLiteral &&
              !e->right()->literal().is_null() &&
              IsIntegral(e->right()->literal().type()) &&
              !l.value.is_real()) {
            const int64_t b = e->right()->literal().AsInt();
            if (b == 0) {
              // x / 0 is NULL in our evaluator.
              return Encoded{c.int_val(0), c.bool_val(true)};
            }
            return Encoded{TruncatedDiv(c, l.value, b), is_null};
          }
          // Real-valued or non-literal constant divisor: use Z3 division
          // and mark NULL when the divisor is zero (evaluator semantics).
          z3::expr div_null = is_null || (r.value == 0);
          return Encoded{l.value / r.value, div_null};
        }
      }
      return Status::Internal("unreachable arith op");
    }
    default:
      return Status::TypeError("predicate used in scalar context: " +
                               e->ToString());
  }
}

Result<Encoder::Encoded> Encoder::EncodePredicate(const ExprPtr& e) {
  z3::context& c = ctx_->z3();
  switch (e->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_null()) return Encoded{c.bool_val(false), c.bool_val(true)};
      if (v.type() != DataType::kBoolean) {
        return Status::TypeError("non-boolean literal as predicate");
      }
      return Encoded{c.bool_val(v.AsBool()), c.bool_val(false)};
    }
    case ExprKind::kCompare: {
      SIA_ASSIGN_OR_RETURN(Encoded l, EncodeScalar(e->left()));
      SIA_ASSIGN_OR_RETURN(Encoded r, EncodeScalar(e->right()));
      z3::expr lv = l.value;
      z3::expr rv = r.value;
      // Z3 requires same-sorted operands; promote int to real if mixed.
      if (lv.is_real() != rv.is_real()) {
        if (!lv.is_real()) lv = z3::to_real(lv);
        if (!rv.is_real()) rv = z3::to_real(rv);
      }
      z3::expr truth = c.bool_val(false);
      switch (e->compare_op()) {
        case CompareOp::kLt:
          truth = lv < rv;
          break;
        case CompareOp::kLe:
          truth = lv <= rv;
          break;
        case CompareOp::kGt:
          truth = lv > rv;
          break;
        case CompareOp::kGe:
          truth = lv >= rv;
          break;
        case CompareOp::kEq:
          truth = lv == rv;
          break;
        case CompareOp::kNe:
          truth = lv != rv;
          break;
      }
      return Encoded{truth, l.is_null || r.is_null};
    }
    case ExprKind::kLogic: {
      SIA_ASSIGN_OR_RETURN(Encoded l, EncodePredicate(e->left()));
      SIA_ASSIGN_OR_RETURN(Encoded r, EncodePredicate(e->right()));
      // Kleene 3VL: track (truth-when-not-null, null-ness). A conjunction
      // is NULL iff neither side is FALSE-and-non-null and some side is
      // NULL; dually for OR.
      z3::expr l_true = l.value && !l.is_null;
      z3::expr l_false = !l.value && !l.is_null;
      z3::expr r_true = r.value && !r.is_null;
      z3::expr r_false = !r.value && !r.is_null;
      if (e->logic_op() == LogicOp::kAnd) {
        z3::expr out_true = l_true && r_true;
        z3::expr out_false = l_false || r_false;
        return Encoded{out_true, !out_true && !out_false};
      }
      z3::expr out_true = l_true || r_true;
      z3::expr out_false = l_false && r_false;
      return Encoded{out_true, !out_true && !out_false};
    }
    case ExprKind::kNot: {
      SIA_ASSIGN_OR_RETURN(Encoded v, EncodePredicate(e->operand()));
      // NOT TRUE = FALSE, NOT FALSE = TRUE, NOT NULL = NULL.
      return Encoded{!v.value && !v.is_null, v.is_null};
    }
    case ExprKind::kColumnRef:
      return Status::TypeError("bare column as predicate: " + e->ToString());
    default:
      return Status::TypeError("scalar used as predicate: " + e->ToString());
  }
}

Result<z3::expr> Encoder::EncodeTrue(const ExprPtr& predicate) {
  SIA_ASSIGN_OR_RETURN(Encoded enc, EncodePredicate(predicate));
  return enc.value && !enc.is_null;
}

Result<z3::expr> Encoder::EncodeNotTrue(const ExprPtr& predicate) {
  SIA_ASSIGN_OR_RETURN(Encoded enc, EncodePredicate(predicate));
  return !(enc.value && !enc.is_null);
}

Result<z3::expr> Encoder::TupleEquals(const std::vector<size_t>& cols,
                                      const Tuple& sample) {
  z3::context& c = ctx_->z3();
  if (cols.size() != sample.size()) {
    return Status::InvalidArgument("sample arity mismatch");
  }
  z3::expr acc = c.bool_val(true);
  for (size_t i = 0; i < cols.size(); ++i) {
    const Value& v = sample.at(i);
    if (v.is_null()) {
      return Status::InvalidArgument("NULL in training sample");
    }
    z3::expr var = ColumnVar(cols[i]);
    if (v.type() == DataType::kDouble) {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      acc = acc && (var == c.real_val(os.str().c_str()));
    } else {
      acc = acc && (var == c.int_val(static_cast<int64_t>(v.AsInt())));
    }
  }
  return acc;
}

Result<Tuple> Encoder::ExtractTuple(const z3::model& model,
                                    const std::vector<size_t>& cols) {
  Tuple out;
  for (const size_t col : cols) {
    const ColumnDef& def = schema_.column(col);
    z3::expr var = ColumnVar(col);
    z3::expr v = model.eval(var, /*model_completion=*/true);
    if (def.type == DataType::kDouble) {
      // Rational -> double.
      int64_t num = 0, den = 1;
      if (v.is_numeral()) {
        const std::string s = v.get_decimal_string(12);
        try {
          out.Append(Value::Double(std::stod(s)));
          continue;
        } catch (const std::exception&) {
          // fall through to rational path
        }
      }
      (void)num;
      (void)den;
      return Status::SolverError("could not extract real value for column " +
                                 def.QualifiedName());
    }
    int64_t iv = 0;
    if (!v.is_numeral_i64(iv)) {
      return Status::SolverError("could not extract int value for column " +
                                 def.QualifiedName());
    }
    switch (def.type) {
      case DataType::kDate:
        out.Append(Value::Date(iv));
        break;
      case DataType::kTimestamp:
        out.Append(Value::Timestamp(iv));
        break;
      case DataType::kBoolean:
        out.Append(Value::Boolean(iv != 0));
        break;
      default:
        out.Append(Value::Integer(iv));
        break;
    }
  }
  return out;
}

}  // namespace sia
