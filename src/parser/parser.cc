#include "parser/parser.h"

#include <stdexcept>

#include "common/date.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/lexer.h"

namespace sia {

namespace {

// Reserved words that terminate expressions / select items.
bool IsReserved(const Token& t) {
  static const char* kReserved[] = {"select", "from",  "where",   "group",
                                    "by",     "and",   "or",      "not",
                                    "as",     "order", "limit",   "between",
                                    "in"};
  if (t.type != TokenType::kIdent) return false;
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(t.text, kw)) return true;
  }
  return false;
}

// Recursive-descent parser over the token stream. Expressions use a
// unified precedence ladder (OR < AND < NOT < comparison < add/sub <
// mul/div < unary), so parenthesized arithmetic and parenthesized
// predicates need no lookahead disambiguation; the binder type-checks.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseSelect() {
    ParsedQuery q;
    SIA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SIA_RETURN_IF_ERROR(ParseSelectList(&q));
    SIA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SIA_RETURN_IF_ERROR(ParseTableList(&q));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      SIA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SIA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        q.group_by.push_back(std::move(e));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing token '" + Peek().text +
                                "' at offset " +
                                std::to_string(Peek().position));
    }
    return q;
  }

  Result<ExprPtr> ParseFullExpr() {
    SIA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing token '" + Peek().text +
                                "'");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!Peek().IsSymbol(s)) {
      return Status::ParseError(std::string("expected '") + s + "', got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.is_star = true;
      } else {
        SIA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Peek().IsKeyword("AS")) {
          Advance();
          if (Peek().type != TokenType::kIdent) {
            return Status::ParseError("expected alias after AS");
          }
          item.alias = Advance().text;
        }
      }
      q->select_list.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) return Status::OK();
      Advance();
    }
  }

  Status ParseTableList(ParsedQuery* q) {
    while (true) {
      if (Peek().type != TokenType::kIdent || IsReserved(Peek())) {
        return Status::ParseError("expected table name, got '" +
                                  Peek().text + "'");
      }
      q->tables.push_back(ToLower(Advance().text));
      if (!Peek().IsSymbol(",")) return Status::OK();
      Advance();
    }
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SIA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Logic(LogicOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SIA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Logic(LogicOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr v, ParseNot());
      return Expr::Not(std::move(v));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SIA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // Postfix predicate forms: [NOT] BETWEEN a AND b, [NOT] IN (list).
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN"))) {
      negated = true;
      Advance();
    }
    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      SIA_RETURN_IF_ERROR(ExpectKeyword("AND"));
      SIA_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      ExprPtr range = Expr::Logic(
          LogicOp::kAnd, Expr::Compare(CompareOp::kGe, lhs, std::move(low)),
          Expr::Compare(CompareOp::kLe, lhs, std::move(high)));
      return negated ? Expr::Not(std::move(range)) : range;
    }
    if (Peek().IsKeyword("IN")) {
      Advance();
      SIA_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> members;
      while (true) {
        SIA_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
        members.push_back(
            Expr::Compare(CompareOp::kEq, lhs, std::move(e)));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      SIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      ExprPtr any = Expr::Or(members);
      return negated ? Expr::Not(std::move(any)) : any;
    }
    if (negated) {
      return Status::ParseError("expected BETWEEN or IN after NOT");
    }
    const Token& t = Peek();
    CompareOp op;
    if (t.IsSymbol("<")) {
      op = CompareOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = CompareOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (t.IsSymbol("=")) {
      op = CompareOp::kEq;
    } else if (t.IsSymbol("<>")) {
      op = CompareOp::kNe;
    } else {
      return lhs;
    }
    Advance();
    SIA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    SIA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const ArithOp op =
          Advance().text == "+" ? ArithOp::kAdd : ArithOp::kSub;
      SIA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SIA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      const ArithOp op =
          Advance().text == "*" ? ArithOp::kMul : ArithOp::kDiv;
      SIA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr v, ParseUnary());
      // Fold -literal directly; otherwise emit 0 - v.
      if (v->kind() == ExprKind::kLiteral && !v->literal().is_null()) {
        if (v->literal().type() == DataType::kInteger) {
          return Expr::IntLit(-v->literal().AsInt());
        }
        if (v->literal().type() == DataType::kDouble) {
          return Expr::DoubleLit(-v->literal().AsDouble());
        }
      }
      return Expr::Arith(ArithOp::kSub, Expr::IntLit(0), std::move(v));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.IsSymbol("(")) {
      Advance();
      SIA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      SIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (t.type == TokenType::kInt) {
      Advance();
      return Expr::IntLit(t.int_value);
    }
    if (t.type == TokenType::kFloat) {
      Advance();
      return Expr::DoubleLit(t.float_value);
    }
    if (t.type == TokenType::kString) {
      // A bare quoted string in this dialect is a date literal, matching
      // the paper's `o_orderdate < '1993-06-01'` usage.
      Advance();
      SIA_ASSIGN_OR_RETURN(int64_t day, ParseDateToDay(t.text));
      return Expr::DateLit(day);
    }
    if (t.type == TokenType::kIdent) {
      if (t.IsKeyword("DATE") && Peek(1).type == TokenType::kString) {
        Advance();
        const Token& lit = Advance();
        SIA_ASSIGN_OR_RETURN(int64_t day, ParseDateToDay(lit.text));
        return Expr::DateLit(day);
      }
      if (t.IsKeyword("INTERVAL")) {
        // INTERVAL '20' DAY  or  INTERVAL 20 DAY -> integer day count.
        Advance();
        int64_t days = 0;
        if (Peek().type == TokenType::kString) {
          try {
            days = std::stoll(Advance().text);
          } catch (const std::exception&) {
            return Status::ParseError("invalid INTERVAL literal");
          }
        } else if (Peek().type == TokenType::kInt) {
          days = Advance().int_value;
        } else {
          return Status::ParseError("expected INTERVAL count");
        }
        if (!Peek().IsKeyword("DAY") && !Peek().IsKeyword("DAYS")) {
          return Status::ParseError("only DAY intervals are supported");
        }
        Advance();
        return Expr::IntLit(days);
      }
      if (t.IsKeyword("TRUE")) {
        Advance();
        return Expr::BoolLit(true);
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return Expr::BoolLit(false);
      }
      if (t.IsKeyword("NULL")) {
        Advance();
        return Expr::Literal(Value::Null());
      }
      if (IsReserved(t)) {
        return Status::ParseError("unexpected keyword '" + t.text +
                                  "' in expression");
      }
      // Column reference: ident or ident.ident.
      Advance();
      if (Peek().IsSymbol(".") && Peek(1).type == TokenType::kIdent) {
        Advance();
        const Token& col = Advance();
        return Expr::Column(ToLower(t.text), ToLower(col.text));
      }
      return Expr::Column("", ToLower(t.text));
    }
    return Status::ParseError("unexpected token '" + t.text +
                              "' at offset " + std::to_string(t.position));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& sql) {
  SIA_TRACE_SPAN("parse.query");
  SIA_COUNTER_INC("parse.queries");
  Result<std::vector<Token>> tokens = Lex(sql);
  if (!tokens.ok()) {
    SIA_COUNTER_INC("parse.errors");
    return tokens.status();
  }
  Parser parser(std::move(*tokens));
  Result<ParsedQuery> parsed = parser.ParseSelect();
  if (!parsed.ok()) SIA_COUNTER_INC("parse.errors");
  return parsed;
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SIA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseFullExpr();
}

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = select_list[i];
    if (item.is_star) {
      out += "*";
    } else {
      out += item.expr->ToString();
      if (!item.alias.empty()) out += " AS " + item.alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i];
  }
  if (where != nullptr) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  return out;
}

}  // namespace sia
