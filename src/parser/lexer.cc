#include "parser/lexer.h"

#include <cctype>
#include <stdexcept>

#include "common/strings.h"

namespace sia {

bool Token::IsSymbol(const char* s) const {
  return type == TokenType::kSymbol && text == s;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdent;
      tok.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      const std::string num = sql.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::stod(num);
      } else {
        tok.type = TokenType::kInt;
        try {
          tok.int_value = std::stoll(num);
        } catch (const std::out_of_range&) {
          return Status::ParseError("integer literal out of range: " + num);
        }
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string body;
      while (j < n && sql[j] != '\'') {
        body += sql[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(body);
      i = j + 1;
    } else {
      // Multi-char operators first.
      auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = (two == "!=") ? "<>" : two;
        i += 2;
      } else if (std::string("(),;.+-*/<>=").find(c) != std::string::npos) {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sia
