#ifndef SIA_PARSER_PARSER_H_
#define SIA_PARSER_PARSER_H_

#include <string>

#include "common/status.h"
#include "parser/ast.h"

namespace sia {

// Parses a SELECT statement. The produced expression trees are unbound;
// bind them with sia::Bind against the catalog's joint schema.
[[nodiscard]] Result<ParsedQuery> ParseQuery(const std::string& sql);

// Parses a standalone predicate / scalar expression (the WHERE-clause
// grammar of §4.1, plus DATE '...' and INTERVAL 'n' DAY literals).
[[nodiscard]] Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace sia

#endif  // SIA_PARSER_PARSER_H_
