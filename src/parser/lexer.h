#ifndef SIA_PARSER_LEXER_H_
#define SIA_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sia {

enum class TokenType {
  kIdent,    // column / table / keyword candidates
  kInt,      // 123
  kFloat,    // 1.5
  kString,   // '...' (single-quoted)
  kSymbol,   // punctuation and operators, text in `text`
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw text (identifier as written, symbol, string body)
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset, for error messages

  bool IsSymbol(const char* s) const;
  // Case-insensitive keyword check for identifier tokens.
  bool IsKeyword(const char* kw) const;
};

// Tokenizes `sql`. Symbols cover: ( ) , ; . + - * / < <= > >= = <> !=
// Comments: "--" to end of line.
[[nodiscard]] Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace sia

#endif  // SIA_PARSER_LEXER_H_
