#ifndef SIA_PARSER_AST_H_
#define SIA_PARSER_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace sia {

// A parsed SELECT statement in the dialect Sia supports:
//
//   SELECT { * | expr [AS alias], ... }
//   FROM table [, table ...]
//   [WHERE predicate]
//   [GROUP BY column, ...]
//
// Joins are expressed as comma-separated FROM lists with equality
// predicates in WHERE (exactly the form the paper's §6.3 workload uses).
struct SelectItem {
  ExprPtr expr;        // null for '*'
  std::string alias;   // optional
  bool is_star = false;
};

struct ParsedQuery {
  std::vector<SelectItem> select_list;
  std::vector<std::string> tables;
  ExprPtr where;  // null if absent (i.e. TRUE)
  std::vector<ExprPtr> group_by;

  // Unparses back to SQL text (stable formatting, used by the rewriter to
  // emit rewritten queries).
  std::string ToString() const;
};

}  // namespace sia

#endif  // SIA_PARSER_AST_H_
