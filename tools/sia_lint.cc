// sia_lint — static analysis driver for SQL queries and generated
// workloads. Runs each query through parse -> bind -> plan -> predicate
// movement (and optionally the full Sia rewrite) and prints every
// diagnostic the check/ validators produce.
//
//   sia_lint [options] [file.sql ...]
//     --workload N      lint N §6.3 workload-generator queries instead of
//                       (or in addition to) SQL files
//     --seed S          workload generator seed (default 2021)
//     --rewrite         run the Sia rewrite and validate the learned
//                       predicate (CNF + binding) and the rewritten plan
//     --max-iterations N  synthesis iteration budget for --rewrite
//                       (default: the paper's 41; lower is faster and
//                       still produces real, validatable predicates)
//     --deadline-ms N   end-to-end wall-clock budget per --rewrite query;
//                       queries that hit it report which stage burned the
//                       budget and which degradation-ladder rung answered
//     --threads N       rewrite --workload queries concurrently on N
//                       worker threads through one shared single-flight
//                       cache, then lint the outcomes in order. Only
//                       affects --rewrite + --workload runs. Incompatible
//                       with --deadline-ms: the deadline is an absolute
//                       instant, so under a batch it would bound the
//                       whole batch rather than each query
//     --target TABLE    rewrite target table (default lineitem)
//     --no-pushdown     plan without filter pushdown
//     --list-fault-points  print the pipeline's SIA_FAULTS points with
//                       per-point firing counts (fired=N injected=M).
//                       With no inputs, prints and exits; with inputs,
//                       the counts reflect the run that just finished
//     --metrics-out D   write a metrics snapshot (JSON) to D after the
//                       run; D is a path or "stderr"
//     --trace-out F     write a Chrome trace-event file (Perfetto-
//                       loadable) of the run to F
//     --digests-out F   write one canonical digest line per --workload
//                       query to F (the same lines sia_client emits), for
//                       byte-comparing a served run against a local batch
//                       run. Requires --rewrite + --workload; incompatible
//                       with --deadline-ms (deadline outcomes are timing-
//                       dependent, digests must be deterministic)
//     --execute-sf SF   with --digests-out: generate TPC-H data at SF
//                       (seed 42, matching sia_serve --data-seed) and
//                       execute every rewritten query so digest lines
//                       carry rows/content_hash/order_hash
//     --werror          exit non-zero on warnings too
//     -q, --quiet       print only the summary line
//
// SQL files may hold multiple statements separated by ';'. With no file
// and no --workload, SQL statements are read from stdin. Queries are
// checked against the built-in TPC-H catalog. Exit status: 0 clean,
// 1 diagnostics found (errors, or warnings under --werror), 2 usage or
// input error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "check/expr_validator.h"
#include "check/plan_validator.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rewrite/batch_rewriter.h"
#include "rewrite/planner.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/rules.h"
#include "rewrite/sia_rewriter.h"
#include "server/protocol.h"
#include "server/service.h"
#include "workload/querygen.h"

namespace {

struct LintOptions {
  size_t workload_count = 0;
  uint64_t seed = 2021;
  bool rewrite = false;
  int max_iterations = 0;   // 0 = synthesizer default
  int64_t deadline_ms = 0;  // 0 = unlimited
  int threads = 1;          // >1 = batch-rewrite the workload first
  std::string target_table = "lineitem";
  bool push_down = true;
  bool werror = false;
  bool quiet = false;
  bool list_fault_points = false;
  std::string metrics_out;  // empty = off; "stderr" or a file path
  std::string trace_out;    // empty = off
  std::string digests_out;  // empty = off
  double execute_sf = 0;    // 0 = rewrite-only digests
  std::vector<std::string> files;
};

struct LintTotals {
  size_t queries = 0;
  size_t errors = 0;
  size_t warnings = 0;
  size_t rewritten = 0;
  size_t degraded = 0;  // rewrites that fell down the ladder
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload N] [--seed S] [--rewrite]\n"
               "          [--max-iterations N] [--deadline-ms N]\n"
               "          [--threads N] [--target TABLE]\n"
               "          [--no-pushdown] [--werror]\n"
               "          [--list-fault-points] [--metrics-out DEST]\n"
               "          [--trace-out FILE] [--digests-out FILE]\n"
               "          [--execute-sf SF] [-q|--quiet] [file.sql ...]\n",
               argv0);
  return 2;
}

void Report(const std::string& label, const sia::Diagnostics& diags,
            const LintOptions& options, LintTotals* totals) {
  totals->errors += diags.error_count();
  totals->warnings += diags.warning_count();
  if (options.quiet) return;
  for (const sia::Diagnostic& d : diags.items()) {
    std::printf("%s: %s\n", label.c_str(), d.ToString().c_str());
  }
}

// parse/bind/plan/movement (+ optional rewrite) for one query; every
// stage's findings are labeled with the stage that produced them.
// Sums the duration of every span named `name` recorded at or after
// `since_us`. Used to rebuild the per-stage time split of a single
// rewrite from the tracer instead of from SynthesisStats.
double SpanMillisSince(const std::vector<sia::obs::TraceEvent>& events,
                       std::string_view name, uint64_t since_us) {
  double ms = 0.0;
  for (const sia::obs::TraceEvent& ev : events) {
    if (ev.ts_us >= since_us && ev.name == name) {
      ms += static_cast<double>(ev.dur_us) / 1000.0;
    }
  }
  return ms;
}

// When `precomputed` is non-null (the --threads batch path), the rewrite
// already ran; the outcome is validated here instead of re-rewriting.
void LintQuery(const std::string& label, const sia::ParsedQuery& query,
               const sia::Catalog& catalog, const LintOptions& options,
               LintTotals* totals,
               const sia::RewriteOutcome* precomputed = nullptr) {
  SIA_TRACE_SPAN("lint.query");
  ++totals->queries;

  const auto joint = catalog.JointSchema(query.tables);
  if (!joint.ok()) {
    ++totals->errors;
    if (!options.quiet) {
      std::printf("%s: error [catalog] %s\n", label.c_str(),
                  joint.status().message().c_str());
    }
    return;
  }

  if (query.where != nullptr) {
    auto bound = sia::Bind(query.where, *joint);
    if (!bound.ok()) {
      ++totals->errors;
      if (!options.quiet) {
        std::printf("%s: error [bind] %s\n", label.c_str(),
                    bound.status().message().c_str());
      }
      return;
    }
    sia::Diagnostics diags;
    sia::ExprValidatorOptions expr_opts;
    expr_opts.require_boolean = true;
    sia::ValidateExpr(*bound, *joint, &diags, expr_opts);
    Report(label + " [where]", diags, options, totals);
  }

  sia::PlannerOptions planner_options;
  planner_options.push_down_filters = options.push_down;
  auto plan = sia::PlanQuery(query, catalog, planner_options);
  if (!plan.ok()) {
    ++totals->errors;
    if (!options.quiet) {
      std::printf("%s: error [plan] %s\n", label.c_str(),
                  plan.status().message().c_str());
    }
    return;
  }
  sia::PlanValidatorOptions plan_opts;
  plan_opts.catalog = &catalog;
  {
    sia::Diagnostics diags;
    sia::ValidatePlan(*plan, &diags, plan_opts);
    Report(label + " [plan]", diags, options, totals);
  }
  {
    const sia::PlanPtr moved = sia::ApplyPredicateMovement(*plan);
    sia::Diagnostics diags;
    sia::ValidatePlan(moved, &diags, plan_opts);
    Report(label + " [movement]", diags, options, totals);
  }

  if (!options.rewrite) return;
  sia::RewriteOutcome outcome_value;
  // Tracer spans since trace_mark describe THIS query's rewrite only
  // when the rewrite ran here; in the batch path the spans interleave
  // across workers, so the stage split falls back to SynthesisStats.
  uint64_t trace_mark = 0;
  bool traced_here = false;
  if (precomputed != nullptr) {
    outcome_value = *precomputed;
  } else {
    sia::RewriteOptions rewrite_options;
    rewrite_options.target_table = options.target_table;
    if (options.max_iterations > 0) {
      rewrite_options.synthesis.max_iterations = options.max_iterations;
    }
    if (options.deadline_ms > 0) {
      // The budget starts now and is shared by every solver call the
      // rewrite makes, across all ladder rungs.
      rewrite_options.deadline =
          sia::Deadline::FromNowMillis(options.deadline_ms);
    }
    // Marks the start of this query's rewrite in the tracer's timeline
    // so the degraded-query stage split below can be summed from spans.
    traced_here = sia::obs::Tracer::Enabled();
    trace_mark =
        traced_here ? sia::obs::Tracer::Instance().NowMicros() : 0;
    auto outcome = sia::RewriteQuery(query, catalog, rewrite_options);
    if (!outcome.ok()) {
      ++totals->errors;
      if (!options.quiet) {
        std::printf("%s: error [rewrite] %s\n", label.c_str(),
                    outcome.status().message().c_str());
      }
      return;
    }
    outcome_value = std::move(*outcome);
  }
  if (!outcome_value.degradation.empty()) {
    ++totals->degraded;
    if (!options.quiet) {
      std::printf("%s: note [rewrite] degraded to rung '%s'\n", label.c_str(),
                  sia::RewriteRungName(outcome_value.rung));
      for (const std::string& why : outcome_value.degradation) {
        std::printf("%s: note [rewrite]   %s\n", label.c_str(), why.c_str());
      }
      const sia::SynthesisStats& st = outcome_value.synthesis.stats;
      if (traced_here) {
        // Stage split summed from the tracer's spans for this query:
        // generation = initial sampling + counter-example search,
        // matching what SynthesisStats used to hand-time.
        const std::vector<sia::obs::TraceEvent> events =
            sia::obs::Tracer::Instance().CollectEvents();
        std::printf(
            "%s: note [rewrite]   stage time: generation %.1fms, "
            "learning %.1fms, validation %.1fms (%zu solver calls)\n",
            label.c_str(),
            SpanMillisSince(events, "synth.sample", trace_mark) +
                SpanMillisSince(events, "verify.cex", trace_mark),
            SpanMillisSince(events, "learn.train", trace_mark),
            SpanMillisSince(events, "verify.check", trace_mark),
            st.solver_calls);
      } else {
        std::printf("%s: note [rewrite]   stage time: generation %.1fms, "
                    "learning %.1fms, validation %.1fms (%zu solver calls)\n",
                    label.c_str(), st.generation_ms, st.learning_ms,
                    st.validation_ms, st.solver_calls);
      }
      if (outcome_value.synthesis.deadline_expired) {
        std::printf(
            "%s: note [rewrite]   deadline expired in stage '%s'\n",
            label.c_str(), outcome_value.synthesis.timeout_stage.c_str());
      }
    }
  }
  if (!outcome_value.changed()) return;
  ++totals->rewritten;

  {
    sia::Diagnostics diags;
    sia::ExprValidatorOptions expr_opts;
    expr_opts.require_boolean = true;
    sia::ValidateExpr(outcome_value.learned, *joint, &diags, expr_opts);
    sia::ValidateCnf(outcome_value.learned, &diags);
    Report(label + " [learned]", diags, options, totals);
  }
  auto replan =
      sia::PlanQuery(outcome_value.rewritten, catalog, planner_options);
  if (!replan.ok()) {
    ++totals->errors;
    if (!options.quiet) {
      std::printf("%s: error [replan] %s\n", label.c_str(),
                  replan.status().message().c_str());
    }
    return;
  }
  sia::Diagnostics diags;
  sia::ValidatePlan(sia::ApplyPredicateMovement(*replan), &diags, plan_opts);
  Report(label + " [rewritten-plan]", diags, options, totals);
}

// Splits file contents into ';'-separated statements, skipping blanks
// and whole-line "--" comments.
std::vector<std::string> SplitStatements(const std::string& text) {
  std::string cleaned;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string_view stripped = sia::StripWhitespace(line);
    if (stripped.rfind("--", 0) == 0) continue;
    cleaned += line;
    cleaned += "\n";
  }
  std::vector<std::string> out;
  for (const std::string& piece : sia::Split(cleaned, ';')) {
    if (!sia::StripWhitespace(piece).empty()) {
      out.push_back(std::string(sia::StripWhitespace(piece)));
    }
  }
  return out;
}

// --metrics-out promises solver-call latency percentiles, per-rung
// rewrite counters, and per-point fault firing counts even when the run
// exercised none of them (e.g. lint without --rewrite): preregister
// those metrics so the snapshot always carries them, zero-valued.
void PreregisterCoreMetrics() {
  sia::obs::MetricsRegistry& reg = sia::obs::MetricsRegistry::Instance();
  reg.GetHistogram("smt.check.latency_us");
  reg.GetHistogram("smt.optimize.latency_us");
  reg.GetCounter("rewrite.queries");
  reg.GetCounter("rewrite.changed");
  reg.GetCounter("rewrite.cache.hit");
  reg.GetCounter("rewrite.cache.miss");
  reg.GetCounter("rewrite.batch.queries");
  reg.GetCounter("exec.scan.vectorized_fallback");
  for (const char* rung : {"full", "retry", "interval", "original"}) {
    reg.GetCounter(std::string("rewrite.rung.") + rung);
  }
  for (const std::string& point : sia::FaultRegistry::KnownPoints()) {
    reg.GetCounter("fault.hit." + point);
    reg.GetCounter("fault.injected." + point);
  }
}

// `<point> fired=N injected=M` per known fault point; N counts armed
// points reached, M the subset where the fault actually triggered.
void PrintFaultPoints() {
  sia::obs::MetricsRegistry& reg = sia::obs::MetricsRegistry::Instance();
  for (const std::string& point : sia::FaultRegistry::KnownPoints()) {
    std::printf("%s fired=%llu injected=%llu\n", point.c_str(),
                static_cast<unsigned long long>(
                    reg.GetCounter("fault.hit." + point).Value()),
                static_cast<unsigned long long>(
                    reg.GetCounter("fault.injected." + point).Value()));
  }
}

int LintSqlText(const std::string& origin, const std::string& text,
                const sia::Catalog& catalog, const LintOptions& options,
                LintTotals* totals) {
  const std::vector<std::string> statements = SplitStatements(text);
  size_t index = 0;
  for (const std::string& sql : statements) {
    ++index;
    const std::string label = origin + ":" + std::to_string(index);
    auto parsed = sia::ParseQuery(sql);
    if (!parsed.ok()) {
      ++totals->queries;
      ++totals->errors;
      if (!options.quiet) {
        std::printf("%s: error [parse] %s\n", label.c_str(),
                    parsed.status().message().c_str());
      }
      continue;
    }
    LintQuery(label, *parsed, catalog, options, totals);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.workload_count = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--target") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.target_table = v;
    } else if (arg == "--rewrite") {
      options.rewrite = true;
    } else if (arg == "--max-iterations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_iterations = std::atoi(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.deadline_ms = std::atoll(v);
      if (options.deadline_ms <= 0) {
        std::fprintf(stderr, "--deadline-ms wants a positive integer\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.threads = std::atoi(v);
      if (options.threads < 1 ||
          options.threads >
              static_cast<int>(sia::ThreadPool::kMaxThreads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, %zu]\n",
                     sia::ThreadPool::kMaxThreads);
        return Usage(argv[0]);
      }
    } else if (arg == "--list-fault-points") {
      options.list_fault_points = true;
    } else if (arg == "--metrics-out" ||
               arg.rfind("--metrics-out=", 0) == 0) {
      if (arg.size() > std::strlen("--metrics-out")) {
        options.metrics_out = arg.substr(std::strlen("--metrics-out="));
      } else {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        options.metrics_out = v;
      }
    } else if (arg == "--trace-out" || arg.rfind("--trace-out=", 0) == 0) {
      if (arg.size() > std::strlen("--trace-out")) {
        options.trace_out = arg.substr(std::strlen("--trace-out="));
      } else {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        options.trace_out = v;
      }
    } else if (arg == "--digests-out" ||
               arg.rfind("--digests-out=", 0) == 0) {
      if (arg.size() > std::strlen("--digests-out")) {
        options.digests_out = arg.substr(std::strlen("--digests-out="));
      } else {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        options.digests_out = v;
      }
    } else if (arg == "--execute-sf") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.execute_sf = std::atof(v);
    } else if (arg == "--no-pushdown") {
      options.push_down = false;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "-q" || arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      options.files.push_back(arg);
    }
  }

  if (options.threads > 1 && options.deadline_ms > 0) {
    std::fprintf(stderr,
                 "--threads and --deadline-ms are incompatible: the "
                 "deadline is an absolute instant, so a batch would "
                 "share one budget across all queries\n");
    return Usage(argv[0]);
  }
  if (!options.digests_out.empty()) {
    if (!options.rewrite || options.workload_count == 0) {
      std::fprintf(stderr,
                   "--digests-out requires --rewrite and --workload\n");
      return Usage(argv[0]);
    }
    if (options.deadline_ms > 0) {
      std::fprintf(stderr,
                   "--digests-out and --deadline-ms are incompatible: "
                   "digests must be deterministic, deadline outcomes are "
                   "timing-dependent\n");
      return Usage(argv[0]);
    }
  }
  if (options.execute_sf > 0 && options.digests_out.empty()) {
    std::fprintf(stderr, "--execute-sf only makes sense with --digests-out\n");
    return Usage(argv[0]);
  }

  // Firing counts and the snapshot both come from the metrics registry;
  // the tracer additionally backs --trace-out and the --deadline-ms
  // per-stage time split.
  if (!options.metrics_out.empty() || options.list_fault_points) {
    sia::obs::MetricsRegistry::SetEnabled(true);
    PreregisterCoreMetrics();
  }
  if (!options.trace_out.empty() ||
      (options.rewrite && options.deadline_ms > 0)) {
    sia::obs::Tracer::SetEnabled(true);
  }

  const bool have_inputs =
      !options.files.empty() || options.workload_count > 0;
  if (options.list_fault_points && !have_inputs) {
    PrintFaultPoints();  // nothing ran, so every count is zero
    return 0;
  }

  const sia::Catalog catalog = sia::Catalog::TpchCatalog();
  LintTotals totals;

  for (const std::string& path : options.files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    LintSqlText(path, buffer.str(), catalog, options, &totals);
  }

  if (options.workload_count > 0) {
    sia::QueryGenOptions gen;
    gen.seed = options.seed;
    auto queries =
        sia::GenerateWorkload(catalog, options.workload_count, gen);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   queries.status().ToString().c_str());
      return 2;
    }
    // Batch path: rewrite every workload query up front on a private
    // pool through one shared single-flight cache, then lint the
    // outcomes in workload order (output identical to the serial path).
    // --digests-out also goes through here even at --threads 1 (the
    // pool degenerates to inline execution) so digest lines always come
    // from cache-mediated outcomes, exactly like a served run.
    std::vector<sia::RewriteOutcome> precomputed;
    bool have_precomputed = false;
    if (options.rewrite &&
        (options.threads > 1 || !options.digests_out.empty())) {
      sia::ThreadPool pool(static_cast<size_t>(options.threads));
      sia::RewriteCache cache;
      sia::BatchRewriteOptions batch;
      batch.rewrite.target_table = options.target_table;
      if (options.max_iterations > 0) {
        batch.rewrite.synthesis.max_iterations = options.max_iterations;
      }
      batch.cache = &cache;
      batch.pool = &pool;
      std::vector<sia::ParsedQuery> parsed;
      parsed.reserve(queries->size());
      for (const sia::GeneratedQuery& q : *queries) {
        parsed.push_back(q.query);
      }
      auto outcomes = sia::RewriteBatch(parsed, catalog, batch);
      if (!outcomes.ok()) {
        std::fprintf(stderr, "batch rewrite failed: %s\n",
                     outcomes.status().ToString().c_str());
        return 2;
      }
      precomputed = std::move(*outcomes);
      have_precomputed = true;
    }
    for (size_t qi = 0; qi < queries->size(); ++qi) {
      const sia::GeneratedQuery& q = (*queries)[qi];
      LintQuery("workload:seed" + std::to_string(q.seed), q.query, catalog,
                options, &totals,
                have_precomputed ? &precomputed[qi] : nullptr);
    }

    // Digest lines render through the same code a served run uses
    // (server/service.h ReplyFromOutcome + ExecuteInto, protocol.h
    // FormatDigestLine), so equality with sia_client output is by
    // construction, not by parallel formatting.
    if (!options.digests_out.empty()) {
      std::ofstream out(options.digests_out);
      if (!out) {
        std::fprintf(stderr, "--digests-out: cannot write %s\n",
                     options.digests_out.c_str());
        return 2;
      }
      std::optional<sia::TpchData> data;
      sia::Executor executor;
      if (options.execute_sf > 0) {
        data.emplace(sia::GenerateTpch(options.execute_sf, 42));
        executor.RegisterTable("orders", &data->orders);
        executor.RegisterTable("lineitem", &data->lineitem);
      }
      for (size_t qi = 0; qi < queries->size(); ++qi) {
        sia::server::QueryReply reply =
            sia::server::ReplyFromOutcome(precomputed[qi]);
        if (data.has_value()) {
          const sia::Status executed = sia::server::ExecuteInto(
              precomputed[qi].rewritten, catalog, executor, &reply);
          if (!executed.ok()) {
            std::fprintf(stderr, "--digests-out: execution failed: %s\n",
                         executed.ToString().c_str());
            return 2;
          }
        }
        out << sia::server::FormatDigestLine((*queries)[qi].seed, reply)
            << "\n";
      }
    }
  }

  if (options.files.empty() && options.workload_count == 0) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    LintSqlText("<stdin>", buffer.str(), catalog, options, &totals);
  }

  std::printf("%zu quer%s checked, %zu error%s, %zu warning%s",
              totals.queries, totals.queries == 1 ? "y" : "ies",
              totals.errors, totals.errors == 1 ? "" : "s",
              totals.warnings, totals.warnings == 1 ? "" : "s");
  if (options.rewrite) {
    std::printf(", %zu rewritten, %zu degraded", totals.rewritten,
                totals.degraded);
  }
  std::printf("\n");

  if (options.list_fault_points) PrintFaultPoints();
  if (!options.metrics_out.empty()) {
    std::string error;
    if (!sia::obs::MetricsRegistry::Instance().WriteSnapshot(
            options.metrics_out, &error)) {
      std::fprintf(stderr, "--metrics-out: %s\n", error.c_str());
      return 2;
    }
  }
  if (!options.trace_out.empty()) {
    std::string error;
    if (!sia::obs::Tracer::Instance().WriteChromeTrace(options.trace_out,
                                                       &error)) {
      std::fprintf(stderr, "--trace-out: %s\n", error.c_str());
      return 2;
    }
  }

  if (totals.errors > 0) return 1;
  if (options.werror && totals.warnings > 0) return 1;
  return 0;
}
