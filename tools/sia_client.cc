// sia_client — load generator and test client for sia_serve. Generates
// the same §6.3 seeded workload as sia_lint, drives it through a running
// server over the length-prefixed protocol, and (optionally) writes the
// canonical per-query digest lines that scripts/check.sh diffs against a
// batch sia_lint run.
//
//   sia_client --port P [options]
//     --host H            server address (default 127.0.0.1)
//     --workload N        send N seeded workload queries (default 0)
//     --seed S            workload generator seed (default 2021)
//     --sql "SELECT ..."  send one ad-hoc query instead of a workload
//     --ping              send PING and print the reply
//     --stats             after the workload, fetch STATS and print the
//                         metrics JSON to stdout
//     --concurrency C     client threads (default 1)
//     --retries R         on SHED, back off for the server's
//                         retry_after_ms jittered by [0.5,1.5) and retry
//                         up to R times (default 0: record the shed)
//     --timeout-ms N      per-operation connect/read/write budget
//                         (default 60000)
//     --digests-out F     write digest lines (workload order) to F
//     -q, --quiet         suppress per-query output, keep the summary
//
// Every run ends with one summary line:
//   sent=<n> ok=<n> shed=<n> server_errors=<n> closed=<n>
// `closed` counts connections the server dropped without a response —
// expected while it drains, an anomaly otherwise. Exit status: 0 when
// every response was OK or SHED or a drain-time close, 1 when any ERROR
// response came back, 2 on usage or setup failure.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/net.h"
#include "common/rng.h"
#include "common/sync.h"
#include "server/protocol.h"
#include "workload/querygen.h"

namespace {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t workload_count = 0;
  uint64_t seed = 2021;
  std::string sql;
  bool ping = false;
  bool stats = false;
  size_t concurrency = 1;
  int retries = 0;
  int64_t timeout_ms = 60000;
  std::string digests_out;
  bool quiet = false;
};

enum class QueryResult { kOk, kShed, kServerError, kClosed };

struct QueryRecord {
  QueryResult result = QueryResult::kClosed;
  sia::server::QueryReply reply;
  std::string detail;  // error message / close reason
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--workload N] [--seed S]\n"
               "          [--sql QUERY] [--ping] [--stats]\n"
               "          [--concurrency C] [--retries R] [--timeout-ms N]\n"
               "          [--digests-out F] [-q|--quiet]\n",
               argv0);
  return 2;
}

// One round trip: connect, send the request frame, read the response
// frame. Transport failures come back as non-OK Status; protocol-level
// outcomes (OK/SHED/ERROR) come back in the Response.
sia::Result<sia::server::Response> RoundTrip(const ClientOptions& options,
                                             const std::string& payload) {
  SIA_ASSIGN_OR_RETURN(sia::net::Socket conn,
                       sia::net::Connect(options.host, options.port,
                                         options.timeout_ms));
  SIA_RETURN_IF_ERROR(conn.SendFrame(payload, options.timeout_ms));
  SIA_ASSIGN_OR_RETURN(std::string frame, conn.RecvFrame(options.timeout_ms));
  return sia::server::ParseResponse(frame);
}

// Sends one query, retrying shed responses when asked to.
QueryRecord SendQuery(const ClientOptions& options, const std::string& sql) {
  QueryRecord record;
  const std::string payload = std::string(sia::server::kVerbQuery) + "\n" + sql;
  for (int attempt = 0;; ++attempt) {
    auto response = RoundTrip(options, payload);
    if (!response.ok()) {
      record.result = QueryResult::kClosed;
      record.detail = response.status().ToString();
      return record;
    }
    switch (response->kind) {
      case sia::server::ResponseKind::kOk:
        record.result = QueryResult::kOk;
        if (response->query.has_value()) record.reply = *response->query;
        return record;
      case sia::server::ResponseKind::kShed:
        if (attempt < options.retries) {
          // Honor the server's (pressure-scaled) hint, jittered by
          // [0.5, 1.5): refused clients that all sleep the literal hint
          // reconverge into one synchronized retry burst and get shed
          // again together.
          static std::atomic<uint64_t> backoff_seed{0xC11E57u};
          thread_local sia::Rng rng{
              backoff_seed.fetch_add(0x9E3779B97F4A7C15ull)};
          const int64_t base = std::max<int64_t>(1, response->retry_after_ms);
          const int64_t sleep_ms = std::max<int64_t>(
              1, static_cast<int64_t>(static_cast<double>(base) *
                                      (0.5 + rng.NextDouble())));
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
          continue;
        }
        record.result = QueryResult::kShed;
        return record;
      case sia::server::ResponseKind::kError:
        record.result = QueryResult::kServerError;
        record.detail = response->error.ToString();
        return record;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next()) != nullptr) {
      options.host = v;
    } else if (arg == "--port" && (v = next()) != nullptr) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--workload" && (v = next()) != nullptr) {
      options.workload_count = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next()) != nullptr) {
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--sql" && (v = next()) != nullptr) {
      options.sql = v;
    } else if (arg == "--ping") {
      options.ping = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--concurrency" && (v = next()) != nullptr) {
      options.concurrency = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--retries" && (v = next()) != nullptr) {
      options.retries = std::atoi(v);
    } else if (arg == "--timeout-ms" && (v = next()) != nullptr) {
      options.timeout_ms = std::atoll(v);
    } else if (arg == "--digests-out" && (v = next()) != nullptr) {
      options.digests_out = v;
    } else if (arg == "-q" || arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage(argv[0]);
  }
  if (options.concurrency == 0) options.concurrency = 1;

  if (options.ping) {
    auto response = RoundTrip(options, std::string(sia::server::kVerbPing));
    if (!response.ok() ||
        response->kind != sia::server::ResponseKind::kOk) {
      std::fprintf(stderr, "ping failed: %s\n",
                   response.ok() ? response->error.ToString().c_str()
                                 : response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->body.c_str());
  }

  // The queries to send: one ad-hoc statement, or the seeded workload
  // (generated exactly as sia_lint does, so seeds and SQL text match).
  std::vector<std::string> sqls;
  std::vector<uint64_t> seeds;
  if (!options.sql.empty()) {
    sqls.push_back(options.sql);
    seeds.push_back(0);
  }
  if (options.workload_count > 0) {
    const sia::Catalog catalog = sia::Catalog::TpchCatalog();
    sia::QueryGenOptions gen;
    gen.seed = options.seed;
    auto queries =
        sia::GenerateWorkload(catalog, options.workload_count, gen);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   queries.status().ToString().c_str());
      return 2;
    }
    for (const sia::GeneratedQuery& q : *queries) {
      sqls.push_back(q.sql);
      seeds.push_back(q.seed);
    }
  }

  std::vector<QueryRecord> records(sqls.size());
  if (!sqls.empty()) {
    std::atomic<size_t> next_index{0};
    auto drive = [&] {
      for (;;) {
        const size_t i = next_index.fetch_add(1);
        if (i >= sqls.size()) return;
        records[i] = SendQuery(options, sqls[i]);
      }
    };
    std::vector<sia::Thread> threads;
    const size_t n =
        std::min(options.concurrency, sqls.size() == 0 ? 1 : sqls.size());
    threads.reserve(n);
    for (size_t t = 0; t < n; ++t) threads.emplace_back(drive);
    for (sia::Thread& t : threads) t.Join();
  }

  size_t ok = 0, shed = 0, server_errors = 0, closed = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const QueryRecord& r = records[i];
    switch (r.result) {
      case QueryResult::kOk:
        ++ok;
        break;
      case QueryResult::kShed:
        ++shed;
        break;
      case QueryResult::kServerError:
        ++server_errors;
        break;
      case QueryResult::kClosed:
        ++closed;
        break;
    }
    if (!options.quiet &&
        (r.result == QueryResult::kServerError ||
         r.result == QueryResult::kClosed)) {
      std::fprintf(stderr, "query %zu (seed %llu): %s\n", i,
                   static_cast<unsigned long long>(seeds[i]),
                   r.detail.c_str());
    }
  }

  if (!options.digests_out.empty()) {
    std::ofstream out(options.digests_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.digests_out.c_str());
      return 2;
    }
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].result != QueryResult::kOk) continue;
      out << sia::server::FormatDigestLine(seeds[i], records[i].reply)
          << "\n";
    }
  }

  if (options.stats) {
    auto response = RoundTrip(options, std::string(sia::server::kVerbStats));
    if (!response.ok() ||
        response->kind != sia::server::ResponseKind::kOk) {
      std::fprintf(stderr, "stats failed: %s\n",
                   response.ok() ? response->error.ToString().c_str()
                                 : response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->body.c_str());
  }

  std::printf("sent=%zu ok=%zu shed=%zu server_errors=%zu closed=%zu\n",
              records.size(), ok, shed, server_errors, closed);
  return server_errors > 0 ? 1 : 0;
}
