#ifndef SIA_TOOLS_CONVENTIONS_LIB_H_
#define SIA_TOOLS_CONVENTIONS_LIB_H_

// Repo-invariant conventions linter (the logic behind sia_conventions).
//
// A dependency-free (stdlib-only) source scanner that enforces the
// repo's cross-cutting invariants — the ones a compiler only checks
// when it happens to be Clang, plus the ones no compiler checks at all:
//
//   mutex-guarded-by      every `Mutex` member has at least one
//                         SIA_GUARDED_BY(that_mutex) user in the file
//   raw-sync-primitive    no std::mutex / std::thread / std::lock_guard
//                         / std::condition_variable / ... outside
//                         src/common/sync.h (std::this_thread is fine —
//                         sync.h deliberately does not wrap sleeping)
//   nodiscard-status      every header declaration returning Status or
//                         Result<T> carries [[nodiscard]]
//   obs-name-catalog      every literal metric/span name passed to the
//                         obs macros appears in DESIGN.md's catalog
//                         (names starting "test." are always allowed)
//   trace-span-scope      SIA_TRACE_SPAN only inside function bodies
//                         (a namespace-scope span would pin one span
//                         open for the whole process)
//   ntsa-justified        every SIA_NO_THREAD_SAFETY_ANALYSIS carries a
//                         justification comment on or above the line
//
// Findings are suppressible in place with
//   // sia-conventions: allow(rule-name) <reason>
// on the offending line or the line above. Reasons are mandatory by
// convention (reviewers see them), not enforced.
//
// The scanner is token-shaped, not a parser: comments and string/char
// literals are blanked before the ban/structure rules run (so a banned
// token in a comment or a fixture string never fires), while the
// obs-name rule reads the comment-stripped text with strings intact
// (the names *are* strings). That keeps the linter honest on its own
// source and on its test fixtures.

#include <cstddef>
#include <string>
#include <vector>

namespace sia::conventions {

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// The rule identifiers, in reporting order.
const std::vector<std::string>& RuleNames();

// Pulls the allowed metric/span names out of DESIGN.md text: every
// backticked token between the "Span naming convention." and "CLI and
// bench surface." markers that looks like a dotted obs name. Brace
// groups expand (`a.{x,y}` -> a.x, a.y); `<placeholder>` and `.*`
// tails become prefix wildcards (stored with a trailing '*').
std::vector<std::string> ExtractCatalog(const std::string& design_md);

struct Options {
  // Allowed obs names from ExtractCatalog. Empty => the obs-name rule
  // is skipped (the caller could not find DESIGN.md).
  std::vector<std::string> catalog;
};

// Lints one file's contents. `path` drives per-rule scoping (the
// headers-only rule keys on ".h", the sync.h exemption on the path
// suffix "common/sync.h"), so pass repo-relative paths.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& text, const Options& opts);

// Walks <root>/{src,tools,tests,bench} for *.cc / *.h (skipping
// tests/conventions fixtures), lints each against the catalog from
// <root>/DESIGN.md, and returns findings sorted by file then line.
// `files_scanned` (optional) reports how many files were read.
std::vector<Finding> LintTree(const std::string& root,
                              size_t* files_scanned);

}  // namespace sia::conventions

#endif  // SIA_TOOLS_CONVENTIONS_LIB_H_
