// sia_serve — the resident query-rewriting daemon. Binds a TCP port,
// serves the length-prefixed line protocol (see src/server/protocol.h:
// PING / STATS / QUERY), and drains gracefully on SIGTERM or SIGINT:
// stop accepting, finish everything admitted, exit 0 — exit 1 when the
// drain outlives --drain-ms.
//
//   sia_serve [options]
//     --port N            TCP port (default 0 = kernel-chosen; the
//                         chosen port is printed on the LISTENING line)
//     --port-file F       also write the chosen port to F (for scripts)
//     --workers N         worker threads (default 2)
//     --queue-depth N     admission-queue depth; beyond it requests are
//                         shed with a Retry-After hint (default 64)
//     --deadline-ms N     per-request rewrite-ladder budget (default 0
//                         = unlimited; per request, unlike sia_lint's
//                         whole-process --deadline-ms)
//     --drain-ms N        graceful-drain budget on SIGTERM (default 10000)
//     --retry-after-ms N  hint carried in SHED responses (default 100)
//     --io-timeout-ms N   per-connection read/write budget (default 5000)
//     --scale SF          generate TPC-H data at SF and execute every
//                         rewritten query, reporting result digests
//                         (default 0 = rewrite-only)
//     --data-seed S       TPC-H generator seed (default 42, matching
//                         sia_lint --execute-sf)
//     --target TABLE      rewrite target table (default lineitem)
//     --max-iterations N  synthesis iteration budget (default:
//                         synthesizer default)
//     --sync-rewrite      synthesize on the serving path (legacy mode:
//                         a miss blocks its request on the ladder).
//                         Default is background learning: misses serve
//                         the original immediately and the predicate is
//                         synthesized on the pool's background lane,
//                         then promoted on measured shadow evidence
//     --promote-after N   shadow wins required to promote (default 3)
//     --demote-after N    shadow losses that demote (default 3)
//     --shadow-sample-rate R  fraction of eligible requests that
//                         paranoid-cross-check the rewrite (default 0.1)
//     --background-budget-ms N  per-job synthesis budget on the
//                         background lane (default 2000); background
//                         jobs never inherit a request's deadline
//
// Prints exactly one line to stdout once serving:
//   LISTENING port=<p> workers=<n> queue_depth=<n> exec=<0|1>
// and a final line after drain:
//   DRAINED accepted=<n> completed=<n> shed=<n> protocol_errors=<n>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--port-file F] [--workers N]\n"
               "          [--queue-depth N] [--deadline-ms N] [--drain-ms N]\n"
               "          [--retry-after-ms N] [--io-timeout-ms N]\n"
               "          [--scale SF] [--data-seed S] [--target TABLE]\n"
               "          [--max-iterations N] [--sync-rewrite]\n"
               "          [--promote-after N] [--demote-after N]\n"
               "          [--shadow-sample-rate R] [--background-budget-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sia::server::ServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next()) != nullptr) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--port-file" && (v = next()) != nullptr) {
      port_file = v;
    } else if (arg == "--workers" && (v = next()) != nullptr) {
      options.workers = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--queue-depth" && (v = next()) != nullptr) {
      options.queue_depth = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--deadline-ms" && (v = next()) != nullptr) {
      options.service.request_deadline_ms = std::atoll(v);
    } else if (arg == "--drain-ms" && (v = next()) != nullptr) {
      options.drain_deadline_ms = std::atoll(v);
    } else if (arg == "--retry-after-ms" && (v = next()) != nullptr) {
      options.retry_after_ms = std::atoll(v);
    } else if (arg == "--io-timeout-ms" && (v = next()) != nullptr) {
      options.io_timeout_ms = std::atoll(v);
    } else if (arg == "--scale" && (v = next()) != nullptr) {
      options.service.scale_factor = std::atof(v);
    } else if (arg == "--data-seed" && (v = next()) != nullptr) {
      options.service.data_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--target" && (v = next()) != nullptr) {
      options.service.target_table = v;
    } else if (arg == "--max-iterations" && (v = next()) != nullptr) {
      options.service.max_iterations = std::atoi(v);
    } else if (arg == "--sync-rewrite") {
      options.service.background_learning = false;
    } else if (arg == "--promote-after" && (v = next()) != nullptr) {
      options.service.promote_after = std::atoi(v);
    } else if (arg == "--demote-after" && (v = next()) != nullptr) {
      options.service.demote_after = std::atoi(v);
    } else if (arg == "--shadow-sample-rate" && (v = next()) != nullptr) {
      options.service.shadow_sample_rate = std::atof(v);
    } else if (arg == "--background-budget-ms" && (v = next()) != nullptr) {
      options.service.background_budget_ms = std::atoll(v);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  auto server = sia::server::SiaServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "sia_serve: %s\n",
                 server.status().ToString().c_str());
    return 2;
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << (*server)->port() << "\n";
    if (!out) {
      std::fprintf(stderr, "sia_serve: cannot write %s\n", port_file.c_str());
      return 2;
    }
  }
  std::printf("LISTENING port=%u workers=%zu queue_depth=%zu exec=%d\n",
              (*server)->port(), options.workers, options.queue_depth,
              options.service.scale_factor > 0 ? 1 : 0);
  std::fflush(stdout);

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const sia::Status drained = (*server)->DrainAndStop();
  const sia::server::ServerCounters counters = (*server)->counters();
  std::printf(
      "DRAINED accepted=%llu completed=%llu shed=%llu protocol_errors=%llu\n",
      static_cast<unsigned long long>(counters.accepted),
      static_cast<unsigned long long>(counters.completed),
      static_cast<unsigned long long>(counters.shed),
      static_cast<unsigned long long>(counters.protocol_errors));
  if (!drained.ok()) {
    std::fprintf(stderr, "sia_serve: %s\n", drained.ToString().c_str());
    return 1;
  }
  return 0;
}
