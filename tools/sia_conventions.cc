// sia_conventions: the repo-invariant linter gate.
//
//   sia_conventions [--root=DIR] [file...]
//
// With no file arguments, walks DIR (default ".") as a repo tree —
// src/ tools/ tests/ bench/, *.cc and *.h — and lints every file
// against the obs-name catalog extracted from DIR/DESIGN.md. With file
// arguments, lints just those files (paths are reported as given).
//
// Prints one line per finding plus a per-rule summary, and exits
// non-zero when anything fired. Suppress a deliberate violation with
//   // sia-conventions: allow(rule-name) <reason>
// on the offending line or the line above.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/conventions_lib.h"

namespace {

int Run(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--root=", 7) == 0) {
      root = arg + 7;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: sia_conventions [--root=DIR] [file...]\n");
      return 0;
    } else {
      files.emplace_back(arg);
    }
  }

  std::vector<sia::conventions::Finding> findings;
  size_t scanned = 0;
  if (files.empty()) {
    findings = sia::conventions::LintTree(root, &scanned);
  } else {
    sia::conventions::Options opts;
    {
      std::ifstream design(root + "/DESIGN.md");
      if (design) {
        std::stringstream buf;
        buf << design.rdbuf();
        opts.catalog = sia::conventions::ExtractCatalog(buf.str());
      }
    }
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "sia_conventions: cannot read %s\n",
                     file.c_str());
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto file_findings =
          sia::conventions::LintFile(file, buf.str(), opts);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++scanned;
    }
  }

  std::map<std::string, size_t> per_rule;
  for (const std::string& rule : sia::conventions::RuleNames()) {
    per_rule[rule] = 0;
  }
  for (const auto& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
    ++per_rule[f.rule];
  }

  std::printf("sia_conventions: %zu file%s scanned, %zu finding%s\n",
              scanned, scanned == 1 ? "" : "s", findings.size(),
              findings.size() == 1 ? "" : "s");
  for (const auto& [rule, count] : per_rule) {
    std::printf("  %-20s %zu\n", rule.c_str(), count);
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
