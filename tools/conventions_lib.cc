#include "tools/conventions_lib.h"

#include <algorithm>
#include <tuple>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace sia::conventions {
namespace {

// ---------------------------------------------------------------------
// Source scrubbing. Line structure (every '\n') is preserved in both
// variants so offsets map straight back to line numbers.

struct Scrubbed {
  std::string no_comments;  // comments blanked; strings intact
  std::string code_only;    // comments, string/char literals, and
                            // preprocessor directives blanked
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scrubbed Scrub(const std::string& in) {
  const size_t n = in.size();
  std::string nc(in), co(in);
  auto blank = [&](std::string& s, size_t from, size_t to) {
    for (size_t k = from; k < to && k < n; ++k) {
      if (s[k] != '\n') s[k] = ' ';
    }
  };
  bool at_line_start = true;  // only whitespace seen since last '\n'
  size_t i = 0;
  while (i < n) {
    const char c = in[i];
    if (c == '\n') {
      at_line_start = true;
      ++i;
      continue;
    }
    // Preprocessor directive (with backslash continuations): blanked in
    // code_only so macro *definitions* (SIA_TRACE_SPAN's own body, say)
    // are not mistaken for uses at namespace scope.
    if (at_line_start && c == '#') {
      size_t j = i;
      while (j < n) {
        if (in[j] == '\n') {
          // A backslash immediately before the newline continues the
          // directive onto the next line.
          size_t back = j;
          while (back > i && (in[back - 1] == ' ' || in[back - 1] == '\r')) {
            --back;
          }
          if (back > i && in[back - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      blank(co, i, j);
      i = j;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      size_t j = i;
      while (j < n && in[j] != '\n') ++j;
      blank(nc, i, j);
      blank(co, i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(in[j] == '*' && in[j + 1] == '/')) ++j;
      j = std::min(n, j + 2);
      blank(nc, i, j);
      blank(co, i, j);
      i = j;
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(in[i - 1]))) {
      size_t d = i + 2;
      while (d < n && in[d] != '(' && in[d] != '\n') ++d;
      if (d < n && in[d] == '(') {
        const std::string delim = in.substr(i + 2, d - (i + 2));
        const std::string closer = ")" + delim + "\"";
        const size_t end = in.find(closer, d + 1);
        const size_t j = end == std::string::npos ? n : end + closer.size();
        blank(co, i, j);
        i = j;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && in[j] != quote && in[j] != '\n') {
        if (in[j] == '\\' && j + 1 < n) ++j;  // skip the escaped char
        ++j;
      }
      j = std::min(n, j + 1);
      blank(co, i, j);
      i = j;
      continue;
    }
    ++i;
  }
  return {std::move(nc), std::move(co)};
}

std::vector<size_t> LineStarts(const std::string& text) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

size_t LineOf(const std::vector<size_t>& starts, size_t offset) {
  const auto it =
      std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<size_t>(it - starts.begin());  // 1-based
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// In-place suppressions: "sia-conventions: allow(rule-a, rule-b)".
// Returns line -> suppressed rule names. A finding is suppressed by a
// directive on its own line or the line directly above.
std::map<size_t, std::set<std::string>> Suppressions(
    const std::vector<std::string>& raw_lines) {
  static const std::regex kAllow(
      "sia-conventions:\\s*allow\\(([A-Za-z0-9_,\\- ]+)\\)");
  std::map<size_t, std::set<std::string>> out;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(raw_lines[i], m, kAllow)) continue;
    std::stringstream list(m[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      out[i + 1].insert(Trim(rule));
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Rules.

const char kRuleMutexGuardedBy[] = "mutex-guarded-by";
const char kRuleRawSync[] = "raw-sync-primitive";
const char kRuleNodiscard[] = "nodiscard-status";
const char kRuleObsName[] = "obs-name-catalog";
const char kRuleSpanScope[] = "trace-span-scope";
const char kRuleNtsa[] = "ntsa-justified";

void RuleRawSync(const std::string& path, const std::string& code,
                 const std::vector<size_t>& starts,
                 std::vector<Finding>* out) {
  static const std::regex kBanned(
      "std::(recursive_mutex|timed_mutex|shared_mutex|mutex|"
      "condition_variable_any|condition_variable|lock_guard|unique_lock|"
      "scoped_lock|shared_lock|thread)\\b");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kBanned);
       it != std::sregex_iterator(); ++it) {
    out->push_back({path, LineOf(starts, static_cast<size_t>(it->position())),
                    kRuleRawSync,
                    "raw " + it->str() +
                        " outside common/sync.h; use the annotated "
                        "Mutex/MutexLock/CondVar/Thread wrappers"});
  }
}

void RuleMutexGuardedBy(const std::string& path, const std::string& code,
                        const std::vector<size_t>& starts,
                        std::vector<Finding>* out) {
  // A Mutex member/local declaration, optionally ordered with
  // SIA_ACQUIRED_BEFORE/AFTER: `Mutex name_ SIA_...(x);` or plain
  // `Mutex name_;` (MutexLock and Mutex* don't match: the name must
  // follow whitespace right after the token `Mutex`).
  static const std::regex kDecl(
      "\\bMutex\\s+([A-Za-z_]\\w*)\\s*"
      "(?:SIA_[A-Z_]+\\s*\\([^)]*\\)\\s*)*;");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const std::regex user("SIA_(PT_)?GUARDED_BY\\(\\s*" + name + "\\s*\\)");
    if (std::regex_search(code, user)) continue;
    out->push_back({path, LineOf(starts, static_cast<size_t>(it->position())),
                    kRuleMutexGuardedBy,
                    "Mutex " + name +
                        " has no SIA_GUARDED_BY(" + name +
                        ") members; annotate what it protects (or delete "
                        "it)"});
  }
}

void RuleNodiscard(const std::string& path,
                   const std::vector<std::string>& code_lines,
                   const std::vector<std::string>& raw_lines,
                   std::vector<Finding>* out) {
  if (!EndsWith(path, ".h")) return;  // declarations live in headers
  static const std::regex kDecl(
      "^\\s*(?:static\\s+)?(?:Status|Result<[^;=]*>)\\s+"
      "[A-Za-z_]\\w*\\s*\\(");
  for (size_t i = 0; i < code_lines.size(); ++i) {
    if (!std::regex_search(code_lines[i], kDecl)) continue;
    if (raw_lines[i].find("[[nodiscard]]") != std::string::npos) continue;
    if (i > 0 && EndsWith(Trim(raw_lines[i - 1]), "[[nodiscard]]")) continue;
    out->push_back({path, i + 1, kRuleNodiscard,
                    "Status/Result declaration without [[nodiscard]]"});
  }
}

bool NameAllowed(const std::string& name,
                 const std::vector<std::string>& catalog) {
  if (name.rfind("test.", 0) == 0) return true;  // test-local names
  for (const std::string& entry : catalog) {
    if (!entry.empty() && entry.back() == '*') {
      if (name.rfind(entry.substr(0, entry.size() - 1), 0) == 0) return true;
    } else if (name == entry) {
      return true;
    }
  }
  return false;
}

void RuleObsName(const std::string& path, const std::string& no_comments,
                 const std::vector<size_t>& starts, const Options& opts,
                 std::vector<Finding>* out) {
  if (opts.catalog.empty()) return;  // no DESIGN.md catalog to check against
  // Only a lone string literal argument is checked; a computed name
  // ("prefix." + suffix) is followed by '+', not ',' or ')'.
  static const std::regex kCall(
      "\\b(SIA_COUNTER_INC|SIA_COUNTER_ADD|SIA_HISTOGRAM_RECORD|"
      "SIA_TRACE_SPAN|SetGauge|AddGauge|IncrementCounter|RecordHistogram)"
      "\\s*\\(\\s*\"([^\"\\n]*)\"\\s*[,)]");
  for (auto it = std::sregex_iterator(no_comments.begin(),
                                      no_comments.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[2].str();
    if (NameAllowed(name, opts.catalog)) continue;
    out->push_back({path, LineOf(starts, static_cast<size_t>(it->position())),
                    kRuleObsName,
                    "obs name \"" + name +
                        "\" is not in the DESIGN.md span/metric catalog"});
  }
}

void RuleSpanScope(const std::string& path, const std::string& code,
                   const std::vector<size_t>& starts,
                   std::vector<Finding>* out) {
  // Brace-kind tracking: 'n' namespace, 'r' record (class/struct/...),
  // 'o' anything else (function bodies, lambdas, init-lists). A span at
  // file scope or directly inside a namespace/record would pin one span
  // open for the process lifetime — flag it.
  static const std::regex kNamespace("\\bnamespace\\b");
  static const std::regex kRecord("\\b(class|struct|union|enum)\\b");
  std::vector<char> stack;
  std::string window;  // tokens since the last ; { or }
  const std::string kSpan = "SIA_TRACE_SPAN";
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == 'S' && code.compare(i, kSpan.size(), kSpan) == 0 &&
        (i == 0 || !IsIdentChar(code[i - 1])) &&
        (i + kSpan.size() >= code.size() ||
         !IsIdentChar(code[i + kSpan.size()]))) {
      if (stack.empty() || stack.back() != 'o') {
        out->push_back({path, LineOf(starts, i), kRuleSpanScope,
                        "SIA_TRACE_SPAN outside a function body (the span "
                        "would stay open for the process lifetime)"});
      }
      i += kSpan.size() - 1;
      window += kSpan;
      continue;
    }
    if (c == '{') {
      const std::string last = Trim(window);
      char kind = 'o';
      if (std::regex_search(window, kNamespace)) {
        kind = 'n';
      } else if (std::regex_search(window, kRecord) &&
                 (last.empty() || last.back() != ')')) {
        kind = 'r';
      }
      stack.push_back(kind);
      window.clear();
    } else if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      window.clear();
    } else if (c == ';') {
      window.clear();
    } else {
      window += c;
    }
  }
}

void RuleNtsa(const std::string& path, const std::string& code,
              const std::vector<size_t>& starts,
              const std::vector<std::string>& raw_lines,
              std::vector<Finding>* out) {
  const std::string kToken = "SIA_NO_THREAD_SAFETY_ANALYSIS";
  for (size_t pos = code.find(kToken); pos != std::string::npos;
       pos = code.find(kToken, pos + kToken.size())) {
    const size_t line = LineOf(starts, pos);
    const std::string& raw = raw_lines[line - 1];
    const size_t slash = raw.find("//");
    const bool same_line = slash != std::string::npos &&
                           !Trim(raw.substr(slash + 2)).empty();
    bool above = false;
    for (size_t j = line - 1; j-- > 0;) {
      const std::string prev = Trim(raw_lines[j]);
      if (prev.empty()) break;
      if (prev.rfind("//", 0) == 0) above = true;
      break;
    }
    if (!same_line && !above) {
      out->push_back({path, line, kRuleNtsa,
                      "SIA_NO_THREAD_SAFETY_ANALYSIS without a "
                      "justification comment on or above the line"});
    }
  }
}

bool IsSyncHeader(const std::string& path) {
  return EndsWith(path, "common/sync.h");
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      kRuleMutexGuardedBy, kRuleRawSync,   kRuleNodiscard,
      kRuleObsName,        kRuleSpanScope, kRuleNtsa,
  };
  return kRules;
}

std::vector<std::string> ExtractCatalog(const std::string& design_md) {
  // Restrict to the observability-catalog region so backticked file
  // names elsewhere in the document can't widen the allow-list.
  size_t begin = design_md.find("Span naming convention");
  size_t end = design_md.find("CLI and bench surface");
  if (begin == std::string::npos) begin = 0;
  if (end == std::string::npos || end < begin) end = design_md.size();
  const std::string region = design_md.substr(begin, end - begin);

  static const std::regex kTick("`([a-z][A-Za-z0-9_.{},<>*]*)`");
  std::set<std::string> names;
  for (auto it = std::sregex_iterator(region.begin(), region.end(), kTick);
       it != std::sregex_iterator(); ++it) {
    std::string token = (*it)[1].str();
    if (token.find('.') == std::string::npos) continue;
    // `{a,b}` brace groups expand; one group per token is enough.
    std::vector<std::string> expanded;
    const size_t ob = token.find('{');
    const size_t cb = token.find('}');
    if (ob != std::string::npos && cb != std::string::npos && cb > ob) {
      const std::string prefix = token.substr(0, ob);
      const std::string suffix = token.substr(cb + 1);
      std::stringstream alts(token.substr(ob + 1, cb - ob - 1));
      std::string alt;
      while (std::getline(alts, alt, ',')) {
        expanded.push_back(prefix + alt + suffix);
      }
    } else {
      expanded.push_back(token);
    }
    for (std::string name : expanded) {
      // `<placeholder>` and `*` tails become prefix wildcards.
      const size_t lt = name.find('<');
      if (lt != std::string::npos) name = name.substr(0, lt) + "*";
      const size_t star = name.find('*');
      if (star != std::string::npos) name = name.substr(0, star) + "*";
      names.insert(name);
    }
  }
  return {names.begin(), names.end()};
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& text,
                              const Options& opts) {
  const Scrubbed scrubbed = Scrub(text);
  const std::vector<size_t> starts = LineStarts(text);
  const std::vector<std::string> raw_lines = SplitLines(text);
  const std::vector<std::string> code_lines = SplitLines(scrubbed.code_only);

  std::vector<Finding> findings;
  if (!IsSyncHeader(path)) {
    RuleRawSync(path, scrubbed.code_only, starts, &findings);
    RuleMutexGuardedBy(path, scrubbed.code_only, starts, &findings);
    RuleNtsa(path, scrubbed.code_only, starts, raw_lines, &findings);
  }
  RuleNodiscard(path, code_lines, raw_lines, &findings);
  RuleObsName(path, scrubbed.no_comments, starts, opts, &findings);
  RuleSpanScope(path, scrubbed.code_only, starts, &findings);

  const auto suppressed = Suppressions(raw_lines);
  auto is_suppressed = [&](const Finding& f) {
    for (size_t line : {f.line, f.line - 1}) {
      const auto it = suppressed.find(line);
      if (it != suppressed.end() &&
          (it->second.count(f.rule) != 0 || it->second.count("all") != 0)) {
        return true;
      }
    }
    return false;
  };
  findings.erase(
      std::remove_if(findings.begin(), findings.end(), is_suppressed),
      findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root,
                              size_t* files_scanned) {
  namespace fs = std::filesystem;
  Options opts;
  {
    std::ifstream design(fs::path(root) / "DESIGN.md");
    if (design) {
      std::stringstream buf;
      buf << design.rdbuf();
      opts.catalog = ExtractCatalog(buf.str());
    }
  }

  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      // The known-bad linter fixtures are exercised by
      // tests/conventions_test.cc, not by the tree walk.
      if (entry.path().string().find("tests/conventions/") !=
          std::string::npos) {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned != nullptr) *files_scanned = files.size();

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::path(file).lexically_relative(root).generic_string();
    std::vector<Finding> file_findings = LintFile(rel, buf.str(), opts);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace sia::conventions
