
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/learner.cc" "src/learn/CMakeFiles/sia_learn.dir/learner.cc.o" "gcc" "src/learn/CMakeFiles/sia_learn.dir/learner.cc.o.d"
  "/root/repo/src/learn/linear_form.cc" "src/learn/CMakeFiles/sia_learn.dir/linear_form.cc.o" "gcc" "src/learn/CMakeFiles/sia_learn.dir/linear_form.cc.o.d"
  "/root/repo/src/learn/rational.cc" "src/learn/CMakeFiles/sia_learn.dir/rational.cc.o" "gcc" "src/learn/CMakeFiles/sia_learn.dir/rational.cc.o.d"
  "/root/repo/src/learn/svm.cc" "src/learn/CMakeFiles/sia_learn.dir/svm.cc.o" "gcc" "src/learn/CMakeFiles/sia_learn.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan-dev/src/ir/CMakeFiles/sia_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/types/CMakeFiles/sia_types.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/obs/CMakeFiles/sia_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
