
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/diagnostic.cc" "src/check/CMakeFiles/sia_check.dir/diagnostic.cc.o" "gcc" "src/check/CMakeFiles/sia_check.dir/diagnostic.cc.o.d"
  "/root/repo/src/check/expr_validator.cc" "src/check/CMakeFiles/sia_check.dir/expr_validator.cc.o" "gcc" "src/check/CMakeFiles/sia_check.dir/expr_validator.cc.o.d"
  "/root/repo/src/check/plan_validator.cc" "src/check/CMakeFiles/sia_check.dir/plan_validator.cc.o" "gcc" "src/check/CMakeFiles/sia_check.dir/plan_validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan-dev/src/catalog/CMakeFiles/sia_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/ir/CMakeFiles/sia_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/types/CMakeFiles/sia_types.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/obs/CMakeFiles/sia_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
