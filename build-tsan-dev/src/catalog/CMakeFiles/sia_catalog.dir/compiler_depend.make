# Empty compiler generated dependencies file for sia_catalog.
# This may be replaced when dependencies are built.
