# Empty compiler generated dependencies file for sia_synth.
# This may be replaced when dependencies are built.
