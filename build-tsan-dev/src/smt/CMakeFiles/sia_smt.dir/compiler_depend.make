# Empty compiler generated dependencies file for sia_smt.
# This may be replaced when dependencies are built.
