# Empty compiler generated dependencies file for sia_parser.
# This may be replaced when dependencies are built.
