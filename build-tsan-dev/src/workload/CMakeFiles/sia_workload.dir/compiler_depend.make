# Empty compiler generated dependencies file for sia_workload.
# This may be replaced when dependencies are built.
