# Empty compiler generated dependencies file for sia_obs.
# This may be replaced when dependencies are built.
