
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir_test.cc" "tests/CMakeFiles/ir_test.dir/ir_test.cc.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan-dev/src/engine/CMakeFiles/sia_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/rewrite/CMakeFiles/sia_rewrite.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/check/CMakeFiles/sia_check.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/workload/CMakeFiles/sia_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/catalog/CMakeFiles/sia_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/parser/CMakeFiles/sia_parser.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/synth/CMakeFiles/sia_synth.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/smt/CMakeFiles/sia_smt.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/learn/CMakeFiles/sia_learn.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/ir/CMakeFiles/sia_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/types/CMakeFiles/sia_types.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan-dev/src/obs/CMakeFiles/sia_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
