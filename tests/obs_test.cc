// Unit tests for src/obs: histogram bucket boundaries and percentile
// math, concurrent counter/histogram updates (the ThreadSanitizer pass
// in scripts/check.sh builds exactly this binary), span nesting order,
// ring-buffer overflow accounting, and the validity of both JSON
// exports. Links only sia_obs + GTest — no Z3, no sia umbrella.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "common/sync.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "obs_json_util.h"

namespace sia::obs {
namespace {

using sia::test_json::IsValidJson;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    Tracer::SetEnabled(true);
    MetricsRegistry::Instance().ResetAll();
    Tracer::Instance().Clear();
  }
  void TearDown() override {
    MetricsRegistry::SetEnabled(false);
    Tracer::SetEnabled(false);
  }
  MetricsRegistry& reg() { return MetricsRegistry::Instance(); }
};

// --- Histogram bucket boundaries ---

TEST_F(ObsTest, BucketIndexBoundaries) {
  // Bucket 0 is [0, 1); negatives clamp into it too (Record clamps).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0);
  // Bucket i is [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(3.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 3);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 11);
  EXPECT_EQ(Histogram::BucketIndex(1023.0), 10);
  // The last bucket absorbs everything >= 2^(kBuckets-2).
  const double cap = std::ldexp(1.0, Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(cap - 1.0), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(cap), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(cap * 1000.0), Histogram::kBuckets - 1);
}

TEST_F(ObsTest, BucketBoundsAgreeWithIndex) {
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    const double lo = Histogram::BucketLowerBound(i);
    const double hi = Histogram::BucketUpperBound(i);
    EXPECT_DOUBLE_EQ(lo, std::ldexp(1.0, i - 1));
    EXPECT_DOUBLE_EQ(hi, std::ldexp(1.0, i));
    // Both edges land in the bucket the bounds claim.
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(hi - 0.001), i) << "bucket " << i;
  }
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST_F(ObsTest, RecordLandsInTheRightBucket) {
  Histogram& h = reg().GetHistogram("test.buckets");
  h.Record(0.25);   // bucket 0
  h.Record(-7.0);   // clamped to 0 -> bucket 0
  h.Record(1.5);    // bucket 1
  h.Record(300.0);  // [256, 512) -> bucket 9
  EXPECT_EQ(h.BucketCountAt(0), 2u);
  EXPECT_EQ(h.BucketCountAt(1), 1u);
  EXPECT_EQ(h.BucketCountAt(9), 1u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);  // the clamped negative
  EXPECT_DOUBLE_EQ(h.Max(), 300.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());  // ignored
  EXPECT_EQ(h.Count(), 4u);
}

// --- Percentile math ---

TEST_F(ObsTest, PercentilesOnEmptyHistogram) {
  Histogram& h = reg().GetHistogram("test.empty");
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST_F(ObsTest, PercentileOfSingleValueIsThatValue) {
  Histogram& h = reg().GetHistogram("test.single");
  h.Record(100.0);
  // Interpolation inside [64, 128) would land elsewhere; the clamp to
  // the observed [min, max] pins every percentile to the one sample.
  EXPECT_DOUBLE_EQ(h.Percentile(0.01), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 100.0);
}

TEST_F(ObsTest, PercentilesOfUniformSamples) {
  Histogram& h = reg().GetHistogram("test.uniform");
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  // Power-of-two buckets are coarse; assert the right neighborhood and
  // monotonicity, not exact order statistics.
  EXPECT_GT(p50, 400.0);
  EXPECT_LT(p50, 620.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1000.0);  // clamped to the observed max
  EXPECT_GT(p99, 850.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
  EXPECT_EQ(h.Count(), 1000u);
}

// --- Concurrency (the TSan target) ---

TEST_F(ObsTest, ConcurrentCounterIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter& c = reg().GetCounter("test.concurrent");
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (Thread& t : threads) t.Join();
  EXPECT_EQ(c.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, ConcurrentHistogramRecords) {
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  Histogram& h = reg().GetHistogram("test.concurrent_hist");
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.Record(static_cast<double>(t * kRecords + i + 1));
      }
    });
  }
  for (Thread& t : threads) t.Join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), static_cast<double>(kThreads * kRecords));
  // Gauge Add() is a CAS loop; hammer it too.
  Gauge& g = reg().GetGauge("test.concurrent_gauge");
  std::vector<Thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&g] {
      for (int i = 0; i < kRecords; ++i) g.Add(1.0);
    });
  }
  for (Thread& t : adders) t.Join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads * kRecords));
}

TEST_F(ObsTest, ConcurrentSpansAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan outer("thread.outer");
        TraceSpan inner("thread.inner");
      }
    });
  }
  for (Thread& t : threads) t.Join();
  const std::vector<TraceEvent> events = Tracer::Instance().CollectEvents();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpans * 2);
  // Each thread got its own tid.
  std::map<int, int> per_tid;
  for (const TraceEvent& e : events) ++per_tid[e.tid];
  EXPECT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
}

// --- Registry semantics ---

TEST_F(ObsTest, ResetAllKeepsReferencesValid) {
  Counter& c = reg().GetCounter("test.reset");
  c.Increment(5);
  reg().ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(&reg().GetCounter("test.reset"), &c);  // same object, not erased
  c.Increment();
  EXPECT_EQ(reg().GetCounter("test.reset").Value(), 1u);
}

TEST_F(ObsTest, HelpersAreInertWhenDisabled) {
  MetricsRegistry::SetEnabled(false);
  IncrementCounter("test.disabled");
  RecordHistogram("test.disabled_hist", 5.0);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(reg().GetCounter("test.disabled").Value(), 0u);
  EXPECT_EQ(reg().GetHistogram("test.disabled_hist").Count(), 0u);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  Tracer::SetEnabled(false);
  { SIA_TRACE_SPAN("test.invisible"); }
  Tracer::SetEnabled(true);
  for (const TraceEvent& e : Tracer::Instance().CollectEvents()) {
    EXPECT_NE(e.name, "test.invisible");
  }
}

// --- Span nesting ---

TEST_F(ObsTest, SpanNestingDepthAndOrder) {
  {
    TraceSpan outer("test.outer");
    {
      TraceSpan mid("test.mid");
      { TraceSpan inner("test.inner"); }
    }
    { TraceSpan sibling("test.sibling"); }
  }
  const std::vector<TraceEvent> events = Tracer::Instance().CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  std::map<std::string, const TraceEvent*> by_name;
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < events.size(); ++i) {
    by_name[events[i].name] = &events[i];
    pos[events[i].name] = i;
  }
  ASSERT_TRUE(by_name.count("test.outer"));
  ASSERT_TRUE(by_name.count("test.mid"));
  ASSERT_TRUE(by_name.count("test.inner"));
  ASSERT_TRUE(by_name.count("test.sibling"));
  EXPECT_EQ(by_name["test.outer"]->depth, 0);
  EXPECT_EQ(by_name["test.mid"]->depth, 1);
  EXPECT_EQ(by_name["test.inner"]->depth, 2);
  EXPECT_EQ(by_name["test.sibling"]->depth, 1);
  // Parents precede children in the sorted stream.
  EXPECT_LT(pos["test.outer"], pos["test.mid"]);
  EXPECT_LT(pos["test.mid"], pos["test.inner"]);
  EXPECT_LT(pos["test.outer"], pos["test.sibling"]);
  // Children are contained in their parent's interval.
  const TraceEvent& outer = *by_name["test.outer"];
  const TraceEvent& inner = *by_name["test.inner"];
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCounts) {
  const size_t total = internal::ThreadRing::kCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    TraceSpan span("test.flood");
  }
  // Only this thread's events: other tests ran on this thread too, but
  // the flood alone exceeds capacity, so the ring holds exactly kCapacity.
  const std::vector<TraceEvent> events = Tracer::Instance().CollectEvents();
  size_t flood = 0;
  for (const TraceEvent& e : events) flood += e.name == "test.flood";
  EXPECT_EQ(flood, internal::ThreadRing::kCapacity);
  EXPECT_GE(Tracer::Instance().DroppedCount(), 100u);
}

// --- JSON exports ---

TEST_F(ObsTest, SnapshotJsonIsValidAndComplete) {
  reg().GetCounter("test.json_counter").Increment(7);
  reg().GetGauge("test.json_gauge").Set(2.5);
  Histogram& h = reg().GetHistogram("test.json_hist");
  h.Record(10.0);
  h.Record(1000.0);
  const std::string json = reg().SnapshotJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"test.json_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  for (const char* field : {"\"count\"", "\"sum\"", "\"min\"", "\"max\"",
                            "\"p50\"", "\"p95\"", "\"p99\"", "\"buckets\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST_F(ObsTest, SnapshotJsonSurvivesHostileMetricNames) {
  reg().GetCounter("test.\"quoted\\name\nnewline").Increment();
  EXPECT_TRUE(IsValidJson(reg().SnapshotJson()));
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  {
    TraceSpan span("test.export");
    TraceSpan nested("test.export_nested");
  }
  const std::string json = Tracer::Instance().ExportChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export\""), std::string::npos);
}

TEST_F(ObsTest, WriteChromeTraceRoundTrips) {
  { TraceSpan span("test.file_export"); }
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  std::string error;
  ASSERT_TRUE(Tracer::Instance().WriteChromeTrace(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buf.str()));
  EXPECT_NE(buf.str().find("test.file_export"), std::string::npos);
  std::remove(path.c_str());
  // Unwritable destination: error out, don't crash.
  EXPECT_FALSE(Tracer::Instance().WriteChromeTrace(
      "/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ObsTest, WriteSnapshotToFileAndBadPath) {
  reg().GetCounter("test.write_snapshot").Increment();
  const std::string path = ::testing::TempDir() + "obs_test_metrics.json";
  std::string error;
  ASSERT_TRUE(reg().WriteSnapshot(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buf.str()));
  std::remove(path.c_str());
  EXPECT_FALSE(reg().WriteSnapshot("/nonexistent-dir/metrics.json", &error));
  EXPECT_FALSE(error.empty());
}

// --- Windowed aggregation ---

TEST_F(ObsTest, WindowsAreEmptyUntilTwoSamples) {
  WindowedStats windows;
  // No samples at all.
  EXPECT_EQ(windows.sample_count(), 0u);
  EXPECT_EQ(windows.WindowOver(1'000'000).span_us, 0u);
  // One sample is not a window either: a delta needs two endpoints.
  reg().GetCounter("test.win.lonely").Increment(5);
  windows.Tick(0);
  EXPECT_EQ(windows.sample_count(), 1u);
  const WindowedStats::Window w = windows.WindowOver(1'000'000);
  EXPECT_EQ(w.span_us, 0u);
  EXPECT_TRUE(w.delta.counters.empty());
  // The JSON rendering of empty windows is still valid JSON.
  const std::string json = windows.WindowsJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"1s\""), std::string::npos);
  EXPECT_NE(json.find("\"span_us\":0"), std::string::npos);
}

TEST_F(ObsTest, WindowDeltaExcludesHistoryBeforeTheWindow) {
  WindowedStats windows(WindowedStats::Options{1'000'000, 61});
  Counter& c = reg().GetCounter("test.win.delta");
  c.Increment(100);  // history from "before monitoring started"
  windows.Tick(0);
  c.Increment(7);
  windows.Tick(1'000'000);
  ASSERT_EQ(windows.sample_count(), 2u);
  const WindowedStats::Window w = windows.WindowOver(1'000'000);
  EXPECT_EQ(w.span_us, 1'000'000u);
  ASSERT_EQ(w.delta.counters.count("test.win.delta"), 1u);
  // The window sees only the 7 increments inside it, not the 100 before.
  EXPECT_EQ(w.delta.counters.at("test.win.delta"), 7u);
  EXPECT_EQ(c.Value(), 107u);  // lifetime total untouched
}

TEST_F(ObsTest, TickIsRateLimitedToOnePerInterval) {
  WindowedStats windows(WindowedStats::Options{1'000'000, 61});
  windows.Tick(0);
  windows.Tick(1);
  windows.Tick(999'999);
  EXPECT_EQ(windows.sample_count(), 1u);
  windows.Tick(1'000'000);
  EXPECT_EQ(windows.sample_count(), 2u);
}

TEST_F(ObsTest, WindowRingEvictsBeyondSlots) {
  WindowedStats windows(WindowedStats::Options{100, 4});
  for (uint64_t i = 0; i < 10; ++i) windows.Tick(i * 100);
  EXPECT_EQ(windows.sample_count(), 4u);
  // The span clamps to what the evicted ring still covers: samples at
  // 600..900 remain, so the widest window is 300us.
  EXPECT_EQ(windows.WindowOver(60'000'000).span_us, 300u);
}

TEST_F(ObsTest, WindowedHistogramIsDeltaNotLifetime) {
  WindowedStats windows(WindowedStats::Options{1'000'000, 61});
  Histogram& h = reg().GetHistogram("test.win.hist");
  // A slow era entirely before the window.
  for (int i = 0; i < 100; ++i) h.Record(100'000.0);
  windows.Tick(0);
  // A fast era inside the window.
  for (int i = 0; i < 50; ++i) h.Record(10.0);
  windows.Tick(1'000'000);
  const WindowedStats::Window w = windows.WindowOver(1'000'000);
  ASSERT_EQ(w.delta.histograms.count("test.win.hist"), 1u);
  const HistogramSnapshot& d = w.delta.histograms.at("test.win.hist");
  EXPECT_EQ(d.count, 50u);
  EXPECT_DOUBLE_EQ(d.sum, 500.0);
  // Windowed p99 reflects the fast era only (delta min/max come from
  // occupied delta buckets, so they are bucket bounds, not exact values).
  EXPECT_LT(d.Percentile(0.99), 100.0);
  EXPECT_GT(h.Percentile(0.5), 1000.0);  // lifetime still slow-dominated
}

TEST_F(ObsTest, WindowedGaugesAreInstantaneous) {
  WindowedStats windows(WindowedStats::Options{1'000'000, 61});
  Gauge& g = reg().GetGauge("test.win.gauge");
  g.Set(5.0);
  windows.Tick(0);
  g.Set(9.0);
  windows.Tick(1'000'000);
  const WindowedStats::Window w = windows.WindowOver(1'000'000);
  ASSERT_EQ(w.delta.gauges.count("test.win.gauge"), 1u);
  EXPECT_DOUBLE_EQ(w.delta.gauges.at("test.win.gauge"), 9.0);
}

TEST_F(ObsTest, HistogramDeltaGuardsAgainstNonMonotonicInput) {
  // A registry reset between samples makes the "newer" snapshot smaller
  // than the older one; deltas must clamp to zero, not wrap.
  HistogramSnapshot older;
  older.count = 10;
  older.sum = 1000.0;
  older.buckets[5] = 10;
  HistogramSnapshot newer;
  newer.count = 3;
  newer.sum = 30.0;
  newer.buckets[5] = 3;
  const HistogramSnapshot d = newer.DeltaSince(older);
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.Percentile(0.99), 0.0);
}

// The TSan pass in scripts/check.sh builds this binary: concurrent
// increments racing window rollover must be clean.
TEST_F(ObsTest, ConcurrentIncrementsDuringWindowRollover) {
  WindowedStats windows(WindowedStats::Options{10, 8});
  Counter& c = reg().GetCounter("test.win.race");
  Histogram& h = reg().GetHistogram("test.win.race_hist");
  std::atomic<bool> stop{false};
  std::vector<Thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        c.Increment();
        h.Record(42.0);
      }
    });
  }
  Thread ticker([&]() {
    for (uint64_t now = 0; now < 4000; now += 10) {
      windows.Tick(now);
      (void)windows.WindowOver(100);
    }
  });
  Thread reader([&]() {
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(IsValidJson(windows.WindowsJson()));
    }
  });
  ticker.Join();
  reader.Join();
  stop.store(true, std::memory_order_relaxed);
  for (Thread& w : writers) w.Join();
  EXPECT_LE(windows.sample_count(), 8u);
  // Each sample is internally consistent even mid-race: deltas never
  // go negative (guarded), counts are monotone between samples.
  // Record bumps the bucket and the total with two separate relaxed
  // RMWs, so a snapshot can see one side of a writer's in-flight
  // Record without the other — at most one record per writer thread.
  const WindowedStats::Window w = windows.WindowOver(4000);
  if (w.span_us > 0 && w.delta.histograms.count("test.win.race_hist") > 0) {
    const HistogramSnapshot& d = w.delta.histograms.at("test.win.race_hist");
    uint64_t bucket_total = 0;
    for (const uint64_t b : d.buckets) bucket_total += b;
    const uint64_t skew = bucket_total > d.count ? bucket_total - d.count
                                                 : d.count - bucket_total;
    EXPECT_LE(skew, 4u * 2u);  // 4 writers, 2 samples bound the delta
  }
}

// --- Event log ---

TEST_F(ObsTest, EventLogRecordsInOrder) {
  EventLog& log = EventLog::Instance();
  log.Clear();
  SIA_EVENT("test.first", "a");
  SIA_EVENT("test.second", "b");
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "test.first");
  EXPECT_EQ(events[1].kind, "test.second");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_EQ(log.DroppedCount(), 0u);
}

TEST_F(ObsTest, EventLogRingEvictsOldest) {
  EventLog& log = EventLog::Instance();
  log.Clear();
  const size_t total = EventLog::kCapacity + 44;
  for (size_t i = 0; i < total; ++i) {
    log.Record("test.flood", std::to_string(i));
  }
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), EventLog::kCapacity);
  EXPECT_EQ(log.DroppedCount(), 44u);
  // Oldest 44 are gone; the ring starts at event #44 and ends at the last.
  EXPECT_EQ(events.front().detail, "44");
  EXPECT_EQ(events.back().detail, std::to_string(total - 1));
}

TEST_F(ObsTest, EventLogIsInertWhenMetricsDisabled) {
  EventLog& log = EventLog::Instance();
  log.Clear();
  MetricsRegistry::SetEnabled(false);
  SIA_EVENT("test.ghost", "never recorded");
  MetricsRegistry::SetEnabled(true);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST_F(ObsTest, EventLogJsonSurvivesHostileDetails) {
  EventLog& log = EventLog::Instance();
  log.Clear();
  log.Record("test.\"quoted\"", "line1\nline2\t\"x\\y\"");
  const std::string json = log.Json();
  EXPECT_TRUE(IsValidJson(json)) << json;
  log.Clear();
}

// --- Trace context propagation ---

TEST_F(ObsTest, MintTraceIdNeverReturnsZeroAndIsUnique) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> minted(kThreads);
  std::vector<Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&minted, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        minted[t].push_back(MintTraceId());
      }
    });
  }
  for (Thread& t : threads) t.Join();
  std::vector<uint64_t> all;
  for (const auto& v : minted) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_NE(all.front(), 0u);
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST_F(ObsTest, TraceContextInstallsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    TraceContext outer(17);
    EXPECT_EQ(CurrentTraceId(), 17u);
    {
      TraceContext inner(99);
      EXPECT_EQ(CurrentTraceId(), 99u);
    }
    EXPECT_EQ(CurrentTraceId(), 17u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST_F(ObsTest, SpansAndEventsCarryTheAmbientTraceId) {
  EventLog::Instance().Clear();
  const uint64_t id = MintTraceId();
  {
    TraceContext ctx(id);
    TraceSpan span("test.traced");
    SIA_EVENT("test.traced_event", "detail");
  }
  { TraceSpan span("test.untraced"); }
  bool saw_traced = false;
  bool saw_untraced = false;
  for (const TraceEvent& e : Tracer::Instance().CollectEvents()) {
    if (e.name == "test.traced") {
      saw_traced = true;
      EXPECT_EQ(e.trace_id, id);
    }
    if (e.name == "test.untraced") {
      saw_untraced = true;
      EXPECT_EQ(e.trace_id, 0u);
    }
  }
  EXPECT_TRUE(saw_traced);
  EXPECT_TRUE(saw_untraced);
  const std::vector<Event> events = EventLog::Instance().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, id);
  // The Chrome export carries the ID as a span arg so a chain is
  // greppable in the exported file.
  const std::string json = Tracer::Instance().ExportChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace_id\":" + std::to_string(id)),
            std::string::npos);
  EventLog::Instance().Clear();
}

TEST_F(ObsTest, TraceContextCrossesThreadsExplicitly) {
  // The ID is thread-local: a worker inherits nothing implicitly and
  // everything explicitly — exactly how BackgroundJob carries it.
  const uint64_t id = MintTraceId();
  uint64_t seen_without = 99;
  uint64_t seen_with = 0;
  TraceContext ctx(id);
  Thread worker([&]() {
    seen_without = CurrentTraceId();
    TraceContext handoff(id);
    seen_with = CurrentTraceId();
  });
  worker.Join();
  EXPECT_EQ(seen_without, 0u);
  EXPECT_EQ(seen_with, id);
}

}  // namespace
}  // namespace sia::obs
