// Tests for the repo-invariant conventions linter (tools/conventions_lib):
// one known-bad fixture per rule, the matching known-good shape, the
// in-place suppression syntax, the DESIGN.md catalog extraction, and —
// the actual gate — a clean run over this repository's own tree.
//
// Fixtures are inline strings. Obs-call fixtures use escaped quotes on
// purpose: the linter's obs-name rule reads string literals, and the
// \" form keeps this file's own text from matching the call pattern
// when the tree walk lints conventions_test.cc itself.

#include "tools/conventions_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace sia::conventions {
namespace {

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<Finding> Lint(const std::string& path, const std::string& text) {
  return LintFile(path, text, Options{});
}

TEST(MutexGuardedByTest, UnguardedMutexMemberIsFlagged) {
  const std::string bad = R"cc(
class Counter {
 private:
  Mutex mu_;
  int count_ = 0;
};
)cc";
  const auto findings = Lint("src/fake/counter.h", bad);
  ASSERT_EQ(CountRule(findings, "mutex-guarded-by"), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(MutexGuardedByTest, GuardedMutexIsClean) {
  const std::string good = R"cc(
class Counter {
 private:
  Mutex mu_;
  int count_ SIA_GUARDED_BY(mu_) = 0;
};
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/counter.h", good), "mutex-guarded-by"),
            0u);
}

TEST(MutexGuardedByTest, OrderedDeclarationAndPointersHandled) {
  // SIA_ACQUIRED_BEFORE on the declaration is still a declaration; a
  // Mutex* member is not (MutexLock holds one).
  const std::string text = R"cc(
class S {
  Mutex stop_mu_ SIA_ACQUIRED_BEFORE(drain_mu_);
  Mutex* borrowed_;
};
)cc";
  const auto findings = Lint("src/fake/s.h", text);
  ASSERT_EQ(CountRule(findings, "mutex-guarded-by"), 1u);
  EXPECT_NE(findings[0].message.find("stop_mu_"), std::string::npos);
}

TEST(RawSyncPrimitiveTest, StdMutexOutsideSyncHeaderIsFlagged) {
  const std::string bad = R"cc(
#include <mutex>
std::mutex g_mu;
void F() { std::lock_guard<std::mutex> lock(g_mu); }
)cc";
  const auto findings = Lint("src/fake/raw.cc", bad);
  // line 3 decl + line 4 lock_guard and its template argument.
  EXPECT_EQ(CountRule(findings, "raw-sync-primitive"), 3u);
}

TEST(RawSyncPrimitiveTest, SyncHeaderItselfIsExempt) {
  const std::string wrapper = "class Mutex { std::mutex mu_; };\n";
  EXPECT_TRUE(Lint("src/common/sync.h", wrapper).empty());
}

TEST(RawSyncPrimitiveTest, ThisThreadAndCommentsAllowed) {
  const std::string good = R"cc(
#include <thread>
// std::thread is banned, but saying so in a comment is fine.
void Nap() { std::this_thread::yield(); }
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/nap.cc", good), "raw-sync-primitive"),
            0u);
}

TEST(RawSyncPrimitiveTest, StdThreadIsFlagged) {
  const std::string bad = "void F() { std::thread t([] {}); t.join(); }\n";
  EXPECT_EQ(CountRule(Lint("src/fake/t.cc", bad), "raw-sync-primitive"), 1u);
}

TEST(NodiscardStatusTest, BareDeclarationIsFlagged) {
  const std::string bad = R"cc(
Status Open(const std::string& path);
Result<int> Parse(const std::string& text);
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/api.h", bad), "nodiscard-status"), 2u);
}

TEST(NodiscardStatusTest, AnnotatedAndNonHeaderAreClean) {
  const std::string good = R"cc(
[[nodiscard]] Status Open(const std::string& path);
[[nodiscard]]
Result<int> Parse(const std::string& text);
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/api.h", good), "nodiscard-status"), 0u);
  // Definitions in .cc files are not re-annotated.
  const std::string cc = "Status Open(const std::string& path) {}\n";
  EXPECT_EQ(CountRule(Lint("src/fake/api.cc", cc), "nodiscard-status"), 0u);
}

TEST(NodiscardStatusTest, ConstructorsAndVariablesNotFlagged) {
  const std::string text = R"cc(
class Status {
 public:
  Status() = default;
  explicit Status(int code);
};
struct Holder {
  Status last_status;
  Status pending SIA_GUARDED_BY(mu_);
};
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/status.h", text), "nodiscard-status"),
            0u);
}

Options CatalogOptions() {
  Options opts;
  opts.catalog = {"parse.query", "rewrite.degraded.*", "fault.hit.*"};
  return opts;
}

TEST(ObsNameCatalogTest, UnknownNameIsFlagged) {
  const std::string bad = "void F() { SIA_COUNTER_INC(\"bogus.name\"); }\n";
  const auto findings = LintFile("src/fake/obs.cc", bad, CatalogOptions());
  ASSERT_EQ(CountRule(findings, "obs-name-catalog"), 1u);
  EXPECT_NE(findings[0].message.find("bogus.name"), std::string::npos);
}

TEST(ObsNameCatalogTest, CatalogWildcardAndTestNamesAllowed) {
  const std::string good =
      "void F() {\n"
      "  SIA_TRACE_SPAN(\"parse.query\");\n"
      "  SIA_COUNTER_INC(\"rewrite.degraded.gave_up\");\n"
      "  IncrementCounter(\"fault.hit.synth\");\n"
      "  SIA_COUNTER_INC(\"test.anything.goes\");\n"
      "}\n";
  EXPECT_EQ(CountRule(LintFile("src/fake/obs.cc", good, CatalogOptions()),
                      "obs-name-catalog"),
            0u);
}

TEST(ObsNameCatalogTest, ComputedNamesAndEmptyCatalogSkipped) {
  // A concatenated name cannot be checked statically; a missing catalog
  // disables the rule rather than flagging everything.
  const std::string computed =
      "void F(const std::string& s) {\n"
      "  IncrementCounter(\"unknown.prefix.\" + s);\n"
      "}\n";
  EXPECT_EQ(CountRule(LintFile("src/fake/obs.cc", computed, CatalogOptions()),
                      "obs-name-catalog"),
            0u);
  const std::string bad = "void F() { SIA_COUNTER_INC(\"bogus.name\"); }\n";
  EXPECT_EQ(CountRule(LintFile("src/fake/obs.cc", bad, Options{}),
                      "obs-name-catalog"),
            0u);
}

TEST(TraceSpanScopeTest, NamespaceScopeSpanIsFlagged) {
  const std::string bad = R"cc(
namespace sia {
SIA_TRACE_SPAN("test.pinned");
}
)cc";
  const auto findings = Lint("src/fake/span.cc", bad);
  ASSERT_EQ(CountRule(findings, "trace-span-scope"), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(TraceSpanScopeTest, FunctionAndLambdaBodiesAreClean) {
  const std::string good = R"cc(
namespace sia {
struct Runner {
  void Run() {
    SIA_TRACE_SPAN("test.fine");
    auto task = [] { SIA_TRACE_SPAN("test.fine2"); };
    task();
  }
};
}
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/span.cc", good), "trace-span-scope"),
            0u);
}

TEST(TraceSpanScopeTest, ClassScopeSpanIsFlagged) {
  const std::string bad = R"cc(
class Widget {
  SIA_TRACE_SPAN("test.member");
};
)cc";
  EXPECT_EQ(CountRule(Lint("src/fake/w.h", bad), "trace-span-scope"), 1u);
}

TEST(NtsaJustifiedTest, BareAnnotationIsFlagged) {
  const std::string bad =
      "void Init() SIA_NO_THREAD_SAFETY_ANALYSIS;\n";
  EXPECT_EQ(CountRule(Lint("src/fake/init.h", bad), "ntsa-justified"), 1u);
}

TEST(NtsaJustifiedTest, JustifiedAnnotationsAreClean) {
  const std::string same_line =
      "void Init() SIA_NO_THREAD_SAFETY_ANALYSIS;  // ctor-only path\n";
  EXPECT_EQ(CountRule(Lint("src/fake/init.h", same_line), "ntsa-justified"),
            0u);
  const std::string above =
      "// Runs before any thread exists; locking would deadlock the\n"
      "// fork handler.\n"
      "void Init() SIA_NO_THREAD_SAFETY_ANALYSIS;\n";
  EXPECT_EQ(CountRule(Lint("src/fake/init.h", above), "ntsa-justified"), 0u);
}

TEST(SuppressionTest, AllowDirectiveSilencesRuleOnLineOrAbove) {
  const std::string same_line =
      "std::thread t;  // sia-conventions: allow(raw-sync-primitive) "
      "fixture\n";
  EXPECT_TRUE(Lint("src/fake/s.cc", same_line).empty());
  const std::string above =
      "// sia-conventions: allow(raw-sync-primitive) fixture\n"
      "std::thread t;\n";
  EXPECT_TRUE(Lint("src/fake/s.cc", above).empty());
  // The directive names the rule: a different rule still fires.
  const std::string wrong_rule =
      "std::thread t;  // sia-conventions: allow(nodiscard-status) oops\n";
  EXPECT_EQ(CountRule(Lint("src/fake/s.cc", wrong_rule),
                      "raw-sync-primitive"),
            1u);
}

TEST(ExtractCatalogTest, BracesPlaceholdersAndWildcardsExpand) {
  const std::string md =
      "**Span naming convention.** spans: `parse.query`,\n"
      "`exec.join_{build,probe}_rows`, `synth.status.<status>`,\n"
      "`rewrite.degraded.*`.\n"
      "**CLI and bench surface.** `outside.name` is not part of it.\n";
  const auto catalog = ExtractCatalog(md);
  auto has = [&](const std::string& s) {
    return std::find(catalog.begin(), catalog.end(), s) != catalog.end();
  };
  EXPECT_TRUE(has("parse.query"));
  EXPECT_TRUE(has("exec.join_build_rows"));
  EXPECT_TRUE(has("exec.join_probe_rows"));
  EXPECT_TRUE(has("synth.status.*"));
  EXPECT_TRUE(has("rewrite.degraded.*"));
  EXPECT_FALSE(has("outside.name"));
}

// The gate itself: this repository's tree has zero findings. A failure
// here means a convention regressed (or a new obs name is missing from
// DESIGN.md's catalog) — fix the code or the catalog, or add an
// explicit `sia-conventions: allow(...)` with a reason.
TEST(TreeTest, RepositoryIsClean) {
  size_t scanned = 0;
  const auto findings = LintTree(SIA_SOURCE_DIR, &scanned);
  EXPECT_GT(scanned, 100u);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace sia::conventions
