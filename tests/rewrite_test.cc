#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "parser/parser.h"
#include "rewrite/plan.h"
#include "rewrite/planner.h"
#include "rewrite/rules.h"
#include "rewrite/sia_rewriter.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

const char* kOriginalQuery =
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";

// --- Catalog -----------------------------------------------------------------

TEST(CatalogTest, TpchTables) {
  const Catalog c = Catalog::TpchCatalog();
  EXPECT_TRUE(c.HasTable("lineitem"));
  EXPECT_TRUE(c.HasTable("ORDERS"));  // case-insensitive
  EXPECT_FALSE(c.HasTable("nation"));
  auto li = c.GetTable("lineitem");
  ASSERT_TRUE(li.ok());
  EXPECT_EQ(li->size(), 10u);
  auto joint = c.JointSchema({"lineitem", "orders"});
  ASSERT_TRUE(joint.ok());
  EXPECT_EQ(joint->size(), 15u);
  EXPECT_TRUE(joint->FindColumn("o_orderdate").has_value());
}

// --- Planner -----------------------------------------------------------------

TEST(PlannerTest, PushesSingleTableConjunctsIntoScans) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto q = ParseQuery(kOriginalQuery);
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(*q, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string s = (*plan)->ToString();
  // o_orderdate < ... must be inside the orders scan.
  EXPECT_NE(s.find("Scan(orders, filter="), std::string::npos) << s;
  // lineitem has no single-table conjunct in the original query.
  EXPECT_NE(s.find("Scan(lineitem)"), std::string::npos) << s;
  // The complex conjuncts live at the join level (condition or a
  // residual filter above it).
  EXPECT_NE(s.find("l_commitdate"), std::string::npos) << s;
}

TEST(PlannerTest, NoPushdownMode) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto q = ParseQuery(kOriginalQuery);
  ASSERT_TRUE(q.ok());
  PlannerOptions opts;
  opts.push_down_filters = false;
  auto plan = PlanQuery(*q, catalog, opts);
  ASSERT_TRUE(plan.ok());
  const std::string s = (*plan)->ToString();
  EXPECT_NE(s.find("Scan(orders)"), std::string::npos) << s;
}

TEST(PlannerTest, SingleTableQuery) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto q = ParseQuery("SELECT * FROM lineitem WHERE l_shipdate < '1993-06-01'");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(*q, catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanKind::kScan);
}

TEST(PlannerTest, GroupByPlansAggregate) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto q = ParseQuery(
      "SELECT * FROM lineitem WHERE l_quantity < 10 GROUP BY l_orderkey");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(*q, catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanKind::kAggregate);
}

TEST(PlannerTest, UnknownTableFails) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto q = ParseQuery("SELECT * FROM nosuch");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(PlanQuery(*q, catalog).ok());
}

// --- Syntax-driven baselines ----------------------------------------------------

TEST(TransitiveClosureTest, ClassicChain) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  s.AddColumn({"t", "y", DataType::kInteger, false});
  s.AddColumn({"t", "z", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  std::vector<ExprPtr> conjuncts = {bind(Col("x") < Col("y")),
                                    bind(Col("y") < Col("z"))};
  const auto derived = TransitiveClosure(conjuncts);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0]->ToString(), "t.x < t.z");
}

TEST(TransitiveClosureTest, MixedStrictness) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  s.AddColumn({"t", "y", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  // x <= y AND y <= 5  =>  x <= 5 ; with strict second: x < 5.
  {
    const auto d = TransitiveClosure(
        {bind(Col("x") <= Col("y")), bind(Col("y") <= Lit(5))});
    ASSERT_FALSE(d.empty());
    EXPECT_EQ(d[0]->ToString(), "t.x <= 5");
  }
  {
    const auto d = TransitiveClosure(
        {bind(Col("x") <= Col("y")), bind(Col("y") < Lit(5))});
    ASSERT_FALSE(d.empty());
    EXPECT_EQ(d[0]->ToString(), "t.x < 5");
  }
}

TEST(TransitiveClosureTest, GtNormalization) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  s.AddColumn({"t", "y", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  // y1 > x && x > y2 -> derive y2 < y1 (paper's §2 example with columns).
  const auto d = TransitiveClosure(
      {bind(Col("y") > Col("x")), bind(Col("x") > Lit(3))});
  ASSERT_FALSE(d.empty());
  EXPECT_EQ(d[0]->ToString(), "3 < t.y");
}

TEST(TransitiveClosureTest, CannotReasonAboutArithmetic) {
  // The paper's motivating case: l_shipdate - o_orderdate < 20 AND
  // o_orderdate < cut. Syntactic TC finds nothing because the middle
  // terms do not match syntactically.
  Schema s;
  s.AddColumn({"t", "ship", DataType::kInteger, false});
  s.AddColumn({"t", "ord", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  const auto d = TransitiveClosure({bind(Col("ship") - Col("ord") < Lit(20)),
                                    bind(Col("ord") < Lit(100))});
  EXPECT_TRUE(d.empty());
}

TEST(ConstantPropagationTest, SubstitutesEqualities) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  s.AddColumn({"t", "y", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  const auto out = PropagateConstants(
      {bind(Col("x") == Lit(5)), bind(Col("x") + Col("y") < Lit(20))});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->ToString(), "t.x = 5");
  EXPECT_EQ(out[1]->ToString(), "5 + t.y < 20");
}

TEST(ConstantPropagationTest, NoEqualitiesNoChange) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  auto bind = [&](ExprPtr e) { return Bind(e, s).value(); };
  const std::vector<ExprPtr> in = {bind(Col("x") < Lit(5))};
  const auto out = PropagateConstants(in);
  EXPECT_EQ(out[0].get(), in[0].get());
}

// --- Plan-level movement rules ---------------------------------------------------

TEST(MovementRulesTest, PushBelowJoin) {
  const Catalog catalog = Catalog::TpchCatalog();
  Schema li = catalog.GetTable("lineitem").value();
  Schema ord = catalog.GetTable("orders").value();
  PlanPtr join = PlanNode::Join(nullptr, PlanNode::Scan("lineitem", li),
                                PlanNode::Scan("orders", ord));
  const Schema& joint = join->output_schema();
  // l_quantity < 10 (left side) AND o_custkey > 5 (right side).
  ExprPtr pred = Bind((Col("l_quantity") < Lit(10)) &&
                          (Col("o_custkey") > Lit(5)),
                      joint)
                     .value();
  PlanPtr filtered = PlanNode::Filter(pred, join);
  PlanPtr moved = PushFilterBelowJoin(filtered);
  ASSERT_NE(moved.get(), filtered.get());
  EXPECT_EQ(moved->kind(), PlanKind::kJoin);
  EXPECT_EQ(moved->child(0)->kind(), PlanKind::kFilter);
  EXPECT_EQ(moved->child(1)->kind(), PlanKind::kFilter);
}

TEST(MovementRulesTest, CrossTableConjunctStays) {
  const Catalog catalog = Catalog::TpchCatalog();
  Schema li = catalog.GetTable("lineitem").value();
  Schema ord = catalog.GetTable("orders").value();
  PlanPtr join = PlanNode::Join(nullptr, PlanNode::Scan("lineitem", li),
                                PlanNode::Scan("orders", ord));
  ExprPtr pred =
      Bind(Col("l_shipdate") - Col("o_orderdate") < Lit(20),
           join->output_schema())
          .value();
  PlanPtr filtered = PlanNode::Filter(pred, join);
  PlanPtr moved = PushFilterBelowJoin(filtered);
  EXPECT_EQ(moved.get(), filtered.get());  // nothing can move
}

TEST(MovementRulesTest, PushBelowAggregate) {
  const Catalog catalog = Catalog::TpchCatalog();
  Schema li = catalog.GetTable("lineitem").value();
  PlanPtr scan = PlanNode::Scan("lineitem", li);
  // GROUP BY l_orderkey (col 0): output = [l_orderkey, count].
  PlanPtr agg = PlanNode::Aggregate({0}, scan);
  ExprPtr pred = Bind(Col("l_orderkey") < Lit(100), agg->output_schema())
                     .value();
  PlanPtr filtered = PlanNode::Filter(pred, agg);
  PlanPtr moved = PushFilterBelowAggregate(filtered);
  ASSERT_NE(moved.get(), filtered.get());
  EXPECT_EQ(moved->kind(), PlanKind::kAggregate);
  EXPECT_EQ(moved->child()->kind(), PlanKind::kFilter);
}

TEST(MovementRulesTest, CountColumnBlocksMovement) {
  const Catalog catalog = Catalog::TpchCatalog();
  Schema li = catalog.GetTable("lineitem").value();
  PlanPtr agg = PlanNode::Aggregate({0}, PlanNode::Scan("lineitem", li));
  ExprPtr pred = Bind(Col("count") > Lit(5), agg->output_schema()).value();
  PlanPtr filtered = PlanNode::Filter(pred, agg);
  EXPECT_EQ(PushFilterBelowAggregate(filtered).get(), filtered.get());
}

// --- SiaRewriter end-to-end -------------------------------------------------------

TEST(SiaRewriterTest, MotivatingQueryGainsLineitemPredicate) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(kOriginalQuery, catalog, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->changed())
      << "synthesis status: "
      << SynthesisStatusName(outcome->synthesis.status);

  // The learned predicate must use only lineitem columns.
  const Schema joint = catalog.JointSchema({"lineitem", "orders"}).value();
  for (const size_t c : CollectColumnIndices(outcome->learned)) {
    EXPECT_EQ(joint.column(c).table, "lineitem")
        << outcome->learned->ToString();
  }

  // Semantic equivalence: original WHERE must imply the learned predicate.
  auto q = ParseQuery(kOriginalQuery);
  ASSERT_TRUE(q.ok());
  ExprPtr bound = Bind(q->where, joint).value();
  auto valid = VerifyImplies(bound, outcome->learned, joint);
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, VerifyResult::kValid) << outcome->learned->ToString();

  // The rewritten query's planner output now filters lineitem pre-join.
  auto plan = PlanQuery(outcome->rewritten, catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE((*plan)->ToString().find("Scan(lineitem, filter="),
            std::string::npos)
      << (*plan)->ToString();
}

TEST(SiaRewriterTest, NoWhereClauseNoChange) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome =
      RewriteQuery("SELECT * FROM lineitem, orders", catalog, opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->changed());
}

TEST(SiaRewriterTest, WrongTargetTableErrors) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "nation";
  EXPECT_FALSE(RewriteQuery(kOriginalQuery, catalog, opts).ok());
}

TEST(SiaRewriterTest, ExplicitTargetColumns) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  opts.target_columns = {"l_shipdate"};
  auto outcome = RewriteQuery(kOriginalQuery, catalog, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (outcome->changed()) {
    const Schema joint = catalog.JointSchema({"lineitem", "orders"}).value();
    for (const size_t c : CollectColumnIndices(outcome->learned)) {
      EXPECT_EQ(joint.column(c).name, "l_shipdate");
    }
  }
}

}  // namespace
}  // namespace sia
