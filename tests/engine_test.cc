#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/date.h"
#include "common/rng.h"
#include "engine/column_table.h"
#include "engine/exec_expr.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "parser/parser.h"
#include "rewrite/planner.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

// --- ColumnData / Table -------------------------------------------------------

TEST(ColumnTableTest, AppendAndRead) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  s.AddColumn({"t", "d", DataType::kDouble, false});
  Table table(s);
  ASSERT_TRUE(table.AppendRow(Tuple({Value::Integer(4), Value::Double(2.5)}))
                  .ok());
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column(0).IntAt(0), 4);
  EXPECT_DOUBLE_EQ(table.column(1).DoubleAt(0), 2.5);
  EXPECT_EQ(table.RowAt(0).ToString(), "(4, 2.5)");
}

TEST(ColumnTableTest, NullHandling) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, true});
  Table table(s);
  ASSERT_TRUE(table.AppendRow(Tuple({Value::Integer(1)})).ok());
  ASSERT_TRUE(table.AppendRow(Tuple({Value::Null(DataType::kInteger)})).ok());
  ASSERT_TRUE(table.AppendRow(Tuple({Value::Integer(3)})).ok());
  EXPECT_FALSE(table.column(0).IsNull(0));
  EXPECT_TRUE(table.column(0).IsNull(1));
  EXPECT_FALSE(table.column(0).IsNull(2));
  EXPECT_EQ(table.column(0).IntAt(2), 3);
}

TEST(ColumnTableTest, NullRejectedOnNonNullable) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  Table table(s);
  EXPECT_FALSE(table.AppendRow(Tuple({Value::Null()})).ok());
}

// --- TPC-H generator -------------------------------------------------------------

TEST(TpchGenTest, RowCountsScale) {
  const TpchData data = GenerateTpch(0.001);
  EXPECT_EQ(data.orders.row_count(), 1500u);
  // 1..7 lineitems per order, mean 4.
  EXPECT_GT(data.lineitem.row_count(), 4000u);
  EXPECT_LT(data.lineitem.row_count(), 8500u);
}

TEST(TpchGenTest, Deterministic) {
  const TpchData a = GenerateTpch(0.0005, 9);
  const TpchData b = GenerateTpch(0.0005, 9);
  ASSERT_EQ(a.lineitem.row_count(), b.lineitem.row_count());
  for (size_t i = 0; i < a.lineitem.row_count(); i += 97) {
    EXPECT_TRUE(a.lineitem.RowAt(i) == b.lineitem.RowAt(i));
  }
}

TEST(TpchGenTest, DateInvariants) {
  const TpchData data = GenerateTpch(0.001);
  const Schema& s = data.lineitem.schema();
  const size_t ship = *s.FindColumn("l_shipdate");
  const size_t commit = *s.FindColumn("l_commitdate");
  const size_t receipt = *s.FindColumn("l_receiptdate");
  const size_t okey = *s.FindColumn("l_orderkey");
  const size_t o_okey = *data.orders.schema().FindColumn("o_orderkey");
  const size_t o_date = *data.orders.schema().FindColumn("o_orderdate");

  // Index orders by key (keys are 1..N in generation order).
  for (size_t i = 0; i < data.lineitem.row_count(); i += 13) {
    const int64_t key = data.lineitem.column(okey).IntAt(i);
    const size_t orow = static_cast<size_t>(key - 1);
    ASSERT_EQ(data.orders.column(o_okey).IntAt(orow), key);
    const int64_t odate = data.orders.column(o_date).IntAt(orow);
    const int64_t sdate = data.lineitem.column(ship).IntAt(i);
    const int64_t cdate = data.lineitem.column(commit).IntAt(i);
    const int64_t rdate = data.lineitem.column(receipt).IntAt(i);
    EXPECT_GE(sdate - odate, 1);
    EXPECT_LE(sdate - odate, 121);
    EXPECT_GE(cdate - odate, 30);
    EXPECT_LE(cdate - odate, 90);
    EXPECT_GE(rdate - sdate, 1);
    EXPECT_LE(rdate - sdate, 30);
  }
}

// --- CompiledExpr ------------------------------------------------------------------

class VecRow : public RowAccessor {
 public:
  explicit VecRow(std::vector<Value> values) : values_(std::move(values)) {}
  int64_t IntAt(size_t c) const override { return values_[c].AsInt(); }
  double DoubleAt(size_t c) const override { return values_[c].AsDouble(); }
  bool IsNull(size_t c) const override { return values_[c].is_null(); }

 private:
  std::vector<Value> values_;
};

// Property: CompiledExpr agrees with the tree-walking evaluator on random
// predicates over random (nullable) tuples.
TEST(CompiledExprTest, AgreesWithEvaluatorProperty) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, true});
  s.AddColumn({"t", "b", DataType::kInteger, true});
  s.AddColumn({"t", "c", DataType::kInteger, true});

  Rng rng(77);
  auto random_scalar = [&](auto&& self, int depth) -> ExprPtr {
    if (depth <= 0 || rng.Bernoulli(0.4)) {
      if (rng.Bernoulli(0.5)) {
        return Expr::Column("t", std::string(1, "abc"[rng.Uniform(0, 2)]));
      }
      return Expr::IntLit(rng.Uniform(-20, 20));
    }
    const ArithOp op = static_cast<ArithOp>(rng.Uniform(0, 3));
    return Expr::Arith(op, self(self, depth - 1), self(self, depth - 1));
  };
  auto random_pred = [&](auto&& self, int depth) -> ExprPtr {
    if (depth <= 0 || rng.Bernoulli(0.3)) {
      const CompareOp op = static_cast<CompareOp>(rng.Uniform(0, 5));
      return Expr::Compare(op, random_scalar(random_scalar, 2),
                           random_scalar(random_scalar, 2));
    }
    if (rng.Bernoulli(0.2)) return Expr::Not(self(self, depth - 1));
    const LogicOp op = rng.Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr;
    return Expr::Logic(op, self(self, depth - 1), self(self, depth - 1));
  };

  for (int trial = 0; trial < 300; ++trial) {
    ExprPtr raw = random_pred(random_pred, 3);
    auto bound = Bind(raw, s);
    ASSERT_TRUE(bound.ok());
    auto compiled = CompiledExpr::Compile(*bound);
    ASSERT_TRUE(compiled.ok());
    for (int probe = 0; probe < 10; ++probe) {
      std::vector<Value> vals;
      for (int c = 0; c < 3; ++c) {
        vals.push_back(rng.Bernoulli(0.15)
                           ? Value::Null(DataType::kInteger)
                           : Value::Integer(rng.Uniform(-20, 20)));
      }
      Tuple t(vals);
      const auto expected = EvalPredicate(*(*bound), t);
      ASSERT_TRUE(expected.ok());
      const int want = expected.value() == TruthValue::kTrue    ? 1
                       : expected.value() == TruthValue::kFalse ? 0
                                                                : 2;
      VecRow row(vals);
      EXPECT_EQ(compiled->EvalPredicate(row), want)
          << (*bound)->ToString() << " on " << t.ToString();
    }
  }
}

TEST(CompiledExprTest, RejectsUnbound) {
  EXPECT_FALSE(CompiledExpr::Compile(Col("a") < Lit(1)).ok());
}

// --- Executor -----------------------------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = Catalog::TpchCatalog();
    data_ = GenerateTpch(0.002, 7);  // 3000 orders, ~12k lineitem
    executor_.RegisterTable("lineitem", &data_.lineitem);
    executor_.RegisterTable("orders", &data_.orders);
  }

  QueryOutput Run(const std::string& sql, bool pushdown = true) {
    PlannerOptions opts;
    opts.push_down_filters = pushdown;
    auto out = RunSql(sql, catalog_, executor_, opts);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.value();
  }

  Catalog catalog_;
  TpchData data_;
  Executor executor_;
};

TEST_F(ExecutorTest, FullScanCounts) {
  const QueryOutput out = Run("SELECT * FROM lineitem");
  EXPECT_EQ(out.row_count, data_.lineitem.row_count());
}

TEST_F(ExecutorTest, FilterMatchesManualCount) {
  const int64_t cut = ParseDateToDay("1995-01-01").value();
  const QueryOutput out =
      Run("SELECT * FROM lineitem WHERE l_shipdate < '1995-01-01'");
  size_t expected = 0;
  const size_t ship = *data_.lineitem.schema().FindColumn("l_shipdate");
  for (size_t i = 0; i < data_.lineitem.row_count(); ++i) {
    expected += data_.lineitem.column(ship).IntAt(i) < cut;
  }
  EXPECT_EQ(out.row_count, expected);
}

TEST_F(ExecutorTest, JoinRowCountEqualsLineitems) {
  // Every lineitem has exactly one matching order.
  const QueryOutput out =
      Run("SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey");
  EXPECT_EQ(out.row_count, data_.lineitem.row_count());
}

TEST_F(ExecutorTest, PushdownDoesNotChangeResults) {
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND "
      "l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  const QueryOutput with = Run(sql, true);
  const QueryOutput without = Run(sql, false);
  EXPECT_EQ(with.row_count, without.row_count);
  EXPECT_EQ(with.content_hash, without.content_hash);
}

TEST_F(ExecutorTest, JoinThenFilterSemantics) {
  // Manually verify a small cross-table predicate.
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND "
      "l_shipdate - o_orderdate < 10";
  const QueryOutput out = Run(sql);
  const size_t ship = *data_.lineitem.schema().FindColumn("l_shipdate");
  const size_t okey = *data_.lineitem.schema().FindColumn("l_orderkey");
  const size_t o_date = *data_.orders.schema().FindColumn("o_orderdate");
  size_t expected = 0;
  for (size_t i = 0; i < data_.lineitem.row_count(); ++i) {
    const int64_t key = data_.lineitem.column(okey).IntAt(i);
    const int64_t odate = data_.orders.column(o_date).IntAt(key - 1);
    expected += (data_.lineitem.column(ship).IntAt(i) - odate) < 10;
  }
  EXPECT_EQ(out.row_count, expected);
}

TEST_F(ExecutorTest, AggregateCounts) {
  const QueryOutput out =
      Run("SELECT * FROM lineitem GROUP BY l_orderkey");
  // One output row per distinct order key present in lineitem = orders
  // that have at least one line = all orders (generator emits >= 1 line).
  EXPECT_EQ(out.row_count, data_.orders.row_count());
}

TEST_F(ExecutorTest, StatsPopulated) {
  const QueryOutput out =
      Run("SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey");
  EXPECT_EQ(out.stats.rows_scanned,
            data_.lineitem.row_count() + data_.orders.row_count());
  EXPECT_EQ(out.stats.join_output_rows, data_.lineitem.row_count());
  EXPECT_GT(out.elapsed_ms, 0.0);
}

TEST_F(ExecutorTest, MissingTableErrors) {
  Executor empty;
  auto q = ParseQuery("SELECT * FROM lineitem");
  ASSERT_TRUE(q.ok());
  auto plan = PlanQuery(*q, catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(empty.Execute(*plan).ok());
}

TEST_F(ExecutorTest, SelectivityMeasurement) {
  const Schema& s = data_.lineitem.schema();
  ExprPtr p =
      Bind(Col("l_shipdate") < Expr::DateLit(ParseDateToDay("1995-01-01")
                                                 .value()),
           s)
          .value();
  auto sel = MeasureSelectivity(data_.lineitem, p);
  ASSERT_TRUE(sel.ok());
  EXPECT_GT(*sel, 0.3);
  EXPECT_LT(*sel, 0.7);  // midpoint of the 1992-1998 range
}

}  // namespace
}  // namespace sia
