// Property: the simple (NULL-ignoring) and three-valued encodings agree
// on schemas whose columns are NOT NULL — the premise behind using the
// cheap encoding for sample generation and the 3VL one only in Verify
// (paper §5.2).
#include <gtest/gtest.h>

#include <z3++.h>

#include "common/rng.h"
#include "ir/binder.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"

namespace sia {
namespace {

Schema NonNullable() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  return s;
}

ExprPtr RandomScalar(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.45)) {
    if (rng.Bernoulli(0.5)) {
      return Expr::Column("t", rng.Bernoulli(0.5) ? "a" : "b");
    }
    return Expr::IntLit(rng.Uniform(-15, 15));
  }
  const ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul};
  return Expr::Arith(ops[rng.Uniform(0, 2)], RandomScalar(rng, depth - 1),
                     RandomScalar(rng, depth - 1));
}

ExprPtr RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.35)) {
    return Expr::Compare(static_cast<CompareOp>(rng.Uniform(0, 5)),
                         RandomScalar(rng, 2), RandomScalar(rng, 2));
  }
  if (rng.Bernoulli(0.2)) return Expr::Not(RandomPredicate(rng, depth - 1));
  return Expr::Logic(rng.Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr,
                     RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
}

class EncodingAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingAgreement, SimpleAndThreeValuedCoincideWithoutNulls) {
  Rng rng(GetParam());
  const Schema s = NonNullable();
  for (int trial = 0; trial < 25; ++trial) {
    auto bound = Bind(RandomPredicate(rng, 3), s);
    ASSERT_TRUE(bound.ok());

    // Encode the same predicate both ways in ONE context and assert the
    // two "is TRUE" formulas differ somewhere: UNSAT == equivalent.
    SmtContext ctx;
    Encoder simple(&ctx, s, NullHandling::kIgnore);
    Encoder three(&ctx, s, NullHandling::kThreeValued);
    auto f1 = simple.EncodeTrue(*bound);
    auto f2 = three.EncodeTrue(*bound);
    ASSERT_TRUE(f1.ok() && f2.ok());
    z3::solver solver(ctx.z3());
    solver.add(*f1 != *f2);
    EXPECT_EQ(solver.check(), z3::unsat) << (*bound)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingAgreement,
                         ::testing::Values(101, 202, 303));

TEST(EncodingDivergenceTest, NullableColumnsSeparateTheEncodings) {
  // With a nullable column the encodings MUST diverge: the simple one
  // has no NULL state, the 3VL one does.
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, true});
  auto bound = Bind(Expr::Compare(CompareOp::kLt, Expr::Column("t", "a"),
                                  Expr::IntLit(0)),
                    s);
  ASSERT_TRUE(bound.ok());
  SmtContext ctx;
  Encoder simple(&ctx, s, NullHandling::kIgnore);
  Encoder three(&ctx, s, NullHandling::kThreeValued);
  auto f1 = simple.EncodeTrue(*bound);
  auto f2 = three.EncodeTrue(*bound);
  ASSERT_TRUE(f1.ok() && f2.ok());
  z3::solver solver(ctx.z3());
  // With the null flag raised, simple says "a < 0" can be TRUE while 3VL
  // says it cannot.
  solver.add(ctx.NullVar(0) && *f1 && !*f2);
  EXPECT_EQ(solver.check(), z3::sat);
}

}  // namespace
}  // namespace sia
