// Extended engine scenarios: three-way joins, aggregation and projection
// execution, predicate-movement rules run end-to-end, and nested-loop
// join fallback.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "parser/parser.h"
#include "rewrite/planner.h"
#include "rewrite/rules.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

// A tiny star schema: fact(f_id, f_dim1, f_dim2, f_value),
// dim1(d1_id, d1_attr), dim2(d2_id, d2_attr).
class StarSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema fact;
    fact.AddColumn({"fact", "f_id", DataType::kInteger, false});
    fact.AddColumn({"fact", "f_dim1", DataType::kInteger, false});
    fact.AddColumn({"fact", "f_dim2", DataType::kInteger, false});
    fact.AddColumn({"fact", "f_value", DataType::kInteger, false});
    Schema dim1;
    dim1.AddColumn({"dim1", "d1_id", DataType::kInteger, false});
    dim1.AddColumn({"dim1", "d1_attr", DataType::kInteger, false});
    Schema dim2;
    dim2.AddColumn({"dim2", "d2_id", DataType::kInteger, false});
    dim2.AddColumn({"dim2", "d2_attr", DataType::kInteger, false});
    catalog_.RegisterTable("fact", fact);
    catalog_.RegisterTable("dim1", dim1);
    catalog_.RegisterTable("dim2", dim2);

    fact_ = Table(fact);
    dim1_ = Table(dim1);
    dim2_ = Table(dim2);
    // 4 dim1 rows, 3 dim2 rows, 24 fact rows covering all combos twice.
    for (int64_t i = 0; i < 4; ++i) dim1_.AppendIntRow({i, i * 10});
    for (int64_t i = 0; i < 3; ++i) dim2_.AppendIntRow({i, i * 100});
    int64_t id = 0;
    for (int rep = 0; rep < 2; ++rep) {
      for (int64_t a = 0; a < 4; ++a) {
        for (int64_t b = 0; b < 3; ++b) {
          fact_.AppendIntRow({id++, a, b, a + b});
        }
      }
    }
    executor_.RegisterTable("fact", &fact_);
    executor_.RegisterTable("dim1", &dim1_);
    executor_.RegisterTable("dim2", &dim2_);
  }

  QueryOutput Run(const std::string& sql, bool pushdown = true) {
    PlannerOptions opts;
    opts.push_down_filters = pushdown;
    auto out = RunSql(sql, catalog_, executor_, opts);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << sql;
    return out.ok() ? out.value() : QueryOutput{};
  }

  Catalog catalog_;
  Table fact_, dim1_, dim2_;
  Executor executor_;
};

TEST_F(StarSchemaTest, ThreeWayJoin) {
  const QueryOutput out = Run(
      "SELECT * FROM fact, dim1, dim2 "
      "WHERE f_dim1 = d1_id AND f_dim2 = d2_id");
  EXPECT_EQ(out.row_count, 24u);  // every fact row matches exactly once
}

TEST_F(StarSchemaTest, ThreeWayJoinWithFilters) {
  const QueryOutput out = Run(
      "SELECT * FROM fact, dim1, dim2 "
      "WHERE f_dim1 = d1_id AND f_dim2 = d2_id AND d1_attr >= 20 "
      "AND d2_attr = 100");
  // d1_attr >= 20 -> dims 2,3; d2_attr = 100 -> dim 1. 2*2 combos * 2 reps.
  EXPECT_EQ(out.row_count, 4u);
}

TEST_F(StarSchemaTest, PushdownEquivalenceThreeTables) {
  const std::string sql =
      "SELECT * FROM fact, dim1, dim2 WHERE f_dim1 = d1_id "
      "AND f_dim2 = d2_id AND d1_attr + d2_attr > 100 AND f_value < 5";
  const QueryOutput a = Run(sql, true);
  const QueryOutput b = Run(sql, false);
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.content_hash, b.content_hash);
}

TEST_F(StarSchemaTest, CrossJoinNestedLoopFallback) {
  const QueryOutput out = Run("SELECT * FROM dim1, dim2");
  EXPECT_EQ(out.row_count, 12u);  // 4 x 3 cartesian product
}

TEST_F(StarSchemaTest, NonEquiJoinCondition) {
  // No equi conjunct: nested loop with the residual condition.
  const QueryOutput out =
      Run("SELECT * FROM dim1, dim2 WHERE d1_id < d2_id");
  // pairs with d1_id < d2_id: (0,1),(0,2),(1,2) = 3.
  EXPECT_EQ(out.row_count, 3u);
}

TEST_F(StarSchemaTest, GroupByCounts) {
  const QueryOutput out =
      Run("SELECT * FROM fact WHERE f_value > 0 GROUP BY f_dim1");
  // f_value = a + b > 0 excludes only (a=0,b=0); groups by a: a=0 still
  // has rows with b>0 -> all 4 groups present.
  EXPECT_EQ(out.row_count, 4u);
}

TEST_F(StarSchemaTest, AggregateAfterJoin) {
  const QueryOutput out = Run(
      "SELECT * FROM fact, dim1 WHERE f_dim1 = d1_id GROUP BY d1_attr");
  EXPECT_EQ(out.row_count, 4u);  // one group per dim1 attr
}

// --- Movement rules executed end-to-end ----------------------------------

TEST_F(StarSchemaTest, MovedPlanProducesIdenticalResults) {
  const Schema fact = catalog_.GetTable("fact").value();
  const Schema dim1 = catalog_.GetTable("dim1").value();
  PlanPtr join = PlanNode::Join(nullptr, PlanNode::Scan("fact", fact),
                                PlanNode::Scan("dim1", dim1));
  ExprPtr join_cond =
      Bind(Col("f_dim1") == Col("d1_id"), join->output_schema()).value();
  PlanPtr joined = PlanNode::Join(join_cond, PlanNode::Scan("fact", fact),
                                  PlanNode::Scan("dim1", dim1));
  ExprPtr pred = Bind((Col("f_value") > Lit(1)) && (Col("d1_attr") < Lit(30)),
                      joined->output_schema())
                     .value();
  PlanPtr unmoved = PlanNode::Filter(pred, joined);
  PlanPtr moved = ApplyPredicateMovement(unmoved);
  ASSERT_NE(moved.get(), unmoved.get());

  auto a = executor_.Execute(unmoved);
  auto b = executor_.Execute(moved);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->row_count, b->row_count);
  EXPECT_EQ(a->content_hash, b->content_hash);
}

TEST_F(StarSchemaTest, ProjectNode) {
  const Schema fact = catalog_.GetTable("fact").value();
  PlanPtr scan = PlanNode::Scan("fact", fact);
  PlanPtr project = PlanNode::Project({0, 3}, scan);
  auto out = executor_.Execute(project);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->row_count, fact_.row_count());
  EXPECT_EQ(project->output_schema().size(), 2u);
}

TEST_F(StarSchemaTest, EmptyInputsFlowThrough) {
  Schema empty_schema;
  empty_schema.AddColumn({"e", "x", DataType::kInteger, false});
  Table empty(empty_schema);
  executor_.RegisterTable("e", &empty);
  Catalog cat = catalog_;
  cat.RegisterTable("e", empty_schema);
  PlannerOptions opts;
  auto out = RunSql("SELECT * FROM e WHERE x > 0", cat, executor_, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->row_count, 0u);
  auto joined = RunSql("SELECT * FROM e, dim1 WHERE x = d1_id", cat,
                       executor_, opts);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->row_count, 0u);
}

}  // namespace
}  // namespace sia
