// Threading substrate and morsel-parallel engine tests. Everything here
// is meant to run under ThreadSanitizer (scripts/check.sh builds this
// target into the TSan tree): the assertions are about determinism —
// byte-identical query output at every thread count — and about the
// single-flight cache running exactly one synthesis per key no matter
// how many workers race on it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "common/sync.h"
#include "engine/column_table.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "engine/vector_filter.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "rewrite/batch_rewriter.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "workload/querygen.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

// --- ThreadPool::ParallelFor ------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  // Deliberately not a multiple of the grain, so the last chunk is short.
  constexpr size_t kTotal = 100003;
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0);
  Status s = pool.ParallelFor(kTotal, 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsOk) {
  ThreadPool pool(4);
  bool ran = false;
  Status s = pool.ParallelFor(0, 16, [&](size_t, size_t) {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesStatus) {
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    ThreadPool pool(threads);
    Status s = pool.ParallelFor(1000, 10, [&](size_t begin, size_t) {
      if (begin >= 500) return Status::InvalidArgument("chunk rejected");
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("chunk rejected"), std::string::npos);
  }
}

TEST(ThreadPoolTest, ParallelForMapsExceptionsToInternal) {
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    ThreadPool pool(threads);
    Status s = pool.ParallelFor(64, 4, [&](size_t begin, size_t) -> Status {
      if (begin == 32) throw std::runtime_error("boom");
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_NE(s.message().find("boom"), std::string::npos);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto me = std::this_thread::get_id();
  Status s = pool.ParallelFor(100, 7, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
}

// A ParallelFor body that itself calls ParallelFor on the same pool must
// not deadlock: completion waits only on claimed chunks, never on a
// worker becoming free.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  Status s = pool.ParallelFor(4, 1, [&](size_t, size_t) {
    return pool.ParallelFor(100, 10, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<int>(end - begin));
      return Status::OK();
    });
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  EXPECT_LE(ThreadPool::DefaultThreadCount(), ThreadPool::kMaxThreads);
}

// --- Row-index overflow guard (the scan truncation fix) ---------------------

TEST(RowIndexLimitTest, GuardsThe32BitBoundary) {
  EXPECT_TRUE(CheckRowIndexLimit(0, "t").ok());
  EXPECT_TRUE(CheckRowIndexLimit(kMaxRowIndex, "t").ok());
  Status s = CheckRowIndexLimit(static_cast<size_t>(kMaxRowIndex) + 1,
                                "table 'lineitem'");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("lineitem"), std::string::npos);
  EXPECT_NE(s.message().find("row-index"), std::string::npos);
}

// --- FilterRange vs FilterTable ---------------------------------------------

TEST(VectorFilterRangeTest, ConcatenatedRangesMatchFullTable) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  Table table(s);
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(table.AppendRow(Tuple({Value::Integer(i % 37)})).ok());
  }
  const ExprPtr pred = Bind(Col("x") < Lit(11), s).value();
  const VectorizedFilter vf = VectorizedFilter::Compile(pred).value();

  std::vector<uint32_t> full;
  ASSERT_TRUE(vf.FilterTable(table, &full).ok());

  // Odd split points, deliberately unaligned to the 2048-row block size.
  std::vector<uint32_t> pieced;
  const size_t cuts[] = {0, 1000, 4097, 4999, 5000};
  for (size_t c = 0; c + 1 < 5; ++c) {
    ASSERT_TRUE(vf.FilterRange(table, cuts[c], cuts[c + 1], &pieced).ok());
  }
  EXPECT_EQ(pieced, full);
}

// --- Morsel-parallel execution determinism ----------------------------------

const TpchData& SharedTpch() {
  static const TpchData data = GenerateTpch(0.02);
  return data;
}

// Runs `sql` on executors pinned to 1, 2, and 8 threads and asserts the
// outputs are identical — row count, order-insensitive content hash, and
// the order-SENSITIVE order_hash (byte-identical output, not just equal
// multisets).
void ExpectSameAtAllThreadCounts(const std::string& sql) {
  const Catalog catalog = Catalog::TpchCatalog();
  const TpchData& data = SharedTpch();

  QueryOutput reference;
  bool have_reference = false;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    Executor executor;
    executor.set_thread_pool(&pool);
    executor.RegisterTable("lineitem", &data.lineitem);
    executor.RegisterTable("orders", &data.orders);
    auto out = RunSql(sql, catalog, executor);
    ASSERT_TRUE(out.ok()) << sql << ": " << out.status().ToString();
    if (!have_reference) {
      reference = *out;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(out->row_count, reference.row_count) << sql << " @" << threads;
    EXPECT_EQ(out->content_hash, reference.content_hash)
        << sql << " @" << threads;
    EXPECT_EQ(out->order_hash, reference.order_hash) << sql << " @" << threads;
  }
}

TEST(MorselParallelTest, ScanFilterIsThreadCountInvariant) {
  ExpectSameAtAllThreadCounts(
      "SELECT * FROM lineitem WHERE l_shipdate < '1995-01-01'");
}

TEST(MorselParallelTest, UnfilteredScanIsThreadCountInvariant) {
  ExpectSameAtAllThreadCounts("SELECT * FROM lineitem");
}

TEST(MorselParallelTest, HashJoinProbeIsThreadCountInvariant) {
  ExpectSameAtAllThreadCounts(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey");
}

TEST(MorselParallelTest, JoinWithResidualFilterIsThreadCountInvariant) {
  ExpectSameAtAllThreadCounts(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10");
}

// --- The vectorized-fallback counter ----------------------------------------

TEST(ScanFallbackCounterTest, PureIntegralScanNeverFallsBack) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry::Instance().ResetAll();
  const Catalog catalog = Catalog::TpchCatalog();
  const TpchData& data = SharedTpch();
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  auto out = RunSql("SELECT * FROM lineitem WHERE l_shipdate < '1995-01-01'",
                    catalog, executor);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(obs::MetricsRegistry::Instance()
                .GetCounter("exec.scan.vectorized_fallback")
                .Value(),
            0u);
  obs::MetricsRegistry::SetEnabled(false);
}

TEST(ScanFallbackCounterTest, NullableColumnScanCountsFallbacks) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry::Instance().ResetAll();

  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, true});
  Table table(s);
  for (int64_t i = 0; i < 100; ++i) {
    const Tuple row({i % 10 == 0 ? Value::Null(DataType::kInteger)
                                 : Value::Integer(i)});
    ASSERT_TRUE(table.AppendRow(row).ok());
  }
  const ExprPtr pred = Bind(Col("x") < Lit(50), s).value();

  Executor executor;
  executor.RegisterTable("t", &table);
  auto out = executor.Execute(PlanNode::Scan("t", s, pred));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // NULL < 50 is NULL, i.e. not TRUE: rows 1..49 pass except the four
  // nulled multiples of ten (10, 20, 30, 40) — and row 0 is null too.
  EXPECT_EQ(out->row_count, 45u);
  EXPECT_GT(obs::MetricsRegistry::Instance()
                .GetCounter("exec.scan.vectorized_fallback")
                .Value(),
            0u);
  obs::MetricsRegistry::SetEnabled(false);
}

// --- RewriteCache single-flight ---------------------------------------------

RewriteCache::Entry MakeEntry(SynthesisStatus status) {
  RewriteCache::Entry e;
  e.status = status;
  e.rung = 3;
  return e;
}

TEST(SingleFlightCacheTest, ExactlyOneSynthesisUnderEightRacingWorkers) {
  RewriteCache cache;
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  const ExprPtr key = Bind(Col("x") < Lit(7), s).value();

  std::atomic<int> calls{0};
  constexpr int kWorkers = 8;
  auto synthesize = [&]() -> Result<RewriteCache::Entry> {
    calls.fetch_add(1);
    // Hold the in-flight entry open until every other worker has parked
    // on it, so "they were all really racing" is guaranteed, not timing-
    // dependent. stats() only takes the cache mutex, which the leader
    // does NOT hold while synthesizing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cache.stats().coalesced <
               static_cast<size_t>(kWorkers - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return MakeEntry(SynthesisStatus::kOptimal);
  };

  std::vector<Thread> workers;
  std::atomic<int> ok_results{0};
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      auto r = cache.GetOrSynthesize(key, {0}, synthesize);
      if (r.ok() && r->status == SynthesisStatus::kOptimal) {
        ok_results.fetch_add(1);
      }
    });
  }
  for (Thread& t : workers) t.Join();

  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(ok_results.load(), kWorkers);
  const RewriteCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<size_t>(kWorkers - 1));
  EXPECT_EQ(st.coalesced, static_cast<size_t>(kWorkers - 1));
  EXPECT_EQ(st.entries, 1u);
}

TEST(SingleFlightCacheTest, FailedLeaderDoesNotPoisonTheKey) {
  RewriteCache cache;
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  const ExprPtr key = Bind(Col("x") < Lit(7), s).value();

  std::atomic<int> calls{0};
  auto failing = [&]() -> Result<RewriteCache::Entry> {
    calls.fetch_add(1);
    return Status::Internal("solver fell over");
  };
  auto r1 = cache.GetOrSynthesize(key, {0}, failing);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(cache.stats().entries, 0u);  // errors are not cached

  auto r2 = cache.GetOrSynthesize(key, {0}, [&]() -> Result<RewriteCache::Entry> {
    calls.fetch_add(1);
    return MakeEntry(SynthesisStatus::kValid);
  });
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status, SynthesisStatus::kValid);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SingleFlightCacheTest, WaiterTakesOverWhenLeaderFails) {
  RewriteCache cache;
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  const ExprPtr key = Bind(Col("x") < Lit(7), s).value();

  std::atomic<int> calls{0};
  auto synthesize = [&]() -> Result<RewriteCache::Entry> {
    const int call = calls.fetch_add(1);
    if (call == 0) {
      // First leader: wait until the other worker is parked on the
      // in-flight entry, then fail — forcing the handoff.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (cache.stats().coalesced < 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::Internal("first attempt failed");
    }
    return MakeEntry(SynthesisStatus::kValid);
  };

  std::atomic<int> successes{0};
  Thread a([&] {
    if (cache.GetOrSynthesize(key, {0}, synthesize).ok()) {
      successes.fetch_add(1);
    }
  });
  Thread b([&] {
    if (cache.GetOrSynthesize(key, {0}, synthesize).ok()) {
      successes.fetch_add(1);
    }
  });
  a.Join();
  b.Join();

  // One worker got the error, the other took over, synthesized, and
  // succeeded; both synthesize attempts ran.
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(successes.load(), 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SingleFlightCacheTest, ThrowingSynthesizeBecomesInternalError) {
  RewriteCache cache;
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  const ExprPtr key = Bind(Col("x") < Lit(7), s).value();
  auto r = cache.GetOrSynthesize(
      key, {0}, []() -> Result<RewriteCache::Entry> {
        throw std::runtime_error("boom");
      });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("boom"), std::string::npos);
  // The key is released: a later call may synthesize again.
  auto r2 = cache.GetOrSynthesize(key, {0}, [] {
    return Result<RewriteCache::Entry>(MakeEntry(SynthesisStatus::kNone));
  });
  EXPECT_TRUE(r2.ok());
}

// --- Batch rewriter ---------------------------------------------------------

std::vector<std::string> BatchRewriteSql(size_t threads, size_t queries,
                                         RewriteCache* cache) {
  const Catalog catalog = Catalog::TpchCatalog();
  QueryGenOptions gen;
  gen.seed = 2021;
  auto workload = GenerateWorkload(catalog, queries, gen);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  std::vector<ParsedQuery> parsed;
  for (const GeneratedQuery& q : *workload) parsed.push_back(q.query);

  ThreadPool pool(threads);
  BatchRewriteOptions options;
  options.rewrite.target_table = "lineitem";
  options.rewrite.synthesis.max_iterations = 1;  // fast and deterministic
  options.cache = cache;
  options.pool = &pool;
  auto outcomes = RewriteBatch(parsed, catalog, options);
  EXPECT_TRUE(outcomes.ok()) << outcomes.status().ToString();

  std::vector<std::string> sql;
  for (const RewriteOutcome& o : *outcomes) {
    sql.push_back(o.changed() ? o.rewritten.where->ToString() : "<unchanged>");
  }
  return sql;
}

TEST(BatchRewriterTest, SameSeedSameThreadsIsDeterministic) {
  RewriteCache cache_a, cache_b;
  const auto a = BatchRewriteSql(4, 4, &cache_a);
  const auto b = BatchRewriteSql(4, 4, &cache_b);
  EXPECT_EQ(a, b);
}

TEST(BatchRewriterTest, ThreadCountDoesNotChangeOutcomes) {
  RewriteCache cache_serial, cache_parallel;
  const auto serial = BatchRewriteSql(1, 4, &cache_serial);
  const auto parallel = BatchRewriteSql(4, 4, &cache_parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(BatchRewriterTest, IdenticalQueriesCoalesceOntoOneSynthesis) {
  const Catalog catalog = Catalog::TpchCatalog();
  QueryGenOptions gen;
  gen.seed = 2021;
  auto workload = GenerateWorkload(catalog, 1, gen);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  // Six copies of the same query: one synthesis, five cache hits (any
  // of which may additionally have coalesced onto the in-flight run).
  std::vector<ParsedQuery> parsed(6, (*workload)[0].query);

  ThreadPool pool(4);
  RewriteCache cache;
  BatchRewriteOptions options;
  options.rewrite.target_table = "lineitem";
  options.rewrite.synthesis.max_iterations = 1;
  options.cache = &cache;
  options.pool = &pool;
  auto outcomes = RewriteBatch(parsed, catalog, options);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 6u);

  const RewriteCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 5u);
  EXPECT_EQ(st.entries, 1u);

  // All six outcomes agree, and the five served by the cache say so.
  size_t from_cache = 0;
  for (const RewriteOutcome& o : *outcomes) {
    EXPECT_EQ(o.changed(), (*outcomes)[0].changed());
    if (o.changed()) {
      EXPECT_EQ(o.rewritten.where->ToString(),
                (*outcomes)[0].rewritten.where->ToString());
    }
    if (o.from_cache) ++from_cache;
  }
  EXPECT_EQ(from_cache, 5u);
}

}  // namespace
}  // namespace sia
