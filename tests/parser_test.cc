#include <gtest/gtest.h>

#include "common/date.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace sia {
namespace {

// --- Lexer ------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("SELECT a1, b.c2 FROM t WHERE x <= 10.5 AND y <> 'abc'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->back().type, TokenType::kEnd);
  // SELECT a1 , b . c2 FROM t WHERE x <= 10.5 AND y <> 'abc' END
  EXPECT_EQ(toks->size(), 17u);
  EXPECT_TRUE((*toks)[0].IsKeyword("select"));
  EXPECT_EQ((*toks)[6].text, "FROM");
}

TEST(LexerTest, OperatorsAndAliases) {
  auto toks = Lex("a != b <> c <= d >= e");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].IsSymbol("<>"));  // != normalized to <>
  EXPECT_TRUE((*toks)[3].IsSymbol("<>"));
  EXPECT_TRUE((*toks)[5].IsSymbol("<="));
  EXPECT_TRUE((*toks)[7].IsSymbol(">="));
}

TEST(LexerTest, Comments) {
  auto toks = Lex("a -- this is a comment\n+ b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->size(), 4u);  // a + b END
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("'unterminated").ok());
}

TEST(LexerTest, NumericLiterals) {
  auto toks = Lex("42 3.25");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_value, 42);
  EXPECT_DOUBLE_EQ((*toks)[1].float_value, 3.25);
}

// --- Expression parsing --------------------------------------------------------

TEST(ParseExprTest, Precedence) {
  auto e = ParseExpression("a + b * 2 < c - 1");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(), "a + b * 2 < c - 1");
}

TEST(ParseExprTest, ParenthesizedArithmeticAndPredicates) {
  auto e = ParseExpression("(a + b) * 2 < 10 AND (c < 1 OR c > 5)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(a + b) * 2 < 10 AND (c < 1 OR c > 5)");
}

TEST(ParseExprTest, DateLiterals) {
  auto bare = ParseExpression("o_orderdate < '1993-06-01'");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)->right()->literal().AsInt(),
            ParseDateToDay("1993-06-01").value());
  auto kw = ParseExpression("o_orderdate < DATE '1993-06-01'");
  ASSERT_TRUE(kw.ok());
  EXPECT_TRUE(Expr::Equal(*bare, *kw));
}

TEST(ParseExprTest, IntervalLiterals) {
  auto e = ParseExpression("l_shipdate - o_orderdate < INTERVAL '20' DAY");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->right()->literal().AsInt(), 20);
  auto bare = ParseExpression("x < INTERVAL 7 DAY");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)->right()->literal().AsInt(), 7);
}

TEST(ParseExprTest, UnaryMinus) {
  auto e = ParseExpression("-5 < a");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->left()->literal().AsInt(), -5);
  auto f = ParseExpression("0 - a < 3");
  ASSERT_TRUE(f.ok());
}

TEST(ParseExprTest, NotAndBooleans) {
  auto e = ParseExpression("NOT (a < 1) AND TRUE");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "NOT a < 1 AND TRUE");
}

TEST(ParseExprTest, QualifiedColumns) {
  auto e = ParseExpression("lineitem.l_shipdate < orders.o_orderdate");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->left()->table(), "lineitem");
  EXPECT_EQ((*e)->left()->name(), "l_shipdate");
}

TEST(ParseExprTest, Errors) {
  EXPECT_FALSE(ParseExpression("a <").ok());
  EXPECT_FALSE(ParseExpression("(a < 1").ok());
  EXPECT_FALSE(ParseExpression("a < 1 extra").ok());
  EXPECT_FALSE(ParseExpression("SELECT").ok());
  EXPECT_FALSE(ParseExpression("x < INTERVAL '5' MONTH").ok());
}

// --- Query parsing ----------------------------------------------------------

TEST(ParseQueryTest, PaperTemplate) {
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables, (std::vector<std::string>{"lineitem", "orders"}));
  ASSERT_EQ(q->select_list.size(), 1u);
  EXPECT_TRUE(q->select_list[0].is_star);
  ASSERT_NE(q->where, nullptr);
}

TEST(ParseQueryTest, SelectListWithAliases) {
  auto q = ParseQuery("SELECT a + 1 AS next, b FROM t");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select_list.size(), 2u);
  EXPECT_EQ(q->select_list[0].alias, "next");
  EXPECT_EQ(q->select_list[1].expr->name(), "b");
}

TEST(ParseQueryTest, GroupBy) {
  auto q = ParseQuery("SELECT * FROM t WHERE a < 1 GROUP BY b, c");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->group_by.size(), 2u);
}

TEST(ParseQueryTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseQuery("SELECT * FROM t;").ok());
}

TEST(ParseQueryTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT * FROM").ok());
  EXPECT_FALSE(ParseQuery("FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t GROUP c").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t extra_token").ok());
}

TEST(ParseQueryTest, RoundTripToString) {
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND "
      "l_shipdate - o_orderdate < 20";
  auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok());
  const std::string printed = q->ToString();
  // Re-parsing the printed form must yield the same structure.
  auto q2 = ParseQuery(printed);
  ASSERT_TRUE(q2.ok()) << printed;
  EXPECT_TRUE(Expr::Equal(q->where, q2->where));
  EXPECT_EQ(q2->ToString(), printed);
}

}  // namespace
}  // namespace sia
