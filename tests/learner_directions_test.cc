// Pins the learner's candidate-direction behavior (DESIGN.md
// "Implementation corrections"): axis and difference directions must win
// when they separate the data, the SVM direction must win on genuinely
// sloped boundaries, and thresholds must sit at gap midpoints.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "learn/learner.h"

namespace sia {
namespace {

Tuple T2(int64_t a, int64_t b) {
  return Tuple({Value::Integer(a), Value::Integer(b)});
}

TEST(LearnerDirectionsTest, AxisDirectionSurvivesScaleDisparity) {
  // The regression that motivated candidate directions: TRUE spans a
  // huge range on dim 0 and a tiny one on dim 1; FALSE sits above on
  // dim 0 only. Snapping the SVM normal in original units kills dim 0;
  // the axis candidate must recover `a < threshold`.
  TrainingSet data;
  data.true_samples = {T2(-1, -1), T2(-9, -9),    T2(-26, 2),
                       T2(4286, -1), T2(4288, 1), T2(6430, -11),
                       T2(6431, -11)};
  data.false_samples = {T2(8571, -8), T2(8572, -8), T2(8572, 2),
                        T2(8571, 1)};
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->models.size(), 1u);
  const LinearForm& f = learned->models[0];
  EXPECT_EQ(f.coeffs[1], 0) << f.coeffs[0] << "," << f.coeffs[1];
  EXPECT_EQ(f.coeffs[0], -1);
  for (const Tuple& t : data.true_samples) EXPECT_TRUE(f.Accepts(t));
  for (const Tuple& t : data.false_samples) EXPECT_FALSE(f.Accepts(t));
}

TEST(LearnerDirectionsTest, DifferenceDirectionWinsOnDiagonal) {
  // TRUE where a - b < 0, FALSE where a - b > 0, spread over a large
  // range: only the difference direction separates.
  TrainingSet data;
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const int64_t base = rng.Uniform(-1000, 1000);
    data.true_samples.push_back(T2(base, base + rng.Uniform(5, 50)));
    data.false_samples.push_back(T2(base + rng.Uniform(5, 50), base));
  }
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->models.size(), 1u);
  const LinearForm& f = learned->models[0];
  EXPECT_EQ(f.coeffs[0], -1);
  EXPECT_EQ(f.coeffs[1], 1);
  for (const Tuple& t : data.true_samples) EXPECT_TRUE(f.Accepts(t));
  for (const Tuple& t : data.false_samples) EXPECT_FALSE(f.Accepts(t));
}

TEST(LearnerDirectionsTest, SlopedBoundaryFallsToSvm) {
  // Boundary 2a + b = 100: no axis or +/-1-difference direction
  // separates; the snapped SVM direction must.
  TrainingSet data;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const int64_t a = rng.Uniform(-100, 100);
    const int64_t b = rng.Uniform(-100, 100);
    const int64_t v = 2 * a + b - 100;
    if (v > 5) {
      data.true_samples.push_back(T2(a, b));
    } else if (v < -5) {
      data.false_samples.push_back(T2(a, b));
    }
  }
  ASSERT_GT(data.true_samples.size(), 10u);
  ASSERT_GT(data.false_samples.size(), 10u);
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  for (const Tuple& t : data.true_samples) {
    EXPECT_TRUE(learned->Accepts(t)) << t.ToString();
  }
  // The separating direction should be ~2:1.
  ASSERT_EQ(learned->models.size(), 1u);
  const LinearForm& f = learned->models[0];
  ASSERT_NE(f.coeffs[1], 0);
  EXPECT_NEAR(static_cast<double>(f.coeffs[0]) / f.coeffs[1], 2.0, 0.7)
      << f.coeffs[0] << ":" << f.coeffs[1];
}

TEST(LearnerDirectionsTest, MaxMarginThresholdSitsMidGap) {
  // One dimension, TRUE at >= 100, FALSE at <= 0: the chosen threshold
  // must land near the middle of the (0, 100) gap, not hug either side.
  TrainingSet data;
  for (int i = 0; i < 10; ++i) {
    data.true_samples.push_back(Tuple({Value::Integer(100 + i)}));
    data.false_samples.push_back(Tuple({Value::Integer(-i)}));
  }
  auto learned = Learn(data, {0});
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->models.size(), 1u);
  const LinearForm& f = learned->models[0];
  ASSERT_EQ(f.coeffs[0], 1);
  // pred: x + c > 0  ->  boundary at -c; mid-gap is ~50.
  EXPECT_GT(-f.constant, 25);
  EXPECT_LT(-f.constant, 75);
}

TEST(LearnerDirectionsTest, IdenticalTrueFalsePointRelaxes) {
  // A point present in both classes: unseparable; Learn must still
  // accept every TRUE sample (its contract), even at the cost of
  // accepting the duplicated FALSE one.
  TrainingSet data;
  data.true_samples = {T2(5, 5), T2(6, 6)};
  data.false_samples = {T2(5, 5)};
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  for (const Tuple& t : data.true_samples) EXPECT_TRUE(learned->Accepts(t));
}

}  // namespace
}  // namespace sia
