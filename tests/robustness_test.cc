// Failure injection and robustness: starved solver budgets, hostile
// parser inputs, degenerate expressions, and resource edges. Nothing here
// may crash; everything must degrade to a Status or a conservative
// synthesis outcome.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/exec_expr.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "rewrite/sia_rewriter.h"
#include "synth/interval_synthesizer.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema Abc() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  return s;
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

// --- Starved solver budgets ------------------------------------------------

TEST(StarvedSolverTest, SynthesisDegradesGracefully) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)),
                        s);
  SynthesisOptions opts;
  opts.samples.solver_timeout_ms = 1;
  opts.verify.solver_timeout_ms = 1;
  auto r = Synthesize(p, s, {0});
  // With a 1ms budget the solver may still manage trivial queries; the
  // contract is only "no crash, and any predicate returned verifies".
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (r->has_predicate() && !r->predicate->IsFalseLiteral()) {
    auto v = VerifyImplies(p, r->predicate, s);
    ASSERT_TRUE(v.ok());
    EXPECT_NE(*v, VerifyResult::kInvalid) << r->predicate->ToString();
  }
}

TEST(StarvedSolverTest, VerifyReportsUnknownNotWrongAnswer) {
  // A formula hard enough that 1ms is insufficient: multiplication of
  // variables (folded into an aux var, so actually easy) — instead use a
  // wide disjunction with large coefficients. Whatever the solver does,
  // the API must return one of the three enum values.
  Schema s = Abc();
  std::vector<ExprPtr> parts;
  for (int i = 1; i < 40; ++i) {
    parts.push_back(BindOrDie(Col("a") * Lit(i) + Col("b") * Lit(41 - i) >
                                  Lit(i * 1000),
                              s));
  }
  ExprPtr big = Expr::Or(parts);
  VerifyOptions opts;
  opts.solver_timeout_ms = 1;
  auto v = VerifyImplies(big, BindOrDie(Col("a") > Lit(-100000), s), s, opts);
  ASSERT_TRUE(v.ok());
  SUCCEED();
}

TEST(StarvedSolverTest, IntervalSynthesizerTimeout) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)),
                        s);
  IntervalOptions opts;
  opts.solver_timeout_ms = 1;
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());  // may be kNone/kValid/kOptimal, never a crash
}

TEST(StarvedSolverTest, ExpiredDeadlineSurfacesAsTimeoutNamingTheStage) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)),
                        s);
  VerifyOptions opts;
  opts.deadline = Deadline::FromNowMillis(0);
  auto v = VerifyImplies(p, BindOrDie(Col("a") < Lit(100), s), s, opts);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTimeout);
  EXPECT_NE(v.status().message().find("verify.check"), std::string::npos)
      << v.status().ToString();
}

TEST(StarvedSolverTest, StarvedEndToEndRewriteDeadline) {
  // A 1ms end-to-end deadline on the whole rewrite: every rung must give
  // up deterministically (kTimeout absorbed into "no rewrite"), in
  // bounded time, without crashing.
  Catalog catalog = Catalog::TpchCatalog();
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  RewriteOptions opts;
  opts.target_table = "lineitem";
  opts.deadline = Deadline::FromNowMillis(1);

  Stopwatch sw;
  auto outcome = RewriteQuery(sql, catalog, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->changed());
  EXPECT_EQ(outcome->rung, RewriteRung::kOriginal);
  EXPECT_FALSE(outcome->degradation.empty());
  // "Bounded": parse/bind plus a handful of refused solver calls. The
  // margin is generous for sanitizer builds; the point is that a starved
  // deadline cannot cost a full solver timeout per call.
  EXPECT_LT(sw.ElapsedMillis(), 10000.0);

  // Deterministic: a second starved run reaches the same outcome.
  opts.deadline = Deadline::FromNowMillis(0);
  auto again = RewriteQuery(sql, catalog, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->changed());
  EXPECT_EQ(again->rung, RewriteRung::kOriginal);
}

TEST(StarvedSolverTest, SynthesisRecordsDeadlineExpiry) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)),
                        s);
  SynthesisOptions opts;
  opts.deadline = Deadline::FromNowMillis(0);
  auto r = Synthesize(p, s, {0}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // graceful, not an error
  EXPECT_EQ(r->status, SynthesisStatus::kNone);
  EXPECT_TRUE(r->deadline_expired);
  EXPECT_TRUE(r->solver_gave_up);
  EXPECT_EQ(r->timeout_stage, "synth.sample");
}

// --- Hostile parser inputs ---------------------------------------------------

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(4242);
  const char alphabet[] =
      "abcxyz01239 .,'()<>=+-*/_\t\nSELECTFROMWHEREANDORNOTBETWEENIN";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(0, 60));
    for (int i = 0; i < len; ++i) {
      input += alphabet[rng.Uniform(0, sizeof(alphabet) - 2)];
    }
    // Must return either ok or an error status; must not throw or crash.
    auto q = ParseQuery(input);
    auto e = ParseExpression(input);
    (void)q;
    (void)e;
  }
  SUCCEED();
}

TEST(ParserFuzzTest, TokenMutationsOfValidQuery) {
  Rng rng(777);
  const std::string base =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND "
      "l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.Uniform(0, 3));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size() - 1)));
      switch (rng.Uniform(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, "()<>'*"[rng.Uniform(0, 5)]);
          break;
        default:
          mutated[pos] = "abc;"[rng.Uniform(0, 3)];
          break;
      }
    }
    auto q = ParseQuery(mutated);
    (void)q;
  }
  SUCCEED();
}

TEST(LexerEdgeTest, IntegerOverflowLiteral) {
  EXPECT_FALSE(Lex("99999999999999999999999999").ok());
}

TEST(LexerEdgeTest, EmptyAndWhitespaceOnly) {
  auto empty = Lex("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 1u);  // just END
  auto ws = Lex("  \t\n  -- comment only\n");
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 1u);
}

// --- Degenerate expressions ---------------------------------------------------

TEST(DeepExpressionTest, CompiledExprDepthLimit) {
  Schema s = Abc();
  ExprPtr e = BindOrDie(Col("a"), s);
  for (int i = 0; i < 70; ++i) {
    e = Expr::Arith(ArithOp::kAdd, e,
                    Expr::Arith(ArithOp::kMul, BindOrDie(Col("b"), s),
                                Expr::IntLit(i)));
  }
  // Depth stays ~3 for left-deep chains: should compile fine.
  ExprPtr pred = Expr::Compare(CompareOp::kGt, e, Expr::IntLit(0));
  EXPECT_TRUE(CompiledExpr::Compile(pred).ok());

  // Right-deep nesting drives the stack depth up; must be rejected, not
  // overflow.
  ExprPtr deep = Expr::IntLit(1);
  for (int i = 0; i < 70; ++i) {
    deep = Expr::Arith(ArithOp::kAdd, Expr::IntLit(1), deep);
  }
  ExprPtr deep_pred = Expr::Compare(CompareOp::kGt, deep, Expr::IntLit(0));
  auto compiled = CompiledExpr::Compile(deep_pred);
  EXPECT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnsupported);
}

TEST(DegenerateSynthesisTest, TrivialTruePredicate) {
  Schema s = Abc();
  // p = a = a is a tautology referencing a; no unsat tuples -> kNone.
  ExprPtr p = BindOrDie(Col("a") == Col("a"), s);
  auto r = Synthesize(p, s, {0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SynthesisStatus::kNone);
}

TEST(DegenerateSynthesisTest, SingleSampleSpace) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") == Lit(5)) && (Col("b") > Lit(0)), s);
  auto r = Synthesize(p, s, {0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal);
  ASSERT_TRUE(r->has_predicate());
  Tuple yes({Value::Integer(5), Value::Integer(0)});
  Tuple no({Value::Integer(6), Value::Integer(0)});
  EXPECT_TRUE(Satisfies(*r->predicate, yes).value());
  EXPECT_FALSE(Satisfies(*r->predicate, no).value());
}

}  // namespace
}  // namespace sia
