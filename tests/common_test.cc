#include <gtest/gtest.h>

#include <set>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace sia {
namespace {

// --- Status / Result ----------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HelperReturnsEarly(bool fail) {
  Result<int> inner = fail ? Result<int>(Status::Internal("boom"))
                           : Result<int>(7);
  SIA_ASSIGN_OR_RETURN(int v, inner);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(HelperReturnsEarly(false).value(), 14);
  EXPECT_EQ(HelperReturnsEarly(true).status().code(), StatusCode::kInternal);
}

// --- Dates ---------------------------------------------------------------

TEST(DateTest, EpochIsDayZero) {
  EXPECT_EQ(CivilToDay({1970, 1, 1}), 0);
  EXPECT_EQ(CivilToDay({1970, 1, 2}), 1);
  EXPECT_EQ(CivilToDay({1969, 12, 31}), -1);
}

TEST(DateTest, KnownTpchDates) {
  // Cross-checked against `date -d ... +%s` / 86400.
  EXPECT_EQ(CivilToDay({1992, 1, 1}), 8035);
  EXPECT_EQ(CivilToDay({1998, 8, 2}), 10440);
  EXPECT_EQ(CivilToDay({1993, 6, 1}), 8552);
}

TEST(DateTest, RoundTripsOverWideRange) {
  for (int64_t day = -200000; day <= 200000; day += 37) {
    EXPECT_EQ(CivilToDay(DayToCivil(day)), day) << "day=" << day;
  }
}

TEST(DateTest, ParseAndFormat) {
  auto day = ParseDateToDay("1993-06-01");
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(FormatDay(*day), "1993-06-01");
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1993-13-01").ok());
  EXPECT_FALSE(ParseDate("1993-02-30").ok());
  EXPECT_FALSE(ParseDate("1993-06-01x").ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1995));
  EXPECT_EQ(DaysInMonth(1996, 2), 29);
  EXPECT_EQ(DaysInMonth(1995, 2), 28);
  EXPECT_TRUE(ParseDate("1996-02-29").ok());
  EXPECT_FALSE(ParseDate("1995-02-29").ok());
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 16; ++i) diffs += (a.Next() != b.Next());
  EXPECT_GT(diffs, 0);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// --- Strings ----------------------------------------------------------------

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("L_ShipDate"), "l_shipdate");
  EXPECT_EQ(ToUpper("sel"), "SEL");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

}  // namespace
}  // namespace sia
