// Unit tests for synthesizer helpers: date prettification, used-column
// reporting, conjunct subsumption, and option plumbing.
#include <gtest/gtest.h>

#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema Dates() {
  Schema s;
  s.AddColumn({"t", "d1", DataType::kDate, false});
  s.AddColumn({"t", "d2", DataType::kDate, false});
  s.AddColumn({"t", "n", DataType::kInteger, false});
  return s;
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

// --- PrettifyDates -------------------------------------------------------

TEST(PrettifyDatesTest, SingleDateColumnBecomesDateLiteral) {
  Schema s = Dates();
  // d1 - 8552 > 0  ->  d1 > DATE '1993-06-01'
  ExprPtr raw = BindOrDie(Col("d1") - Lit(8552) > Lit(0), s);
  ExprPtr pretty = PrettifyDates(raw, s);
  EXPECT_EQ(pretty->ToString(), "t.d1 > DATE '1993-06-01'");
}

TEST(PrettifyDatesTest, NegativeCoefficientSwapsComparison) {
  Schema s = Dates();
  // 8552 - d1 > 0  ->  d1 < DATE '1993-06-01'
  ExprPtr raw = BindOrDie(Lit(8552) - Col("d1") > Lit(0), s);
  ExprPtr pretty = PrettifyDates(raw, s);
  EXPECT_EQ(pretty->ToString(), "t.d1 < DATE '1993-06-01'");
}

TEST(PrettifyDatesTest, DateDifferenceForm) {
  Schema s = Dates();
  // d1 - d2 + 29 > 0  ->  d1 - d2 > -29
  ExprPtr raw = BindOrDie(Col("d1") - Col("d2") + Lit(29) > Lit(0), s);
  ExprPtr pretty = PrettifyDates(raw, s);
  EXPECT_EQ(pretty->ToString(), "t.d1 - t.d2 > -29");
}

TEST(PrettifyDatesTest, PreservesSemantics) {
  Schema s = Dates();
  const std::vector<ExprPtr> cases = {
      BindOrDie(Col("d1") - Lit(8552) > Lit(0), s),
      BindOrDie(Lit(8552) - Col("d1") >= Lit(0), s),
      BindOrDie(Col("d1") - Col("d2") + Lit(29) > Lit(0), s),
      BindOrDie((Col("d1") - Lit(100) > Lit(0)) &&
                    (Col("d2") + Lit(5) < Lit(8552)),
                s),
  };
  for (const ExprPtr& raw : cases) {
    ExprPtr pretty = PrettifyDates(raw, s);
    auto eq = VerifyEquivalent(raw, pretty, s);
    ASSERT_TRUE(eq.ok());
    EXPECT_EQ(*eq, VerifyResult::kValid)
        << raw->ToString() << " vs " << pretty->ToString();
  }
}

TEST(PrettifyDatesTest, LeavesNonDateShapesAlone) {
  Schema s = Dates();
  ExprPtr raw = BindOrDie(Col("n") + Lit(3) > Lit(0), s);
  EXPECT_EQ(PrettifyDates(raw, s).get(), raw.get());
  // Coefficient 2 on a date cannot be expressed as a date literal bound.
  ExprPtr scaled = BindOrDie(Lit(2) * Col("d1") > Lit(17000), s);
  EXPECT_EQ(PrettifyDates(scaled, s).get(), scaled.get());
  // Non-linear shapes are left alone.
  ExprPtr nonlinear = BindOrDie(Col("n") * Col("n") > Lit(4), s);
  EXPECT_EQ(PrettifyDates(nonlinear, s).get(), nonlinear.get());
}

// --- SynthesisResult::UsedColumns ----------------------------------------

TEST(SynthesisResultTest, UsedColumnsFromForms) {
  SynthesisResult r;
  LearnedPredicate lp;
  LinearForm f;
  f.columns = {3, 5};
  f.coeffs = {1, 0};  // column 5 unused
  f.constant = 2;
  lp.models.push_back(f);
  r.conjuncts.push_back(lp);
  EXPECT_EQ(r.UsedColumns(), (std::vector<size_t>{3}));
}

TEST(SynthesisResultTest, UsedColumnsFallsBackToPredicate) {
  Schema s = Dates();
  SynthesisResult r;
  r.predicate = BindOrDie(Col("d2") > Lit(0), s);
  EXPECT_EQ(r.UsedColumns(), (std::vector<size_t>{1}));
}

// --- Convergence behavior ---------------------------------------------------

TEST(SynthesizerConvergenceTest, WideGapConvergesWellUnderBudget) {
  // d1 >= d2 + 1 and d2 >= 8552: the {d1} reduction is d1 >= 8553, with
  // the initial FALSE samples thousands of days away. Bisection dynamics
  // must find it in far fewer than the 41-iteration budget.
  Schema s = Dates();
  ExprPtr p = BindOrDie(
      (Col("d1") > Col("d2")) && (Col("d2") >= Lit(8552)), s);
  auto r = Synthesize(p, s, {0});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal)
      << r->predicate->ToString();
  EXPECT_LT(r->stats.iterations, 25);
  // A single conjunct should survive subsumption.
  EXPECT_EQ(r->conjuncts.size(), 1u) << r->predicate->ToString();
  EXPECT_EQ(r->predicate->ToString(), "t.d1 > DATE '1993-06-01'");
}

TEST(SynthesizerConvergenceTest, TwoSidedWindowNeedsTwoConjuncts) {
  Schema s = Dates();
  // 0 <= d1 - d2 <= 10 and 100 <= d2 <= 200 -> d1 in [100, 210].
  ExprPtr p = BindOrDie((Col("d1") - Col("d2") >= Lit(0)) &&
                            (Col("d1") - Col("d2") <= Lit(10)) &&
                            (Col("d2") >= Lit(100)) && (Col("d2") <= Lit(200)),
                        s);
  auto r = Synthesize(p, s, {0});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  // Valid either way; if optimal, the accepted set must be exactly
  // [100, 210].
  auto valid = VerifyImplies(p, r->predicate, s);
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, VerifyResult::kValid);
  if (r->status == SynthesisStatus::kOptimal) {
    for (const int64_t v : {99, 100, 210, 211}) {
      Tuple t({Value::Date(v), Value::Date(0), Value::Integer(0)});
      EXPECT_EQ(Satisfies(*r->predicate, t).value(), v >= 100 && v <= 210)
          << "v=" << v << " pred " << r->predicate->ToString();
    }
  }
}

TEST(SynthesizerOptionsTest, IterationBudgetRespected) {
  Schema s = Dates();
  ExprPtr p = BindOrDie(
      (Col("d1") > Col("d2")) && (Col("d2") >= Lit(8552)), s);
  SynthesisOptions opts;
  opts.max_iterations = 1;
  auto r = Synthesize(p, s, {0}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.iterations, 1);
}

TEST(SynthesizerOptionsTest, SampleBudgetsRespected) {
  Schema s = Dates();
  ExprPtr p = BindOrDie(
      (Col("d1") > Col("d2")) && (Col("d2") >= Lit(8552)), s);
  SynthesisOptions opts;
  opts.initial_true_samples = 4;
  opts.initial_false_samples = 4;
  opts.samples_per_iteration = 2;
  opts.max_iterations = 3;
  auto r = Synthesize(p, s, {0}, opts);
  ASSERT_TRUE(r.ok());
  // 4 + 4 initial, at most 2 per iteration over 3 iterations.
  EXPECT_LE(r->stats.true_samples + r->stats.false_samples, 8u + 6u);
}

}  // namespace
}  // namespace sia
