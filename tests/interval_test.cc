#include <gtest/gtest.h>

#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "synth/interval_synthesizer.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema Abc() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  s.AddColumn({"t", "d", DataType::kDate, false});
  return s;
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(IntervalSynthesizerTest, TwoSidedBound) {
  Schema s = Abc();
  // a - b < 20 AND b < 0 AND a > b - 5  =>  over {a}: hull is
  // a <= 18 (a <= b + 19 <= 18) and a >= ... a > b - 5 with b unbounded
  // below? b < 0 only, so b can be very negative -> a can be very
  // negative: lower bound unbounded. Expect a <= 18 only.
  ExprPtr p = BindOrDie(
      (Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)), s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->predicate->ToString(), "t.a <= 18");
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal);

  auto valid = VerifyImplies(p, r->predicate, s);
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, VerifyResult::kValid);
}

TEST(IntervalSynthesizerTest, BothSidesBounded) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") > Col("b")) && (Col("b") >= Lit(10)) &&
                            (Col("a") <= Lit(50)),
                        s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->predicate->ToString(), "t.a >= 11 AND t.a <= 50");
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal);
}

TEST(IntervalSynthesizerTest, HoleMakesHullSuboptimal) {
  Schema s = Abc();
  // a in [0,10] or [20,30] (b selects the branch): hull is [0,30] which
  // accepts the unsatisfiable gap (11..19) -> valid but NOT optimal.
  ExprPtr p = BindOrDie(((Col("a") >= Lit(0)) && (Col("a") <= Lit(10)) &&
                         (Col("b") == Lit(0))) ||
                            ((Col("a") >= Lit(20)) && (Col("a") <= Lit(30)) &&
                             (Col("b") == Lit(1))),
                        s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->predicate->ToString(), "t.a >= 0 AND t.a <= 30");
  EXPECT_EQ(r->status, SynthesisStatus::kValid);
}

TEST(IntervalSynthesizerTest, PointInterval) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") >= Lit(7)) && (Col("a") <= Lit(7)) &&
                            (Col("b") > Lit(0)),
                        s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->predicate->ToString(), "t.a = 7");
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal);
}

TEST(IntervalSynthesizerTest, UnboundedColumnYieldsNone) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(Col("a") == Col("b"), s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SynthesisStatus::kNone);
}

TEST(IntervalSynthesizerTest, UnsatisfiableYieldsFalse) {
  Schema s = Abc();
  ExprPtr p = BindOrDie((Col("a") > Lit(5)) && (Col("a") < Lit(0)), s);
  auto r = SynthesizeInterval(p, s, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SynthesisStatus::kOptimal);
  EXPECT_TRUE(r->predicate->IsFalseLiteral());
}

TEST(IntervalSynthesizerTest, DateColumnRendersDateLiterals) {
  Schema s = Abc();
  // d < 1993-06-01 (day 8552) AND d - b > 0 AND b > 8000
  ExprPtr p = BindOrDie((Col("d") < DateL(8552)) &&
                            (Col("d") - Col("b") > Lit(0)) &&
                            (Col("b") > Lit(8000)),
                        s);
  auto r = SynthesizeInterval(p, s, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_predicate());
  EXPECT_EQ(r->predicate->ToString(),
            "t.d >= DATE '1991-11-29' AND t.d <= DATE '1993-05-31'");
}

TEST(IntervalSynthesizerTest, RejectsUnreferencedColumn) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(Col("a") > Lit(0), s);
  EXPECT_FALSE(SynthesizeInterval(p, s, 1).ok());
}

TEST(IntervalSynthesizerTest, AgreesWithCegisOnSimpleCases) {
  // On one-column problems where CEGIS converges to optimal, the two
  // synthesizers must describe the same set of accepted values.
  Schema s = Abc();
  const std::vector<ExprPtr> predicates = {
      BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)), s),
      BindOrDie((Col("a") + Col("b") <= Lit(100)) && (Col("b") >= Lit(60)),
                s),
  };
  for (const ExprPtr& p : predicates) {
    auto interval = SynthesizeInterval(p, s, 0);
    ASSERT_TRUE(interval.ok());
    auto cegis = Synthesize(p, s, {0});
    ASSERT_TRUE(cegis.ok());
    if (cegis->status == SynthesisStatus::kOptimal &&
        interval->status == SynthesisStatus::kOptimal) {
      auto eq = VerifyEquivalent(interval->predicate, cegis->predicate, s);
      ASSERT_TRUE(eq.ok());
      EXPECT_EQ(*eq, VerifyResult::kValid)
          << "interval: " << interval->predicate->ToString()
          << " vs cegis: " << cegis->predicate->ToString();
    }
  }
}

}  // namespace
}  // namespace sia
