#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace sia {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInteger), "INTEGER");
  EXPECT_STREQ(DataTypeName(DataType::kDate), "DATE");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
}

TEST(DataTypeTest, Classification) {
  EXPECT_TRUE(IsIntegral(DataType::kInteger));
  EXPECT_TRUE(IsIntegral(DataType::kDate));
  EXPECT_TRUE(IsIntegral(DataType::kBoolean));
  EXPECT_FALSE(IsIntegral(DataType::kDouble));
  EXPECT_TRUE(IsNumericLike(DataType::kDouble));
  EXPECT_FALSE(IsNumericLike(DataType::kBoolean));
}

TEST(ValueTest, NullBehavior) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  Value typed = Value::Null(DataType::kDate);
  EXPECT_TRUE(typed.is_null());
  EXPECT_EQ(typed.type(), DataType::kDate);
}

TEST(ValueTest, IntegerRoundTrip) {
  Value v = Value::Integer(-42);
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, DatePrintsAsLiteral) {
  Value v = Value::Date(8552);  // 1993-06-01
  EXPECT_EQ(v.ToString(), "DATE '1993-06-01'");
}

TEST(ValueTest, DoubleConversion) {
  EXPECT_DOUBLE_EQ(Value::Integer(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Boolean(true).AsDouble(), 1.0);
}

TEST(ValueTest, EqualityAcrossKinds) {
  EXPECT_EQ(Value::Integer(5), Value::Integer(5));
  EXPECT_FALSE(Value::Integer(5) == Value::Integer(6));
  EXPECT_EQ(Value::Null(), Value::Null(DataType::kDate));  // both NULL
  EXPECT_FALSE(Value::Null() == Value::Integer(0));
  EXPECT_EQ(Value::Integer(2), Value::Double(2.0));  // numeric compare
}

TEST(SchemaTest, FindUnqualified) {
  Schema s;
  s.AddColumn({"lineitem", "l_shipdate", DataType::kDate, false});
  s.AddColumn({"orders", "o_orderdate", DataType::kDate, false});
  auto idx = s.FindColumn("l_shipdate");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
}

TEST(SchemaTest, FindQualifiedAndCaseInsensitive) {
  Schema s;
  s.AddColumn({"lineitem", "l_shipdate", DataType::kDate, false});
  auto idx = s.FindColumn("LINEITEM.L_SHIPDATE");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  EXPECT_FALSE(s.FindColumn("orders.l_shipdate").has_value());
}

TEST(SchemaTest, AmbiguousUnqualifiedLookupFails) {
  Schema s;
  s.AddColumn({"a", "id", DataType::kInteger, false});
  s.AddColumn({"b", "id", DataType::kInteger, false});
  EXPECT_FALSE(s.FindColumn("id").has_value());
  EXPECT_TRUE(s.FindColumn("a.id").has_value());
}

TEST(SchemaTest, Concat) {
  Schema a;
  a.AddColumn({"a", "x", DataType::kInteger, false});
  Schema b;
  b.AddColumn({"b", "y", DataType::kDate, false});
  const Schema joint = Schema::Concat(a, b);
  ASSERT_EQ(joint.size(), 2u);
  EXPECT_EQ(joint.column(1).QualifiedName(), "b.y");
}

TEST(TupleTest, BasicsAndEquality) {
  Tuple t({Value::Integer(1), Value::Null()});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.at(1).is_null());
  EXPECT_EQ(t.ToString(), "(1, NULL)");
  Tuple u({Value::Integer(1), Value::Null()});
  EXPECT_TRUE(t == u);
  u.at(0) = Value::Integer(2);
  EXPECT_FALSE(t == u);
}

}  // namespace
}  // namespace sia
