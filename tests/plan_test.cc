// Unit tests for the logical plan nodes themselves (construction, output
// schemas, printing) — the planner and executor tests cover behavior.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/stopwatch.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "rewrite/plan.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

TEST(PlanNodeTest, ScanSchemaAndPrint) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema li = catalog.GetTable("lineitem").value();
  PlanPtr scan = PlanNode::Scan("lineitem", li);
  EXPECT_EQ(scan->kind(), PlanKind::kScan);
  EXPECT_EQ(scan->output_schema().size(), li.size());
  EXPECT_EQ(scan->ToString(), "Scan(lineitem)\n");

  ExprPtr f = Bind(Col("l_quantity") < Lit(5), li).value();
  PlanPtr filtered = PlanNode::Scan("lineitem", li, f);
  EXPECT_NE(filtered->ToString().find("filter=lineitem.l_quantity < 5"),
            std::string::npos);
}

TEST(PlanNodeTest, JoinConcatenatesSchemas) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema li = catalog.GetTable("lineitem").value();
  const Schema ord = catalog.GetTable("orders").value();
  PlanPtr join = PlanNode::Join(nullptr, PlanNode::Scan("lineitem", li),
                                PlanNode::Scan("orders", ord));
  EXPECT_EQ(join->output_schema().size(), li.size() + ord.size());
  EXPECT_EQ(join->output_schema().column(li.size()).name, "o_orderkey");
  // TRUE join condition prints as TRUE.
  EXPECT_NE(join->ToString().find("Join(TRUE)"), std::string::npos);
}

TEST(PlanNodeTest, AggregateSchemaIsGroupColsPlusCount) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema li = catalog.GetTable("lineitem").value();
  PlanPtr agg = PlanNode::Aggregate({7, 8}, PlanNode::Scan("lineitem", li));
  ASSERT_EQ(agg->output_schema().size(), 3u);
  EXPECT_EQ(agg->output_schema().column(0).name, "l_shipdate");
  EXPECT_EQ(agg->output_schema().column(1).name, "l_commitdate");
  EXPECT_EQ(agg->output_schema().column(2).name, "count");
  EXPECT_EQ(agg->output_schema().column(2).type, DataType::kInteger);
}

TEST(PlanNodeTest, ProjectSchemaSubset) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema li = catalog.GetTable("lineitem").value();
  PlanPtr project = PlanNode::Project({0, 7}, PlanNode::Scan("lineitem", li));
  ASSERT_EQ(project->output_schema().size(), 2u);
  EXPECT_EQ(project->output_schema().column(1).name, "l_shipdate");
}

TEST(PlanNodeTest, NestedPrintIndents) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema li = catalog.GetTable("lineitem").value();
  const Schema ord = catalog.GetTable("orders").value();
  PlanPtr join = PlanNode::Join(nullptr, PlanNode::Scan("lineitem", li),
                                PlanNode::Scan("orders", ord));
  ExprPtr f =
      Bind(Col("l_quantity") < Lit(5), join->output_schema()).value();
  PlanPtr top = PlanNode::Filter(f, join);
  const std::string s = top->ToString();
  EXPECT_NE(s.find("Filter("), std::string::npos);
  EXPECT_NE(s.find("\n  Join"), std::string::npos);
  EXPECT_NE(s.find("\n    Scan(lineitem)"), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsedMonotonically) {
  Stopwatch sw;
  const double a = sw.ElapsedMicros();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double b = sw.ElapsedMicros();
  EXPECT_GE(b, a);
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), b / 1000.0 + 1000.0);
  (void)sink;
}

}  // namespace
}  // namespace sia
