// src/server tests: wire-protocol round trips, admission-queue
// semantics, and whole-server concurrency behavior — malformed frames
// never crash the process, overload sheds explicitly, and SIGTERM-style
// drain completes everything admitted with answers identical to a
// serial run. The whole file is meant to run under ThreadSanitizer
// (scripts/check.sh builds it into the TSan tree) as well as the
// ASan/UBSan check tree.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/net.h"
#include "common/sync.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "server/admission_queue.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "workload/querygen.h"

namespace sia::server {
namespace {

constexpr int64_t kIoMillis = 5000;

// --- protocol: request parsing ---------------------------------------------

TEST(ProtocolTest, ParseRequestVerbs) {
  auto ping = ParseRequest("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, kVerbPing);

  // Verbs are case-insensitive and tolerate surrounding whitespace.
  auto stats = ParseRequest("  stats  ");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, kVerbStats);

  auto query = ParseRequest("QUERY\nSELECT l_orderkey FROM lineitem");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, kVerbQuery);
  EXPECT_EQ(query->body, "SELECT l_orderkey FROM lineitem");
}

TEST(ProtocolTest, ParseRequestRejectsJunk) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("EXPLODE").ok());
  EXPECT_FALSE(ParseRequest("QUERY").ok());        // no body
  EXPECT_FALSE(ParseRequest("QUERY\n   ").ok());   // blank body
  EXPECT_FALSE(ParseRequest(std::string("PI\0NG", 5)).ok());  // NUL bytes
  EXPECT_FALSE(ParseRequest("\xff\xfe garbage").ok());
}

// --- protocol: response round trips -----------------------------------------

TEST(ProtocolTest, QueryReplyRoundTrip) {
  QueryReply reply;
  reply.rewritten = true;
  reply.rung = "retry";
  reply.from_cache = true;
  reply.rewritten_sql =
      "SELECT * FROM lineitem WHERE l_quantity >= 1 AND l_tax = 0";
  reply.sql_hash = Fnv1a64(reply.rewritten_sql);
  reply.queue_us = 123;
  reply.rewrite_us = 4567;
  reply.exec_us = 89;
  reply.executed = true;
  reply.rows = 42;
  reply.content_hash = 0xdeadbeefcafef00dull;
  reply.order_hash = 0x0123456789abcdefull;

  auto parsed = ParseResponse(FormatOkQuery(reply));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->kind, ResponseKind::kOk);
  ASSERT_TRUE(parsed->query.has_value());
  const QueryReply& got = *parsed->query;
  EXPECT_EQ(got.rewritten, reply.rewritten);
  EXPECT_EQ(got.rung, reply.rung);
  EXPECT_EQ(got.from_cache, reply.from_cache);
  EXPECT_EQ(got.sql_hash, reply.sql_hash);
  // The SQL survives verbatim even though it contains '=' characters.
  EXPECT_EQ(got.rewritten_sql, reply.rewritten_sql);
  EXPECT_EQ(got.queue_us, reply.queue_us);
  EXPECT_EQ(got.rewrite_us, reply.rewrite_us);
  EXPECT_EQ(got.exec_us, reply.exec_us);
  EXPECT_TRUE(got.executed);
  EXPECT_EQ(got.rows, reply.rows);
  EXPECT_EQ(got.content_hash, reply.content_hash);
  EXPECT_EQ(got.order_hash, reply.order_hash);
  // And the digest rendering of both sides agrees.
  EXPECT_EQ(FormatDigestLine(7, got), FormatDigestLine(7, reply));
}

TEST(ProtocolTest, PingAndShedAndErrorRoundTrip) {
  auto pong = ParseResponse(FormatOkPing());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->kind, ResponseKind::kOk);
  EXPECT_EQ(pong->body, "pong");
  EXPECT_FALSE(pong->query.has_value());

  auto shed = ParseResponse(FormatShed(250));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->kind, ResponseKind::kShed);
  EXPECT_EQ(shed->retry_after_ms, 250);

  auto error = ParseResponse(
      FormatError(Status::ParseError("bad\nmultiline\rthing")));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->kind, ResponseKind::kError);
  EXPECT_EQ(error->error.code(), StatusCode::kParseError);
  // Newlines were flattened so the status line stayed one line.
  EXPECT_EQ(error->error.message(), "bad multiline thing");

  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("WAT 17").ok());
  EXPECT_FALSE(ParseResponse("SHED").ok());
}

TEST(ProtocolTest, DigestLineFormat) {
  QueryReply reply;
  reply.rewritten = true;
  reply.rung = "full";
  reply.sql_hash = 0x1ull;
  EXPECT_EQ(FormatDigestLine(2021, reply),
            "workload:seed2021 rewritten=1 rung=full "
            "sql_hash=0000000000000001");
  reply.executed = true;
  reply.rows = 9;
  reply.content_hash = 0x2ull;
  reply.order_hash = 0x3ull;
  EXPECT_EQ(FormatDigestLine(2021, reply),
            "workload:seed2021 rewritten=1 rung=full "
            "sql_hash=0000000000000001 rows=9 "
            "content_hash=0000000000000002 order_hash=0000000000000003");
}

// --- admission queue ---------------------------------------------------------

AdmittedConn MakeConn(uint64_t stamp) {
  AdmittedConn item;
  item.conn = net::Socket(::socket(AF_INET, SOCK_STREAM, 0));
  item.admit_us = stamp;
  return item;
}

TEST(AdmissionQueueTest, FifoUpToDepthThenRefuses) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.TryPush(MakeConn(1)));
  EXPECT_TRUE(queue.TryPush(MakeConn(2)));

  // The refused item is NOT moved from: the acceptor still owns the
  // connection and can answer it with a SHED frame.
  AdmittedConn overflow = MakeConn(3);
  EXPECT_FALSE(queue.TryPush(std::move(overflow)));
  EXPECT_TRUE(overflow.conn.valid());

  auto first = queue.Pop();
  auto second = queue.Pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->admit_us, 1u);
  EXPECT_EQ(second->admit_us, 2u);
}

TEST(AdmissionQueueTest, CloseDrainsBacklogThenReturnsNullopt) {
  AdmissionQueue queue(4);
  EXPECT_TRUE(queue.TryPush(MakeConn(1)));
  EXPECT_TRUE(queue.TryPush(MakeConn(2)));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(MakeConn(3)));  // closed: refuse new work
  EXPECT_TRUE(queue.Pop().has_value());      // ... but drain the backlog
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());     // drained: workers exit
}

TEST(AdmissionQueueTest, CloseWakesBlockedPop) {
  AdmissionQueue queue(1);
  Thread popper([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  // Give the popper a moment to block, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.Join();
}

// --- whole-server tests ------------------------------------------------------

ServerOptions FastServerOptions() {
  ServerOptions options;
  options.workers = 2;
  options.queue_depth = 16;
  options.io_timeout_ms = kIoMillis;
  options.drain_deadline_ms = 60000;
  // Small synthesis budget: these tests exercise the serving layer, not
  // synthesis quality.
  options.service.max_iterations = 2;
  return options;
}

Result<Response> RoundTrip(uint16_t port, std::string_view payload) {
  SIA_ASSIGN_OR_RETURN(net::Socket conn,
                       net::Connect("127.0.0.1", port, kIoMillis));
  SIA_RETURN_IF_ERROR(conn.SendFrame(payload, kIoMillis));
  SIA_ASSIGN_OR_RETURN(std::string frame, conn.RecvFrame(kIoMillis));
  return ParseResponse(frame);
}

TEST(ServerTest, PingStatsAndQuery) {
  auto server = SiaServer::Start(FastServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  auto pong = RoundTrip(port, "PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->kind, ResponseKind::kOk);
  EXPECT_EQ(pong->body, "pong");

  auto stats = RoundTrip(port, "STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->kind, ResponseKind::kOk);
  // The snapshot is the src/obs JSON and carries the server catalog.
  EXPECT_NE(stats->body.find("server.requests.accepted"), std::string::npos);

  auto reply = RoundTrip(
      port,
      "QUERY\nSELECT l_orderkey FROM lineitem, orders "
      "WHERE o_orderkey = l_orderkey AND l_shipdate >= '1994-01-01'");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->kind, ResponseKind::kOk);
  ASSERT_TRUE(reply->query.has_value());
  EXPECT_FALSE(reply->query->rewritten_sql.empty());
  EXPECT_EQ(reply->query->sql_hash, Fnv1a64(reply->query->rewritten_sql));

  // Bad SQL is an ERROR response, not a dropped connection.
  auto bad = RoundTrip(port, "QUERY\nSELEC nonsense");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->kind, ResponseKind::kError);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
}

// Malformed and hostile frames: the server answers what it can, drops
// what it must, and keeps serving afterwards. Each attack runs against
// the same live server; the PING at the end proves none of them took it
// down.
TEST(ServerTest, MalformedFramesNeverKillTheServer) {
  ServerOptions options = FastServerOptions();
  options.io_timeout_ms = 2000;  // abandoned uploads give up quickly
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // Oversized length prefix: rejected before any payload allocation.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
    ASSERT_TRUE(conn->WriteAll(huge, sizeof(huge), kIoMillis).ok());
    auto answer = conn->RecvFrame(kIoMillis);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    auto parsed = ParseResponse(*answer);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
    EXPECT_EQ(parsed->error.code(), StatusCode::kParseError);
  }

  // Zero-length frame: same treatment.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char zero[4] = {0, 0, 0, 0};
    ASSERT_TRUE(conn->WriteAll(zero, sizeof(zero), kIoMillis).ok());
    auto answer = conn->RecvFrame(kIoMillis);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    auto parsed = ParseResponse(*answer);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // Truncated payload: header promises 64 bytes, peer sends 5 and
  // vanishes. No response is owed; the server must just move on.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char header[4] = {0, 0, 0, 64};
    ASSERT_TRUE(conn->WriteAll(header, sizeof(header), kIoMillis).ok());
    ASSERT_TRUE(conn->WriteAll("PING!", 5, kIoMillis).ok());
    conn->Close();
  }

  // Premature close: connect and hang up without a byte.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    conn->Close();
  }

  // NUL and invalid-UTF-8 junk inside a well-formed frame: a protocol
  // ERROR, not a crash.
  {
    const std::string junk("QU\0ERY\n\xff\xfe\x01 SELECT", 17);
    auto parsed = RoundTrip(port, junk);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // Unknown verb.
  {
    auto parsed = RoundTrip(port, "EXPLODE\nnow");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // The server is still alive and serving.
  auto pong = RoundTrip(port, "PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->kind, ResponseKind::kOk);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  // The truncated upload and the premature close were both counted.
  EXPECT_GE(counters.protocol_errors, 2u);
}

// Overload: one worker, a depth-4 queue, rewrites slowed by an injected
// solver latency, and a 64-connection burst. The queue fills, the
// overflow is shed with Retry-After hints, and every connection gets an
// answer — nothing hangs, nothing crashes.
TEST(ServerTest, BurstBeyondQueueDepthShedsExplicitly) {
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("smt.check=latency:10")
                  .ok());

  ServerOptions options = FastServerOptions();
  options.workers = 1;
  options.queue_depth = 4;
  options.retry_after_ms = 77;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const uint64_t shed_before =
      obs::MetricsRegistry::Instance().GetCounter("server.requests.shed")
          .Value();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 64, {});
  ASSERT_TRUE(queries.ok());

  // Connect all 64 sockets first (the kernel completes the handshakes
  // against the listen backlog), then fire the requests together so the
  // burst hits the admission queue as one wave.
  std::vector<net::Socket> conns;
  for (size_t i = 0; i < queries->size(); ++i) {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    conns.push_back(std::move(*conn));
  }

  std::atomic<size_t> ok{0}, shed{0}, other{0};
  std::vector<Thread> threads;
  threads.reserve(conns.size());
  for (size_t i = 0; i < conns.size(); ++i) {
    threads.emplace_back([&, i] {
      const std::string payload = "QUERY\n" + (*queries)[i].sql;
      if (!conns[i].SendFrame(payload, kIoMillis).ok()) {
        other.fetch_add(1);
        return;
      }
      auto frame = conns[i].RecvFrame(60000);
      if (!frame.ok()) {
        other.fetch_add(1);
        return;
      }
      auto parsed = ParseResponse(*frame);
      if (!parsed.ok()) {
        other.fetch_add(1);
      } else if (parsed->kind == ResponseKind::kShed) {
        EXPECT_EQ(parsed->retry_after_ms, 77);
        shed.fetch_add(1);
      } else if (parsed->kind == ResponseKind::kOk) {
        ok.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (Thread& t : threads) t.Join();
  FaultRegistry::Instance().DisarmAll();

  // Every connection was answered (zero hung/failed), some were served,
  // and the overflow was genuinely shed.
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load(), conns.size());
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(shed.load(), 0u);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.shed, shed.load());
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  const uint64_t shed_after =
      obs::MetricsRegistry::Instance().GetCounter("server.requests.shed")
          .Value();
  EXPECT_EQ(shed_after - shed_before, shed.load());
}

// Graceful drain: DrainAndStop() mid-burst completes every admitted
// request, every completed answer is byte-identical to a serial run of
// the same query, and the counter invariant holds. Late connections are
// either shed (accepted before the stop) or closed (after), never left
// hanging.
TEST(ServerTest, DrainMidBurstCompletesAdmittedRequests) {
  ServerOptions options = FastServerOptions();
  options.workers = 2;
  options.queue_depth = 32;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 16, {});
  ASSERT_TRUE(queries.ok());

  std::atomic<size_t> responded{0};
  std::vector<std::optional<QueryReply>> replies(queries->size());
  std::vector<Thread> threads;
  threads.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    threads.emplace_back([&, i] {
      auto conn = net::Connect("127.0.0.1", port, kIoMillis);
      if (!conn.ok()) return;
      if (!conn->SendFrame("QUERY\n" + (*queries)[i].sql, kIoMillis).ok()) {
        return;
      }
      auto frame = conn->RecvFrame(60000);
      if (!frame.ok()) return;  // closed during drain: acceptable
      auto parsed = ParseResponse(*frame);
      if (parsed.ok() && parsed->kind == ResponseKind::kOk &&
          parsed->query.has_value()) {
        replies[i] = *parsed->query;
      }
      responded.fetch_add(1);
    });
  }

  // Let part of the burst land, then pull the plug.
  while (responded.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Status drained = (*server)->DrainAndStop();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  for (Thread& t : threads) t.Join();

  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  EXPECT_GT(counters.completed, 0u);

  // Serial reference: the same queries through a fresh QueryService must
  // produce identical rewrite digests (synthesis is deterministic).
  QueryService serial(options.service);
  size_t compared = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    if (!replies[i].has_value()) continue;
    auto reference =
        ParseResponse(serial.Handle("QUERY\n" + (*queries)[i].sql, 0));
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(reference->query.has_value());
    EXPECT_EQ(FormatDigestLine((*queries)[i].seed, *replies[i]),
              FormatDigestLine((*queries)[i].seed, *reference->query))
        << "query " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0u);

  // Idempotent: a second drain reports the same stored result.
  EXPECT_TRUE((*server)->DrainAndStop().ok());
}

}  // namespace
}  // namespace sia::server
