// src/server tests: wire-protocol round trips, admission-queue
// semantics, and whole-server concurrency behavior — malformed frames
// never crash the process, overload sheds explicitly, and SIGTERM-style
// drain completes everything admitted with answers identical to a
// serial run. The whole file is meant to run under ThreadSanitizer
// (scripts/check.sh builds it into the TSan tree) as well as the
// ASan/UBSan check tree.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/net.h"
#include "common/sync.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs_json_util.h"
#include "server/admission_queue.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "workload/querygen.h"

namespace sia::server {
namespace {

constexpr int64_t kIoMillis = 5000;

// --- protocol: request parsing ---------------------------------------------

TEST(ProtocolTest, ParseRequestVerbs) {
  auto ping = ParseRequest("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, kVerbPing);

  // Verbs are case-insensitive and tolerate surrounding whitespace.
  auto stats = ParseRequest("  stats  ");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, kVerbStats);

  auto query = ParseRequest("QUERY\nSELECT l_orderkey FROM lineitem");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, kVerbQuery);
  EXPECT_EQ(query->body, "SELECT l_orderkey FROM lineitem");
}

TEST(ProtocolTest, ParseRequestRejectsJunk) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("EXPLODE").ok());
  EXPECT_FALSE(ParseRequest("QUERY").ok());        // no body
  EXPECT_FALSE(ParseRequest("QUERY\n   ").ok());   // blank body
  EXPECT_FALSE(ParseRequest(std::string("PI\0NG", 5)).ok());  // NUL bytes
  EXPECT_FALSE(ParseRequest("\xff\xfe garbage").ok());
}

// --- protocol: response round trips -----------------------------------------

TEST(ProtocolTest, QueryReplyRoundTrip) {
  QueryReply reply;
  reply.rewritten = true;
  reply.rung = "retry";
  reply.from_cache = true;
  reply.rewritten_sql =
      "SELECT * FROM lineitem WHERE l_quantity >= 1 AND l_tax = 0";
  reply.sql_hash = Fnv1a64(reply.rewritten_sql);
  reply.queue_us = 123;
  reply.rewrite_us = 4567;
  reply.exec_us = 89;
  reply.executed = true;
  reply.rows = 42;
  reply.content_hash = 0xdeadbeefcafef00dull;
  reply.order_hash = 0x0123456789abcdefull;

  auto parsed = ParseResponse(FormatOkQuery(reply));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->kind, ResponseKind::kOk);
  ASSERT_TRUE(parsed->query.has_value());
  const QueryReply& got = *parsed->query;
  EXPECT_EQ(got.rewritten, reply.rewritten);
  EXPECT_EQ(got.rung, reply.rung);
  EXPECT_EQ(got.from_cache, reply.from_cache);
  EXPECT_EQ(got.sql_hash, reply.sql_hash);
  // The SQL survives verbatim even though it contains '=' characters.
  EXPECT_EQ(got.rewritten_sql, reply.rewritten_sql);
  EXPECT_EQ(got.queue_us, reply.queue_us);
  EXPECT_EQ(got.rewrite_us, reply.rewrite_us);
  EXPECT_EQ(got.exec_us, reply.exec_us);
  EXPECT_TRUE(got.executed);
  EXPECT_EQ(got.rows, reply.rows);
  EXPECT_EQ(got.content_hash, reply.content_hash);
  EXPECT_EQ(got.order_hash, reply.order_hash);
  // And the digest rendering of both sides agrees.
  EXPECT_EQ(FormatDigestLine(7, got), FormatDigestLine(7, reply));
}

TEST(ProtocolTest, PingAndShedAndErrorRoundTrip) {
  auto pong = ParseResponse(FormatOkPing());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->kind, ResponseKind::kOk);
  EXPECT_EQ(pong->body, "pong");
  EXPECT_FALSE(pong->query.has_value());

  auto shed = ParseResponse(FormatShed(250));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->kind, ResponseKind::kShed);
  EXPECT_EQ(shed->retry_after_ms, 250);

  auto error = ParseResponse(
      FormatError(Status::ParseError("bad\nmultiline\rthing")));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->kind, ResponseKind::kError);
  EXPECT_EQ(error->error.code(), StatusCode::kParseError);
  // Newlines were flattened so the status line stayed one line.
  EXPECT_EQ(error->error.message(), "bad multiline thing");

  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("WAT 17").ok());
  EXPECT_FALSE(ParseResponse("SHED").ok());
}

TEST(ProtocolTest, DigestLineFormat) {
  QueryReply reply;
  reply.rewritten = true;
  reply.rung = "full";
  reply.sql_hash = 0x1ull;
  EXPECT_EQ(FormatDigestLine(2021, reply),
            "workload:seed2021 rewritten=1 rung=full "
            "sql_hash=0000000000000001");
  reply.executed = true;
  reply.rows = 9;
  reply.content_hash = 0x2ull;
  reply.order_hash = 0x3ull;
  EXPECT_EQ(FormatDigestLine(2021, reply),
            "workload:seed2021 rewritten=1 rung=full "
            "sql_hash=0000000000000001 rows=9 "
            "content_hash=0000000000000002 order_hash=0000000000000003");
}

// --- admission queue ---------------------------------------------------------

AdmittedConn MakeConn(uint64_t stamp) {
  AdmittedConn item;
  item.conn = net::Socket(::socket(AF_INET, SOCK_STREAM, 0));
  item.admit_us = stamp;
  return item;
}

TEST(AdmissionQueueTest, FifoUpToDepthThenRefuses) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.TryPush(MakeConn(1)));
  EXPECT_TRUE(queue.TryPush(MakeConn(2)));

  // The refused item is NOT moved from: the acceptor still owns the
  // connection and can answer it with a SHED frame.
  AdmittedConn overflow = MakeConn(3);
  EXPECT_FALSE(queue.TryPush(std::move(overflow)));
  EXPECT_TRUE(overflow.conn.valid());

  auto first = queue.Pop();
  auto second = queue.Pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->admit_us, 1u);
  EXPECT_EQ(second->admit_us, 2u);
}

TEST(AdmissionQueueTest, CloseDrainsBacklogThenReturnsNullopt) {
  AdmissionQueue queue(4);
  EXPECT_TRUE(queue.TryPush(MakeConn(1)));
  EXPECT_TRUE(queue.TryPush(MakeConn(2)));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(MakeConn(3)));  // closed: refuse new work
  EXPECT_TRUE(queue.Pop().has_value());      // ... but drain the backlog
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());     // drained: workers exit
}

TEST(AdmissionQueueTest, CloseWakesBlockedPop) {
  AdmissionQueue queue(1);
  Thread popper([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  // Give the popper a moment to block, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.Join();
}

// --- whole-server tests ------------------------------------------------------

ServerOptions FastServerOptions() {
  ServerOptions options;
  options.workers = 2;
  options.queue_depth = 16;
  options.io_timeout_ms = kIoMillis;
  options.drain_deadline_ms = 60000;
  // Small synthesis budget: these tests exercise the serving layer, not
  // synthesis quality.
  options.service.max_iterations = 2;
  return options;
}

Result<Response> RoundTrip(uint16_t port, std::string_view payload) {
  SIA_ASSIGN_OR_RETURN(net::Socket conn,
                       net::Connect("127.0.0.1", port, kIoMillis));
  SIA_RETURN_IF_ERROR(conn.SendFrame(payload, kIoMillis));
  SIA_ASSIGN_OR_RETURN(std::string frame, conn.RecvFrame(kIoMillis));
  return ParseResponse(frame);
}

TEST(ServerTest, PingStatsAndQuery) {
  auto server = SiaServer::Start(FastServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  auto pong = RoundTrip(port, "PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->kind, ResponseKind::kOk);
  EXPECT_EQ(pong->body, "pong");

  auto stats = RoundTrip(port, "STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->kind, ResponseKind::kOk);
  // The snapshot is the src/obs JSON and carries the server catalog.
  EXPECT_NE(stats->body.find("server.requests.accepted"), std::string::npos);

  auto reply = RoundTrip(
      port,
      "QUERY\nSELECT l_orderkey FROM lineitem, orders "
      "WHERE o_orderkey = l_orderkey AND l_shipdate >= '1994-01-01'");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->kind, ResponseKind::kOk);
  ASSERT_TRUE(reply->query.has_value());
  EXPECT_FALSE(reply->query->rewritten_sql.empty());
  EXPECT_EQ(reply->query->sql_hash, Fnv1a64(reply->query->rewritten_sql));

  // Bad SQL is an ERROR response, not a dropped connection.
  auto bad = RoundTrip(port, "QUERY\nSELEC nonsense");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->kind, ResponseKind::kError);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
}

// Malformed and hostile frames: the server answers what it can, drops
// what it must, and keeps serving afterwards. Each attack runs against
// the same live server; the PING at the end proves none of them took it
// down.
TEST(ServerTest, MalformedFramesNeverKillTheServer) {
  ServerOptions options = FastServerOptions();
  options.io_timeout_ms = 2000;  // abandoned uploads give up quickly
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // Oversized length prefix: rejected before any payload allocation.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
    ASSERT_TRUE(conn->WriteAll(huge, sizeof(huge), kIoMillis).ok());
    auto answer = conn->RecvFrame(kIoMillis);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    auto parsed = ParseResponse(*answer);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
    EXPECT_EQ(parsed->error.code(), StatusCode::kParseError);
  }

  // Zero-length frame: same treatment.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char zero[4] = {0, 0, 0, 0};
    ASSERT_TRUE(conn->WriteAll(zero, sizeof(zero), kIoMillis).ok());
    auto answer = conn->RecvFrame(kIoMillis);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    auto parsed = ParseResponse(*answer);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // Truncated payload: header promises 64 bytes, peer sends 5 and
  // vanishes. No response is owed; the server must just move on.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    const unsigned char header[4] = {0, 0, 0, 64};
    ASSERT_TRUE(conn->WriteAll(header, sizeof(header), kIoMillis).ok());
    ASSERT_TRUE(conn->WriteAll("PING!", 5, kIoMillis).ok());
    conn->Close();
  }

  // Premature close: connect and hang up without a byte.
  {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok());
    conn->Close();
  }

  // NUL and invalid-UTF-8 junk inside a well-formed frame: a protocol
  // ERROR, not a crash.
  {
    const std::string junk("QU\0ERY\n\xff\xfe\x01 SELECT", 17);
    auto parsed = RoundTrip(port, junk);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // Unknown verb.
  {
    auto parsed = RoundTrip(port, "EXPLODE\nnow");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, ResponseKind::kError);
  }

  // The server is still alive and serving.
  auto pong = RoundTrip(port, "PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->kind, ResponseKind::kOk);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  // The truncated upload and the premature close were both counted.
  EXPECT_GE(counters.protocol_errors, 2u);
}

// Overload: one worker, a depth-4 queue, rewrites slowed by an injected
// solver latency, and a 64-connection burst. The queue fills, the
// overflow is shed with Retry-After hints, and every connection gets an
// answer — nothing hangs, nothing crashes.
TEST(ServerTest, BurstBeyondQueueDepthShedsExplicitly) {
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("smt.check=latency:10")
                  .ok());

  ServerOptions options = FastServerOptions();
  options.workers = 1;
  options.queue_depth = 4;
  options.retry_after_ms = 77;
  // Synchronous rewrites so the injected solver latency actually slows
  // the single worker; with background learning on, misses would be
  // answered immediately and the burst would never overflow the queue.
  options.service.background_learning = false;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const uint64_t shed_before =
      obs::MetricsRegistry::Instance().GetCounter("server.requests.shed")
          .Value();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 64, {});
  ASSERT_TRUE(queries.ok());

  // Connect all 64 sockets first (the kernel completes the handshakes
  // against the listen backlog), then fire the requests together so the
  // burst hits the admission queue as one wave.
  std::vector<net::Socket> conns;
  for (size_t i = 0; i < queries->size(); ++i) {
    auto conn = net::Connect("127.0.0.1", port, kIoMillis);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    conns.push_back(std::move(*conn));
  }

  std::atomic<size_t> ok{0}, shed{0}, other{0};
  std::vector<Thread> threads;
  threads.reserve(conns.size());
  for (size_t i = 0; i < conns.size(); ++i) {
    threads.emplace_back([&, i] {
      const std::string payload = "QUERY\n" + (*queries)[i].sql;
      if (!conns[i].SendFrame(payload, kIoMillis).ok()) {
        other.fetch_add(1);
        return;
      }
      auto frame = conns[i].RecvFrame(60000);
      if (!frame.ok()) {
        other.fetch_add(1);
        return;
      }
      auto parsed = ParseResponse(*frame);
      if (!parsed.ok()) {
        other.fetch_add(1);
      } else if (parsed->kind == ResponseKind::kShed) {
        // The adaptive hint scales up from the configured base with
        // queue fullness and shed pressure, clamped at 32x.
        EXPECT_GE(parsed->retry_after_ms, 77);
        EXPECT_LE(parsed->retry_after_ms, 77 * 32);
        shed.fetch_add(1);
      } else if (parsed->kind == ResponseKind::kOk) {
        ok.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (Thread& t : threads) t.Join();
  FaultRegistry::Instance().DisarmAll();

  // Every connection was answered (zero hung/failed), some were served,
  // and the overflow was genuinely shed.
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load(), conns.size());
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(shed.load(), 0u);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.shed, shed.load());
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  const uint64_t shed_after =
      obs::MetricsRegistry::Instance().GetCounter("server.requests.shed")
          .Value();
  EXPECT_EQ(shed_after - shed_before, shed.load());
}

// Graceful drain: DrainAndStop() mid-burst completes every admitted
// request, every completed answer is byte-identical to a serial run of
// the same query, and the counter invariant holds. Late connections are
// either shed (accepted before the stop) or closed (after), never left
// hanging.
TEST(ServerTest, DrainMidBurstCompletesAdmittedRequests) {
  ServerOptions options = FastServerOptions();
  options.workers = 2;
  options.queue_depth = 32;
  // Byte-identical comparison against a serial QueryService needs the
  // synchronous rewrite path on both sides (background learning serves
  // the original while the predicate is still being learned).
  options.service.background_learning = false;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 16, {});
  ASSERT_TRUE(queries.ok());

  std::atomic<size_t> responded{0};
  std::vector<std::optional<QueryReply>> replies(queries->size());
  std::vector<Thread> threads;
  threads.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    threads.emplace_back([&, i] {
      auto conn = net::Connect("127.0.0.1", port, kIoMillis);
      if (!conn.ok()) return;
      if (!conn->SendFrame("QUERY\n" + (*queries)[i].sql, kIoMillis).ok()) {
        return;
      }
      auto frame = conn->RecvFrame(60000);
      if (!frame.ok()) return;  // closed during drain: acceptable
      auto parsed = ParseResponse(*frame);
      if (parsed.ok() && parsed->kind == ResponseKind::kOk &&
          parsed->query.has_value()) {
        replies[i] = *parsed->query;
      }
      responded.fetch_add(1);
    });
  }

  // Let part of the burst land, then pull the plug.
  while (responded.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Status drained = (*server)->DrainAndStop();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  for (Thread& t : threads) t.Join();

  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  EXPECT_GT(counters.completed, 0u);

  // Serial reference: the same queries through a fresh QueryService must
  // produce identical rewrite digests (synthesis is deterministic).
  QueryService serial(options.service);
  size_t compared = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    if (!replies[i].has_value()) continue;
    auto reference =
        ParseResponse(serial.Handle("QUERY\n" + (*queries)[i].sql, 0));
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(reference->query.has_value());
    EXPECT_EQ(FormatDigestLine((*queries)[i].seed, *replies[i]),
              FormatDigestLine((*queries)[i].seed, *reference->query))
        << "query " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0u);

  // Idempotent: a second drain reports the same stored result.
  EXPECT_TRUE((*server)->DrainAndStop().ok());
}

// The tentpole guarantee: with background learning on, a cache miss is
// never blocked on synthesis. Every solver call is slowed by an injected
// 200ms latency, a 64-connection burst of 100% cache-miss queries is
// fired, and the p99 miss latency must stay within 2x the (cache-hit)
// repeat pass — both orders of magnitude below what one synchronous
// ladder run would cost under the fault.
TEST(ServerTest, MissesNeverBlockOnSynthesis) {
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("smt.check=latency:200")
                  .ok());

  ServerOptions options = FastServerOptions();
  options.workers = 2;
  options.queue_depth = 128;  // nothing sheds; every request is measured
  options.service.background_learning = true;
  options.service.background_budget_ms = 500;  // keep drain quick
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 64, {});
  ASSERT_TRUE(queries.ok());

  // One concurrent pass over all 64 queries, returning each request's
  // wall-clock latency in milliseconds (-1 on any failure).
  const auto burst = [&](std::vector<double>* latencies) {
    latencies->assign(queries->size(), -1.0);
    std::vector<Thread> threads;
    threads.reserve(queries->size());
    for (size_t i = 0; i < queries->size(); ++i) {
      threads.emplace_back([&, i] {
        const auto start = std::chrono::steady_clock::now();
        auto parsed = RoundTrip(port, "QUERY\n" + (*queries)[i].sql);
        if (parsed.ok() && parsed->kind == ResponseKind::kOk) {
          (*latencies)[i] =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count() /
              1000.0;
        }
      });
    }
    for (Thread& t : threads) t.Join();
  };
  const auto percentile = [](std::vector<double> v, double p) {
    std::sort(v.begin(), v.end());
    return v[static_cast<size_t>(p * (v.size() - 1))];
  };

  std::vector<double> miss_ms, hit_ms;
  burst(&miss_ms);  // every key is new: 100% cache misses
  burst(&hit_ms);   // every key is resident (synthesizing or beyond)
  FaultRegistry::Instance().DisarmAll();

  for (size_t i = 0; i < queries->size(); ++i) {
    EXPECT_GE(miss_ms[i], 0.0) << "miss request " << i << " failed";
    EXPECT_GE(hit_ms[i], 0.0) << "hit request " << i << " failed";
  }
  const double p99_miss = percentile(miss_ms, 0.99);
  // The generous floor absorbs scheduler noise under TSan; the bound
  // still sits far below the 200ms single-solver-call injection (a
  // synchronous ladder run fires many).
  const double hit_bound = std::max(percentile(hit_ms, 0.99), 50.0);
  EXPECT_LE(p99_miss, 2.0 * hit_bound)
      << "a cache miss waited on synthesis (p99 " << p99_miss << "ms)";
  EXPECT_LT(p99_miss, 200.0);

  EXPECT_TRUE((*server)->DrainAndStop().ok());
  const ServerCounters counters = (*server)->counters();
  EXPECT_EQ(counters.accepted,
            counters.shed + counters.completed + counters.protocol_errors);
  // Drain left nothing wedged mid-synthesis.
  EXPECT_EQ((*server)->service().cache().stats().synthesizing, 0u);
}

// Auto-demotion: an injected always-wrong rewrite (promote.bad_rewrite
// force-promotes a contradiction) is caught by the shadow digest
// cross-check on its first sampled serve — every client still gets the
// original's digests — and is evicted before a third request could ever
// meet it.
TEST(ServiceTest, BadRewriteDemotedBeforeThirdServe) {
  obs::MetricsRegistry::SetEnabled(true);
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("promote.bad_rewrite=always")
                  .ok());
  const uint64_t mismatches_before =
      obs::MetricsRegistry::Instance()
          .GetCounter("rewrite.promote.digest_mismatch")
          .Value();

  ServiceOptions options;
  options.scale_factor = 0.002;
  options.max_iterations = 2;
  options.background_learning = true;
  options.shadow_sample_rate = 1.0;  // every eligible serve cross-checks
  options.promote_after = 2;
  QueryService service(options);
  service.StartBackground(nullptr);  // dedicated drainer thread

  const std::string payload =
      "QUERY\nSELECT l_orderkey FROM lineitem, orders "
      "WHERE o_orderkey = l_orderkey AND l_shipdate >= '1994-01-01'";
  const auto serve = [&]() -> QueryReply {
    auto parsed = ParseResponse(service.Handle(payload, 0));
    EXPECT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, ResponseKind::kOk) << parsed->error.ToString();
    EXPECT_TRUE(parsed->query.has_value());
    return parsed->query.value_or(QueryReply{});
  };

  // Request 1 misses, enqueues, and serves the original — its digests
  // are the ground truth for every later serve.
  const QueryReply reference = serve();
  ASSERT_TRUE(reference.executed);

  // Wait for the background job: the fault force-promotes the planted
  // contradiction.
  for (int i = 0; i < 1000 && service.cache().stats().promoted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(service.cache().stats().promoted, 1u) << "background job stuck";

  // Request 2 serves the promoted rewrite, sampled: the paranoid
  // cross-check sees the digest mismatch, serves the original's result,
  // and poisons the entry.
  const QueryReply second = serve();
  EXPECT_EQ(second.rows, reference.rows);
  EXPECT_EQ(second.content_hash, reference.content_hash);
  EXPECT_GE(obs::MetricsRegistry::Instance()
                .GetCounter("rewrite.promote.digest_mismatch")
                .Value(),
            mismatches_before + 1);
  EXPECT_EQ(service.cache().stats().poisoned, 1u);

  // Request 3 never meets the bad rewrite: the predicate was evicted.
  const QueryReply third = serve();
  EXPECT_EQ(third.rows, reference.rows);
  EXPECT_EQ(third.content_hash, reference.content_hash);
  EXPECT_FALSE(third.rewritten);

  FaultRegistry::Instance().DisarmAll();
  service.DrainBackground();
  EXPECT_EQ(service.cache().stats().synthesizing, 0u);
}

// --- live telemetry -----------------------------------------------------

// The tentpole acceptance test: one trace ID, minted at admission, links
// the miss request's accept span, the background synthesis job it
// enqueued, and the promotion decision that job's predicate eventually
// earned — three spans, three threads, one trace.
TEST(ServerTest, TraceChainLinksAdmissionSynthesisAndPromotion) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Tracer::SetEnabled(true);
  obs::Tracer::Instance().Clear();

  ServerOptions options = FastServerOptions();
  options.queue_depth = 128;
  options.service.scale_factor = 0.002;
  // Deep enough to actually learn predicates: a null-predicate entry
  // promotes straight from CompleteSynthesis and never meets
  // RecordShadow, which is the span under test.
  options.service.max_iterations = 6;
  options.service.background_learning = true;
  options.service.shadow_sample_rate = 1.0;  // every serve gathers evidence
  options.service.promote_after = 1;
  options.service.background_budget_ms = 5000;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 8, {});
  ASSERT_TRUE(queries.ok());

  // Pass 1 misses and enqueues; later passes shadow-run the quarantined
  // candidates until at least one earns promotion *through evidence*
  // (the rewrite.promote.promoted counter only moves inside
  // RecordShadow — null-predicate entries that promote straight from
  // CompleteSynthesis don't count).
  obs::Counter& promoted =
      obs::MetricsRegistry::Instance().GetCounter("rewrite.promote.promoted");
  const uint64_t promoted_before = promoted.Value();
  for (int pass = 0; pass < 30; ++pass) {
    for (const GeneratedQuery& q : *queries) {
      auto parsed = RoundTrip(port, "QUERY\n" + q.sql);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      ASSERT_EQ(parsed->kind, ResponseKind::kOk)
          << parsed->error.ToString();
    }
    if (promoted.Value() > promoted_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_GT(promoted.Value(), promoted_before)
      << "no entry earned an evidence-based promotion";
  EXPECT_TRUE((*server)->DrainAndStop().ok());

  // Every promotion decision must link back to a trace that also holds
  // the originating request's admission span and its synthesis job.
  std::set<uint64_t> accept_traces, synth_traces, decision_traces;
  for (const obs::TraceEvent& e : obs::Tracer::Instance().CollectEvents()) {
    if (e.trace_id == 0) continue;
    if (e.name == "server.accept") accept_traces.insert(e.trace_id);
    if (e.name == "rewrite.background.synthesize") {
      synth_traces.insert(e.trace_id);
    }
    if (e.name == "rewrite.promote.decision") {
      decision_traces.insert(e.trace_id);
    }
  }
  ASSERT_FALSE(synth_traces.empty()) << "no traced synthesis job";
  ASSERT_FALSE(decision_traces.empty()) << "no traced promotion decision";
  bool chained = false;
  for (const uint64_t id : decision_traces) {
    if (accept_traces.contains(id) && synth_traces.contains(id)) {
      chained = true;
      break;
    }
  }
  EXPECT_TRUE(chained)
      << "no single trace ID links admission -> synthesis -> decision";
  // Background jobs only ever run with a requester's context: a
  // synthesis span without an admission span would mean the ID was
  // minted somewhere other than accept.
  for (const uint64_t id : synth_traces) {
    EXPECT_TRUE(accept_traces.contains(id))
        << "synthesis trace " << id << " has no admission span";
  }
  obs::Tracer::SetEnabled(false);
}

// OBSERVE is a read-only probe: polling it at 10 Hz through a concurrent
// burst must not change a single answer digest, and every reply must be
// well-formed JSON. (The p99-latency overhead guard lives in
// scripts/check.sh --serve-smoke, where timing is not sanitizer-skewed.)
TEST(ServerTest, ObservePollingDoesNotPerturbAnswers) {
  obs::MetricsRegistry::SetEnabled(true);

  const Catalog catalog = Catalog::TpchCatalog();
  auto queries = GenerateWorkload(catalog, 32, {});
  ASSERT_TRUE(queries.ok());

  struct Digest {
    uint64_t rows = 0;
    uint64_t content_hash = 0;
    uint64_t order_hash = 0;
  };
  // One concurrent pass over the workload against a fresh server;
  // when `poll` is set, a 10 Hz OBSERVE poller runs throughout.
  const auto run = [&](bool poll, std::vector<Digest>* digests) {
    ServerOptions options = FastServerOptions();
    options.queue_depth = 128;
    options.service.scale_factor = 0.002;
    options.service.background_learning = true;
    auto server = SiaServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    const uint16_t port = (*server)->port();

    std::atomic<bool> stop{false};
    std::atomic<int> polls{0};
    std::atomic<int> poll_failures{0};
    Thread poller([&]() {
      while (!poll || !stop.load(std::memory_order_relaxed)) {
        if (!poll) return;
        auto parsed = RoundTrip(port, "OBSERVE");
        if (!parsed.ok() || parsed->kind != ResponseKind::kOk ||
            !sia::test_json::IsValidJson(parsed->body)) {
          poll_failures.fetch_add(1);
        }
        polls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });

    digests->assign(queries->size(), Digest{});
    std::vector<Thread> threads;
    threads.reserve(queries->size());
    for (size_t i = 0; i < queries->size(); ++i) {
      threads.emplace_back([&, i] {
        auto parsed = RoundTrip(port, "QUERY\n" + (*queries)[i].sql);
        ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
        ASSERT_EQ(parsed->kind, ResponseKind::kOk)
            << parsed->error.ToString();
        ASSERT_TRUE(parsed->query.has_value());
        ASSERT_TRUE(parsed->query->executed);
        (*digests)[i] = Digest{parsed->query->rows,
                               parsed->query->content_hash,
                               parsed->query->order_hash};
      });
    }
    for (Thread& t : threads) t.Join();
    stop.store(true, std::memory_order_relaxed);
    poller.Join();
    if (poll) {
      EXPECT_GT(polls.load(), 0);
      EXPECT_EQ(poll_failures.load(), 0);
    }
    EXPECT_TRUE((*server)->DrainAndStop().ok());
  };

  std::vector<Digest> quiet, polled;
  run(false, &quiet);
  run(true, &polled);
  for (size_t i = 0; i < queries->size(); ++i) {
    EXPECT_EQ(polled[i].rows, quiet[i].rows) << i;
    EXPECT_EQ(polled[i].content_hash, quiet[i].content_hash) << i;
    EXPECT_EQ(polled[i].order_hash, quiet[i].order_hash) << i;
  }
}

// A stalled OBSERVE (obs.observe.latency) occupies one worker slot and
// nothing else: admission keeps admitting, other workers keep serving,
// and the drain completes. The telemetry path may be slow; the serving
// path must not notice.
TEST(ServerTest, SlowObserveNeverStallsServing) {
  obs::MetricsRegistry::SetEnabled(true);
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("obs.observe.latency=latency:1000")
                  .ok());

  ServerOptions options = FastServerOptions();
  options.workers = 2;
  auto server = SiaServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // The observer sleeps 1s inside the handler on one worker...
  Thread observer([&]() {
    auto parsed = RoundTrip(port, "OBSERVE");
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->kind, ResponseKind::kOk);
  });
  // ...while the other worker answers pings the entire time.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    auto pong = RoundTrip(port, "PING");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong->kind, ResponseKind::kOk);
  }
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Five pings through the free worker finish well inside the 1000ms
  // the observer spends asleep (generous bound for sanitizer noise).
  EXPECT_LT(elapsed_ms, 900) << "serving stalled behind a slow OBSERVE";
  observer.Join();
  FaultRegistry::Instance().DisarmAll();
  EXPECT_TRUE((*server)->DrainAndStop().ok());
}

}  // namespace
}  // namespace sia::server
