// End-to-end tests spanning the full Sia pipeline: workload generation ->
// synthesis -> query rewriting -> execution, asserting the paper's core
// guarantee (semantic equivalence of rewritten queries) on real data.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "parser/parser.h"
#include "rewrite/sia_rewriter.h"
#include "synth/verifier.h"
#include "workload/querygen.h"

namespace sia {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = Catalog::TpchCatalog();
    data_ = GenerateTpch(0.002, 11);
    executor_.RegisterTable("lineitem", &data_.lineitem);
    executor_.RegisterTable("orders", &data_.orders);
  }

  Catalog catalog_;
  TpchData data_;
  Executor executor_;
};

TEST_F(EndToEndTest, RewrittenWorkloadQueriesAreSemanticallyEquivalent) {
  auto queries = GenerateWorkload(catalog_, 6);
  ASSERT_TRUE(queries.ok());

  RewriteOptions opts;
  opts.target_table = "lineitem";
  // Keep the loop budget modest: equivalence matters here, not optimality.
  opts.synthesis.max_iterations = 12;

  int rewritten_count = 0;
  for (const GeneratedQuery& g : *queries) {
    auto outcome = RewriteQuery(g.query, catalog_, opts);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString() << "\n" << g.sql;
    auto original = RunQuery(g.query, catalog_, executor_);
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    auto rewritten = RunQuery(outcome->rewritten, catalog_, executor_);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

    // The paper's core guarantee: identical result sets.
    EXPECT_EQ(original->row_count, rewritten->row_count) << g.sql;
    EXPECT_EQ(original->content_hash, rewritten->content_hash) << g.sql;
    rewritten_count += outcome->changed();
  }
  // The workload is built so learned predicates usually exist.
  EXPECT_GT(rewritten_count, 0);
}

TEST_F(EndToEndTest, MotivatingExampleShowsJoinInputReduction) {
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(sql, catalog_, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->changed());

  auto original = RunSql(sql, catalog_, executor_);
  ASSERT_TRUE(original.ok());
  auto rewritten = RunQuery(outcome->rewritten, catalog_, executor_);
  ASSERT_TRUE(rewritten.ok());

  EXPECT_EQ(original->content_hash, rewritten->content_hash);
  // The synthesized lineitem filter must shrink the join's probe input.
  EXPECT_LT(rewritten->stats.join_probe_rows,
            original->stats.join_probe_rows)
      << "learned: " << outcome->learned->ToString();
}

TEST_F(EndToEndTest, LearnedPredicateSelectivityMatchesFilteredRows) {
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(sql, catalog_, opts);
  ASSERT_TRUE(outcome.ok());
  if (!outcome->changed()) GTEST_SKIP() << "no predicate synthesized";

  // Rebase the learned predicate from the joint schema onto lineitem.
  const Schema joint = catalog_.JointSchema({"lineitem", "orders"}).value();
  // lineitem occupies the first 10 joint columns, so indices line up.
  auto sel = MeasureSelectivity(data_.lineitem, outcome->learned);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_GT(*sel, 0.0);
  EXPECT_LT(*sel, 1.0);
}

}  // namespace
}  // namespace sia
