// Tests for the check/ validation subsystem: one test per
// malformed-input class asserting its distinct diagnostic code, plan
// validation over hand-built and planner-built trees, seeded
// property/fuzz tests running the §6.3 workload generator through
// parse -> bind -> plan -> movement -> (rewrite) -> validate, and
// regression tests pinning down the 3VL / division-by-zero / date-range
// semantics the ExprValidator checks against.
#include <cmath>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "check/diagnostic.h"
#include "check/expr_validator.h"
#include "check/plan_validator.h"
#include "common/date.h"
#include "engine/column_table.h"
#include "engine/exec_expr.h"
#include "engine/executor.h"
#include "ir/binder.h"
#include "ir/evaluator.h"
#include "ir/simplify.h"
#include "parser/parser.h"
#include "rewrite/plan.h"
#include "rewrite/planner.h"
#include "rewrite/rules.h"
#include "rewrite/sia_rewriter.h"
#include "workload/querygen.h"

namespace sia {
namespace {

// --- Diagnostic plumbing ------------------------------------------------------

TEST(DiagnosticTest, CodeNamesAreStableAndDistinct) {
  EXPECT_STREQ(DiagCodeName(DiagCode::kExprUnboundColumn),
               "expr.unbound-column");
  EXPECT_STREQ(DiagCodeName(DiagCode::kPlanPredicateOutOfScope),
               "plan.predicate-out-of-scope");
  EXPECT_STRNE(DiagCodeName(DiagCode::kExprColumnOutOfRange),
               DiagCodeName(DiagCode::kPlanColumnOutOfRange));
}

TEST(DiagnosticTest, SeverityAccounting) {
  Diagnostics diags;
  diags.Add(DiagCode::kExprNullComparison, "x = NULL", "always UNKNOWN");
  EXPECT_TRUE(diags.ok());  // warnings do not fail a check
  EXPECT_EQ(diags.warning_count(), 1u);
  diags.Add(DiagCode::kExprUnboundColumn, "y", "unbound");
  EXPECT_FALSE(diags.ok());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_TRUE(diags.Has(DiagCode::kExprUnboundColumn));
  EXPECT_FALSE(diags.Has(DiagCode::kExprNotCnf));
}

TEST(DiagnosticTest, ToStatusCarriesContextAndFirstError) {
  Diagnostics diags;
  EXPECT_TRUE(diags.ToStatus("clean").ok());
  diags.Add(DiagCode::kExprColumnOutOfRange, "c9", "index 9 >= width 2");
  diags.Add(DiagCode::kExprUnboundColumn, "z", "unbound");
  const Status status = diags.ToStatus("test seam");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("test seam"), std::string::npos);
  EXPECT_NE(status.message().find("expr.column-out-of-range"),
            std::string::npos);
}

TEST(DiagnosticTest, MergePrefixesWhere) {
  Diagnostics inner;
  inner.Add(DiagCode::kExprUnboundColumn, "x", "unbound");
  Diagnostics outer;
  outer.Merge(inner, "Filter predicate/");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.items()[0].where.rfind("Filter predicate/", 0), 0u);
}

// --- ExprValidator: malformed expression classes ------------------------------

class ExprValidatorTest : public ::testing::Test {
 protected:
  ExprValidatorTest()
      : schema_(std::vector<ColumnDef>{
            {"t", "a", DataType::kInteger, false},
            {"t", "b", DataType::kInteger, true},
            {"t", "d", DataType::kDate, false},
            {"t", "x", DataType::kDouble, false}}) {}

  Diagnostics Validate(const ExprPtr& expr,
                       const ExprValidatorOptions& options = {}) {
    Diagnostics diags;
    ValidateExpr(expr, schema_, &diags, options);
    return diags;
  }

  ExprPtr ColA() { return Expr::BoundColumn("t", "a", 0, DataType::kInteger); }
  ExprPtr ColD() { return Expr::BoundColumn("t", "d", 2, DataType::kDate); }

  Schema schema_;
};

TEST_F(ExprValidatorTest, CleanPredicateHasNoDiagnostics) {
  const ExprPtr pred = Expr::Logic(
      LogicOp::kAnd, Expr::Compare(CompareOp::kLt, ColA(), Expr::IntLit(10)),
      Expr::Compare(CompareOp::kGe, ColD(),
                    Expr::DateLit(CivilToDay({1995, 1, 1}))));
  ExprValidatorOptions options;
  options.require_boolean = true;
  const Diagnostics diags = Validate(pred, options);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

TEST_F(ExprValidatorTest, UnboundColumnRejected) {
  const ExprPtr pred =
      Expr::Compare(CompareOp::kLt, Expr::Column("t", "a"), Expr::IntLit(1));
  const Diagnostics diags = Validate(pred);
  EXPECT_TRUE(diags.Has(DiagCode::kExprUnboundColumn)) << diags.ToString();

  // Pre-bind trees are legal when the caller says so.
  ExprValidatorOptions prebind;
  prebind.require_bound = false;
  EXPECT_TRUE(Validate(pred, prebind).empty());
}

TEST_F(ExprValidatorTest, ColumnIndexOutOfRangeRejected) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "a", 99, DataType::kInteger),
      Expr::IntLit(1));
  EXPECT_TRUE(Validate(pred).Has(DiagCode::kExprColumnOutOfRange));
}

TEST_F(ExprValidatorTest, ColumnTypeMismatchRejected) {
  // Slot 2 is DATE; the ref claims INTEGER.
  const ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "d", 2, DataType::kInteger),
      Expr::IntLit(1));
  EXPECT_TRUE(Validate(pred).Has(DiagCode::kExprColumnTypeMismatch));
}

TEST_F(ExprValidatorTest, ColumnNameMismatchIsWarningOnly) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "renamed", 0, DataType::kInteger),
      Expr::IntLit(1));
  const Diagnostics diags = Validate(pred);
  EXPECT_TRUE(diags.Has(DiagCode::kExprColumnNameMismatch));
  EXPECT_TRUE(diags.ok());  // a stale name is suspicious, not fatal
}

TEST_F(ExprValidatorTest, BooleanOperandInComparisonRejected) {
  const ExprPtr pred =
      Expr::Compare(CompareOp::kLt, Expr::BoolLit(true), Expr::IntLit(1));
  EXPECT_TRUE(Validate(pred).Has(DiagCode::kExprCompareTypeError));
}

TEST_F(ExprValidatorTest, BooleanOperandInArithmeticRejected) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::Arith(ArithOp::kAdd, Expr::BoolLit(true), ColA()),
      Expr::IntLit(1));
  EXPECT_TRUE(Validate(pred).Has(DiagCode::kExprArithTypeError));
}

TEST_F(ExprValidatorTest, NonBooleanLogicOperandRejected) {
  const ExprPtr pred =
      Expr::Logic(LogicOp::kAnd, Expr::IntLit(1), Expr::BoolLit(true));
  EXPECT_TRUE(Validate(pred).Has(DiagCode::kExprLogicTypeError));
}

TEST_F(ExprValidatorTest, NonBooleanRootRejectedWhenPredicateRequired) {
  ExprValidatorOptions options;
  options.require_boolean = true;
  EXPECT_TRUE(Validate(Expr::Arith(ArithOp::kAdd, ColA(), Expr::IntLit(1)),
                       options)
                  .Has(DiagCode::kExprLogicTypeError));
}

TEST_F(ExprValidatorTest, DateLiteralRangeChecked) {
  const int64_t min_day = CivilToDay({1, 1, 1});
  const int64_t max_day = CivilToDay({9999, 12, 31});
  EXPECT_TRUE(Validate(Expr::DateLit(min_day)).empty());
  EXPECT_TRUE(Validate(Expr::DateLit(max_day)).empty());
  EXPECT_TRUE(
      Validate(Expr::DateLit(max_day + 1)).Has(DiagCode::kExprDateOutOfRange));
  EXPECT_TRUE(
      Validate(Expr::DateLit(min_day - 1)).Has(DiagCode::kExprDateOutOfRange));
}

TEST_F(ExprValidatorTest, NonFiniteDoubleLiteralRejected) {
  EXPECT_TRUE(Validate(Expr::DoubleLit(std::nan("")))
                  .Has(DiagCode::kExprNonFiniteLiteral));
  EXPECT_TRUE(Validate(Expr::DoubleLit(HUGE_VAL))
                  .Has(DiagCode::kExprNonFiniteLiteral));
  EXPECT_TRUE(Validate(Expr::DoubleLit(1.5)).empty());
}

TEST_F(ExprValidatorTest, ComparisonAgainstNullLiteralIsWarning) {
  const ExprPtr pred =
      Expr::Compare(CompareOp::kEq, ColA(), Expr::Literal(Value::Null()));
  const Diagnostics diags = Validate(pred);
  EXPECT_TRUE(diags.Has(DiagCode::kExprNullComparison));
  EXPECT_TRUE(diags.ok());
}

TEST_F(ExprValidatorTest, DivisionByConstantZeroIsWarning) {
  const ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::Arith(ArithOp::kDiv, ColA(), Expr::IntLit(0)),
      Expr::IntLit(1));
  const Diagnostics diags = Validate(pred);
  EXPECT_TRUE(diags.Has(DiagCode::kExprDivisionByZero));
  EXPECT_TRUE(diags.ok());
}

// --- CNF structure ------------------------------------------------------------

TEST(CnfTest, ConjunctionOfDisjunctionsAccepted) {
  const ExprPtr a = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "a", 0, DataType::kInteger),
      Expr::IntLit(1));
  const ExprPtr b = Expr::Compare(
      CompareOp::kGt, Expr::BoundColumn("t", "b", 1, DataType::kInteger),
      Expr::IntLit(2));
  const ExprPtr cnf =
      Expr::Logic(LogicOp::kAnd, Expr::Logic(LogicOp::kOr, a, Expr::Not(b)),
                  b);
  EXPECT_TRUE(IsCnf(cnf));
  Diagnostics diags;
  ValidateCnf(cnf, &diags);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

TEST(CnfTest, ConjunctionUnderDisjunctionRejected) {
  const ExprPtr a = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "a", 0, DataType::kInteger),
      Expr::IntLit(1));
  const ExprPtr b = Expr::Compare(
      CompareOp::kGt, Expr::BoundColumn("t", "b", 1, DataType::kInteger),
      Expr::IntLit(2));
  const ExprPtr not_cnf =
      Expr::Logic(LogicOp::kOr, a, Expr::Logic(LogicOp::kAnd, a, b));
  EXPECT_FALSE(IsCnf(not_cnf));
  Diagnostics diags;
  ValidateCnf(not_cnf, &diags);
  EXPECT_TRUE(diags.Has(DiagCode::kExprNotCnf));
}

TEST(CnfTest, NegationOfNonAtomRejected) {
  const ExprPtr a = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "a", 0, DataType::kInteger),
      Expr::IntLit(1));
  const ExprPtr neg = Expr::Not(Expr::Logic(LogicOp::kAnd, a, a));
  EXPECT_FALSE(IsCnf(neg));
  Diagnostics diags;
  ValidateCnf(neg, &diags);
  EXPECT_TRUE(diags.Has(DiagCode::kExprNotCnf));
}

// --- Pipeline seam hook (Status path) ----------------------------------------

#ifdef NDEBUG
// In debug builds the hook intentionally asserts instead of returning, so
// the Status path is only testable in release-style builds.
TEST(CheckBoundPredicateTest, MalformedPredicateYieldsStatus) {
  const Schema schema(
      std::vector<ColumnDef>{{"t", "a", DataType::kInteger, false}});
  const ExprPtr bad = Expr::Compare(
      CompareOp::kLt, Expr::BoundColumn("t", "a", 9, DataType::kInteger),
      Expr::IntLit(1));
  const Status status = CheckBoundPredicate(bad, schema, "unit test seam");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unit test seam"), std::string::npos);

  const ExprPtr good =
      Expr::Compare(CompareOp::kLt, Expr::BoundColumn("t", "a", 0,
                                                      DataType::kInteger),
                    Expr::IntLit(1));
  EXPECT_TRUE(CheckBoundPredicate(good, schema, "unit test seam").ok());
}
#endif

// --- PlanValidator: malformed plan classes ------------------------------------

class PlanValidatorTest : public ::testing::Test {
 protected:
  PlanValidatorTest() : catalog_(Catalog::TpchCatalog()) {
    lineitem_ = *catalog_.JointSchema({"lineitem"});
    orders_ = *catalog_.JointSchema({"orders"});
  }

  Diagnostics Validate(const PlanPtr& plan, bool with_catalog = true) {
    Diagnostics diags;
    PlanValidatorOptions options;
    if (with_catalog) options.catalog = &catalog_;
    ValidatePlan(plan, &diags, options);
    return diags;
  }

  PlanPtr ScanLineitem() { return PlanNode::Scan("lineitem", lineitem_); }

  ExprPtr QuantityCol() {
    return Expr::BoundColumn("lineitem", "l_quantity",
                             *lineitem_.FindColumn("l_quantity"),
                             DataType::kInteger);
  }

  Catalog catalog_;
  Schema lineitem_;
  Schema orders_;
};

TEST_F(PlanValidatorTest, PlannedQueryValidatesClean) {
  auto parsed = ParseQuery(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND "
      "l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'");
  ASSERT_TRUE(parsed.ok());
  auto plan = PlanQuery(*parsed, catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(Validate(*plan).empty()) << Validate(*plan).ToString();

  const PlanPtr moved = ApplyPredicateMovement(*plan);
  EXPECT_TRUE(Validate(moved).empty()) << Validate(moved).ToString();
}

TEST_F(PlanValidatorTest, NonBooleanFilterPredicateRejected) {
  const PlanPtr plan = PlanNode::Filter(
      Expr::Arith(ArithOp::kAdd, QuantityCol(), Expr::IntLit(1)),
      ScanLineitem());
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanNonBooleanPredicate));
}

TEST_F(PlanValidatorTest, FilterPredicateOutOfScopeRejected) {
  const PlanPtr plan = PlanNode::Filter(
      Expr::Compare(CompareOp::kGt,
                    Expr::BoundColumn("lineitem", "l_quantity", 99,
                                      DataType::kInteger),
                    Expr::IntLit(0)),
      ScanLineitem());
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanPredicateOutOfScope));
}

TEST_F(PlanValidatorTest, FilterWithoutPredicateRejected) {
  const PlanPtr plan = PlanNode::Filter(nullptr, ScanLineitem());
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanMissingPredicate));
}

TEST_F(PlanValidatorTest, ScanOfUnknownTableRejected) {
  const PlanPtr plan = PlanNode::Scan("no_such_table", lineitem_);
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanUnknownTable));
  // Without a catalog there is nothing to check the table against.
  EXPECT_FALSE(Validate(plan, /*with_catalog=*/false)
                   .Has(DiagCode::kPlanUnknownTable));
}

TEST_F(PlanValidatorTest, ScanSchemaDisagreeingWithCatalogRejected) {
  Schema truncated(std::vector<ColumnDef>(lineitem_.columns().begin(),
                                          lineitem_.columns().begin() + 3));
  const PlanPtr plan = PlanNode::Scan("lineitem", truncated);
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanSchemaMismatch));
}

TEST_F(PlanValidatorTest, ScanFilterReferencingOtherTableRejected) {
  // A pushdown bug: the scan's residual filter references an orders
  // column. The index (0) is in range for lineitem, so only the
  // table-ownership check can catch it.
  const ExprPtr foreign = Expr::Compare(
      CompareOp::kGt,
      Expr::BoundColumn("orders", "o_orderkey", 0, DataType::kInteger),
      Expr::IntLit(0));
  const PlanPtr plan = PlanNode::Scan("lineitem", lineitem_, foreign);
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanScanFilterForeignColumn));
}

TEST_F(PlanValidatorTest, JoinConditionBeyondJointSchemaRejected) {
  const ExprPtr cond = Expr::Compare(
      CompareOp::kEq,
      Expr::BoundColumn("orders", "o_orderkey", 50, DataType::kInteger),
      QuantityCol());
  const PlanPtr plan = PlanNode::Join(cond, ScanLineitem(),
                                      PlanNode::Scan("orders", orders_));
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanPredicateOutOfScope));
}

TEST_F(PlanValidatorTest, CrossJoinIsWarningOnly) {
  const PlanPtr plan = PlanNode::Join(nullptr, ScanLineitem(),
                                      PlanNode::Scan("orders", orders_));
  const Diagnostics diags = Validate(plan);
  EXPECT_TRUE(diags.Has(DiagCode::kPlanCrossJoin));
  EXPECT_TRUE(diags.ok());
}

TEST_F(PlanValidatorTest, AggregateGroupColumnOutOfRangeRejected) {
  const PlanPtr plan = PlanNode::Aggregate({99}, ScanLineitem());
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanColumnOutOfRange));
}

TEST_F(PlanValidatorTest, ProjectColumnOutOfRangeRejected) {
  const PlanPtr plan = PlanNode::Project({99}, ScanLineitem());
  EXPECT_TRUE(Validate(plan).Has(DiagCode::kPlanColumnOutOfRange));
}

#ifdef NDEBUG
TEST_F(PlanValidatorTest, CheckPlanConvertsErrorsToStatus) {
  const PlanPtr bad = PlanNode::Filter(nullptr, ScanLineitem());
  const Status status = CheckPlan(bad, "unit test seam", &catalog_);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unit test seam"), std::string::npos);
  EXPECT_TRUE(CheckPlan(ScanLineitem(), "unit test seam", &catalog_).ok());
}

TEST_F(PlanValidatorTest, ExecutorRejectsMalformedPlanUpFront) {
  Table table(lineitem_);
  Executor executor;
  executor.RegisterTable("lineitem", &table);
  const PlanPtr bad = PlanNode::Filter(
      Expr::Arith(ArithOp::kAdd, QuantityCol(), Expr::IntLit(1)),
      ScanLineitem());
  auto result = executor.Execute(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("plan handed to executor"),
            std::string::npos);
}
#endif

// --- Seeded property tests over the workload generator ------------------------

TEST(CheckPropertyTest, WorkloadBindsPlansAndValidatesClean) {
  const Catalog catalog = Catalog::TpchCatalog();
  QueryGenOptions gen;
  gen.seed = 2021;
  auto queries = GenerateWorkload(catalog, 200, gen);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  PlanValidatorOptions plan_options;
  plan_options.catalog = &catalog;
  size_t findings = 0;
  for (const GeneratedQuery& q : *queries) {
    auto joint = catalog.JointSchema(q.query.tables);
    ASSERT_TRUE(joint.ok()) << q.sql;
    if (q.query.where != nullptr) {
      auto bound = Bind(q.query.where, *joint);
      ASSERT_TRUE(bound.ok()) << q.sql;
      Diagnostics diags;
      ExprValidatorOptions options;
      options.require_boolean = true;
      ValidateExpr(*bound, *joint, &diags, options);
      findings += diags.size();
      EXPECT_TRUE(diags.empty()) << q.sql << "\n" << diags.ToString();
    }
    auto plan = PlanQuery(q.query, catalog);
    ASSERT_TRUE(plan.ok()) << q.sql;
    Diagnostics plan_diags;
    ValidatePlan(*plan, &plan_diags, plan_options);
    Diagnostics moved_diags;
    ValidatePlan(ApplyPredicateMovement(*plan), &moved_diags, plan_options);
    findings += plan_diags.size() + moved_diags.size();
    EXPECT_TRUE(plan_diags.empty()) << q.sql << "\n" << plan_diags.ToString();
    EXPECT_TRUE(moved_diags.empty())
        << q.sql << "\n" << moved_diags.ToString();
  }
  EXPECT_EQ(findings, 0u);
}

TEST(CheckPropertyTest, RewrittenQueriesProduceValidCnfAndPlans) {
  const Catalog catalog = Catalog::TpchCatalog();
  QueryGenOptions gen;
  gen.seed = 7;
  auto queries = GenerateWorkload(catalog, 8, gen);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  RewriteOptions rewrite_options;
  rewrite_options.target_table = "lineitem";
  rewrite_options.synthesis.max_iterations = 3;
  PlanValidatorOptions plan_options;
  plan_options.catalog = &catalog;

  size_t rewritten = 0;
  for (const GeneratedQuery& q : *queries) {
    auto outcome = RewriteQuery(q.query, catalog, rewrite_options);
    ASSERT_TRUE(outcome.ok()) << q.sql << "\n" << outcome.status().ToString();
    if (!outcome->changed()) continue;
    ++rewritten;

    auto joint = catalog.JointSchema(q.query.tables);
    ASSERT_TRUE(joint.ok());
    Diagnostics diags;
    ExprValidatorOptions options;
    options.require_boolean = true;
    ValidateExpr(outcome->learned, *joint, &diags, options);
    ValidateCnf(outcome->learned, &diags);
    EXPECT_TRUE(diags.ok()) << q.sql << "\n" << diags.ToString();
    EXPECT_TRUE(IsCnf(outcome->learned)) << outcome->learned->ToString();

    auto replan = PlanQuery(outcome->rewritten, catalog);
    ASSERT_TRUE(replan.ok()) << q.sql;
    Diagnostics plan_diags;
    ValidatePlan(ApplyPredicateMovement(*replan), &plan_diags, plan_options);
    EXPECT_TRUE(plan_diags.ok()) << q.sql << "\n" << plan_diags.ToString();
  }
  // The workload is built to be rewritable; if nothing rewrote, the
  // property above was vacuous.
  EXPECT_GT(rewritten, 0u);
}

// --- Regression: the semantics the validator warns about ----------------------

class TupleRow final : public RowAccessor {
 public:
  explicit TupleRow(const Tuple* t) : t_(t) {}
  int64_t IntAt(size_t col) const override { return t_->at(col).AsInt(); }
  double DoubleAt(size_t col) const override {
    return t_->at(col).AsDouble();
  }
  bool IsNull(size_t col) const override { return t_->at(col).is_null(); }

 private:
  const Tuple* t_;
};

// `NOT (x = NULL)` must stay UNKNOWN under 3VL — Simplify rewrites it to
// `x <> NULL`, which is still UNKNOWN, never TRUE. Checks the tree
// evaluator and the compiled interpreter agree, before and after
// simplification.
TEST(CheckRegressionTest, NegatedNullComparisonStaysUnknown) {
  const ExprPtr col = Expr::BoundColumn("t", "a", 0, DataType::kInteger);
  const ExprPtr pred = Expr::Not(
      Expr::Compare(CompareOp::kEq, col, Expr::Literal(Value::Null())));
  const Tuple row({Value::Integer(5)});
  const TupleRow accessor(&row);

  for (const ExprPtr& variant : {pred, Simplify(pred)}) {
    auto tv = EvalPredicate(*variant, row);
    ASSERT_TRUE(tv.ok());
    EXPECT_EQ(*tv, TruthValue::kUnknown) << variant->ToString();

    auto compiled = CompiledExpr::Compile(variant);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(compiled->EvalPredicate(accessor), 2) << variant->ToString();
  }
}

// Division by zero yields NULL (documented deviation from SQL's error) in
// the tree evaluator, the compiled interpreter, and constant folding —
// never a crash or a garbage value.
TEST(CheckRegressionTest, DivisionByZeroYieldsNullEverywhere) {
  const ExprPtr col = Expr::BoundColumn("t", "a", 0, DataType::kInteger);
  const ExprPtr div = Expr::Arith(ArithOp::kDiv, col, Expr::IntLit(0));
  const Tuple row({Value::Integer(5)});
  const TupleRow accessor(&row);

  auto value = EvalScalar(*div, row);
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value->is_null());

  auto compiled = CompiledExpr::Compile(div);
  ASSERT_TRUE(compiled.ok());
  bool is_null = false;
  compiled->EvalScalarInt(accessor, &is_null);
  EXPECT_TRUE(is_null);

  // Constant folding must not "evaluate around" the division.
  const ExprPtr folded =
      Simplify(Expr::Arith(ArithOp::kDiv, Expr::IntLit(1), Expr::IntLit(0)));
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(folded->literal().is_null());
}

// Constant folding can push a date literal out of the representable
// range (DATE '9999-12-31' + 1); the validator must catch the overflow
// the fold introduced.
TEST(CheckRegressionTest, ValidatorCatchesDateOverflowFromConstantFolding) {
  const int64_t max_day = CivilToDay({9999, 12, 31});
  const ExprPtr folded = Simplify(
      Expr::Arith(ArithOp::kAdd, Expr::DateLit(max_day), Expr::IntLit(1)));
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  ASSERT_EQ(folded->type(), DataType::kDate);

  Diagnostics diags;
  ValidateExpr(folded, Schema(), &diags);
  EXPECT_TRUE(diags.Has(DiagCode::kExprDateOutOfRange)) << diags.ToString();

  // The in-range fold is quietly accepted.
  Diagnostics ok_diags;
  ValidateExpr(Simplify(Expr::Arith(ArithOp::kSub, Expr::DateLit(max_day),
                                    Expr::IntLit(1))),
               Schema(), &ok_diags);
  EXPECT_TRUE(ok_diags.empty()) << ok_diags.ToString();
}

// FALSE AND p -> FALSE is 3VL-sound even when p is UNKNOWN
// (FALSE AND UNKNOWN = FALSE); TRUE OR UNKNOWN = TRUE likewise. The
// simplifier relies on both; pin them down against the evaluator.
TEST(CheckRegressionTest, ShortCircuitIdentitiesAre3vlSound) {
  const ExprPtr col = Expr::BoundColumn("t", "a", 0, DataType::kInteger);
  const ExprPtr unknown =
      Expr::Compare(CompareOp::kEq, col, Expr::Literal(Value::Null()));
  const Tuple row({Value::Integer(5)});

  const ExprPtr false_and =
      Expr::Logic(LogicOp::kAnd, Expr::BoolLit(false), unknown);
  auto tv = EvalPredicate(*false_and, row);
  ASSERT_TRUE(tv.ok());
  EXPECT_EQ(*tv, TruthValue::kFalse);
  EXPECT_TRUE(Simplify(false_and)->IsFalseLiteral());

  const ExprPtr true_or =
      Expr::Logic(LogicOp::kOr, Expr::BoolLit(true), unknown);
  tv = EvalPredicate(*true_or, row);
  ASSERT_TRUE(tv.ok());
  EXPECT_EQ(*tv, TruthValue::kTrue);
  EXPECT_TRUE(Simplify(true_or)->IsTrueLiteral());

  // The unsound variants must NOT be applied: TRUE AND UNKNOWN is
  // UNKNOWN, so `TRUE AND p -> p` is fine, but `UNKNOWN -> FALSE` is not.
  const ExprPtr true_and =
      Expr::Logic(LogicOp::kAnd, Expr::BoolLit(true), unknown);
  tv = EvalPredicate(*Simplify(true_and), row);
  ASSERT_TRUE(tv.ok());
  EXPECT_EQ(*tv, TruthValue::kUnknown);
}

}  // namespace
}  // namespace sia
