#include "common/deadline.h"

#include <string>

#include <gtest/gtest.h>

namespace sia {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.RemainingMillis(), Deadline::kForeverMillis);
}

TEST(DeadlineTest, FromNowMillisCountsDown) {
  const Deadline d = Deadline::FromNowMillis(60000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  const int64_t remaining = d.RemainingMillis();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 60000);
}

TEST(DeadlineTest, ZeroAndNegativeAreExpired) {
  EXPECT_TRUE(Deadline::FromNowMillis(0).expired());
  EXPECT_TRUE(Deadline::FromNowMillis(-5).expired());
  EXPECT_EQ(Deadline::FromNowMillis(0).RemainingMillis(), 0);
}

TEST(DeadlineTest, CopySharesTheEndInstant) {
  const Deadline a = Deadline::FromNowMillis(60000);
  const Deadline b = a;  // the copy must not restart the clock
  EXPECT_LE(b.RemainingMillis(), a.RemainingMillis() + 1);
}

TEST(DeadlineTest, EarlierPicksTheFiniteOne) {
  const Deadline finite = Deadline::FromNowMillis(1000);
  const Deadline inf = Deadline::Infinite();
  EXPECT_FALSE(Deadline::Earlier(finite, inf).infinite());
  EXPECT_FALSE(Deadline::Earlier(inf, finite).infinite());
  EXPECT_TRUE(Deadline::Earlier(inf, inf).infinite());
}

TEST(DeadlineTest, EarlierPicksTheSoonerOfTwoFinite) {
  const Deadline soon = Deadline::FromNowMillis(10);
  const Deadline late = Deadline::FromNowMillis(60000);
  EXPECT_LE(Deadline::Earlier(soon, late).RemainingMillis(), 10);
  EXPECT_LE(Deadline::Earlier(late, soon).RemainingMillis(), 10);
}

TEST(SolverBudgetTest, DefaultIsUnboundedWithSharedCap) {
  const SolverBudget b;
  EXPECT_FALSE(b.Exhausted());
  EXPECT_EQ(b.per_call_cap_ms, kDefaultSolverTimeoutMs);
  EXPECT_EQ(b.CallTimeoutMs(), kDefaultSolverTimeoutMs);
  EXPECT_TRUE(b.RequireRemaining("any").ok());
}

TEST(SolverBudgetTest, CallTimeoutIsCappedByRemainingWallClock) {
  // 50ms of wall clock left, 2000ms per-call cap: the call gets <=50ms.
  const SolverBudget b{Deadline::FromNowMillis(50), 2000};
  EXPECT_LE(b.CallTimeoutMs(), 50u);
  EXPECT_GE(b.CallTimeoutMs(), 1u);
}

TEST(SolverBudgetTest, CallTimeoutIsCappedByPerCallCap) {
  const SolverBudget b{Deadline::FromNowMillis(60000), 25};
  EXPECT_EQ(b.CallTimeoutMs(), 25u);
}

TEST(SolverBudgetTest, NeverReturnsZeroTimeout) {
  // Z3 treats timeout=0 as "no timeout", the opposite of what an
  // exhausted budget means; the floor is 1ms.
  const SolverBudget b{Deadline::FromNowMillis(0), 2000};
  EXPECT_EQ(b.CallTimeoutMs(), 1u);
}

TEST(SolverBudgetTest, RequireRemainingNamesTheStage) {
  const SolverBudget b{Deadline::FromNowMillis(0), 2000};
  EXPECT_TRUE(b.Exhausted());
  const Status st = b.RequireRemaining("synth.sample");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_NE(st.message().find("synth.sample"), std::string::npos);
}

TEST(SolverBudgetTest, WithCapHalvedKeepsDeadline) {
  const SolverBudget b{Deadline::FromNowMillis(60000), 2000};
  const SolverBudget half = b.WithCapHalved();
  EXPECT_EQ(half.per_call_cap_ms, 1000u);
  EXPECT_FALSE(half.deadline.infinite());
  // Halving saturates at 1ms instead of reaching 0 (= "no timeout").
  const SolverBudget tiny{Deadline(), 1};
  EXPECT_EQ(tiny.WithCapHalved().per_call_cap_ms, 1u);
}

}  // namespace
}  // namespace sia
