#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/column_table.h"
#include "engine/cursors.h"
#include "engine/exec_expr.h"
#include "engine/vector_filter.h"
#include "ir/binder.h"
#include "ir/builder.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema ThreeIntCols(bool nullable = false) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, nullable});
  s.AddColumn({"t", "b", DataType::kInteger, nullable});
  s.AddColumn({"t", "c", DataType::kInteger, nullable});
  return s;
}

Table RandomTable(const Schema& schema, size_t rows, uint64_t seed) {
  Table table(schema);
  Rng rng(seed);
  std::vector<int64_t> row(schema.size());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = rng.Uniform(-50, 50);
    table.AppendIntRow(row);
  }
  return table;
}

// Reference implementation: row-at-a-time CompiledExpr.
std::vector<uint32_t> ReferenceFilter(const Table& table,
                                      const ExprPtr& pred) {
  const CompiledExpr compiled = CompiledExpr::Compile(pred).value();
  TableCursor row(table);
  std::vector<uint32_t> out;
  for (size_t i = 0; i < table.row_count(); ++i) {
    row.set_row(i);
    if (compiled.EvalPredicate(row) == 1) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

TEST(VectorFilterTest, SimpleComparison) {
  Schema s = ThreeIntCols();
  Table table = RandomTable(s, 10000, 1);
  ExprPtr p = Bind(Col("a") < Lit(0), s).value();
  auto vf = VectorizedFilter::Compile(p);
  ASSERT_TRUE(vf.ok());
  std::vector<uint32_t> got;
  ASSERT_TRUE(vf->FilterTable(table, &got).ok());
  EXPECT_EQ(got, ReferenceFilter(table, p));
  EXPECT_FALSE(got.empty());
}

TEST(VectorFilterTest, ConstantFoldedResult) {
  Schema s = ThreeIntCols();
  Table table = RandomTable(s, 100, 2);
  // Predicate with no columns: TRUE keeps everything, FALSE nothing.
  ExprPtr t = Bind(Lit(1) < Lit(2), s).value();
  auto vt = VectorizedFilter::Compile(t);
  ASSERT_TRUE(vt.ok());
  std::vector<uint32_t> keep;
  ASSERT_TRUE(vt->FilterTable(table, &keep).ok());
  EXPECT_EQ(keep.size(), 100u);

  ExprPtr f = Bind(Lit(2) < Lit(1), s).value();
  auto vff = VectorizedFilter::Compile(f);
  ASSERT_TRUE(vff.ok());
  std::vector<uint32_t> none;
  ASSERT_TRUE(vff->FilterTable(table, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(VectorFilterTest, FallbackOnDouble) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kDouble, false});
  ExprPtr p = Bind(Col("x") < Lit(0.5), s).value();
  EXPECT_FALSE(VectorizedFilter::Compile(p).ok());
}

TEST(VectorFilterTest, FallbackOnDivision) {
  Schema s = ThreeIntCols();
  ExprPtr p = Bind(Col("a") / Lit(3) == Lit(1), s).value();
  EXPECT_FALSE(VectorizedFilter::Compile(p).ok());
}

TEST(VectorFilterTest, FallbackOnNullColumn) {
  Schema s = ThreeIntCols(/*nullable=*/true);
  Table table(s);
  ASSERT_TRUE(
      table.AppendRow(Tuple({Value::Integer(1), Value::Null(), Value::Integer(2)}))
          .ok());
  ExprPtr p = Bind(Col("b") < Lit(0), s).value();
  auto vf = VectorizedFilter::Compile(p);
  ASSERT_TRUE(vf.ok());  // compiles; the NULL is discovered per table
  std::vector<uint32_t> out;
  EXPECT_FALSE(vf->FilterTable(table, &out).ok());
}

// Property sweep: random integral predicates agree with CompiledExpr on
// random tables, across block-boundary row counts.
class VectorFilterPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VectorFilterPropertyTest, AgreesWithRowInterpreter) {
  const size_t rows = GetParam();
  Schema s = ThreeIntCols();
  Table table = RandomTable(s, rows, 40 + rows);

  Rng rng(1000 + rows);
  auto random_scalar = [&](auto&& self, int depth) -> ExprPtr {
    if (depth <= 0 || rng.Bernoulli(0.4)) {
      if (rng.Bernoulli(0.6)) {
        return Expr::Column("t", std::string(1, "abc"[rng.Uniform(0, 2)]));
      }
      return Expr::IntLit(rng.Uniform(-30, 30));
    }
    const ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul};
    return Expr::Arith(ops[rng.Uniform(0, 2)], self(self, depth - 1),
                       self(self, depth - 1));
  };
  auto random_pred = [&](auto&& self, int depth) -> ExprPtr {
    if (depth <= 0 || rng.Bernoulli(0.35)) {
      const CompareOp op = static_cast<CompareOp>(rng.Uniform(0, 5));
      return Expr::Compare(op, random_scalar(random_scalar, 2),
                           random_scalar(random_scalar, 2));
    }
    if (rng.Bernoulli(0.15)) return Expr::Not(self(self, depth - 1));
    return Expr::Logic(rng.Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr,
                       self(self, depth - 1), self(self, depth - 1));
  };

  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr p = Bind(random_pred(random_pred, 3), s).value();
    auto vf = VectorizedFilter::Compile(p);
    ASSERT_TRUE(vf.ok()) << p->ToString();
    std::vector<uint32_t> got;
    ASSERT_TRUE(vf->FilterTable(table, &got).ok());
    EXPECT_EQ(got, ReferenceFilter(table, p)) << p->ToString();
  }
}

// Row counts straddling the 2048 block size, including 0 and exact
// multiples.
INSTANTIATE_TEST_SUITE_P(BlockBoundaries, VectorFilterPropertyTest,
                         ::testing::Values(0, 1, 7, 2047, 2048, 2049, 4096,
                                           5000));

}  // namespace
}  // namespace sia
