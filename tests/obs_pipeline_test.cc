// Golden observability test: runs the real rewrite + execute pipeline
// with metrics and tracing armed and asserts the span names and bridged
// counters the instrumentation contract in DESIGN.md ("Observability")
// promises. A missing span here means someone removed or renamed an
// instrumentation site.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "rewrite/sia_rewriter.h"
#include "obs_json_util.h"

namespace sia {
namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::SetEnabled(true);
    obs::Tracer::SetEnabled(true);
    obs::MetricsRegistry::Instance().ResetAll();
    obs::Tracer::Instance().Clear();
  }
  void TearDown() override {
    obs::MetricsRegistry::SetEnabled(false);
    obs::Tracer::SetEnabled(false);
  }

  uint64_t CounterValue(const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name).Value();
  }
};

// The §2 motivating query: joins lineitem/orders and synthesizes a
// lineitem-only predicate, so it exercises every pipeline seam.
constexpr const char* kQuery =
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";

TEST_F(ObsPipelineTest, RewriteAndExecuteEmitGoldenSpans) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(kQuery, catalog, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->changed());

  const TpchData data = GenerateTpch(0.01);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  auto out = RunQuery(outcome->rewritten, catalog, executor);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  std::set<std::string> names;
  for (const obs::TraceEvent& e : obs::Tracer::Instance().CollectEvents()) {
    names.insert(e.name);
  }
  // The golden span list for a rewrite followed by an execution. Every
  // name is part of the stage.substage catalog in DESIGN.md.
  for (const char* expected :
       {"parse.query", "bind.expr", "rewrite.query", "rewrite.rung.full",
        "synth.run", "synth.iteration", "synth.sample", "learn.train",
        "learn.svm", "verify.check", "smt.check", "plan.query", "exec.query",
        "exec.scan", "exec.join"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }
}

TEST_F(ObsPipelineTest, StatsBridgesDoubleReportOntoRegistry) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(kQuery, catalog, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->changed());

  // SynthesisStats stays populated (API compat)...
  const SynthesisStats& st = outcome->synthesis.stats;
  EXPECT_GT(st.solver_calls, 0u);
  EXPECT_GT(st.true_samples, 0u);
  // ...and the same numbers land on the registry via the bridge.
  EXPECT_EQ(CounterValue("synth.runs"), 1u);
  EXPECT_EQ(CounterValue("synth.solver_calls"), st.solver_calls);
  EXPECT_EQ(CounterValue("synth.true_samples"), st.true_samples);
  EXPECT_EQ(CounterValue("synth.false_samples"), st.false_samples);
  EXPECT_EQ(CounterValue("rewrite.queries"), 1u);
  EXPECT_EQ(CounterValue("rewrite.changed"), 1u);
  EXPECT_EQ(CounterValue("rewrite.rung.full"), 1u);

  // Solver-call latency percentiles: one histogram entry per smt.check.
  obs::Histogram& lat = obs::MetricsRegistry::Instance().GetHistogram(
      "smt.check.latency_us");
  EXPECT_EQ(lat.Count(), CounterValue("smt.check.calls"));
  EXPECT_GT(lat.Count(), 0u);
  EXPECT_GT(lat.Percentile(0.99), 0.0);

  EXPECT_EQ(obs::MetricsRegistry::Instance()
                .GetHistogram("rewrite.query_ms")
                .Count(),
            1u);
}

TEST_F(ObsPipelineTest, ExecStatsBridgeOntoRegistry) {
  const Catalog catalog = Catalog::TpchCatalog();
  const TpchData data = GenerateTpch(0.01);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);
  auto parsed = ParseQuery(kQuery);
  ASSERT_TRUE(parsed.ok());
  auto out = RunQuery(*parsed, catalog, executor);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  EXPECT_EQ(CounterValue("exec.queries"), 1u);
  EXPECT_EQ(CounterValue("exec.rows_scanned"), out->stats.rows_scanned);
  EXPECT_EQ(CounterValue("exec.output_rows"), out->stats.output_rows);
  EXPECT_EQ(CounterValue("exec.join_probe_rows"),
            out->stats.join_probe_rows);
  EXPECT_EQ(obs::MetricsRegistry::Instance()
                .GetHistogram("exec.query_ms")
                .Count(),
            1u);
}

TEST_F(ObsPipelineTest, FullSnapshotAfterPipelineIsValidJson) {
  const Catalog catalog = Catalog::TpchCatalog();
  RewriteOptions opts;
  opts.target_table = "lineitem";
  auto outcome = RewriteQuery(kQuery, catalog, opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(sia::test_json::IsValidJson(
      obs::MetricsRegistry::Instance().SnapshotJson()));
  EXPECT_TRUE(sia::test_json::IsValidJson(
      obs::Tracer::Instance().ExportChromeJson()));
}

}  // namespace
}  // namespace sia
