// Tests for the join-key equivalence-class predicate transfer rule, plus
// Z3-backed soundness (every derived conjunct must be implied).
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "rewrite/rules.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema FourCols() {
  Schema s;
  s.AddColumn({"l", "a", DataType::kInteger, false});
  s.AddColumn({"l", "b", DataType::kInteger, false});
  s.AddColumn({"r", "c", DataType::kInteger, false});
  s.AddColumn({"r", "d", DataType::kInteger, false});
  return s;
}

std::vector<ExprPtr> BindAll(std::vector<ExprPtr> raw, const Schema& s) {
  std::vector<ExprPtr> out;
  for (ExprPtr& e : raw) out.push_back(Bind(e, s).value());
  return out;
}

TEST(EquivalenceTransferTest, TransfersLiteralBound) {
  const Schema s = FourCols();
  const auto conjuncts = BindAll(
      {Col("a") == Col("c"), Col("a") < Lit(10)}, s);
  const auto derived = TransferThroughEquivalences(conjuncts);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0]->ToString(), "r.c < 10");
}

TEST(EquivalenceTransferTest, TransitiveClasses) {
  const Schema s = FourCols();
  // a = c, c = d: class {a, c, d}; bound on d transfers to a and c.
  const auto conjuncts = BindAll(
      {Col("a") == Col("c"), Col("c") == Col("d"), Col("d") >= Lit(5)}, s);
  const auto derived = TransferThroughEquivalences(conjuncts);
  ASSERT_EQ(derived.size(), 2u);
  std::set<std::string> texts;
  for (const ExprPtr& d : derived) texts.insert(d->ToString());
  EXPECT_TRUE(texts.contains("l.a >= 5"));
  EXPECT_TRUE(texts.contains("r.c >= 5"));
}

TEST(EquivalenceTransferTest, LiteralOnLeftSide) {
  const Schema s = FourCols();
  const auto conjuncts = BindAll(
      {Col("a") == Col("c"), Lit(3) < Col("a")}, s);
  const auto derived = TransferThroughEquivalences(conjuncts);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0]->ToString(), "3 < r.c");
}

TEST(EquivalenceTransferTest, DoesNotTransferMultiColumnConjuncts) {
  const Schema s = FourCols();
  // a - b < 10 mixes columns: syntax-driven transfer cannot touch it —
  // the gap Sia fills.
  const auto conjuncts = BindAll(
      {Col("a") == Col("c"), Col("a") - Col("b") < Lit(10)}, s);
  EXPECT_TRUE(TransferThroughEquivalences(conjuncts).empty());
}

TEST(EquivalenceTransferTest, NoEqualitiesNoOutput) {
  const Schema s = FourCols();
  const auto conjuncts = BindAll({Col("a") < Lit(10)}, s);
  EXPECT_TRUE(TransferThroughEquivalences(conjuncts).empty());
}

TEST(EquivalenceTransferTest, DeduplicatesAgainstInputs) {
  const Schema s = FourCols();
  const auto conjuncts = BindAll(
      {Col("a") == Col("c"), Col("a") < Lit(10), Col("c") < Lit(10)}, s);
  EXPECT_TRUE(TransferThroughEquivalences(conjuncts).empty());
}

TEST(EquivalenceTransferTest, DerivedConjunctsAreImplied) {
  const Schema s = FourCols();
  const std::vector<std::vector<ExprPtr>> cases = {
      BindAll({Col("a") == Col("c"), Col("a") < Lit(10)}, s),
      BindAll({Col("a") == Col("c"), Col("c") == Col("d"),
               Col("d") >= Lit(5), Col("a") <= Lit(100)},
              s),
      BindAll({Col("b") == Col("d"), Lit(0) == Col("b")}, s),
  };
  for (const auto& conjuncts : cases) {
    const ExprPtr original = CombineConjuncts(conjuncts);
    for (const ExprPtr& d : TransferThroughEquivalences(conjuncts)) {
      auto v = VerifyImplies(original, d, s);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, VerifyResult::kValid)
          << original->ToString() << " |= " << d->ToString();
    }
  }
}

}  // namespace
}  // namespace sia
