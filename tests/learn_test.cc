#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "learn/learner.h"
#include "learn/linear_form.h"
#include "learn/rational.h"
#include "learn/svm.h"

namespace sia {
namespace {

Tuple T2(int64_t a, int64_t b) {
  return Tuple({Value::Integer(a), Value::Integer(b)});
}

// --- Rational approximation ---------------------------------------------------

TEST(RationalTest, ExactFractions) {
  const Rational half = ApproximateRational(0.5, 10);
  EXPECT_EQ(half.num, 1);
  EXPECT_EQ(half.den, 2);
  const Rational third = ApproximateRational(1.0 / 3.0, 10);
  EXPECT_EQ(third.num, 1);
  EXPECT_EQ(third.den, 3);
  const Rational neg = ApproximateRational(-2.5, 10);
  EXPECT_EQ(neg.num, -5);
  EXPECT_EQ(neg.den, 2);
}

TEST(RationalTest, Integers) {
  const Rational r = ApproximateRational(7.0, 10);
  EXPECT_EQ(r.num, 7);
  EXPECT_EQ(r.den, 1);
  const Rational z = ApproximateRational(0.0, 10);
  EXPECT_EQ(z.num, 0);
}

TEST(RationalTest, BoundedDenominator) {
  const Rational pi = ApproximateRational(M_PI, 120);
  EXPECT_LE(pi.den, 120);
  EXPECT_NEAR(pi.ToDouble(), M_PI, 1e-4);  // 355/113 territory
}

TEST(SnapTest, SimpleDirections) {
  EXPECT_EQ(SnapToIntegers({2.0, 1.0}), (std::vector<int64_t>{2, 1}));
  EXPECT_EQ(SnapToIntegers({1.0, -1.0}), (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(SnapToIntegers({0.5, 0.25}), (std::vector<int64_t>{2, 1}));
}

TEST(SnapTest, NearZeroWeightsDropOut) {
  const auto v = SnapToIntegers({1.0, 1e-9});
  EXPECT_EQ(v, (std::vector<int64_t>{1, 0}));
}

TEST(SnapTest, AllZero) {
  EXPECT_EQ(SnapToIntegers({0.0, 0.0}), (std::vector<int64_t>{0, 0}));
}

TEST(SnapTest, NoisyDirectionSnapsToIntent) {
  // 1.98 : 1.02 ~ 2 : 1
  const auto v = SnapToIntegers({1.98, 1.02}, 5, 0.02);
  EXPECT_EQ(v, (std::vector<int64_t>{2, 1}));
}

// --- SVM -----------------------------------------------------------------------

TEST(SvmTest, SeparableProblem) {
  // y = +1 when x0 + x1 > 0.
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextGaussian() * 10;
    const double b = rng.NextGaussian() * 10;
    if (std::abs(a + b) < 1) continue;  // margin
    points.push_back({a, b});
    labels.push_back(a + b > 0 ? 1 : -1);
  }
  const SvmModel m = TrainLinearSvm(points, labels);
  int correct = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    correct += (m.Decision(points[i]) > 0 ? 1 : -1) == labels[i];
  }
  EXPECT_EQ(correct, static_cast<int>(points.size()));
}

TEST(SvmTest, RecoverableDirection) {
  // Boundary 2*x0 + x1 - 50 = 0; the learned direction's ratio should be
  // close to 2:1.
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform(-100, 100);
    const double b = rng.Uniform(-100, 100);
    const double v = 2 * a + b - 50;
    if (std::abs(v) < 5) continue;
    points.push_back({static_cast<double>(a), static_cast<double>(b)});
    labels.push_back(v > 0 ? 1 : -1);
  }
  const SvmModel m = TrainLinearSvm(points, labels);
  ASSERT_NE(m.weights[1], 0.0);
  EXPECT_NEAR(m.weights[0] / m.weights[1], 2.0, 0.35);
}

TEST(SvmTest, OffsetLargeMagnitudeFeatures) {
  // Date-like features in the thousands; internal centering must cope.
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(8000, 10000);
    const double b = rng.Uniform(8000, 10000);
    const double v = a - b - 29;
    if (std::abs(v) < 2) continue;
    points.push_back({a, b});
    labels.push_back(v > 0 ? 1 : -1);
  }
  const SvmModel m = TrainLinearSvm(points, labels);
  int correct = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    correct += (m.Decision(points[i]) > 0 ? 1 : -1) == labels[i];
  }
  EXPECT_GT(static_cast<double>(correct) / points.size(), 0.97);
}

TEST(SvmTest, EmptyInput) {
  const SvmModel m = TrainLinearSvm({}, {});
  EXPECT_TRUE(m.weights.empty());
}

// --- LinearForm ------------------------------------------------------------------

TEST(LinearFormTest, ProjectAndAccept) {
  LinearForm f;
  f.columns = {0, 1};
  f.coeffs = {1, -1};
  f.constant = 29;
  EXPECT_EQ(f.Project(T2(10, 20)), 19);
  EXPECT_TRUE(f.Accepts(T2(0, 0)));     // 29 > 0
  EXPECT_FALSE(f.Accepts(T2(0, 29)));   // 0 > 0 is false
  EXPECT_EQ(f.UsedColumnCount(), 2u);
}

TEST(LinearFormTest, RendersReadableSql) {
  Schema s;
  s.AddColumn({"", "a1", DataType::kInteger, false});
  s.AddColumn({"", "a2", DataType::kInteger, false});
  LinearForm f;
  f.columns = {0, 1};
  f.coeffs = {2, 1};
  f.constant = 50;
  EXPECT_EQ(f.ToString(s), "2 * a1 + a2 + 50 > 0");
  LinearForm g;
  g.columns = {0, 1};
  g.coeffs = {1, -1};
  g.constant = 29;
  EXPECT_EQ(g.ToString(s), "a1 + 29 > a2");
}

TEST(LinearFormTest, DegenerateForms) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  LinearForm zero;
  zero.columns = {0};
  zero.coeffs = {0};
  zero.constant = 0;
  EXPECT_TRUE(zero.ToExpr(s)->IsFalseLiteral());  // 0 > 0
  LinearForm tautology;
  tautology.columns = {0};
  tautology.coeffs = {0};
  tautology.constant = 1;
  EXPECT_EQ(tautology.ToString(s), "1 > 0");
}

// --- Learn (Alg. 2) -------------------------------------------------------------

TEST(LearnTest, SeparableSamplesOneModel) {
  TrainingSet data;
  for (int i = 1; i <= 20; ++i) data.true_samples.push_back(T2(i, i + 40));
  for (int i = 1; i <= 20; ++i) data.false_samples.push_back(T2(i + 40, i));
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_EQ(learned->models.size(), 1u);
  // Contract: every TRUE sample accepted.
  for (const Tuple& t : data.true_samples) {
    EXPECT_TRUE(learned->Accepts(t)) << t.ToString();
  }
  // Separable case: FALSE samples rejected too.
  for (const Tuple& t : data.false_samples) {
    EXPECT_FALSE(learned->Accepts(t)) << t.ToString();
  }
}

TEST(LearnTest, NonSeparableStillCoversAllTrue) {
  // TRUE in two clusters with FALSE between them: needs a disjunction.
  TrainingSet data;
  for (int i = 0; i < 10; ++i) {
    data.true_samples.push_back(T2(-100 + i, 0));
    data.true_samples.push_back(T2(100 + i, 0));
    data.false_samples.push_back(T2(-20 + 4 * i, 0));
  }
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  for (const Tuple& t : data.true_samples) {
    EXPECT_TRUE(learned->Accepts(t)) << t.ToString();
  }
}

TEST(LearnTest, RequiresTrueSamples) {
  TrainingSet data;
  data.false_samples.push_back(T2(1, 2));
  EXPECT_FALSE(Learn(data, {0, 1}).ok());
}

TEST(LearnTest, ArityMismatchRejected) {
  TrainingSet data;
  data.true_samples.push_back(Tuple({Value::Integer(1)}));
  EXPECT_FALSE(Learn(data, {0, 1}).ok());
}

TEST(LearnTest, PaperWalkthroughShape) {
  // §3.2: TRUE (-5,1) (2,-6) (-27,-44) (-28,-46) (-7,-1);
  //       FALSE (-40,-2) (-56,-2) (-53,-2) (-48,-2).
  TrainingSet data;
  data.true_samples = {T2(-5, 1), T2(2, -6), T2(-27, -44), T2(-28, -46),
                       T2(-7, -1)};
  data.false_samples = {T2(-40, -2), T2(-56, -2), T2(-53, -2), T2(-48, -2)};
  auto learned = Learn(data, {0, 1});
  ASSERT_TRUE(learned.ok());
  for (const Tuple& t : data.true_samples) EXPECT_TRUE(learned->Accepts(t));
  for (const Tuple& t : data.false_samples) EXPECT_FALSE(learned->Accepts(t));
}

}  // namespace
}  // namespace sia
