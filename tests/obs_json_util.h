#ifndef SIA_TESTS_OBS_JSON_UTIL_H_
#define SIA_TESTS_OBS_JSON_UTIL_H_

// Minimal recursive-descent JSON syntax validator for the src/obs export
// tests. Deliberately dependency-free (the obs test binary links only
// sia_obs + GTest): it checks well-formedness, not schema — the tests
// pair it with substring assertions for the fields they care about.

#include <cctype>
#include <string_view>

namespace sia::test_json {

namespace detail {

inline void SkipWs(std::string_view s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

inline bool ParseValue(std::string_view s, size_t& i, int depth);

inline bool ParseString(std::string_view s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char e = s[i];
      if (e == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++i;
          if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
            return false;
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    } else if (static_cast<unsigned char>(c) < 0x20) {
      return false;  // raw control character
    }
    ++i;
  }
  return false;  // unterminated
}

inline bool ParseNumber(std::string_view s, size_t& i) {
  const size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
    return false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i > start;
}

inline bool ParseObject(std::string_view s, size_t& i, int depth) {
  ++i;  // consume '{'
  SkipWs(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    SkipWs(s, i);
    if (!ParseString(s, i)) return false;
    SkipWs(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    if (!ParseValue(s, i, depth)) return false;
    SkipWs(s, i);
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool ParseArray(std::string_view s, size_t& i, int depth) {
  ++i;  // consume '['
  SkipWs(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    if (!ParseValue(s, i, depth)) return false;
    SkipWs(s, i);
    if (i >= s.size()) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == ']') {
      ++i;
      return true;
    }
    return false;
  }
}

inline bool ParseValue(std::string_view s, size_t& i, int depth) {
  if (depth > 64) return false;
  SkipWs(s, i);
  if (i >= s.size()) return false;
  switch (s[i]) {
    case '{':
      return ParseObject(s, i, depth + 1);
    case '[':
      return ParseArray(s, i, depth + 1);
    case '"':
      return ParseString(s, i);
    case 't':
      if (s.substr(i, 4) != "true") return false;
      i += 4;
      return true;
    case 'f':
      if (s.substr(i, 5) != "false") return false;
      i += 5;
      return true;
    case 'n':
      if (s.substr(i, 4) != "null") return false;
      i += 4;
      return true;
    default:
      return ParseNumber(s, i);
  }
}

}  // namespace detail

// True iff `text` is exactly one well-formed JSON value (plus optional
// surrounding whitespace).
inline bool IsValidJson(std::string_view text) {
  size_t i = 0;
  if (!detail::ParseValue(text, i, 0)) return false;
  detail::SkipWs(text, i);
  return i == text.size();
}

}  // namespace sia::test_json

#endif  // SIA_TESTS_OBS_JSON_UTIL_H_
