#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "parser/parser.h"
#include "workload/casestudy.h"
#include "workload/querygen.h"

namespace sia {
namespace {

class QueryGenTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::TpchCatalog();
};

TEST_F(QueryGenTest, GeneratesRequestedCount) {
  auto queries = GenerateWorkload(catalog_, 10);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_EQ(queries->size(), 10u);
}

TEST_F(QueryGenTest, Deterministic) {
  auto a = GenerateWorkload(catalog_, 5);
  auto b = GenerateWorkload(catalog_, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*a)[i].sql, (*b)[i].sql);
  }
}

TEST_F(QueryGenTest, MatchesPaperTemplate) {
  auto queries = GenerateWorkload(catalog_, 20);
  ASSERT_TRUE(queries.ok());
  const Schema joint =
      catalog_.JointSchema({"lineitem", "orders"}).value();
  for (const GeneratedQuery& g : *queries) {
    EXPECT_GE(g.term_count, 3);
    EXPECT_LE(g.term_count, 8);
    EXPECT_EQ(g.query.tables,
              (std::vector<std::string>{"lineitem", "orders"}));
    auto bound = Bind(g.query.where, joint);
    ASSERT_TRUE(bound.ok()) << g.sql;
    const auto conjuncts = SplitConjuncts(*bound);
    // Join condition + term_count predicate terms.
    EXPECT_EQ(conjuncts.size(), static_cast<size_t>(g.term_count) + 1);
    // Every predicate term references o_orderdate (§6.3), so no original
    // conjunct is pushable to lineitem.
    const size_t o_orderdate = *joint.FindColumn("o_orderdate");
    for (size_t i = 1; i < conjuncts.size(); ++i) {
      const auto used = CollectColumnIndices(conjuncts[i]);
      EXPECT_TRUE(std::find(used.begin(), used.end(), o_orderdate) !=
                  used.end())
          << conjuncts[i]->ToString();
    }
    // The workload collectively pins all three lineitem date columns.
    const auto all_used = CollectColumnIndices(*bound);
    std::set<std::string> names;
    for (const size_t c : all_used) names.insert(joint.column(c).name);
    EXPECT_TRUE(names.contains("l_shipdate"));
    EXPECT_TRUE(names.contains("l_commitdate"));
    EXPECT_TRUE(names.contains("l_receiptdate"));
  }
}

TEST_F(QueryGenTest, EmittedSqlParses) {
  auto queries = GenerateWorkload(catalog_, 10);
  ASSERT_TRUE(queries.ok());
  for (const GeneratedQuery& g : *queries) {
    auto q = ParseQuery(g.sql);
    EXPECT_TRUE(q.ok()) << g.sql;
  }
}

TEST(CaseStudyTest, ClassificationAndCalibration) {
  const Catalog catalog = Catalog::TpchCatalog();
  CaseStudyOptions opts;
  opts.query_count = 120;
  auto report = SimulateCaseStudy(catalog, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records.size(), 120u);
  EXPECT_EQ(report->prospective_count, 120u);
  // The relevant slice should be a strict, non-empty minority (the paper
  // observed ~12.8%).
  EXPECT_GT(report->relevant_count, 0u);
  EXPECT_LT(report->relevant_count, report->prospective_count / 2);
  // Execution-time calibration: majority takes > 10 s.
  EXPECT_GT(report->frac_over_10s, 0.6);
  EXPECT_LT(report->frac_over_10s, 0.9);
}

TEST(CaseStudyTest, PercentileHelper) {
  std::vector<CaseStudyRecord> records;
  for (int i = 1; i <= 100; ++i) {
    CaseStudyRecord r;
    r.exec_time_s = i;
    r.relevant = (i % 2) == 0;
    records.push_back(r);
  }
  auto metric = +[](const CaseStudyRecord& r) { return r.exec_time_s; };
  const auto all = MetricPercentiles(records, false, metric, {0, 50, 100});
  EXPECT_DOUBLE_EQ(all[0], 1);
  EXPECT_NEAR(all[1], 50.5, 0.01);
  EXPECT_DOUBLE_EQ(all[2], 100);
  const auto rel = MetricPercentiles(records, true, metric, {0, 100});
  EXPECT_DOUBLE_EQ(rel[0], 2);
  EXPECT_DOUBLE_EQ(rel[1], 100);
}

}  // namespace
}  // namespace sia
