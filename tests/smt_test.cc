#include <gtest/gtest.h>

#include <z3++.h>

#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "smt/encoder.h"
#include "smt/smt_context.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema ThreeCols(bool nullable = false) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, nullable});
  s.AddColumn({"t", "b", DataType::kInteger, nullable});
  s.AddColumn({"t", "c", DataType::kInteger, nullable});
  return s;
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

// Solves `formula` and returns the model values for columns 0..n-1.
z3::check_result Check(SmtContext* ctx, const z3::expr& formula,
                       z3::model* model = nullptr) {
  z3::solver solver(ctx->z3());
  solver.add(formula);
  const z3::check_result r = solver.check();
  if (r == z3::sat && model != nullptr) *model = solver.get_model();
  return r;
}

TEST(SmtContextTest, VariableInterning) {
  SmtContext ctx;
  z3::expr a = ctx.ColumnVar(0, DataType::kInteger);
  z3::expr b = ctx.ColumnVar(0, DataType::kInteger);
  EXPECT_TRUE(z3::eq(a, b));
  z3::expr c = ctx.ColumnVar(1, DataType::kInteger);
  EXPECT_FALSE(z3::eq(a, c));
  EXPECT_TRUE(ctx.ColumnVar(2, DataType::kDouble).is_real());
  EXPECT_TRUE(ctx.NullVar(0).is_bool());
}

TEST(EncoderTest, SimpleEncodingSatisfiability) {
  Schema s = ThreeCols();
  ExprPtr p = BindOrDie((Col("a") < Col("b")) && (Col("b") < Lit(0)), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kIgnore);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  z3::model model(ctx.z3());
  ASSERT_EQ(Check(&ctx, *f, &model), z3::sat);
  auto tuple = enc.ExtractTuple(model, {0, 1});
  ASSERT_TRUE(tuple.ok());
  EXPECT_LT(tuple->at(0).AsInt(), tuple->at(1).AsInt());
  EXPECT_LT(tuple->at(1).AsInt(), 0);
}

TEST(EncoderTest, UnsatisfiableFormula) {
  Schema s = ThreeCols();
  ExprPtr p = BindOrDie((Col("a") < Lit(0)) && (Col("a") > Lit(0)), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kIgnore);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(Check(&ctx, *f), z3::unsat);
}

// Property: for random non-NULL tuples, the SMT encoding pinned to the
// tuple's values is SAT exactly when the evaluator says TRUE.
TEST(EncoderTest, AgreesWithEvaluatorOnConcreteTuples) {
  Schema s = ThreeCols();
  const std::vector<ExprPtr> predicates = {
      BindOrDie((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)), s),
      BindOrDie((Col("a") + Col("b") * Lit(3) >= Col("c")) ||
                    (Col("a") == Lit(0)),
                s),
      BindOrDie(!(Col("a") <= Col("c")), s),
      BindOrDie(Col("a") / Lit(3) == Lit(-2), s),
  };
  int64_t values[] = {-7, -2, 0, 3, 19, 20, 21};
  for (const ExprPtr& p : predicates) {
    for (const int64_t va : values) {
      for (const int64_t vb : values) {
        for (const int64_t vc : values) {
          Tuple t({Value::Integer(va), Value::Integer(vb),
                   Value::Integer(vc)});
          SmtContext ctx;
          Encoder enc(&ctx, s, NullHandling::kIgnore);
          auto f = enc.EncodeTrue(p);
          ASSERT_TRUE(f.ok());
          auto pin = enc.TupleEquals({0, 1, 2}, t);
          ASSERT_TRUE(pin.ok());
          const bool smt_sat = Check(&ctx, *f && *pin) == z3::sat;
          const bool eval_true = Satisfies(*p, t).value();
          EXPECT_EQ(smt_sat, eval_true)
              << p->ToString() << " on " << t.ToString();
        }
      }
    }
  }
}

TEST(EncoderTest, ThreeValuedNullSemantics) {
  Schema s = ThreeCols(/*nullable=*/true);
  ExprPtr p = BindOrDie(Col("a") < Lit(10), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kThreeValued);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  // Forcing a NULL must make "p is TRUE" unsatisfiable.
  z3::expr forced_null = ctx.NullVar(0);
  EXPECT_EQ(Check(&ctx, *f && forced_null), z3::unsat);
  // Without the force it is satisfiable.
  EXPECT_EQ(Check(&ctx, *f), z3::sat);
}

TEST(EncoderTest, ThreeValuedNotOfNullIsNotTrue) {
  Schema s = ThreeCols(/*nullable=*/true);
  ExprPtr p = BindOrDie(!(Col("a") < Lit(10)), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kThreeValued);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  z3::expr forced_null = ctx.NullVar(0);
  EXPECT_EQ(Check(&ctx, *f && forced_null), z3::unsat);
}

TEST(EncoderTest, KleeneAndWithNull) {
  // (a < 10) AND (b < 10): with b NULL and a < 10, result is UNKNOWN (not
  // TRUE); with a >= 10 it is FALSE regardless of b. Check "is TRUE"
  // requires both non-null.
  Schema s = ThreeCols(/*nullable=*/true);
  ExprPtr p = BindOrDie((Col("a") < Lit(10)) && (Col("b") < Lit(10)), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kThreeValued);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(Check(&ctx, *f && ctx.NullVar(1)), z3::unsat);
  // But "p is not TRUE" IS satisfiable with b NULL.
  auto g = enc.EncodeNotTrue(p);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(Check(&ctx, *g && ctx.NullVar(1)), z3::sat);
}

TEST(EncoderTest, NonLinearFoldsToAuxVariable) {
  Schema s = ThreeCols();
  ExprPtr p = BindOrDie(Col("a") * Col("b") < Lit(100), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kIgnore);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(ctx.aux_count(), 1u);  // a*b folded into one variable
  EXPECT_EQ(Check(&ctx, *f), z3::sat);
}

TEST(EncoderTest, MulByConstantStaysLinear) {
  Schema s = ThreeCols();
  ExprPtr p = BindOrDie(Col("a") * Lit(3) < Lit(100), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kIgnore);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(ctx.aux_count(), 0u);
}

TEST(EncoderTest, TruncatedDivisionMatchesCpp) {
  // SQL/C++ division truncates toward zero; Z3's div is Euclidean. The
  // encoder must produce C++ semantics for constant divisors.
  Schema s = ThreeCols();
  for (const int64_t divisor : {3, -3}) {
    for (const int64_t a : {-8, -7, -1, 0, 1, 7, 8}) {
      ExprPtr p = BindOrDie(Col("a") / Lit(divisor) == Lit(a / divisor), s);
      SmtContext ctx;
      Encoder enc(&ctx, s, NullHandling::kIgnore);
      auto f = enc.EncodeTrue(p);
      ASSERT_TRUE(f.ok());
      auto pin = enc.TupleEquals(
          {0}, Tuple({Value::Integer(a)}));
      ASSERT_TRUE(pin.ok());
      EXPECT_EQ(Check(&ctx, *f && *pin), z3::sat)
          << a << " / " << divisor << " should equal " << (a / divisor);
    }
  }
}

TEST(EncoderTest, DateColumnsExtractAsDates) {
  Schema s;
  s.AddColumn({"t", "d", DataType::kDate, false});
  ExprPtr p = BindOrDie(Col("d") > DateL(8552), s);
  SmtContext ctx;
  Encoder enc(&ctx, s, NullHandling::kIgnore);
  auto f = enc.EncodeTrue(p);
  ASSERT_TRUE(f.ok());
  z3::model model(ctx.z3());
  ASSERT_EQ(Check(&ctx, *f, &model), z3::sat);
  auto t = enc.ExtractTuple(model, {0});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0).type(), DataType::kDate);
  EXPECT_GT(t->at(0).AsInt(), 8552);
}

}  // namespace
}  // namespace sia
